// Ablation bench for the design choices DESIGN.md calls out:
//   1. Fig. 3 mechanism: Hamming-distance grids of the four position
//      encodings (uniform / Manhattan / decay / block-decay) — the
//      numeric form of the paper's Fig. 3 distance tables.
//   2. Clustering distance: cosine (paper Eq. 7) vs Hamming-majority.
//   3. Color quantisation: IoU and unique-point count vs the
//      quantisation shift (the dedup engineering knob of this library).
//   4. gamma: the color-vs-position weight (Fig. 5).
//
//   ./bench_ablation_encoding [--images 6] [--out out]
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/hdc/distances.hpp"
#include "src/core/position_encoder.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

namespace {

using namespace seghdc;

void print_distance_grid(const char* title,
                         core::PositionEncoding encoding, double alpha,
                         std::size_t beta) {
  core::PositionEncoderConfig config{
      .dim = 4096, .rows = 6, .cols = 6,
      .encoding = encoding, .alpha = alpha, .beta = beta};
  util::Rng rng(3);
  const core::PositionEncoder encoder(config, rng);
  const auto origin = encoder.encode(0, 0);
  std::printf("  %s:\n", title);
  for (std::size_t i = 0; i < 6; ++i) {
    std::printf("    ");
    for (std::size_t j = 0; j < 6; ++j) {
      std::printf("%6zu",
                  hdc::hamming_distance(origin, encoder.encode(i, j)));
    }
    std::printf("\n");
  }
}

double mean_iou(const core::SegHdcConfig& config,
                const data::DatasetGenerator& dataset, std::size_t images,
                double* seconds_out = nullptr,
                std::size_t* unique_out = nullptr) {
  // Through the shared eval pipeline; one_shot keeps this ablation's
  // cost profile identical to the old private loop.
  eval::EvalOptions options;
  options.path = eval::EvalPath::kOneShot;
  const auto suite = eval::evaluate_seghdc(dataset, images, config, options);
  if (seconds_out != nullptr) {
    *seconds_out = suite.mean_seconds();
  }
  if (unique_out != nullptr) {
    std::size_t unique = 0;
    for (const auto& record : suite.records) {
      unique += record.unique_points;
    }
    *unique_out = unique / images;
  }
  return suite.mean_iou();
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto images = static_cast<std::size_t>(cli.get_int("images", 6));
  const auto out_dir = cli.get("out", "out");
  util::ensure_directory(out_dir);

  const bench::Scale scale = bench::Scale::host();
  const auto dataset = bench::make_dataset(bench::DatasetId::kDsb2018, scale);

  std::printf("== 1. Fig. 3 distance grids (hamming(p(0,0), p(i,j)), "
              "d = 4096) ==\n");
  print_distance_grid("(a) uniform — diagonal collapses to 0",
                      core::PositionEncoding::kUniform, 1.0, 1);
  print_distance_grid("(b) Manhattan — exact Eq. 4",
                      core::PositionEncoding::kManhattan, 1.0, 1);
  print_distance_grid("(c) decay (alpha = 0.5)",
                      core::PositionEncoding::kDecayManhattan, 0.5, 1);
  print_distance_grid("(d) block decay (alpha = 0.5, beta = 2)",
                      core::PositionEncoding::kBlockDecayManhattan, 0.5, 2);

  util::CsvWriter csv(out_dir + "/ablation_encoding.csv",
                      {"ablation", "setting", "mean_iou", "mean_seconds",
                       "mean_unique_points"});

  std::printf("\n== 2. Clustering distance (DSB2018, %zu images) ==\n",
              images);
  for (const auto distance :
       {core::ClusterDistance::kCosine, core::ClusterDistance::kHamming}) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.cluster_distance = distance;
    double seconds = 0.0;
    const double iou = mean_iou(config, *dataset, images, &seconds);
    const char* name =
        distance == core::ClusterDistance::kCosine ? "cosine" : "hamming";
    std::printf("  %-8s IoU %.4f  (%.2f s/image)\n", name, iou, seconds);
    csv.row({"cluster_distance", name, util::CsvWriter::field(iou),
             util::CsvWriter::field(seconds), "0"});
  }

  std::printf("\n== 3. Color quantisation shift ==\n");
  for (const std::size_t shift : {0, 1, 2, 3, 4}) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.color_quantization_shift = shift;
    double seconds = 0.0;
    std::size_t unique = 0;
    const double iou = mean_iou(config, *dataset, images, &seconds, &unique);
    std::printf("  shift %zu: IoU %.4f  (%.2f s/image, ~%zu unique "
                "points)\n", shift, iou, seconds, unique);
    csv.row({"quantization", std::to_string(shift),
             util::CsvWriter::field(iou), util::CsvWriter::field(seconds),
             std::to_string(unique)});
  }

  std::printf("\n== 4. gamma (color:position weight) ==\n");
  for (const std::size_t gamma : {1, 2, 4}) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.gamma = gamma;
    const double iou = mean_iou(config, *dataset, images);
    std::printf("  gamma %zu: IoU %.4f\n", gamma, iou);
    csv.row({"gamma", std::to_string(gamma), util::CsvWriter::field(iou),
             "0", "0"});
  }

  std::printf("\ncsv: %s/ablation_encoding.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_ablation_encoding failed: %s\n", error.what());
  return 1;
}
