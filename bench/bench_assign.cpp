// Large-K assignment sweep: pruned vs exhaustive K-Means at K in
// {8, 32, 64, 128, 256} on clustered synthetic HVs.
//
//   ./bench_assign [--points 3000] [--dim 2048] [--k-list 8,32,64,128,256]
//                  [--iterations 4] [--repeats 3] [--threads 1]
//                  [--distance hamming|cosine] [--seed 7] [--csv]
//                  [--backend scalar|harley-seal|avx2|neon|auto]
//
// Both modes run the identical clustering problem; the assignments are
// compared element-wise and ANY divergence is a hard failure (exit 1) —
// pruning is an exactness contract, and a speedup table over wrong
// labels is worthless. Each row reports the measured pruned fraction
// (candidates skipped / candidate pairs) from the clusterer's own
// OpCounts, so the table shows WHY a row is fast, not just that it is.
//
// The dataset is K anchor HVs of varied density (popcounts spread
// between ~25% and ~75% of dim) with ~2% of bits flipped per point —
// the popcount spread feeds the norm-bound layer, the tight clusters
// feed the early-exit bounded kernels. Emits BENCH_assign.json with a
// per-K sweep array plus the K=128 headline speedup.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "bench_report.hpp"
#include "src/core/kmeans.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace seghdc;

/// K anchor HVs with densities swept across [0.25, 0.75], then one
/// point per (slot, anchor) with ~2% of bits flipped. Point j belongs
/// to anchor j % k, so seeds {0..k-1} start one centroid per family.
std::vector<hdc::HyperVector> make_clustered_points(std::size_t count,
                                                    std::size_t dim,
                                                    std::size_t k,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hdc::HyperVector> anchors;
  anchors.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    hdc::HyperVector anchor(dim);
    // Density 25%..75% across the anchor family: keep bit i when a
    // 16-bit draw clears the anchor's threshold.
    const std::uint64_t threshold =
        (1u << 14) + ((k > 1 ? c : 1) * (1u << 15)) / (k > 1 ? k - 1 : 1);
    for (std::size_t i = 0; i < dim; ++i) {
      if ((rng() & 0xFFFF) < threshold) {
        anchor.flip(i);
      }
    }
    anchors.push_back(anchor);
  }
  std::vector<hdc::HyperVector> points;
  points.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    auto point = anchors[j % k];
    for (std::size_t f = 0; f < dim / 50; ++f) {
      point.flip(rng.next_below(dim));
    }
    points.push_back(point);
  }
  return points;
}

struct SweepRow {
  std::size_t k = 0;
  double exhaustive_seconds = 0.0;       ///< whole-run wall time
  double pruned_seconds = 0.0;
  double exhaustive_assign_seconds = 0.0;  ///< kmeans_assign span total
  double pruned_assign_seconds = 0.0;
  double assign_speedup = 0.0;
  double total_speedup = 0.0;
  double pruned_fraction = 0.0;
};

/// Sum of this run's "kmeans_assign" span durations — the assignment
/// step isolated from the (K-independent) update step, measured by the
/// same obs spans production uses.
double assign_seconds_of(const std::vector<obs::TraceEvent>& events) {
  std::uint64_t total_ns = 0;
  for (const auto& event : events) {
    if (std::string_view(event.name) == "kmeans_assign") {
      total_ns += event.dur_ns;
    }
  }
  return static_cast<double>(total_ns) * 1e-9;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto points_count =
      static_cast<std::size_t>(cli.get_int("points", 3000));
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 2048));
  const auto iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 4));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool csv = cli.get_flag("csv");
  const std::string distance_flag = cli.get("distance", "hamming");
  core::ClusterDistance distance;
  if (distance_flag == "hamming") {
    distance = core::ClusterDistance::kHamming;
  } else if (distance_flag == "cosine") {
    distance = core::ClusterDistance::kCosine;
  } else {
    std::fprintf(stderr, "--distance must be hamming or cosine, got '%s'\n",
                 distance_flag.c_str());
    return 1;
  }
  const auto k_list = util::Cli::parse_size_list(
      cli.get("k-list", "8,32,64,128,256"), /*allow_zero=*/false);
  if (k_list.empty()) {
    std::fprintf(stderr, "--k-list must name at least one cluster count\n");
    return 1;
  }

  const std::string backend_flag = cli.get("backend", "");
  if (!backend_flag.empty()) {
    hdc::simd::force_backend(backend_flag);
  }

  std::printf("bench_assign: %zu points, dim=%zu, %s distance, %zu "
              "iterations, best of %zu repeats, %zu thread(s)\n",
              points_count, dim, distance_flag.c_str(), iterations, repeats,
              threads);
  std::printf("kernel backend: %s | cpu: %s\n",
              hdc::simd::active_backend().name,
              hdc::simd::cpu_feature_string().c_str());

  util::ThreadPool pool(threads);
  obs::LatencyRecorder pruned_latency(k_list.size() * repeats);

  std::vector<SweepRow> rows;
  if (csv) {
    std::printf("k,exhaustive_assign_seconds,pruned_assign_seconds,"
                "assign_speedup,total_speedup,pruned_fraction\n");
  } else {
    std::printf("%6s %12s %12s %9s %9s %10s\n", "k", "exh-assign",
                "prn-assign", "assign", "total", "pruned%");
  }
  for (const std::size_t k : k_list) {
    if (points_count < k) {
      std::fprintf(stderr, "--points (%zu) must be >= k (%zu)\n",
                   points_count, k);
      return 1;
    }
    const auto points = make_clustered_points(points_count, dim, k, seed);
    std::vector<std::size_t> seeds(k);
    for (std::size_t c = 0; c < k; ++c) {
      seeds[c] = c;
    }
    core::HvKMeansConfig config{.clusters = k,
                                .iterations = iterations,
                                .distance = distance,
                                .assign_mode = core::AssignMode::kExhaustive};
    config.pool = &pool;

    // Best-of-N timing per mode; the last run's result is kept for the
    // divergence check and the ops-based pruned fraction. A fresh
    // TraceSession per repeat isolates that run's kmeans_assign spans
    // (a handful of events — the tracing cost is noise).
    const auto time_mode = [&](core::AssignMode mode, double* best_seconds,
                               double* best_assign_seconds) {
      config.assign_mode = mode;
      const core::HvKMeans kmeans(config);
      core::HvKMeansResult result;
      for (std::size_t r = 0; r < repeats; ++r) {
        const obs::TraceSession trace;
        const util::Stopwatch watch;
        result = kmeans.run(points, {}, seeds);
        const double seconds = watch.seconds();
        const double assign_seconds = assign_seconds_of(trace.events());
        *best_seconds =
            r == 0 ? seconds : std::min(*best_seconds, seconds);
        *best_assign_seconds =
            r == 0 ? assign_seconds
                   : std::min(*best_assign_seconds, assign_seconds);
        if (mode == core::AssignMode::kPruned) {
          pruned_latency.record(seconds);
        }
      }
      return result;
    };

    SweepRow row;
    row.k = k;
    const auto exhaustive =
        time_mode(core::AssignMode::kExhaustive, &row.exhaustive_seconds,
                  &row.exhaustive_assign_seconds);
    const auto pruned =
        time_mode(core::AssignMode::kPruned, &row.pruned_seconds,
                  &row.pruned_assign_seconds);

    if (exhaustive.assignment != pruned.assignment) {
      std::fprintf(stderr,
                   "FAIL: pruned labels diverge from exhaustive at k=%zu\n",
                   k);
      return 1;
    }
    const auto candidate_pairs =
        pruned.ops.distance_evals + pruned.ops.candidates_pruned;
    row.assign_speedup =
        row.exhaustive_assign_seconds / row.pruned_assign_seconds;
    row.total_speedup = row.exhaustive_seconds / row.pruned_seconds;
    row.pruned_fraction =
        candidate_pairs == 0
            ? 0.0
            : static_cast<double>(pruned.ops.candidates_pruned) /
                  static_cast<double>(candidate_pairs);
    rows.push_back(row);
    if (csv) {
      std::printf("%zu,%.4f,%.4f,%.2f,%.2f,%.4f\n", row.k,
                  row.exhaustive_assign_seconds, row.pruned_assign_seconds,
                  row.assign_speedup, row.total_speedup,
                  row.pruned_fraction);
    } else {
      std::printf("%6zu %12.4f %12.4f %8.2fx %8.2fx %9.1f%%\n", row.k,
                  row.exhaustive_assign_seconds, row.pruned_assign_seconds,
                  row.assign_speedup, row.total_speedup,
                  row.pruned_fraction * 100.0);
    }
  }
  std::printf("pruned assignments identical to exhaustive at every k\n");

  // Headline: the K=128 row when swept (the acceptance gate), else the
  // largest K. "Throughput" is pruned clustering runs per second there.
  const SweepRow* headline = &rows.back();
  for (const auto& row : rows) {
    if (row.k == 128) {
      headline = &row;
    }
  }
  std::string sweep_json = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char entry[256];
    std::snprintf(
        entry, sizeof entry,
        "%s{\"k\": %zu, \"exhaustive_assign_seconds\": %.6f, "
        "\"pruned_assign_seconds\": %.6f, \"assign_speedup\": %.4f, "
        "\"total_speedup\": %.4f, \"pruned_fraction\": %.6f}",
        i == 0 ? "" : ", ", rows[i].k, rows[i].exhaustive_assign_seconds,
        rows[i].pruned_assign_seconds, rows[i].assign_speedup,
        rows[i].total_speedup, rows[i].pruned_fraction);
    sweep_json += entry;
  }
  sweep_json += "]";
  char headline_speedup[32];
  std::snprintf(headline_speedup, sizeof headline_speedup, "%.4f",
                headline->assign_speedup);
  char headline_total[32];
  std::snprintf(headline_total, sizeof headline_total, "%.4f",
                headline->total_speedup);
  char headline_fraction[32];
  std::snprintf(headline_fraction, sizeof headline_fraction, "%.6f",
                headline->pruned_fraction);
  bench::write_bench_json(
      "BENCH_assign.json", "bench_assign",
      1.0 / headline->pruned_seconds, pruned_latency.snapshot(),
      {{"distance", "\"" + distance_flag + "\""},
       {"points", std::to_string(points_count)},
       {"dim", std::to_string(dim)},
       {"iterations", std::to_string(iterations)},
       {"headline_k", std::to_string(headline->k)},
       {"assign_speedup", headline_speedup},
       {"total_speedup", headline_total},
       {"pruned_fraction", headline_fraction},
       {"sweep", sweep_json}});
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_assign failed: %s\n", error.what());
  return 1;
}
