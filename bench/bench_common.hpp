// Shared plumbing for the table/figure benches: dataset construction
// (paper-scale or host-scale), the Table-I methods as uniform runners,
// and small report helpers.
//
// Since the eval-pipeline rework every SegHDC number a bench prints
// flows through eval::evaluate_seghdc — the same one_shot/batch/server
// machinery the library ships — so paper-fidelity numbers and
// production-path numbers come from the same code. Benches expose the
// path via --path (default: server, the production shape) and the wave
// size via --batch.
//
// Host-scale vs paper-scale: every bench accepts --paper to run the full
// configuration from the paper (200-image BBBC005 at 520x696, d=10000,
// 100-channel baseline at 1000 iterations, ...). The default host scale
// (documented in DESIGN.md §4) preserves every comparison's shape while
// finishing in minutes on a laptop-class single core.
#ifndef SEGHDC_BENCH_BENCH_COMMON_HPP
#define SEGHDC_BENCH_BENCH_COMMON_HPP

#include <memory>
#include <string>
#include <utility>

#include "src/baseline/kim_segmenter.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/bbbc005.hpp"
#include "src/datasets/dataset.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/datasets/monuseg.hpp"
#include "src/eval/suite.hpp"
#include "src/imaging/filters.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/cli.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::bench {

/// Scale of a bench run.
struct Scale {
  bool paper = false;            ///< --paper flag
  std::size_t images = 12;       ///< images per dataset (Table I)
  std::size_t seghdc_dim = 2000; ///< d for Table I (paper: 10000)
  std::size_t kim_channels = 32; ///< baseline width (paper: 100)
  std::size_t kim_iterations = 60;  ///< baseline budget (paper: 1000)
  /// Downscale factor applied to the image before baseline training
  /// (labels are upsampled back for scoring); 1 = train at full size.
  std::size_t kim_train_downscale = 2;
  std::size_t quantization_shift = 2;  ///< SegHDC color quantisation

  static Scale host() { return Scale{}; }
  static Scale paper_scale() {
    Scale s;
    s.paper = true;
    s.images = 200;
    s.seghdc_dim = 10000;
    s.kim_channels = 100;
    s.kim_iterations = 1000;
    s.kim_train_downscale = 1;
    s.quantization_shift = 0;
    return s;
  }
};

enum class DatasetId { kBbbc005, kDsb2018, kMonuseg };

inline const char* dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kBbbc005:
      return "BBBC005";
    case DatasetId::kDsb2018:
      return "DSB2018";
    case DatasetId::kMonuseg:
      return "MoNuSeg";
  }
  return "?";
}

/// Builds a generator; host scale halves the big BBBC005 frames.
inline std::unique_ptr<data::DatasetGenerator> make_dataset(
    DatasetId id, const Scale& scale) {
  switch (id) {
    case DatasetId::kBbbc005: {
      data::Bbbc005Config config;
      if (!scale.paper) {
        config.width = 348;
        config.height = 260;
        config.min_radius = 8.0;
        config.max_radius = 15.0;
      }
      return std::make_unique<data::Bbbc005Generator>(config);
    }
    case DatasetId::kDsb2018:
      return std::make_unique<data::Dsb2018Generator>();
    case DatasetId::kMonuseg:
      return std::make_unique<data::MonusegGenerator>();
  }
  throw std::invalid_argument("unknown dataset");
}

/// Paper Section IV-A hyper-parameters for one dataset.
inline core::SegHdcConfig seghdc_config_for(
    const data::DatasetGenerator& dataset, const Scale& scale) {
  core::SegHdcConfig config;
  config.dim = scale.seghdc_dim;
  config.alpha = 0.2;
  config.gamma = 1;
  config.beta = dataset.profile().suggested_beta;
  config.clusters = dataset.profile().suggested_clusters;
  config.iterations = 10;
  config.color_quantization_shift = scale.quantization_shift;
  return config;
}

inline baseline::KimConfig kim_config_for(const Scale& scale) {
  baseline::KimConfig config;
  config.feature_channels = scale.kim_channels;
  config.max_iterations = scale.kim_iterations;
  return config;
}

/// The shared --path/--batch knobs: every bench that runs SegHDC
/// resolves its eval execution path here. Default is the serving path —
/// bench numbers are production-path numbers unless asked otherwise.
inline eval::EvalOptions eval_options_from_cli(const util::Cli& cli) {
  eval::EvalOptions options;
  options.path = eval::parse_eval_path(cli.get("path", "server"));
  options.batch_size = static_cast<std::size_t>(cli.get_int("batch", 64));
  return options;
}

/// Adapter exposing one concrete Sample as a single-image dataset, so
/// the per-image figure benches ride the exact suite pipeline the
/// dataset sweeps use (same session/server machinery, same scoring).
class SingleSampleDataset final : public data::DatasetGenerator {
 public:
  SingleSampleDataset(const data::DatasetGenerator& parent,
                      data::Sample sample)
      : profile_(parent.profile()), sample_(std::move(sample)) {}

  const data::DatasetProfile& profile() const override { return profile_; }
  data::Sample generate(std::size_t) const override { return sample_; }

 private:
  data::DatasetProfile profile_;
  data::Sample sample_;
};

/// Uniform per-image result for the method runners.
struct MethodRun {
  double iou = 0.0;
  double seconds = 0.0;
  img::ImageU8 mask;       ///< best-matched foreground mask
  img::LabelMap labels;    ///< raw labels
  std::size_t label_count = 0;
  std::vector<std::uint64_t> cluster_pixel_counts;
  std::size_t iterations_run = 0;
};

/// Runs SegHDC on one sample through the shared eval pipeline (a
/// single-image evaluate_seghdc sweep on the configured path).
inline MethodRun run_seghdc(const core::SegHdcConfig& config,
                            const data::DatasetGenerator& dataset,
                            const data::Sample& sample,
                            eval::EvalOptions options = {}) {
  const SingleSampleDataset one(dataset, sample);
  MethodRun run;
  options.sink = [&](std::size_t, const data::Sample& s,
                     const core::SegmentationResult& result) {
    const auto matched = metrics::best_foreground_iou(
        result.labels, config.clusters, s.mask);
    run.iou = matched.iou;
    run.seconds = result.timings.total_seconds;
    run.mask = matched.mask;
    run.labels = result.labels;
    run.label_count = config.clusters;
    run.cluster_pixel_counts = result.cluster_pixel_counts;
    run.iterations_run = result.iterations_run;
  };
  eval::evaluate_seghdc(one, 1, config, options);
  return run;
}

/// Baseline runner over the shared eval method factory: optionally
/// trains at reduced resolution (DESIGN.md §4) and scores the upsampled
/// labels at full resolution.
inline MethodRun run_kim(const baseline::KimConfig& config,
                         const data::Sample& sample,
                         std::size_t train_downscale) {
  const auto method = eval::kim_method(config, train_downscale);
  const util::Stopwatch watch;
  const auto labels = method(sample);
  const double seconds = watch.seconds();
  const auto matched = metrics::best_foreground_iou_any(labels, sample.mask);
  MethodRun run;
  run.iou = matched.iou;
  run.seconds = seconds;
  run.mask = matched.mask;
  run.labels = labels;
  run.label_count = config.feature_channels;
  return run;
}

}  // namespace seghdc::bench

#endif  // SEGHDC_BENCH_BENCH_COMMON_HPP
