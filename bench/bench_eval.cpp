// Dataset-scale evaluation through the serving path: runs SegHDC over a
// benchmark suite with eval::evaluate_seghdc and emits one
// machine-readable EVAL_*.json (mIoU aggregates, chained label
// fingerprint, wall clock, latency percentiles, measured op counts —
// with git SHA/backend/CPU provenance like the BENCH_*.json files).
//
//   ./bench_eval [--dataset BBBC005|DSB2018|MoNuSeg] [--images 12]
//                [--dim 2000] [--paper] [--path server|batch|one_shot]
//                [--batch 64] [--disk] [--check-paths]
//                [--out out] [--tag eval]
//
//   --disk         exports the synthetic suite to <out>/dataset_<name>
//                  as PNG and evaluates through the DiskDataset loader —
//                  the hermetic stand-in for a real on-disk corpus
//                  (exercises PNG I/O + loader + eval end to end).
//   --check-paths  runs the sweep on ALL three execution paths and
//                  exits 1 unless the label fingerprints and mIoU agree
//                  bit for bit — the CI eval-smoke gate.
#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "src/datasets/disk.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

namespace {

using namespace seghdc;

bench::DatasetId parse_dataset(const std::string& name) {
  for (const auto id : {bench::DatasetId::kBbbc005,
                        bench::DatasetId::kDsb2018,
                        bench::DatasetId::kMonuseg}) {
    if (name == bench::dataset_name(id)) {
      return id;
    }
  }
  throw std::invalid_argument("bench_eval: unknown dataset '" + name +
                              "' (use BBBC005, DSB2018 or MoNuSeg)");
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  bench::Scale scale = cli.get_flag("paper") ? bench::Scale::paper_scale()
                                             : bench::Scale::host();
  const auto images = static_cast<std::size_t>(
      cli.get_int("images", static_cast<std::int64_t>(scale.images)));
  scale.seghdc_dim = static_cast<std::size_t>(cli.get_int(
      "dim", static_cast<std::int64_t>(scale.seghdc_dim)));
  const auto dataset_id = parse_dataset(cli.get("dataset", "DSB2018"));
  const bool use_disk = cli.get_flag("disk");
  const bool check_paths = cli.get_flag("check-paths");
  const auto out_dir = cli.get("out", "out");
  const auto tag = cli.get("tag", "eval");
  auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const auto generated = bench::make_dataset(dataset_id, scale);
  const auto config = bench::seghdc_config_for(*generated, scale);

  // --disk: materialise the suite as PNG files and reload it through
  // the real on-disk loader, so the measured pipeline is
  // files -> DiskDataset -> eval, not generator -> eval.
  const data::DatasetGenerator* dataset = generated.get();
  std::unique_ptr<data::DiskDataset> disk;
  if (use_disk) {
    const auto dir =
        out_dir + "/dataset_" + generated->profile().name;
    data::export_dataset(*generated, images, dir, "png");
    disk = std::make_unique<data::DiskDataset>(dir);
    dataset = disk.get();
    std::printf("exported %zu samples to %s (PNG), evaluating from disk\n",
                images, dir.c_str());
  }

  std::vector<eval::SuiteResult> suites;
  if (check_paths) {
    for (const auto path : {eval::EvalPath::kOneShot, eval::EvalPath::kBatch,
                            eval::EvalPath::kServer}) {
      options.path = path;
      suites.push_back(
          eval::evaluate_seghdc(*dataset, images, config, options));
    }
  } else {
    suites.push_back(
        eval::evaluate_seghdc(*dataset, images, config, options));
  }

  std::printf("EVAL: %s, %zu images, d=%zu\n",
              dataset->profile().name.c_str(), images, config.dim);
  std::printf("%-10s %10s %10s %12s %12s %20s\n", "path", "mIoU", "p95 ms",
              "wall (s)", "img/s", "labels_hash");
  for (const auto& suite : suites) {
    std::printf("%-10s %10.4f %10.3f %12.3f %12.2f %20llu\n",
                suite.path.c_str(), suite.mean_iou(),
                suite.latency.p95_seconds * 1e3, suite.wall_seconds,
                suite.wall_seconds > 0.0
                    ? static_cast<double>(suite.records.size()) /
                          suite.wall_seconds
                    : 0.0,
                static_cast<unsigned long long>(suite.labels_hash));
  }

  bench::write_eval_json(out_dir + "/EVAL_" + tag + ".json", "bench_eval",
                         suites,
                         {{"disk", use_disk ? "true" : "false"}});

  if (check_paths) {
    // The determinism gate: every path must produce the same labels
    // (chained fingerprint) and therefore the same mIoU.
    for (std::size_t i = 1; i < suites.size(); ++i) {
      if (suites[i].labels_hash != suites[0].labels_hash) {
        std::fprintf(stderr,
                     "PATH DIVERGENCE: %s labels_hash %llu != %s %llu\n",
                     suites[i].path.c_str(),
                     static_cast<unsigned long long>(suites[i].labels_hash),
                     suites[0].path.c_str(),
                     static_cast<unsigned long long>(suites[0].labels_hash));
        return 1;
      }
      if (suites[i].mean_iou() != suites[0].mean_iou()) {
        std::fprintf(stderr, "PATH DIVERGENCE: %s mIoU %.12f != %s %.12f\n",
                     suites[i].path.c_str(), suites[i].mean_iou(),
                     suites[0].path.c_str(), suites[0].mean_iou());
        return 1;
      }
    }
    std::printf("check-paths: one_shot == batch == server (labels_hash "
                "%llu)\n",
                static_cast<unsigned long long>(suites[0].labels_hash));
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_eval failed: %s\n", error.what());
  return 1;
}
