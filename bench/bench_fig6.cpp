// Reproduces paper Fig. 6: qualitative masks — image / ground truth /
// baseline prediction / SegHDC prediction for one sample per dataset,
// with per-image IoU printed for each (paper: BBBC005 0.6995 vs 0.9559,
// DSB2018 0.7612 vs 0.8259, MoNuSeg 0.3496 vs 0.5299).
//
//   ./bench_fig6 [--paper] [--skip-baseline]
//                [--path server|batch|one_shot] [--out out/fig6]
//
// SegHDC masks come out of the shared eval pipeline (bench::run_seghdc
// -> eval::evaluate_seghdc), default path: server.
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/imaging/color.hpp"
#include "src/imaging/pnm.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  using namespace seghdc;
  const util::Cli cli(argc, argv);
  const bench::Scale scale = cli.get_flag("paper")
                                 ? bench::Scale::paper_scale()
                                 : bench::Scale::host();
  const bool skip_baseline = cli.get_flag("skip-baseline");
  const auto out_dir = cli.get("out", "out/fig6");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  util::CsvWriter csv(out_dir + "/fig6.csv",
                      {"dataset", "bl_iou", "seghdc_iou"});

  std::printf("FIG 6: qualitative masks, one image per dataset\n");
  std::printf("%-10s %10s %12s\n", "Dataset", "BL IoU", "SegHDC IoU");

  for (const auto id : {bench::DatasetId::kBbbc005,
                        bench::DatasetId::kDsb2018,
                        bench::DatasetId::kMonuseg}) {
    const auto dataset = bench::make_dataset(id, scale);
    const auto sample = dataset->generate(0);
    const auto prefix = out_dir + "/" + sample.id;

    img::write_pnm(sample.image, prefix + "_image" +
                   (sample.image.channels() == 3 ? ".ppm" : ".pgm"));
    img::write_pgm(sample.mask, prefix + "_truth.pgm");

    const auto seghdc_run = bench::run_seghdc(
        bench::seghdc_config_for(*dataset, scale), *dataset, sample, options);
    img::write_pgm(seghdc_run.mask, prefix + "_seghdc.pgm");
    img::write_ppm(img::colorize_labels(seghdc_run.labels),
                   prefix + "_seghdc_clusters.ppm");

    double bl_iou = 0.0;
    if (!skip_baseline) {
      const auto bl_run = bench::run_kim(bench::kim_config_for(scale),
                                         sample, scale.kim_train_downscale);
      img::write_pgm(bl_run.mask, prefix + "_baseline.pgm");
      bl_iou = bl_run.iou;
    }

    std::printf("%-10s %10.4f %12.4f\n", bench::dataset_name(id), bl_iou,
                seghdc_run.iou);
    csv.row({bench::dataset_name(id), util::CsvWriter::field(bl_iou),
             util::CsvWriter::field(seghdc_run.iou)});
  }
  std::printf("\npaper reference (per image): BBBC005 0.6995 vs 0.9559 | "
              "DSB2018 0.7612 vs 0.8259 | MoNuSeg 0.3496 vs 0.5299\n");
  std::printf("masks written under %s/\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_fig6 failed: %s\n", error.what());
  return 1;
}
