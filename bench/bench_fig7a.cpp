// Reproduces paper Fig. 7(a): IoU and Raspberry-Pi latency of SegHDC on
// the sample DSB2018 image as the clustering iteration count sweeps
// 1..10, at d = 10000 (the unified-variable setting of the paper).
//
// Paper shape: latency grows ~linearly from ~20 s (1 iter) past 300 s
// (10 iters); IoU jumps after iteration 1 and saturates around
// iteration 4.
//
//   ./bench_fig7a [--dim 10000] [--max-iters 10]
//                 [--path server|batch|one_shot] [--out out]
//
// Runs through the shared eval pipeline (default path: server).
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/device/latency_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  using namespace seghdc;
  const util::Cli cli(argc, argv);
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 10000));
  const auto max_iters =
      static_cast<std::size_t>(cli.get_int("max-iters", 10));
  const auto out_dir = cli.get("out", "out");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const auto pi = device::DeviceSpec::raspberry_pi_4b();
  const bench::Scale scale = bench::Scale::host();
  const auto dataset = bench::make_dataset(bench::DatasetId::kDsb2018, scale);
  const auto sample = dataset->generate(0);

  util::CsvWriter csv(out_dir + "/fig7a.csv",
                      {"iterations", "iou", "host_seconds", "pi_seconds"});

  std::printf("FIG 7(a): IoU and Pi latency vs clustering iterations "
              "(d = %zu)\n", dim);
  std::printf("%10s %10s %12s %12s\n", "iters", "IoU", "host (s)",
              "Pi (s)");

  for (std::size_t iters = 1; iters <= max_iters; ++iters) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.dim = dim;
    config.iterations = iters;
    const auto run = bench::run_seghdc(config, *dataset, sample, options);
    const double pi_seconds = device::project_seghdc_latency(
        pi, device::SegHdcWorkload{
                .pixels = sample.image.pixel_count(),
                .dim = dim,
                .clusters = config.clusters,
                .iterations = iters,
            });
    std::printf("%10zu %10.4f %12.3f %12.1f\n", iters, run.iou,
                run.seconds, pi_seconds);
    csv.row({std::to_string(iters), util::CsvWriter::field(run.iou),
             util::CsvWriter::field(run.seconds),
             util::CsvWriter::field(pi_seconds)});
  }
  std::printf("\npaper shape: ~20 s at 1 iter -> 300+ s at 10 iters; "
              "IoU saturates by iteration ~4\n");
  std::printf("csv: %s/fig7a.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_fig7a failed: %s\n", error.what());
  return 1;
}
