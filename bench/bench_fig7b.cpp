// Reproduces paper Fig. 7(b): IoU and Raspberry-Pi latency of SegHDC on
// the sample DSB2018 image as the HV dimension sweeps 200..1000
// (10 clustering iterations).
//
// Paper shape: latency nearly flat (~90 s -> ~110 s; the per-pixel
// overhead dominates, the vectorised dimension axis is cheap); IoU is
// usable across the whole sweep with d = 800 a sweet spot.
//
//   ./bench_fig7b [--min-dim 200] [--max-dim 1000] [--step 200]
//                 [--path server|batch|one_shot] [--out out]
//
// Runs through the shared eval pipeline (default path: server).
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/device/latency_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  using namespace seghdc;
  const util::Cli cli(argc, argv);
  const auto min_dim = static_cast<std::size_t>(cli.get_int("min-dim", 200));
  const auto max_dim =
      static_cast<std::size_t>(cli.get_int("max-dim", 1000));
  const auto step = static_cast<std::size_t>(cli.get_int("step", 200));
  const auto out_dir = cli.get("out", "out");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const auto pi = device::DeviceSpec::raspberry_pi_4b();
  const bench::Scale scale = bench::Scale::host();
  const auto dataset = bench::make_dataset(bench::DatasetId::kDsb2018, scale);
  const auto sample = dataset->generate(0);

  util::CsvWriter csv(out_dir + "/fig7b.csv",
                      {"dim", "iou", "host_seconds", "pi_seconds"});

  std::printf("FIG 7(b): IoU and Pi latency vs HV dimension "
              "(10 iterations)\n");
  std::printf("%10s %10s %12s %12s\n", "dim", "IoU", "host (s)", "Pi (s)");

  for (std::size_t dim = min_dim; dim <= max_dim; dim += step) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.dim = dim;
    config.iterations = 10;
    const auto run = bench::run_seghdc(config, *dataset, sample, options);
    const double pi_seconds = device::project_seghdc_latency(
        pi, device::SegHdcWorkload{
                .pixels = sample.image.pixel_count(),
                .dim = dim,
                .clusters = config.clusters,
                .iterations = config.iterations,
            });
    std::printf("%10zu %10.4f %12.3f %12.1f\n", dim, run.iou, run.seconds,
                pi_seconds);
    csv.row({std::to_string(dim), util::CsvWriter::field(run.iou),
             util::CsvWriter::field(run.seconds),
             util::CsvWriter::field(pi_seconds)});
  }
  std::printf("\npaper shape: latency ~90 s -> ~110 s across the sweep "
              "(near-flat); d = 800 a good operating point\n");
  std::printf("csv: %s/fig7b.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_fig7b failed: %s\n", error.what());
  return 1;
}
