// Reproduces paper Fig. 8: prediction masks of the sample DSB2018 image
// after 1, 2, 3 and 4 clustering iterations (d = 10000). The paper's
// observation: after 1 iteration almost all pixels share one label; from
// 2 iterations on the mask is close to the ground truth.
//
//   ./bench_fig8 [--dim 10000] [--path server|batch|one_shot]
//                [--out out/fig8]
//
// Runs through the shared eval pipeline (default path: server).
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/imaging/pnm.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  using namespace seghdc;
  const util::Cli cli(argc, argv);
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 10000));
  const auto out_dir = cli.get("out", "out/fig8");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const bench::Scale scale = bench::Scale::host();
  const auto dataset = bench::make_dataset(bench::DatasetId::kDsb2018, scale);
  const auto sample = dataset->generate(0);

  img::write_ppm(sample.image, out_dir + "/image.ppm");
  img::write_pgm(sample.mask, out_dir + "/truth.pgm");

  util::CsvWriter csv(
      out_dir + "/fig8.csv",
      {"iterations", "iou", "largest_cluster_fraction"});

  std::printf("FIG 8: prediction masks across iterations (d = %zu)\n", dim);
  std::printf("%10s %10s %26s\n", "iters", "IoU", "largest-cluster share");

  for (std::size_t iters = 1; iters <= 4; ++iters) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.dim = dim;
    config.iterations = iters;

    const auto run = bench::run_seghdc(config, *dataset, sample, options);

    std::uint64_t largest = 0;
    for (const auto count : run.cluster_pixel_counts) {
      largest = std::max(largest, count);
    }
    const double share = static_cast<double>(largest) /
                         static_cast<double>(sample.image.pixel_count());

    img::write_pgm(run.mask, out_dir + "/iteration_" +
                                 std::to_string(iters) + ".pgm");
    std::printf("%10zu %10.4f %25.1f%%\n", iters, run.iou,
                share * 100.0);
    csv.row({std::to_string(iters), util::CsvWriter::field(run.iou),
             util::CsvWriter::field(share)});
  }
  std::printf("\npaper shape: iteration 1 assigns almost all pixels one "
              "label; >= 2 iterations close to ground truth\n");
  std::printf("masks written under %s/\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_fig8 failed: %s\n", error.what());
  return 1;
}
