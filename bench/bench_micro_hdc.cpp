// google-benchmark micro benches for the HDC substrate and the SegHDC
// pipeline stages — the op-level costs underlying the Table II model.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "src/core/color_encoder.hpp"
#include "src/core/position_encoder.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;

void BM_HvXor(benchmark::State& state) {
  util::Rng rng(1);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HvXor)->Arg(800)->Arg(2000)->Arg(10000);

void BM_HvHamming(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::HyperVector::hamming(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HvHamming)->Arg(800)->Arg(2000)->Arg(10000);

// Definitional per-bit baseline: one bit extraction and compare per
// dimension. The production path was already word-parallel
// (HyperVector::hamming); this loop exists to quantify what
// word-parallelism is worth, not as the previous implementation.
void BM_HammingPerBitReference(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  const auto aw = a.words();
  const auto bw = b.words();
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      count += ((aw[i / 64] ^ bw[i / 64]) >> (i % 64)) & 1;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HammingPerBitReference)->Arg(800)->Arg(2000)->Arg(10000);

// Fused XOR+popcount over contiguous HvBlock rows — the production
// clustering path. Same inputs and item accounting as the reference
// above, so the items/s ratio is the kernel speedup.
void BM_HammingFusedKernel(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<hdc::HyperVector> hvs{hdc::HyperVector::random(dim, rng),
                                    hdc::HyperVector::random(dim, rng)};
  const auto block = hdc::HvBlock::from_hvs(hvs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdc::kernels::hamming_words(block.row(0), block.row(1)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HammingFusedKernel)->Arg(800)->Arg(2000)->Arg(10000);

// Cosine distance against an integer centroid, per-bit reference: test
// every bit, sum the count under it when set. Reads the counts span
// directly (like the fused kernel does) so the ratio isolates the
// bit-at-a-time iteration, not call overhead.
void BM_CosinePerBitReference(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  const auto counts = acc.counts();
  const auto words = probe.words();
  const double point_norm =
      std::sqrt(static_cast<double>(probe.popcount()));
  const double centroid_norm = acc.norm();
  for (auto _ : state) {
    std::int64_t dot = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      if ((words[i / 64] >> (i % 64)) & 1) {
        dot += counts[i];
      }
    }
    benchmark::DoNotOptimize(
        1.0 - static_cast<double>(dot) / (point_norm * centroid_norm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_CosinePerBitReference)->Arg(800)->Arg(2000)->Arg(10000);

// Fused word-span cosine kernel — the assignment-step inner loop.
void BM_CosineFusedKernel(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  const double point_norm =
      std::sqrt(static_cast<double>(probe.popcount()));
  const double centroid_norm = acc.norm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::kernels::cosine_distance_words(
        acc.counts(), centroid_norm, probe.words(), point_norm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_CosineFusedKernel)->Arg(800)->Arg(2000)->Arg(10000);

void BM_AccumulatorDot(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.dot(probe));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_AccumulatorDot)->Arg(800)->Arg(2000)->Arg(10000);

void BM_PositionEncoderBuild(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(4);
    const core::PositionEncoder encoder(
        core::PositionEncoderConfig{
            .dim = dim, .rows = 256, .cols = 320,
            .encoding = core::PositionEncoding::kBlockDecayManhattan,
            .alpha = 0.2, .beta = 26},
        rng);
    benchmark::DoNotOptimize(encoder.distinct_rows());
  }
}
BENCHMARK(BM_PositionEncoderBuild)->Arg(800)->Arg(10000);

void BM_ColorEncoderBuild(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(5);
    const core::ColorEncoder encoder(
        core::ColorEncoderConfig{.dim = dim, .channels = 3}, rng);
    benchmark::DoNotOptimize(encoder.channel_dim(0));
  }
}
BENCHMARK(BM_ColorEncoderBuild)->Arg(800)->Arg(10000);

void BM_SegHdcEncodeImage(benchmark::State& state) {
  const data::Dsb2018Generator dataset;
  const auto sample = dataset.generate(0);
  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(state.range(0));
  config.beta = 26;
  config.color_quantization_shift = 2;
  const core::SegHdc seghdc(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seghdc.segment(sample.image).unique_points);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(sample.image.pixel_count()));
}
BENCHMARK(BM_SegHdcEncodeImage)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
