// google-benchmark micro benches for the HDC substrate and the SegHDC
// pipeline stages — the op-level costs underlying the Table II model.
#include <benchmark/benchmark.h>

#include "src/core/color_encoder.hpp"
#include "src/core/position_encoder.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;

void BM_HvXor(benchmark::State& state) {
  util::Rng rng(1);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HvXor)->Arg(800)->Arg(2000)->Arg(10000);

void BM_HvHamming(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::HyperVector::hamming(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HvHamming)->Arg(800)->Arg(2000)->Arg(10000);

void BM_AccumulatorDot(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.dot(probe));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_AccumulatorDot)->Arg(800)->Arg(2000)->Arg(10000);

void BM_PositionEncoderBuild(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(4);
    const core::PositionEncoder encoder(
        core::PositionEncoderConfig{
            .dim = dim, .rows = 256, .cols = 320,
            .encoding = core::PositionEncoding::kBlockDecayManhattan,
            .alpha = 0.2, .beta = 26},
        rng);
    benchmark::DoNotOptimize(encoder.distinct_rows());
  }
}
BENCHMARK(BM_PositionEncoderBuild)->Arg(800)->Arg(10000);

void BM_ColorEncoderBuild(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(5);
    const core::ColorEncoder encoder(
        core::ColorEncoderConfig{.dim = dim, .channels = 3}, rng);
    benchmark::DoNotOptimize(encoder.channel_dim(0));
  }
}
BENCHMARK(BM_ColorEncoderBuild)->Arg(800)->Arg(10000);

void BM_SegHdcEncodeImage(benchmark::State& state) {
  const data::Dsb2018Generator dataset;
  const auto sample = dataset.generate(0);
  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(state.range(0));
  config.beta = 26;
  config.color_quantization_shift = 2;
  const core::SegHdc seghdc(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seghdc.segment(sample.image).unique_points);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(sample.image.pixel_count()));
}
BENCHMARK(BM_SegHdcEncodeImage)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
