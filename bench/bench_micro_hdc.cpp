// google-benchmark micro benches for the HDC substrate and the SegHDC
// pipeline stages — the op-level costs underlying the Table II model.
//
//   ./bench_micro_hdc [--backend scalar|harley-seal|avx2|neon|auto]
//                     [google-benchmark flags...]
//
// On top of the dispatched-path benches below, a per-backend sweep
// (BM_HammingBackend/<name>, BM_CosinePlanesBackend/<name>) is
// registered for every backend available on this CPU, so one run
// compares scalar vs harley-seal vs AVX2/NEON side by side. --backend
// additionally forces the process-wide dispatch (what the BM_*Fused*
// benches and the pipeline benches run on); the report header records
// the selection and the CPU features either way.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/color_encoder.hpp"
#include "src/core/position_encoder.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/util/cli.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;

void BM_HvXor(benchmark::State& state) {
  util::Rng rng(1);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HvXor)->Arg(800)->Arg(2000)->Arg(10000);

void BM_HvHamming(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::HyperVector::hamming(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HvHamming)->Arg(800)->Arg(2000)->Arg(10000);

// Definitional per-bit baseline: one bit extraction and compare per
// dimension. The production path was already word-parallel
// (HyperVector::hamming); this loop exists to quantify what
// word-parallelism is worth, not as the previous implementation.
void BM_HammingPerBitReference(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::HyperVector::random(dim, rng);
  const auto b = hdc::HyperVector::random(dim, rng);
  const auto aw = a.words();
  const auto bw = b.words();
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      count += ((aw[i / 64] ^ bw[i / 64]) >> (i % 64)) & 1;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HammingPerBitReference)->Arg(800)->Arg(2000)->Arg(10000);

// Fused XOR+popcount over contiguous HvBlock rows — the production
// clustering path. Same inputs and item accounting as the reference
// above, so the items/s ratio is the kernel speedup.
void BM_HammingFusedKernel(benchmark::State& state) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<hdc::HyperVector> hvs{hdc::HyperVector::random(dim, rng),
                                    hdc::HyperVector::random(dim, rng)};
  const auto block = hdc::HvBlock::from_hvs(hvs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdc::kernels::hamming_words(block.row(0), block.row(1)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HammingFusedKernel)->Arg(800)->Arg(2000)->Arg(10000);

// Cosine distance against an integer centroid, per-bit reference: test
// every bit, sum the count under it when set. Reads the counts span
// directly (like the fused kernel does) so the ratio isolates the
// bit-at-a-time iteration, not call overhead.
void BM_CosinePerBitReference(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  const auto counts = acc.counts();
  const auto words = probe.words();
  const double point_norm =
      std::sqrt(static_cast<double>(probe.popcount()));
  const double centroid_norm = acc.norm();
  for (auto _ : state) {
    std::int64_t dot = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      if ((words[i / 64] >> (i % 64)) & 1) {
        dot += counts[i];
      }
    }
    benchmark::DoNotOptimize(
        1.0 - static_cast<double>(dot) / (point_norm * centroid_norm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_CosinePerBitReference)->Arg(800)->Arg(2000)->Arg(10000);

// Bit-serial word-span cosine kernel: the pre-CountPlanes assignment
// formulation (one dependent add per set probe bit), kept as the
// baseline the word-blocked plane kernel below is measured against.
void BM_CosineFusedKernel(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  const double point_norm =
      std::sqrt(static_cast<double>(probe.popcount()));
  const double centroid_norm = acc.norm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::kernels::cosine_distance_words(
        acc.counts(), centroid_norm, probe.words(), point_norm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_CosineFusedKernel)->Arg(800)->Arg(2000)->Arg(10000);

void BM_AccumulatorDot(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng));
  }
  const auto probe = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.dot(probe));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_AccumulatorDot)->Arg(800)->Arg(2000)->Arg(10000);

void BM_PositionEncoderBuild(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(4);
    const core::PositionEncoder encoder(
        core::PositionEncoderConfig{
            .dim = dim, .rows = 256, .cols = 320,
            .encoding = core::PositionEncoding::kBlockDecayManhattan,
            .alpha = 0.2, .beta = 26},
        rng);
    benchmark::DoNotOptimize(encoder.distinct_rows());
  }
}
BENCHMARK(BM_PositionEncoderBuild)->Arg(800)->Arg(10000);

void BM_ColorEncoderBuild(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(5);
    const core::ColorEncoder encoder(
        core::ColorEncoderConfig{.dim = dim, .channels = 3}, rng);
    benchmark::DoNotOptimize(encoder.channel_dim(0));
  }
}
BENCHMARK(BM_ColorEncoderBuild)->Arg(800)->Arg(10000);

void BM_SegHdcEncodeImage(benchmark::State& state) {
  const data::Dsb2018Generator dataset;
  const auto sample = dataset.generate(0);
  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(state.range(0));
  config.beta = 26;
  config.color_quantization_shift = 2;
  const core::SegHdc seghdc(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seghdc.segment(sample.image).unique_points);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(sample.image.pixel_count()));
}
BENCHMARK(BM_SegHdcEncodeImage)->Arg(800)->Unit(benchmark::kMillisecond);

// Word-blocked cosine dot through the dispatched backend — the
// production assignment-step inner loop: plane_count() fused
// AND+popcount passes against a realistic centroid snapshot (weighted
// adds, ~12 planes). Items = dim * planes, the packed bits the kernel
// actually streams, so items/s is directly comparable with the Hamming
// kernels: "cosine within 2x of Hamming" means each plane pass runs at
// (close to) Hamming-pass speed, i.e. cosine assignment has become
// bandwidth-bound.
void BM_CosinePlanesKernel(benchmark::State& state) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng),
            static_cast<std::uint32_t>(1 + (i * 37) % 400));
  }
  hdc::kernels::CountPlanes planes;
  acc.snapshot_planes(planes);
  const auto probe = hdc::HyperVector::random(dim, rng);
  const double point_norm =
      std::sqrt(static_cast<double>(probe.popcount()));
  const double centroid_norm = acc.norm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::kernels::cosine_distance_planes(
        planes, centroid_norm, probe.words(), point_norm));
  }
  state.counters["planes"] =
      static_cast<double>(planes.plane_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim) *
                          static_cast<std::int64_t>(planes.plane_count()));
}
BENCHMARK(BM_CosinePlanesKernel)->Arg(800)->Arg(2000)->Arg(10000);

// --- Per-backend sweep: the same Hamming / plane-cosine kernels run
// against every backend available on this CPU, bypassing dispatch, so
// one report compares them directly (the acceptance gate: best backend
// >= 2x scalar on Hamming items/s, plane-cosine within 2x of Hamming).
// ---

void BM_HammingBackend(benchmark::State& state,
                       const hdc::simd::KernelBackend* backend) {
  util::Rng rng(2);
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<hdc::HyperVector> hvs{hdc::HyperVector::random(dim, rng),
                                    hdc::HyperVector::random(dim, rng)};
  const auto block = hdc::HvBlock::from_hvs(hvs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->hamming(block.row(0), block.row(1)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}

// Weighted centroid accumulate through each backend: the K-Means
// update-step primitive (Accumulator::add). The scalar slot is the old
// production set-bit walk, so BM_AccumulateBackend/scalar vs the SIMD
// backends is exactly what dispatching the centroid update bought.
void BM_AccumulateBackend(benchmark::State& state,
                          const hdc::simd::KernelBackend* backend) {
  util::Rng rng(7);
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> counts(dim, 0);
  const auto probe = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend->accumulate_words(counts, probe.words(), 3));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim));
}

void BM_CosinePlanesBackend(benchmark::State& state,
                            const hdc::simd::KernelBackend* backend) {
  util::Rng rng(3);
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::Accumulator acc(dim);
  for (int i = 0; i < 32; ++i) {
    acc.add(hdc::HyperVector::random(dim, rng),
            static_cast<std::uint32_t>(1 + (i * 37) % 400));
  }
  hdc::kernels::CountPlanes planes;
  acc.snapshot_planes(planes);
  const auto probe = hdc::HyperVector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdc::kernels::dot_planes(planes, probe.words(), *backend));
  }
  state.counters["planes"] =
      static_cast<double>(planes.plane_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim) *
                          static_cast<std::int64_t>(planes.plane_count()));
}

void register_backend_sweeps() {
  for (const auto* backend : hdc::simd::registered_backends()) {
    if (!backend->available()) {
      continue;
    }
    const std::string name(backend->name);
    benchmark::RegisterBenchmark(("BM_HammingBackend/" + name).c_str(),
                                 BM_HammingBackend, backend)
        ->Arg(800)
        ->Arg(2000)
        ->Arg(10000);
    benchmark::RegisterBenchmark(("BM_CosinePlanesBackend/" + name).c_str(),
                                 BM_CosinePlanesBackend, backend)
        ->Arg(800)
        ->Arg(2000)
        ->Arg(10000);
    benchmark::RegisterBenchmark(("BM_AccumulateBackend/" + name).c_str(),
                                 BM_AccumulateBackend, backend)
        ->Arg(800)
        ->Arg(2000)
        ->Arg(10000);
  }
}

}  // namespace

int main(int argc, char** argv) try {
  // --backend is ours (parsed with util::Cli); everything else is
  // forwarded to google-benchmark, so the standard --benchmark_* flags
  // keep working.
  const seghdc::util::Cli cli(argc, argv);
  const std::string backend_flag = cli.get("backend", "");
  std::vector<char*> bench_argv;
  bench_argv.reserve(static_cast<std::size_t>(argc));
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--backend") {
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        ++i;  // skip the value token
      }
      continue;
    }
    if (arg.rfind("--backend=", 0) == 0) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());

  if (!backend_flag.empty()) {
    seghdc::hdc::simd::force_backend(backend_flag);
  }
  std::printf("kernel backend: %s | cpu: %s | registered:",
              seghdc::hdc::simd::active_backend().name,
              seghdc::hdc::simd::cpu_feature_string().c_str());
  for (const auto* backend : seghdc::hdc::simd::registered_backends()) {
    std::printf(" %s%s", backend->name,
                backend->available() ? "" : "(unavailable)");
  }
  std::printf("\n");

  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  register_backend_sweeps();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_micro_hdc failed: %s\n", error.what());
  return 1;
}
