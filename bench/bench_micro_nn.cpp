// google-benchmark micro benches for the NN runtime backing the CNN
// baseline: conv forward/backward and batch-norm throughput. The MAC
// rates measured here ground the device model's assumption that the
// baseline's cost is conv-GEMM-bound.
#include <benchmark/benchmark.h>

#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/loss.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;

void BM_Conv3x3Forward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Conv2d conv(channels, channels, 3, rng);
  nn::Tensor input(channels, 64, 80);
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.next_double());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(input).size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(nn::Conv2d::forward_macs(
          channels, channels, 3, 64, 80)));
}
BENCHMARK(BM_Conv3x3Forward)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Conv3x3Backward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, rng);
  nn::Tensor input(channels, 64, 80);
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.next_double());
  }
  const nn::Tensor output = conv.forward(input);
  nn::Tensor grad(output.channels(), output.height(), output.width(), 1e-3F);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(grad).size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(2 * nn::Conv2d::forward_macs(
                                        channels, channels, 3, 64, 80)));
}
BENCHMARK(BM_Conv3x3Backward)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_BatchNormForward(benchmark::State& state) {
  util::Rng rng(3);
  nn::BatchNorm2d bn(32);
  nn::Tensor input(32, 64, 80);
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.next_gaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn.forward(input).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_BatchNormForward);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  util::Rng rng(4);
  nn::Tensor logits(32, 64, 80);
  for (auto& v : logits.values()) {
    v = static_cast<float>(rng.next_gaussian());
  }
  const auto targets = nn::argmax_labels(logits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::softmax_cross_entropy(logits, targets).loss);
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
