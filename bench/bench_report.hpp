// Machine-readable bench result emission: one small JSON file per bench
// run (BENCH_serving.json / BENCH_throughput.json) carrying enough
// provenance to compare numbers across commits and hosts — git SHA,
// kernel backend, CPU features — plus the headline throughput and the
// submit-to-done latency percentiles read back out of the serving
// stack's obs::MetricsRegistry (ServerStats.latency / an obs::Histogram
// are views over it, so the JSON and the Prometheus exposition agree by
// construction).
#ifndef SEGHDC_BENCH_BENCH_REPORT_HPP
#define SEGHDC_BENCH_BENCH_REPORT_HPP

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/eval/suite.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/obs/metrics.hpp"

// Injected by bench/CMakeLists.txt from `git rev-parse` at configure
// time (re-run cmake after committing to refresh it).
#ifndef SEGHDC_GIT_SHA
#define SEGHDC_GIT_SHA "unknown"
#endif

namespace seghdc::bench {

/// Writes the bench-result JSON. `extra` entries are appended verbatim
/// as `"key": value` pairs, so the value must already be rendered JSON
/// (a number, a quoted string, ...). Throws std::runtime_error when the
/// file cannot be opened.
inline void write_bench_json(
    const std::string& path, const std::string& tool, double images_per_sec,
    const obs::LatencyPercentiles& latency,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("write_bench_json: cannot open '" + path + "'");
  }
  std::fprintf(out,
               "{\n"
               "  \"tool\": \"%s\",\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"kernel_backend\": \"%s\",\n"
               "  \"cpu_features\": \"%s\",\n"
               "  \"images_per_sec\": %.4f,\n"
               "  \"latency_ms\": {\"p50\": %.6f, \"p95\": %.6f, "
               "\"p99\": %.6f, \"window_count\": %llu, \"count\": %llu}",
               tool.c_str(), SEGHDC_GIT_SHA,
               hdc::simd::active_backend().name,
               hdc::simd::cpu_feature_string().c_str(), images_per_sec,
               latency.p50_seconds * 1e3, latency.p95_seconds * 1e3,
               latency.p99_seconds * 1e3,
               static_cast<unsigned long long>(latency.window_count),
               static_cast<unsigned long long>(latency.count));
  for (const auto& [key, value] : extra) {
    std::fprintf(out, ",\n  \"%s\": %s", key.c_str(), value.c_str());
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("bench json -> %s\n", path.c_str());
}

/// Writes the dataset-eval JSON (EVAL_table1.json, EVAL_eval.json, ...):
/// the same provenance header as write_bench_json plus one object per
/// evaluated suite — dataset, method, execution path, mIoU aggregates,
/// the chained label fingerprint (decimal string: it is a full 64-bit
/// value), wall clock, latency percentiles, and the measured op counts.
/// `extra` entries are appended verbatim like in write_bench_json.
inline void write_eval_json(
    const std::string& path, const std::string& tool,
    const std::vector<eval::SuiteResult>& suites,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("write_eval_json: cannot open '" + path + "'");
  }
  std::fprintf(out,
               "{\n"
               "  \"tool\": \"%s\",\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"kernel_backend\": \"%s\",\n"
               "  \"cpu_features\": \"%s\",\n"
               "  \"suites\": [",
               tool.c_str(), SEGHDC_GIT_SHA,
               hdc::simd::active_backend().name,
               hdc::simd::cpu_feature_string().c_str());
  for (std::size_t i = 0; i < suites.size(); ++i) {
    const auto& s = suites[i];
    const auto ops = s.total_ops();
    const double images_per_sec =
        s.wall_seconds > 0.0
            ? static_cast<double>(s.records.size()) / s.wall_seconds
            : 0.0;
    std::fprintf(
        out,
        "%s\n"
        "    {\"dataset\": \"%s\", \"method\": \"%s\", \"path\": \"%s\",\n"
        "     \"images\": %zu, \"mean_iou\": %.6f, \"min_iou\": %.6f, "
        "\"max_iou\": %.6f, \"stddev_iou\": %.6f,\n"
        "     \"labels_hash\": \"%llu\", \"wall_seconds\": %.6f, "
        "\"images_per_sec\": %.4f, \"mean_seconds\": %.6f,\n"
        "     \"latency_ms\": {\"p50\": %.6f, \"p95\": %.6f, "
        "\"p99\": %.6f, \"window_count\": %llu, \"count\": %llu},\n"
        "     \"ops\": {\"distance_evals\": %llu, "
        "\"candidates_pruned\": %llu, \"words_scanned\": %llu, "
        "\"total_element_ops\": %llu}}",
        i == 0 ? "" : ",", s.dataset.c_str(), s.method.c_str(),
        s.path.c_str(), s.records.size(), s.mean_iou(), s.min_iou(),
        s.max_iou(), s.stddev_iou(),
        static_cast<unsigned long long>(s.labels_hash), s.wall_seconds,
        images_per_sec, s.mean_seconds(), s.latency.p50_seconds * 1e3,
        s.latency.p95_seconds * 1e3, s.latency.p99_seconds * 1e3,
        static_cast<unsigned long long>(s.latency.window_count),
        static_cast<unsigned long long>(s.latency.count),
        static_cast<unsigned long long>(ops.distance_evals),
        static_cast<unsigned long long>(ops.candidates_pruned),
        static_cast<unsigned long long>(ops.words_scanned),
        static_cast<unsigned long long>(ops.total_element_ops()));
  }
  std::fprintf(out, "\n  ]");
  for (const auto& [key, value] : extra) {
    std::fprintf(out, ",\n  \"%s\": %s", key.c_str(), value.c_str());
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("eval json -> %s\n", path.c_str());
}

}  // namespace seghdc::bench

#endif  // SEGHDC_BENCH_BENCH_REPORT_HPP
