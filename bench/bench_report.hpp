// Machine-readable bench result emission: one small JSON file per bench
// run (BENCH_serving.json / BENCH_throughput.json) carrying enough
// provenance to compare numbers across commits and hosts — git SHA,
// kernel backend, CPU features — plus the headline throughput and the
// submit-to-done latency percentiles read back out of the serving
// stack's obs::MetricsRegistry (ServerStats.latency / an obs::Histogram
// are views over it, so the JSON and the Prometheus exposition agree by
// construction).
#ifndef SEGHDC_BENCH_BENCH_REPORT_HPP
#define SEGHDC_BENCH_BENCH_REPORT_HPP

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/obs/metrics.hpp"

// Injected by bench/CMakeLists.txt from `git rev-parse` at configure
// time (re-run cmake after committing to refresh it).
#ifndef SEGHDC_GIT_SHA
#define SEGHDC_GIT_SHA "unknown"
#endif

namespace seghdc::bench {

/// Writes the bench-result JSON. `extra` entries are appended verbatim
/// as `"key": value` pairs, so the value must already be rendered JSON
/// (a number, a quoted string, ...). Throws std::runtime_error when the
/// file cannot be opened.
inline void write_bench_json(
    const std::string& path, const std::string& tool, double images_per_sec,
    const obs::LatencyPercentiles& latency,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("write_bench_json: cannot open '" + path + "'");
  }
  std::fprintf(out,
               "{\n"
               "  \"tool\": \"%s\",\n"
               "  \"git_sha\": \"%s\",\n"
               "  \"kernel_backend\": \"%s\",\n"
               "  \"cpu_features\": \"%s\",\n"
               "  \"images_per_sec\": %.4f,\n"
               "  \"latency_ms\": {\"p50\": %.6f, \"p95\": %.6f, "
               "\"p99\": %.6f, \"window_count\": %llu, \"count\": %llu}",
               tool.c_str(), SEGHDC_GIT_SHA,
               hdc::simd::active_backend().name,
               hdc::simd::cpu_feature_string().c_str(), images_per_sec,
               latency.p50_seconds * 1e3, latency.p95_seconds * 1e3,
               latency.p99_seconds * 1e3,
               static_cast<unsigned long long>(latency.window_count),
               static_cast<unsigned long long>(latency.count));
  for (const auto& [key, value] : extra) {
    std::fprintf(out, ",\n  \"%s\": %s", key.c_str(), value.c_str());
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("bench json -> %s\n", path.c_str());
}

}  // namespace seghdc::bench

#endif  // SEGHDC_BENCH_BENCH_REPORT_HPP
