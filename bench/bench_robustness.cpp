// Robustness ablation: SegHDC IoU under random bit errors in the
// encoded pixel HVs — the HDC robustness property the paper leans on
// (Section I, refs [18], [22]: "HDC has shown its superiority in
// robustness ... for classification tasks"). The holographic encoding
// should degrade IoU gracefully well past error rates that would
// destroy a conventional representation.
//
//   ./bench_robustness [--dim 2000] [--images 4]
//                      [--path server|batch|one_shot] [--out out]
//
// Runs through the shared eval pipeline (default path: server).
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  using namespace seghdc;
  const util::Cli cli(argc, argv);
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 2000));
  const auto images = static_cast<std::size_t>(cli.get_int("images", 4));
  const auto out_dir = cli.get("out", "out");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const bench::Scale scale = bench::Scale::host();
  const auto dataset = bench::make_dataset(bench::DatasetId::kDsb2018, scale);

  util::CsvWriter csv(out_dir + "/robustness.csv",
                      {"bit_error_rate", "mean_iou", "iou_drop_pp"});

  std::printf("ROBUSTNESS: SegHDC IoU vs pixel-HV bit-error rate "
              "(DSB2018, d = %zu, %zu images)\n", dim, images);
  std::printf("%16s %10s %12s\n", "bit error rate", "IoU", "drop (pp)");

  double clean_iou = 0.0;
  for (const double rate : {0.0, 0.001, 0.01, 0.05, 0.10, 0.20, 0.30}) {
    auto config = bench::seghdc_config_for(*dataset, scale);
    config.dim = dim;
    config.bit_error_rate = rate;
    const auto suite =
        eval::evaluate_seghdc(*dataset, images, config, options);
    const double iou = suite.mean_iou();
    if (rate == 0.0) {
      clean_iou = iou;
    }
    std::printf("%15.1f%% %10.4f %12.1f\n", rate * 100.0, iou,
                (clean_iou - iou) * 100.0);
    csv.row({util::CsvWriter::field(rate), util::CsvWriter::field(iou),
             util::CsvWriter::field((clean_iou - iou) * 100.0)});
  }
  std::printf("\nexpected shape: graceful degradation — single-digit IoU "
              "loss at 10%% bit errors\n");
  std::printf("csv: %s/robustness.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_robustness failed: %s\n", error.what());
  return 1;
}
