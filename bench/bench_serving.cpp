// Async serving throughput + tail latency: SegHdcServer (the pipelined
// request-level path) vs SegHdcSession::segment_many (the batch/barrier
// path) over the same DSB2018-like traffic.
//
//   ./bench_serving [--images 24] [--width 128] [--height 96]
//                   [--dim 1000] [--beta 8] [--clusters 2]
//                   [--iterations 6] [--quantize 2] [--seed 42]
//                   [--threads 1,2,4] [--queue 0,4]
//                   [--encode-workers 2] [--cluster-workers 2]
//                   [--repeats 3] [--csv]
//                   [--backend scalar|harley-seal|avx2|neon|auto]
//                   [--tenants N] [--max-in-flight-total 0] [--stream]
//
// For each pool size T in --threads, the barrier path `many@T` is timed
// first; then for each queue capacity C in --queue (0 = unbounded) the
// server path `serve@T/qC` submits the whole batch asynchronously and
// waits for every future. Server rows additionally report the
// per-request submit-to-completion p50/p95/p99 from the ServerStats
// snapshot — the tail the barrier path cannot even measure, because its
// callers block on the whole batch.
//
// Every row's combined label hash (in submit order) is checked against
// the sequential session loop; ANY divergence between the server and
// segment_many paths is a hard failure (exit 1). The speedup table of a
// wrong result is worthless.
//
// --tenants N switches to the fleet bench: one SegHdcFleet carrying N
// tenants (configs differing by seed) on a shared pool, every tenant
// fed the whole batch with submissions interleaved across tenants. For
// each pool size T and per-tenant queue capacity C, the row reports
// fleet throughput and admission-to-done tail latency; every tenant's
// hash is checked against its own solo sequential loop, and ANY
// per-tenant divergence is a hard failure (exit 1) — multi-tenancy must
// change who waits, never what anyone gets.
//
// --stream switches to the temporal bench: a static-prefix / pan /
// static-tail frame sequence (the warm-start shape) segmented three
// ways per pool size — cold per-frame, session segment_stream, and a
// server stream handle. Hard gates (exit 1): frame 0 of every stream
// is hash-equal to the cold reference, the session-stream and
// server-stream hashes are identical at every pool size, the stream
// hash itself is identical across pool sizes, and a cold re-run AFTER
// streaming still matches the cold reference — warm-start drift is
// opt-in per stream, never a side effect on the cold path.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "src/core/session.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/fleet.hpp"
#include "src/serve/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace seghdc;

std::uint64_t batch_hash(const std::vector<core::SegmentationResult>& results) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

struct Row {
  std::string name;
  double seconds = 0.0;
  std::uint64_t hash = 0;
  bool has_latency = false;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  serve::LatencyPercentiles latency;
};

/// The fleet bench: N tenants on one shared pool, every tenant fed the
/// whole batch, per-tenant hashes gated against each tenant's own solo
/// sequential loop. Returns the process exit code.
int run_fleet_bench(const util::Cli& cli, const core::SegHdcConfig& base,
                    const std::vector<img::ImageU8>& images,
                    const std::vector<std::size_t>& thread_list,
                    const std::vector<std::size_t>& queue_list,
                    std::size_t tenant_count, std::size_t repeats,
                    bool csv) {
  const auto encode_workers =
      static_cast<std::size_t>(cli.get_int("encode-workers", 2));
  const auto cluster_workers =
      static_cast<std::size_t>(cli.get_int("cluster-workers", 2));
  const auto max_in_flight_total =
      static_cast<std::size_t>(cli.get_int("max-in-flight-total", 0));

  // Tenant configs differ by seed, so a cross-tenant mix-up cannot
  // hash-collide; each tenant's answer key is its own sequential loop.
  std::vector<core::SegHdcConfig> configs;
  std::vector<std::uint64_t> expected;
  configs.reserve(tenant_count);
  expected.reserve(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    core::SegHdcConfig config = base;
    config.seed = base.seed + t;
    util::ThreadPool one(1);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&one});
    std::vector<core::SegmentationResult> results;
    results.reserve(images.size());
    for (const auto& image : images) {
      results.push_back(session.segment(image));
    }
    configs.push_back(config);
    expected.push_back(batch_hash(results));
  }

  bool hashes_match = true;
  std::vector<Row> rows;
  serve::LatencyPercentiles last_latency;
  for (const std::size_t threads : thread_list) {
    util::ThreadPool pool(threads);
    for (const std::size_t capacity : queue_list) {
      Row row;
      row.name = "fleet@" + std::to_string(threads) + "/q" +
                 (capacity == 0 ? std::string("inf")
                                : std::to_string(capacity)) +
                 "/x" + std::to_string(tenant_count);
      row.has_latency = true;
      for (std::size_t r = 0; r < repeats; ++r) {
        serve::FleetOptions fleet_options;
        fleet_options.pool = &pool;
        fleet_options.max_in_flight_total = max_in_flight_total;
        serve::SegHdcFleet fleet(fleet_options);
        std::vector<std::string> names;
        for (std::size_t t = 0; t < tenant_count; ++t) {
          names.push_back("tenant" + std::to_string(t));
          serve::TenantOptions tenant_options;
          tenant_options.max_queued = capacity;
          tenant_options.encode_workers = encode_workers;
          tenant_options.cluster_workers = cluster_workers;
          fleet.add_tenant(names.back(), configs[t], tenant_options);
        }
        const util::Stopwatch watch;
        std::vector<std::vector<std::future<core::SegmentationResult>>>
            futures(tenant_count);
        for (const auto& image : images) {
          for (std::size_t t = 0; t < tenant_count; ++t) {
            futures[t].push_back(fleet.submit(names[t], image));
          }
        }
        std::uint64_t combined = 14695981039346656037ULL;
        for (std::size_t t = 0; t < tenant_count; ++t) {
          std::vector<core::SegmentationResult> results;
          results.reserve(images.size());
          for (auto& future : futures[t]) {
            results.push_back(future.get());
          }
          const std::uint64_t hash = batch_hash(results);
          if (hash != expected[t]) {
            hashes_match = false;
            std::fprintf(stderr,
                         "FAIL: %s tenant%zu hash %016llx != solo "
                         "%016llx\n",
                         row.name.c_str(), t,
                         static_cast<unsigned long long>(hash),
                         static_cast<unsigned long long>(expected[t]));
          }
          combined ^= hash;
        }
        const double seconds = watch.seconds();
        row.hash = combined;
        if (r == 0 || seconds < row.seconds) {
          row.seconds = seconds;
          const auto stats = fleet.stats();
          row.p50_ms = stats.latency.p50_seconds * 1e3;
          row.p95_ms = stats.latency.p95_seconds * 1e3;
          row.p99_ms = stats.latency.p99_seconds * 1e3;
          last_latency = stats.latency;
        }
      }
      rows.push_back(row);
    }
  }

  const double total =
      static_cast<double>(images.size()) * static_cast<double>(tenant_count);
  if (csv) {
    std::printf("mode,seconds,images_per_sec,p50_ms,p95_ms,p99_ms,hash\n");
  } else {
    std::printf("%-16s %10s %12s %9s %9s %9s  %s\n", "mode", "seconds",
                "images/sec", "p50 ms", "p95 ms", "p99 ms",
                "combined hash");
  }
  for (const auto& row : rows) {
    const double ips = total / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%.2f,%.2f,%.2f,%016llx\n", row.name.c_str(),
                  row.seconds, ips, row.p50_ms, row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash));
    } else {
      std::printf("%-16s %10.4f %12.2f %9.2f %9.2f %9.2f  %016llx\n",
                  row.name.c_str(), row.seconds, ips, row.p50_ms,
                  row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash));
    }
  }
  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: at least one tenant's label hashes diverge from "
                 "its solo sequential loop\n");
    return 1;
  }
  // Honest window note: percentiles cover the sliding window, the mean
  // covers the lifetime count — say which is which.
  std::printf("latency percentiles over last %llu of %llu requests "
              "(fastest pass)\n",
              static_cast<unsigned long long>(last_latency.window_count),
              static_cast<unsigned long long>(last_latency.count));
  std::printf("all %zu tenants bit-identical to their solo loops at every "
              "pool size and queue capacity\n",
              tenant_count);
  return 0;
}

/// One synthetic stream frame: gradient background, a fixed noisy
/// texture row, and a dark square at `square_x` (what moves during the
/// pan phase).
img::ImageU8 stream_frame(std::size_t width, std::size_t height,
                          std::size_t square_x) {
  img::ImageU8 frame(width, height, 3);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const auto base = static_cast<std::uint8_t>(160 + (y * 40) / height);
      frame.at(x, y, 0) = base;
      frame.at(x, y, 1) = base;
      frame.at(x, y, 2) = static_cast<std::uint8_t>(base - 10);
    }
  }
  for (std::size_t x = 0; x < width; ++x) {
    frame.at(x, 0, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  const std::size_t side = height / 4;
  for (std::size_t dy = 0; dy < side; ++dy) {
    for (std::size_t dx = 0; dx < side; ++dx) {
      const std::size_t x = square_x + dx;
      const std::size_t y = height / 3 + dy;
      if (x < width && y < height) {
        frame.at(x, y, 0) = 40;
        frame.at(x, y, 1) = 45;
        frame.at(x, y, 2) = 50;
      }
    }
  }
  return frame;
}

std::uint64_t frame_seq_hash(
    const std::vector<core::StreamFrameResult>& outcomes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& outcome : outcomes) {
    hash = metrics::label_map_hash(outcome.result.labels, hash);
  }
  return hash;
}

/// The temporal bench: warm-start streaming vs the cold per-frame loop,
/// with hard hash gates on every invariant the stream path promises.
/// Returns the process exit code.
int run_stream_bench(const util::Cli& cli, const core::SegHdcConfig& config,
                     const std::vector<std::size_t>& thread_list,
                     std::size_t frame_count, std::size_t repeats,
                     bool csv) {
  const auto width = static_cast<std::size_t>(cli.get_int("width", 128));
  const auto height = static_cast<std::size_t>(cli.get_int("height", 96));

  // Static prefix, 1-px/frame pan, static tail: replay, band reuse, and
  // warm convergence each get frames that exercise them.
  std::vector<img::ImageU8> frames;
  frames.reserve(frame_count);
  const std::size_t prefix = frame_count / 4;
  const std::size_t tail = frame_count / 4;
  for (std::size_t f = 0; f < frame_count; ++f) {
    const std::size_t pan =
        f < prefix ? 0 : std::min(f - prefix, frame_count - prefix - tail);
    frames.push_back(stream_frame(width, height, width / 8 + pan));
  }

  // Cold per-frame reference on a 1-thread pool: the answer key for
  // frame 0, for replayed frames, and for the post-stream cold re-run.
  std::vector<std::uint64_t> cold_hashes;
  std::size_t cold_iterations = 0;
  {
    util::ThreadPool one(1);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&one});
    for (const auto& frame : frames) {
      const auto result = session.segment(frame);
      cold_hashes.push_back(metrics::label_map_hash(result.labels));
      cold_iterations += result.iterations_run;
    }
  }

  bool gates_pass = true;
  std::uint64_t stream_hash_all_rows = 0;
  bool have_stream_hash = false;
  struct StreamRow {
    std::string name;
    double seconds = 0.0;
    std::uint64_t hash = 0;
    std::size_t iterations = 0;
    std::size_t tiles_reused = 0, tiles_encoded = 0, replayed = 0;
  };
  std::vector<StreamRow> rows;

  for (const std::size_t threads : thread_list) {
    util::ThreadPool pool(threads);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&pool});

    {  // Cold row: what a per-image deployment pays for this feed.
      StreamRow row;
      row.name = "cold@" + std::to_string(threads);
      row.iterations = cold_iterations;
      for (std::size_t r = 0; r < repeats; ++r) {
        const util::Stopwatch watch;
        std::uint64_t hash = 14695981039346656037ULL;
        for (const auto& frame : frames) {
          hash = metrics::label_map_hash(session.segment(frame).labels, hash);
        }
        row.hash = hash;
        const double seconds = watch.seconds();
        row.seconds = r == 0 ? seconds : std::min(row.seconds, seconds);
      }
      rows.push_back(row);
    }

    {  // Session-stream row: segment_stream, fresh Stream per repeat.
      StreamRow row;
      row.name = "stream@" + std::to_string(threads);
      for (std::size_t r = 0; r < repeats; ++r) {
        core::SegHdcSession::Stream stream;
        const util::Stopwatch watch;
        std::vector<core::StreamFrameResult> outcomes;
        outcomes.reserve(frames.size());
        for (const auto& frame : frames) {
          outcomes.push_back(session.segment_stream(frame, stream));
        }
        const double seconds = watch.seconds();
        row.hash = frame_seq_hash(outcomes);
        if (r == 0 || seconds < row.seconds) {
          row.seconds = seconds;
          row.iterations = row.tiles_reused = row.tiles_encoded = 0;
          row.replayed = 0;
          for (const auto& outcome : outcomes) {
            row.iterations += outcome.stats.kmeans_iterations;
            row.tiles_reused += outcome.stats.tiles_reused;
            row.tiles_encoded += outcome.stats.tiles_encoded;
            row.replayed += outcome.stats.replayed ? 1 : 0;
          }
        }
        if (metrics::label_map_hash(outcomes[0].result.labels) !=
            cold_hashes[0]) {
          gates_pass = false;
          std::fprintf(stderr,
                       "FAIL: %s frame 0 diverges from the cold path\n",
                       row.name.c_str());
        }
      }
      if (have_stream_hash && row.hash != stream_hash_all_rows) {
        gates_pass = false;
        std::fprintf(stderr,
                     "FAIL: %s stream hash %016llx differs across pool "
                     "sizes (expected %016llx)\n",
                     row.name.c_str(),
                     static_cast<unsigned long long>(row.hash),
                     static_cast<unsigned long long>(stream_hash_all_rows));
      }
      stream_hash_all_rows = row.hash;
      have_stream_hash = true;
      rows.push_back(row);
    }

    {  // Server-stream row: the same frames through a stream handle.
      StreamRow row;
      row.name = "serve-str@" + std::to_string(threads);
      for (std::size_t r = 0; r < repeats; ++r) {
        serve::ServerOptions options;
        options.queue_capacity = 8;
        options.backpressure = serve::BackpressurePolicy::kBlock;
        options.pool = &pool;
        serve::SegHdcServer server(config, options);
        auto handle = server.open_stream();
        const util::Stopwatch watch;
        std::vector<std::future<core::StreamFrameResult>> futures;
        futures.reserve(frames.size());
        for (const auto& frame : frames) {
          futures.push_back(server.submit(handle, frame));
        }
        std::vector<core::StreamFrameResult> outcomes;
        outcomes.reserve(frames.size());
        for (auto& future : futures) {
          outcomes.push_back(future.get());
        }
        const double seconds = watch.seconds();
        row.hash = frame_seq_hash(outcomes);
        if (r == 0 || seconds < row.seconds) {
          row.seconds = seconds;
          const auto stats = server.stats();
          row.iterations =
              static_cast<std::size_t>(stats.stream.kmeans_iterations);
          row.tiles_reused =
              static_cast<std::size_t>(stats.stream.tiles_reused);
          row.tiles_encoded =
              static_cast<std::size_t>(stats.stream.tiles_encoded);
          row.replayed =
              static_cast<std::size_t>(stats.stream.replayed_frames);
        }
      }
      if (row.hash != stream_hash_all_rows) {
        gates_pass = false;
        std::fprintf(stderr,
                     "FAIL: %s server-stream hash %016llx != session "
                     "stream hash %016llx\n",
                     row.name.c_str(),
                     static_cast<unsigned long long>(row.hash),
                     static_cast<unsigned long long>(stream_hash_all_rows));
      }
      rows.push_back(row);
    }

    // Cold re-run gate: streaming must leave the cold path untouched.
    for (std::size_t f = 0; f < frames.size(); ++f) {
      if (metrics::label_map_hash(session.segment(frames[f]).labels) !=
          cold_hashes[f]) {
        gates_pass = false;
        std::fprintf(stderr,
                     "FAIL: cold re-run of frame %zu after streaming "
                     "diverges from the cold reference (@%zu threads)\n",
                     f, threads);
        break;
      }
    }
  }

  if (csv) {
    std::printf(
        "mode,seconds,frames_per_sec,kmeans_iters,tiles_reused,"
        "tiles_encoded,replayed,hash\n");
  } else {
    std::printf("%-14s %9s %11s %11s %13s %8s  %s\n", "mode", "seconds",
                "frames/sec", "km iters", "tiles r/e", "replays",
                "label hash");
  }
  for (const auto& row : rows) {
    const double fps = static_cast<double>(frames.size()) / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%zu,%zu,%zu,%zu,%016llx\n", row.name.c_str(),
                  row.seconds, fps, row.iterations, row.tiles_reused,
                  row.tiles_encoded, row.replayed,
                  static_cast<unsigned long long>(row.hash));
    } else {
      std::printf("%-14s %9.4f %11.2f %11zu %6zu/%-6zu %8zu  %016llx\n",
                  row.name.c_str(), row.seconds, fps, row.iterations,
                  row.tiles_reused, row.tiles_encoded, row.replayed,
                  static_cast<unsigned long long>(row.hash));
    }
  }
  if (!gates_pass) {
    std::fprintf(stderr,
                 "FAIL: at least one stream determinism gate tripped\n");
    return 1;
  }
  std::printf("stream hashes identical across pool sizes and across the "
              "session/server paths; cold path unaffected by streaming\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto image_count =
      static_cast<std::size_t>(cli.get_int("images", 24));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  const bool csv = cli.get_flag("csv");
  const auto encode_workers =
      static_cast<std::size_t>(cli.get_int("encode-workers", 2));
  const auto cluster_workers =
      static_cast<std::size_t>(cli.get_int("cluster-workers", 2));

  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 1000));
  config.beta = static_cast<std::size_t>(cli.get_int("beta", 8));
  config.clusters = static_cast<std::size_t>(cli.get_int("clusters", 2));
  config.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 6));
  config.color_quantization_shift =
      static_cast<std::size_t>(cli.get_int("quantize", 2));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const auto thread_list =
      util::Cli::parse_size_list(cli.get("threads", "1,2,4"),
                                 /*allow_zero=*/false);
  const auto queue_list =
      util::Cli::parse_size_list(cli.get("queue", "0,4"),
                                 /*allow_zero=*/true);
  if (thread_list.empty() || queue_list.empty()) {
    // An empty sweep would "pass" after checking nothing — reject it so
    // a typo'd flag can't turn the hash gate into a no-op.
    std::fprintf(stderr,
                 "--threads and --queue must each name at least one value\n");
    return 1;
  }

  const std::string backend_flag = cli.get("backend", "");
  if (!backend_flag.empty()) {
    hdc::simd::force_backend(backend_flag);
  }

  // --trace <path>: capture every span of the whole bench run (reference
  // loops included) and export Chrome-trace JSON on the way out — the
  // artifact tools/trace_lint.py validates in CI.
  const std::string trace_path = cli.get("trace", "");
  std::optional<obs::TraceSession> trace;
  if (!trace_path.empty()) {
    trace.emplace();
  }
  const auto finish = [&](int code) {
    if (trace.has_value()) {
      trace->write_json(trace_path);
      std::printf("trace json -> %s (%zu events, %llu dropped)\n",
                  trace_path.c_str(), trace->events().size(),
                  static_cast<unsigned long long>(
                      obs::Tracer::instance().dropped()));
    }
    return code;
  };

  if (cli.get_flag("stream")) {
    std::printf("bench_serving --stream: %zu frames %llux%llu, dim=%zu, "
                "iterations=%zu, best of %zu repeats\n",
                image_count,
                static_cast<unsigned long long>(cli.get_int("width", 128)),
                static_cast<unsigned long long>(cli.get_int("height", 96)),
                config.dim, config.iterations, repeats);
    std::printf("kernel backend: %s | cpu: %s\n",
                hdc::simd::active_backend().name,
                hdc::simd::cpu_feature_string().c_str());
    return finish(run_stream_bench(cli, config, thread_list, image_count,
                                   repeats, csv));
  }

  data::Dsb2018Config dataset_config;
  dataset_config.width = static_cast<std::size_t>(cli.get_int("width", 128));
  dataset_config.height =
      static_cast<std::size_t>(cli.get_int("height", 96));
  const data::Dsb2018Generator dataset(dataset_config);
  std::vector<img::ImageU8> images;
  images.reserve(image_count);
  for (std::size_t i = 0; i < image_count; ++i) {
    images.push_back(dataset.generate(i).image);
  }

  std::printf("bench_serving: %zu images %zux%zux3, dim=%zu, "
              "iterations=%zu, %zu+%zu stage workers, best of %zu repeats\n",
              images.size(), dataset_config.width, dataset_config.height,
              config.dim, config.iterations, encode_workers,
              cluster_workers, repeats);
  std::printf("kernel backend: %s | cpu: %s\n",
              hdc::simd::active_backend().name,
              hdc::simd::cpu_feature_string().c_str());

  const auto tenant_count =
      static_cast<std::size_t>(cli.get_int("tenants", 0));
  if (tenant_count > 0) {
    return finish(run_fleet_bench(cli, config, images, thread_list,
                                  queue_list, tenant_count, repeats, csv));
  }

  // Reference: a sequential session loop pins the expected hash.
  std::uint64_t expected_hash = 0;
  {
    util::ThreadPool one(1);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&one});
    std::vector<core::SegmentationResult> results;
    results.reserve(images.size());
    for (const auto& image : images) {
      results.push_back(session.segment(image));
    }
    expected_hash = batch_hash(results);
  }

  std::vector<Row> rows;
  serve::LatencyPercentiles last_latency;
  for (const std::size_t threads : thread_list) {
    {
      // Barrier path: segment_many blocks the caller for the batch.
      util::ThreadPool pool(threads);
      const core::SegHdcSession session(config,
                                        core::SegHdcSession::Options{&pool});
      Row row;
      row.name = "many@" + std::to_string(threads);
      for (std::size_t r = 0; r < repeats; ++r) {
        const util::Stopwatch watch;
        const auto results = session.segment_many(images);
        const double seconds = watch.seconds();
        row.hash = batch_hash(results);
        row.seconds = r == 0 ? seconds : std::min(row.seconds, seconds);
      }
      rows.push_back(row);
    }
    for (const std::size_t capacity : queue_list) {
      // Pipelined path: all requests in flight, futures collected in
      // submit order. A fresh server per repeat so stats cover exactly
      // one pass; best-of wall time, latency from the fastest pass.
      Row row;
      row.name = "serve@" + std::to_string(threads) + "/q" +
                 (capacity == 0 ? std::string("inf")
                                : std::to_string(capacity));
      row.has_latency = true;
      util::ThreadPool pool(threads);
      for (std::size_t r = 0; r < repeats; ++r) {
        serve::ServerOptions options;
        options.queue_capacity = capacity;
        options.backpressure = serve::BackpressurePolicy::kBlock;
        options.encode_workers = encode_workers;
        options.cluster_workers = cluster_workers;
        options.pool = &pool;
        serve::SegHdcServer server(config, options);
        const util::Stopwatch watch;
        std::vector<std::future<core::SegmentationResult>> futures;
        futures.reserve(images.size());
        for (const auto& image : images) {
          futures.push_back(server.submit(image));
        }
        std::vector<core::SegmentationResult> results;
        results.reserve(images.size());
        for (auto& future : futures) {
          results.push_back(future.get());
        }
        const double seconds = watch.seconds();
        row.hash = batch_hash(results);
        if (r == 0 || seconds < row.seconds) {
          row.seconds = seconds;
          const auto stats = server.stats();
          row.p50_ms = stats.latency.p50_seconds * 1e3;
          row.p95_ms = stats.latency.p95_seconds * 1e3;
          row.p99_ms = stats.latency.p99_seconds * 1e3;
          row.latency = stats.latency;
          last_latency = stats.latency;
        }
      }
      rows.push_back(row);
    }
  }

  bool hashes_match = true;
  if (csv) {
    std::printf(
        "mode,seconds,images_per_sec,p50_ms,p95_ms,p99_ms,hash\n");
  } else {
    std::printf("%-16s %10s %12s %9s %9s %9s  %s\n", "mode", "seconds",
                "images/sec", "p50 ms", "p95 ms", "p99 ms", "label hash");
  }
  for (const auto& row : rows) {
    const double ips = static_cast<double>(images.size()) / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%.2f,%.2f,%.2f,%016llx\n", row.name.c_str(),
                  row.seconds, ips, row.p50_ms, row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash));
    } else if (row.has_latency) {
      std::printf("%-16s %10.4f %12.2f %9.2f %9.2f %9.2f  %016llx%s\n",
                  row.name.c_str(), row.seconds, ips, row.p50_ms,
                  row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash),
                  row.hash == expected_hash ? "" : "  MISMATCH");
    } else {
      std::printf("%-16s %10.4f %12.2f %9s %9s %9s  %016llx%s\n",
                  row.name.c_str(), row.seconds, ips, "-", "-", "-",
                  static_cast<unsigned long long>(row.hash),
                  row.hash == expected_hash ? "" : "  MISMATCH");
    }
    hashes_match = hashes_match && row.hash == expected_hash;
  }

  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: label hashes diverge between the server and "
                 "segment_many paths\n");
    return finish(1);
  }
  // Honest window note: percentiles cover the sliding window, the mean
  // covers the lifetime count — say which is which.
  std::printf("latency percentiles over last %llu of %llu requests "
              "(final row's fastest pass)\n",
              static_cast<unsigned long long>(last_latency.window_count),
              static_cast<unsigned long long>(last_latency.count));
  std::printf("all label hashes identical across server and barrier "
              "paths at every queue capacity and pool size\n");

  // Machine-readable headline: the fastest pipelined (server) row, with
  // that row's own registry-backed latency percentiles.
  const Row* best = nullptr;
  double best_ips = 0.0;
  for (const auto& row : rows) {
    if (!row.has_latency) {
      continue;
    }
    const double ips = static_cast<double>(images.size()) / row.seconds;
    if (best == nullptr || ips > best_ips) {
      best = &row;
      best_ips = ips;
    }
  }
  if (best != nullptr) {
    char hash_hex[32];
    std::snprintf(hash_hex, sizeof hash_hex, "\"%016llx\"",
                  static_cast<unsigned long long>(expected_hash));
    bench::write_bench_json(
        "BENCH_serving.json", "bench_serving", best_ips, best->latency,
        {{"mode", "\"" + best->name + "\""},
         {"images", std::to_string(images.size())},
         {"repeats", std::to_string(repeats)},
         {"label_hash", hash_hex}});
  }
  return finish(0);
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_serving failed: %s\n", error.what());
  return 1;
}
