// Async serving throughput + tail latency: SegHdcServer (the pipelined
// request-level path) vs SegHdcSession::segment_many (the batch/barrier
// path) over the same DSB2018-like traffic.
//
//   ./bench_serving [--images 24] [--width 128] [--height 96]
//                   [--dim 1000] [--beta 8] [--clusters 2]
//                   [--iterations 6] [--quantize 2] [--seed 42]
//                   [--threads 1,2,4] [--queue 0,4]
//                   [--encode-workers 2] [--cluster-workers 2]
//                   [--repeats 3] [--csv]
//                   [--backend scalar|harley-seal|avx2|neon|auto]
//                   [--tenants N] [--max-in-flight-total 0]
//
// For each pool size T in --threads, the barrier path `many@T` is timed
// first; then for each queue capacity C in --queue (0 = unbounded) the
// server path `serve@T/qC` submits the whole batch asynchronously and
// waits for every future. Server rows additionally report the
// per-request submit-to-completion p50/p95/p99 from the ServerStats
// snapshot — the tail the barrier path cannot even measure, because its
// callers block on the whole batch.
//
// Every row's combined label hash (in submit order) is checked against
// the sequential session loop; ANY divergence between the server and
// segment_many paths is a hard failure (exit 1). The speedup table of a
// wrong result is worthless.
//
// --tenants N switches to the fleet bench: one SegHdcFleet carrying N
// tenants (configs differing by seed) on a shared pool, every tenant
// fed the whole batch with submissions interleaved across tenants. For
// each pool size T and per-tenant queue capacity C, the row reports
// fleet throughput and admission-to-done tail latency; every tenant's
// hash is checked against its own solo sequential loop, and ANY
// per-tenant divergence is a hard failure (exit 1) — multi-tenancy must
// change who waits, never what anyone gets.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <future>
#include <string>
#include <vector>

#include "src/core/session.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/serve/fleet.hpp"
#include "src/serve/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace seghdc;

std::uint64_t batch_hash(const std::vector<core::SegmentationResult>& results) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

struct Row {
  std::string name;
  double seconds = 0.0;
  std::uint64_t hash = 0;
  bool has_latency = false;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

/// The fleet bench: N tenants on one shared pool, every tenant fed the
/// whole batch, per-tenant hashes gated against each tenant's own solo
/// sequential loop. Returns the process exit code.
int run_fleet_bench(const util::Cli& cli, const core::SegHdcConfig& base,
                    const std::vector<img::ImageU8>& images,
                    const std::vector<std::size_t>& thread_list,
                    const std::vector<std::size_t>& queue_list,
                    std::size_t tenant_count, std::size_t repeats,
                    bool csv) {
  const auto encode_workers =
      static_cast<std::size_t>(cli.get_int("encode-workers", 2));
  const auto cluster_workers =
      static_cast<std::size_t>(cli.get_int("cluster-workers", 2));
  const auto max_in_flight_total =
      static_cast<std::size_t>(cli.get_int("max-in-flight-total", 0));

  // Tenant configs differ by seed, so a cross-tenant mix-up cannot
  // hash-collide; each tenant's answer key is its own sequential loop.
  std::vector<core::SegHdcConfig> configs;
  std::vector<std::uint64_t> expected;
  configs.reserve(tenant_count);
  expected.reserve(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    core::SegHdcConfig config = base;
    config.seed = base.seed + t;
    util::ThreadPool one(1);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&one});
    std::vector<core::SegmentationResult> results;
    results.reserve(images.size());
    for (const auto& image : images) {
      results.push_back(session.segment(image));
    }
    configs.push_back(config);
    expected.push_back(batch_hash(results));
  }

  bool hashes_match = true;
  std::vector<Row> rows;
  serve::LatencyPercentiles last_latency;
  for (const std::size_t threads : thread_list) {
    util::ThreadPool pool(threads);
    for (const std::size_t capacity : queue_list) {
      Row row;
      row.name = "fleet@" + std::to_string(threads) + "/q" +
                 (capacity == 0 ? std::string("inf")
                                : std::to_string(capacity)) +
                 "/x" + std::to_string(tenant_count);
      row.has_latency = true;
      for (std::size_t r = 0; r < repeats; ++r) {
        serve::FleetOptions fleet_options;
        fleet_options.pool = &pool;
        fleet_options.max_in_flight_total = max_in_flight_total;
        serve::SegHdcFleet fleet(fleet_options);
        std::vector<std::string> names;
        for (std::size_t t = 0; t < tenant_count; ++t) {
          names.push_back("tenant" + std::to_string(t));
          serve::TenantOptions tenant_options;
          tenant_options.max_queued = capacity;
          tenant_options.encode_workers = encode_workers;
          tenant_options.cluster_workers = cluster_workers;
          fleet.add_tenant(names.back(), configs[t], tenant_options);
        }
        const util::Stopwatch watch;
        std::vector<std::vector<std::future<core::SegmentationResult>>>
            futures(tenant_count);
        for (const auto& image : images) {
          for (std::size_t t = 0; t < tenant_count; ++t) {
            futures[t].push_back(fleet.submit(names[t], image));
          }
        }
        std::uint64_t combined = 14695981039346656037ULL;
        for (std::size_t t = 0; t < tenant_count; ++t) {
          std::vector<core::SegmentationResult> results;
          results.reserve(images.size());
          for (auto& future : futures[t]) {
            results.push_back(future.get());
          }
          const std::uint64_t hash = batch_hash(results);
          if (hash != expected[t]) {
            hashes_match = false;
            std::fprintf(stderr,
                         "FAIL: %s tenant%zu hash %016llx != solo "
                         "%016llx\n",
                         row.name.c_str(), t,
                         static_cast<unsigned long long>(hash),
                         static_cast<unsigned long long>(expected[t]));
          }
          combined ^= hash;
        }
        const double seconds = watch.seconds();
        row.hash = combined;
        if (r == 0 || seconds < row.seconds) {
          row.seconds = seconds;
          const auto stats = fleet.stats();
          row.p50_ms = stats.latency.p50_seconds * 1e3;
          row.p95_ms = stats.latency.p95_seconds * 1e3;
          row.p99_ms = stats.latency.p99_seconds * 1e3;
          last_latency = stats.latency;
        }
      }
      rows.push_back(row);
    }
  }

  const double total =
      static_cast<double>(images.size()) * static_cast<double>(tenant_count);
  if (csv) {
    std::printf("mode,seconds,images_per_sec,p50_ms,p95_ms,p99_ms,hash\n");
  } else {
    std::printf("%-16s %10s %12s %9s %9s %9s  %s\n", "mode", "seconds",
                "images/sec", "p50 ms", "p95 ms", "p99 ms",
                "combined hash");
  }
  for (const auto& row : rows) {
    const double ips = total / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%.2f,%.2f,%.2f,%016llx\n", row.name.c_str(),
                  row.seconds, ips, row.p50_ms, row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash));
    } else {
      std::printf("%-16s %10.4f %12.2f %9.2f %9.2f %9.2f  %016llx\n",
                  row.name.c_str(), row.seconds, ips, row.p50_ms,
                  row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash));
    }
  }
  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: at least one tenant's label hashes diverge from "
                 "its solo sequential loop\n");
    return 1;
  }
  // Honest window note: percentiles cover the sliding window, the mean
  // covers the lifetime count — say which is which.
  std::printf("latency percentiles over last %llu of %llu requests "
              "(fastest pass)\n",
              static_cast<unsigned long long>(last_latency.window_count),
              static_cast<unsigned long long>(last_latency.count));
  std::printf("all %zu tenants bit-identical to their solo loops at every "
              "pool size and queue capacity\n",
              tenant_count);
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto image_count =
      static_cast<std::size_t>(cli.get_int("images", 24));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  const bool csv = cli.get_flag("csv");
  const auto encode_workers =
      static_cast<std::size_t>(cli.get_int("encode-workers", 2));
  const auto cluster_workers =
      static_cast<std::size_t>(cli.get_int("cluster-workers", 2));

  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 1000));
  config.beta = static_cast<std::size_t>(cli.get_int("beta", 8));
  config.clusters = static_cast<std::size_t>(cli.get_int("clusters", 2));
  config.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 6));
  config.color_quantization_shift =
      static_cast<std::size_t>(cli.get_int("quantize", 2));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const auto thread_list =
      util::Cli::parse_size_list(cli.get("threads", "1,2,4"),
                                 /*allow_zero=*/false);
  const auto queue_list =
      util::Cli::parse_size_list(cli.get("queue", "0,4"),
                                 /*allow_zero=*/true);
  if (thread_list.empty() || queue_list.empty()) {
    // An empty sweep would "pass" after checking nothing — reject it so
    // a typo'd flag can't turn the hash gate into a no-op.
    std::fprintf(stderr,
                 "--threads and --queue must each name at least one value\n");
    return 1;
  }

  const std::string backend_flag = cli.get("backend", "");
  if (!backend_flag.empty()) {
    hdc::simd::force_backend(backend_flag);
  }

  data::Dsb2018Config dataset_config;
  dataset_config.width = static_cast<std::size_t>(cli.get_int("width", 128));
  dataset_config.height =
      static_cast<std::size_t>(cli.get_int("height", 96));
  const data::Dsb2018Generator dataset(dataset_config);
  std::vector<img::ImageU8> images;
  images.reserve(image_count);
  for (std::size_t i = 0; i < image_count; ++i) {
    images.push_back(dataset.generate(i).image);
  }

  std::printf("bench_serving: %zu images %zux%zux3, dim=%zu, "
              "iterations=%zu, %zu+%zu stage workers, best of %zu repeats\n",
              images.size(), dataset_config.width, dataset_config.height,
              config.dim, config.iterations, encode_workers,
              cluster_workers, repeats);
  std::printf("kernel backend: %s | cpu: %s\n",
              hdc::simd::active_backend().name,
              hdc::simd::cpu_feature_string().c_str());

  const auto tenant_count =
      static_cast<std::size_t>(cli.get_int("tenants", 0));
  if (tenant_count > 0) {
    return run_fleet_bench(cli, config, images, thread_list, queue_list,
                           tenant_count, repeats, csv);
  }

  // Reference: a sequential session loop pins the expected hash.
  std::uint64_t expected_hash = 0;
  {
    util::ThreadPool one(1);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&one});
    std::vector<core::SegmentationResult> results;
    results.reserve(images.size());
    for (const auto& image : images) {
      results.push_back(session.segment(image));
    }
    expected_hash = batch_hash(results);
  }

  std::vector<Row> rows;
  serve::LatencyPercentiles last_latency;
  for (const std::size_t threads : thread_list) {
    {
      // Barrier path: segment_many blocks the caller for the batch.
      util::ThreadPool pool(threads);
      const core::SegHdcSession session(config,
                                        core::SegHdcSession::Options{&pool});
      Row row;
      row.name = "many@" + std::to_string(threads);
      for (std::size_t r = 0; r < repeats; ++r) {
        const util::Stopwatch watch;
        const auto results = session.segment_many(images);
        const double seconds = watch.seconds();
        row.hash = batch_hash(results);
        row.seconds = r == 0 ? seconds : std::min(row.seconds, seconds);
      }
      rows.push_back(row);
    }
    for (const std::size_t capacity : queue_list) {
      // Pipelined path: all requests in flight, futures collected in
      // submit order. A fresh server per repeat so stats cover exactly
      // one pass; best-of wall time, latency from the fastest pass.
      Row row;
      row.name = "serve@" + std::to_string(threads) + "/q" +
                 (capacity == 0 ? std::string("inf")
                                : std::to_string(capacity));
      row.has_latency = true;
      util::ThreadPool pool(threads);
      for (std::size_t r = 0; r < repeats; ++r) {
        serve::ServerOptions options;
        options.queue_capacity = capacity;
        options.backpressure = serve::BackpressurePolicy::kBlock;
        options.encode_workers = encode_workers;
        options.cluster_workers = cluster_workers;
        options.pool = &pool;
        serve::SegHdcServer server(config, options);
        const util::Stopwatch watch;
        std::vector<std::future<core::SegmentationResult>> futures;
        futures.reserve(images.size());
        for (const auto& image : images) {
          futures.push_back(server.submit(image));
        }
        std::vector<core::SegmentationResult> results;
        results.reserve(images.size());
        for (auto& future : futures) {
          results.push_back(future.get());
        }
        const double seconds = watch.seconds();
        row.hash = batch_hash(results);
        if (r == 0 || seconds < row.seconds) {
          row.seconds = seconds;
          const auto stats = server.stats();
          row.p50_ms = stats.latency.p50_seconds * 1e3;
          row.p95_ms = stats.latency.p95_seconds * 1e3;
          row.p99_ms = stats.latency.p99_seconds * 1e3;
          last_latency = stats.latency;
        }
      }
      rows.push_back(row);
    }
  }

  bool hashes_match = true;
  if (csv) {
    std::printf(
        "mode,seconds,images_per_sec,p50_ms,p95_ms,p99_ms,hash\n");
  } else {
    std::printf("%-16s %10s %12s %9s %9s %9s  %s\n", "mode", "seconds",
                "images/sec", "p50 ms", "p95 ms", "p99 ms", "label hash");
  }
  for (const auto& row : rows) {
    const double ips = static_cast<double>(images.size()) / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%.2f,%.2f,%.2f,%016llx\n", row.name.c_str(),
                  row.seconds, ips, row.p50_ms, row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash));
    } else if (row.has_latency) {
      std::printf("%-16s %10.4f %12.2f %9.2f %9.2f %9.2f  %016llx%s\n",
                  row.name.c_str(), row.seconds, ips, row.p50_ms,
                  row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.hash),
                  row.hash == expected_hash ? "" : "  MISMATCH");
    } else {
      std::printf("%-16s %10.4f %12.2f %9s %9s %9s  %016llx%s\n",
                  row.name.c_str(), row.seconds, ips, "-", "-", "-",
                  static_cast<unsigned long long>(row.hash),
                  row.hash == expected_hash ? "" : "  MISMATCH");
    }
    hashes_match = hashes_match && row.hash == expected_hash;
  }

  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: label hashes diverge between the server and "
                 "segment_many paths\n");
    return 1;
  }
  // Honest window note: percentiles cover the sliding window, the mean
  // covers the lifetime count — say which is which.
  std::printf("latency percentiles over last %llu of %llu requests "
              "(final row's fastest pass)\n",
              static_cast<unsigned long long>(last_latency.window_count),
              static_cast<unsigned long long>(last_latency.count));
  std::printf("all label hashes identical across server and barrier "
              "paths at every queue capacity and pool size\n");
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_serving failed: %s\n", error.what());
  return 1;
}
