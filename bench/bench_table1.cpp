// Reproduces paper TABLE I: mean IoU on the three nuclei suites for the
// CNN baseline (BL, Kim et al. 2020), the two encoding ablations
// (RPos = random position HVs, RColor = random color HVs) and SegHDC.
//
// Every SegHDC number flows through the shared eval pipeline
// (eval::evaluate_seghdc) on the configured execution path — by default
// the serving path, so the accuracy table is itself a serving workload
// and EVAL_table1.json carries the serving latency percentiles next to
// the mIoU columns. The baseline rides the generic evaluate_suite loop
// (it has no serving form).
//
// Paper reference values:
//   dataset   BL      RPos    RColor  SegHDC  improvement
//   BBBC005   0.7490  0.0361  0.1016  0.9414  25.7%
//   DSB2018   0.6281  0.1172  0.2352  0.8038  28.0%
//   MoNuSeg   0.5088  0.1959  0.3832  0.5509  8.27%
//
//   ./bench_table1 [--images 24] [--paper] [--skip-baseline]
//                  [--datasets BBBC005,DSB2018,MoNuSeg]
//                  [--path server|batch|one_shot] [--batch 64]
//                  [--out out] [--json EVAL_table1.json]
#include <cstdio>
#include <exception>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

namespace {

using namespace seghdc;

struct Row {
  const char* dataset;
  double bl = 0.0, rpos = 0.0, rcolor = 0.0, seghdc = 0.0;
  /// Relative improvement over the baseline in percent — the paper's
  /// "Improvement" column (e.g. 0.8038 vs 0.6281 = 28.0%).
  double improvement_percent() const {
    return bl > 0.0 ? (seghdc / bl - 1.0) * 100.0 : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  bench::Scale scale = cli.get_flag("paper") ? bench::Scale::paper_scale()
                                             : bench::Scale::host();
  scale.images = static_cast<std::size_t>(
      cli.get_int("images", static_cast<std::int64_t>(scale.images)));
  const bool skip_baseline = cli.get_flag("skip-baseline");
  const auto out_dir = cli.get("out", "out");
  const auto json_path = cli.get("json", out_dir + "/EVAL_table1.json");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const auto selected = cli.get("datasets", "BBBC005,DSB2018,MoNuSeg");

  util::CsvWriter csv(out_dir + "/table1.csv",
                      {"dataset", "BL", "RPos", "RColor", "SegHDC",
                       "improvement_percent"});

  std::printf("TABLE I: IoU score on 3 datasets (%zu images each%s, "
              "%s path)\n",
              scale.images, scale.paper ? ", paper scale" : "",
              eval::eval_path_name(options.path));
  std::printf("%-10s %8s %8s %8s %8s %14s\n", "Dataset", "BL", "RPos",
              "RColor", "SegHDC", "Improvement");

  std::vector<Row> rows;
  std::vector<eval::SuiteResult> suites;
  for (const auto id : {bench::DatasetId::kBbbc005,
                        bench::DatasetId::kDsb2018,
                        bench::DatasetId::kMonuseg}) {
    if (selected.find(bench::dataset_name(id)) == std::string::npos) {
      continue;
    }
    const auto dataset = bench::make_dataset(id, scale);
    const auto seghdc_config = bench::seghdc_config_for(*dataset, scale);
    const auto kim_config = bench::kim_config_for(scale);

    // The three HDC variants through the shared (serving-capable) eval
    // pipeline; the CNN baseline through the generic functor loop.
    auto seghdc_suite =
        eval::evaluate_seghdc(*dataset, scale.images, seghdc_config, options);
    auto rpos_suite = eval::evaluate_seghdc(
        *dataset, scale.images, seghdc_config.rpos_variant(), options);
    rpos_suite.method = "rpos";
    auto rcolor_suite = eval::evaluate_seghdc(
        *dataset, scale.images, seghdc_config.rcolor_variant(), options);
    rcolor_suite.method = "rcolor";

    Row row;
    row.dataset = bench::dataset_name(id);
    row.rpos = rpos_suite.mean_iou();
    row.rcolor = rcolor_suite.mean_iou();
    row.seghdc = seghdc_suite.mean_iou();
    if (!skip_baseline) {
      auto bl_suite = eval::evaluate_suite(
          *dataset, scale.images, "kim",
          eval::kim_method(kim_config, scale.kim_train_downscale));
      row.bl = bl_suite.mean_iou();
      suites.push_back(std::move(bl_suite));
    }
    suites.push_back(std::move(seghdc_suite));
    suites.push_back(std::move(rpos_suite));
    suites.push_back(std::move(rcolor_suite));
    rows.push_back(row);

    std::printf("%-10s %8.4f %8.4f %8.4f %8.4f %12.1f%%\n", row.dataset,
                row.bl, row.rpos, row.rcolor, row.seghdc,
                row.improvement_percent());
    csv.row({row.dataset, util::CsvWriter::field(row.bl),
             util::CsvWriter::field(row.rpos),
             util::CsvWriter::field(row.rcolor),
             util::CsvWriter::field(row.seghdc),
             util::CsvWriter::field(row.improvement_percent())});
  }

  bench::write_eval_json(
      json_path, "bench_table1", suites,
      {{"images_per_dataset", std::to_string(scale.images)},
       {"paper_scale", scale.paper ? "true" : "false"}});

  std::printf("\npaper reference: BBBC005 0.9414 vs 0.7490 | DSB2018 "
              "0.8038 vs 0.6281 | MoNuSeg 0.5509 vs 0.5088\n");
  std::printf("expected shape: SegHDC > BL >> RColor > RPos on every "
              "dataset\n");
  std::printf("csv: %s/table1.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_table1 failed: %s\n", error.what());
  return 1;
}
