// Reproduces paper TABLE I: mean IoU on the three nuclei suites for the
// CNN baseline (BL, Kim et al. 2020), the two encoding ablations
// (RPos = random position HVs, RColor = random color HVs) and SegHDC.
//
// Paper reference values:
//   dataset   BL      RPos    RColor  SegHDC  improvement
//   BBBC005   0.7490  0.0361  0.1016  0.9414  25.7%
//   DSB2018   0.6281  0.1172  0.2352  0.8038  28.0%
//   MoNuSeg   0.5088  0.1959  0.3832  0.5509  8.27%
//
//   ./bench_table1 [--images 24] [--paper] [--skip-baseline]
//                  [--datasets BBBC005,DSB2018,MoNuSeg] [--out out]
#include <cstdio>
#include <exception>
#include <vector>

#include "bench_common.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

namespace {

using namespace seghdc;

struct Row {
  const char* dataset;
  double bl = 0.0, rpos = 0.0, rcolor = 0.0, seghdc = 0.0;
  /// Relative improvement over the baseline in percent — the paper's
  /// "Improvement" column (e.g. 0.8038 vs 0.6281 = 28.0%).
  double improvement_percent() const {
    return bl > 0.0 ? (seghdc / bl - 1.0) * 100.0 : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  bench::Scale scale = cli.get_flag("paper") ? bench::Scale::paper_scale()
                                             : bench::Scale::host();
  scale.images = static_cast<std::size_t>(
      cli.get_int("images", static_cast<std::int64_t>(scale.images)));
  const bool skip_baseline = cli.get_flag("skip-baseline");
  const auto out_dir = cli.get("out", "out");
  util::ensure_directory(out_dir);

  const auto selected = cli.get("datasets", "BBBC005,DSB2018,MoNuSeg");

  util::CsvWriter csv(out_dir + "/table1.csv",
                      {"dataset", "BL", "RPos", "RColor", "SegHDC",
                       "improvement_percent"});

  std::printf("TABLE I: IoU score on 3 datasets (%zu images each%s)\n",
              scale.images, scale.paper ? ", paper scale" : "");
  std::printf("%-10s %8s %8s %8s %8s %14s\n", "Dataset", "BL", "RPos",
              "RColor", "SegHDC", "Improvement");

  std::vector<Row> rows;
  for (const auto id : {bench::DatasetId::kBbbc005,
                        bench::DatasetId::kDsb2018,
                        bench::DatasetId::kMonuseg}) {
    if (selected.find(bench::dataset_name(id)) == std::string::npos) {
      continue;
    }
    const auto dataset = bench::make_dataset(id, scale);
    const auto seghdc_config = bench::seghdc_config_for(*dataset, scale);
    const auto kim_config = bench::kim_config_for(scale);

    std::vector<double> iou_bl, iou_rpos, iou_rcolor, iou_seghdc;
    for (std::size_t i = 0; i < scale.images; ++i) {
      const auto sample = dataset->generate(i);
      iou_seghdc.push_back(bench::run_seghdc(seghdc_config, sample).iou);
      iou_rpos.push_back(
          bench::run_seghdc(seghdc_config.rpos_variant(), sample).iou);
      iou_rcolor.push_back(
          bench::run_seghdc(seghdc_config.rcolor_variant(), sample).iou);
      if (!skip_baseline) {
        iou_bl.push_back(
            bench::run_kim(kim_config, sample, scale.kim_train_downscale)
                .iou);
      }
    }

    Row row;
    row.dataset = bench::dataset_name(id);
    row.bl = metrics::mean(iou_bl);
    row.rpos = metrics::mean(iou_rpos);
    row.rcolor = metrics::mean(iou_rcolor);
    row.seghdc = metrics::mean(iou_seghdc);
    rows.push_back(row);

    std::printf("%-10s %8.4f %8.4f %8.4f %8.4f %12.1f%%\n", row.dataset,
                row.bl, row.rpos, row.rcolor, row.seghdc,
                row.improvement_percent());
    csv.row({row.dataset, util::CsvWriter::field(row.bl),
             util::CsvWriter::field(row.rpos),
             util::CsvWriter::field(row.rcolor),
             util::CsvWriter::field(row.seghdc),
             util::CsvWriter::field(row.improvement_percent())});
  }

  std::printf("\npaper reference: BBBC005 0.9414 vs 0.7490 | DSB2018 "
              "0.8038 vs 0.6281 | MoNuSeg 0.5509 vs 0.5088\n");
  std::printf("expected shape: SegHDC > BL >> RColor > RPos on every "
              "dataset\n");
  std::printf("csv: %s/table1.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_table1 failed: %s\n", error.what());
  return 1;
}
