// Reproduces paper TABLE II: single-image latency & memory on the
// Raspberry Pi 4 for a DSB2018 image (256x320x3) and a BBBC005 image
// (520x696x1).
//
// Paper reference:
//   DSB2018 image:  BL IoU 0.7612, 11453 s  | SegHDC IoU 0.8275, 35.8 s
//                   (319.9x speedup)
//   BBBC005 image:  BL OUT OF MEMORY        | SegHDC IoU 0.9587, 178.31 s
//
// This bench runs both methods on the host (baseline at host scale; pass
// --paper for the full 100-channel/1000-iteration baseline), measures
// host latency and IoU, and projects Pi latency and peak memory through
// the device model. SegHDC hyper-parameters follow the paper: DSB image
// d=800, 3 iterations, alpha=1; BBBC image d=2000, 3 iterations,
// alpha=0.8.
//
//   ./bench_table2 [--paper] [--skip-baseline]
//                  [--path server|batch|one_shot] [--out out]
//
// SegHDC latency/IoU numbers flow through the shared eval pipeline
// (bench::run_seghdc -> eval::evaluate_seghdc), default path: server.
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "src/device/latency_model.hpp"
#include "src/device/memory_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

namespace {

using namespace seghdc;

struct ImageCase {
  const char* label;
  bench::DatasetId dataset;
  std::size_t dim;
  double alpha;
};

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const bool paper = cli.get_flag("paper");
  const bool skip_baseline = cli.get_flag("skip-baseline");
  const auto out_dir = cli.get("out", "out");
  const auto options = bench::eval_options_from_cli(cli);
  util::ensure_directory(out_dir);

  const auto pi = device::DeviceSpec::raspberry_pi_4b();
  bench::Scale scale =
      paper ? bench::Scale::paper_scale() : bench::Scale::host();

  util::CsvWriter csv(
      out_dir + "/table2.csv",
      {"method", "image", "iou", "host_seconds", "pi_seconds",
       "pi_peak_mem_mb", "fits_pi", "speedup_vs_bl"});

  // Paper Section IV-B: per-image hyper-parameters of the latency runs.
  const ImageCase cases[] = {
      {"DSB2018 256x320x3", bench::DatasetId::kDsb2018, 800, 1.0},
      {"BBBC005 520x696x1", bench::DatasetId::kBbbc005, 2000, 0.8},
  };

  std::printf("TABLE II: latency on Raspberry Pi for one image\n");
  std::printf("%-8s %-20s %8s %12s %12s %14s %8s\n", "Method", "Image",
              "IoU", "host (s)", "Pi (s)", "Pi peak mem", "fits?");

  for (const auto& image_case : cases) {
    // Table II uses the full-size image even at host scale.
    bench::Scale full_scale = scale;
    full_scale.paper = true;  // full-size dataset geometry
    const auto dataset =
        bench::make_dataset(image_case.dataset, full_scale);
    const auto sample = dataset->generate(0);
    const std::size_t pixels = sample.image.pixel_count();

    // --- Baseline (reference configuration for the projections). ---
    baseline::KimConfig kim_reference;  // 100 ch / 1000 iters
    const auto kim_memory = device::estimate_kim_memory(
        kim_reference, sample.image.channels(), sample.image.height(),
        sample.image.width());
    const device::KimWorkload kim_workload{
        .config = kim_reference,
        .channels = sample.image.channels(),
        .height = sample.image.height(),
        .width = sample.image.width(),
        .iterations = kim_reference.max_iterations,
    };
    const double kim_pi_seconds =
        device::project_kim_latency(pi, kim_workload);

    double bl_iou = 0.0;
    double bl_host_seconds = 0.0;
    const bool bl_fits = kim_memory.fits(pi);
    if (!skip_baseline && bl_fits) {
      const auto kim_config = bench::kim_config_for(scale);
      const auto run = bench::run_kim(kim_config, sample,
                                      scale.kim_train_downscale);
      bl_iou = run.iou;
      bl_host_seconds = run.seconds;
    }

    if (bl_fits) {
      std::printf("%-8s %-20s %8.4f %12.2f %12.1f %11.0f MB %8s\n", "BL",
                  image_case.label, bl_iou, bl_host_seconds,
                  kim_pi_seconds,
                  static_cast<double>(kim_memory.peak_bytes()) / (1 << 20),
                  "yes");
    } else {
      std::printf("%-8s %-20s %8s %12s %12s %11.0f MB %8s\n", "BL",
                  image_case.label, "x*", "-", "-",
                  static_cast<double>(kim_memory.peak_bytes()) / (1 << 20),
                  "OOM");
    }
    csv.row({"BL", image_case.label,
             bl_fits ? util::CsvWriter::field(bl_iou) : "OOM",
             util::CsvWriter::field(bl_host_seconds),
             util::CsvWriter::field(kim_pi_seconds),
             util::CsvWriter::field(
                 static_cast<double>(kim_memory.peak_bytes()) / (1 << 20)),
             bl_fits ? "1" : "0", "1"});

    // --- SegHDC with the paper's per-image latency configuration. ---
    auto config = bench::seghdc_config_for(*dataset, full_scale);
    config.dim = image_case.dim;
    config.alpha = image_case.alpha;
    config.iterations = 3;
    config.color_quantization_shift = paper ? 0 : 2;
    const auto run = bench::run_seghdc(config, *dataset, sample, options);

    const device::SegHdcWorkload workload{
        .pixels = pixels,
        .dim = config.dim,
        .clusters = config.clusters,
        .iterations = config.iterations,
    };
    const double pi_seconds = device::project_seghdc_latency(pi, workload);
    const auto memory = device::estimate_seghdc_memory(
        config, sample.image.height(), sample.image.width());
    const double speedup = bl_fits ? kim_pi_seconds / pi_seconds : 0.0;

    std::printf("%-8s %-20s %8.4f %12.2f %12.1f %11.0f MB %8s", "SegHDC",
                image_case.label, run.iou, run.seconds, pi_seconds,
                static_cast<double>(memory.peak_bytes()) / (1 << 20),
                memory.fits(pi) ? "yes" : "OOM");
    if (bl_fits) {
      std::printf("   (%.1fx speedup)", speedup);
    }
    std::printf("\n");
    csv.row({"SegHDC", image_case.label, util::CsvWriter::field(run.iou),
             util::CsvWriter::field(run.seconds),
             util::CsvWriter::field(pi_seconds),
             util::CsvWriter::field(
                 static_cast<double>(memory.peak_bytes()) / (1 << 20)),
             memory.fits(pi) ? "1" : "0",
             util::CsvWriter::field(speedup)});
  }

  std::printf("\npaper reference: DSB 35.8 s vs 11453 s (319.9x); BBBC "
              "178.31 s vs OOM\n");
  std::printf("csv: %s/table2.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_table2 failed: %s\n", error.what());
  return 1;
}
