// Many-image serving throughput: images/sec for the SegHDC pipeline
// through the session API, swept over thread counts.
//
//   ./bench_throughput [--images 16] [--width 128] [--height 96]
//                      [--dim 1000] [--beta 8] [--clusters 2]
//                      [--iterations 6] [--quantize 2] [--seed 42]
//                      [--threads 1,2,4,8] [--repeats 3] [--csv]
//                      [--backend scalar|harley-seal|avx2|neon|auto]
//                      [--single-image WxH] [--tile-rows 0,1,8]
//
// Batch mode (default): three configurations are timed over the same
// DSB2018-like batch:
//
//   legacy    — a fresh one-shot session per image (the stateless
//               SegHdc::segment cost: encoder state rebuilt every call),
//               single-threaded
//   session   — one SegHdcSession, sequential segment() loop on one
//               thread (encoder state reused; the serving baseline)
//   many@T    — SegHdcSession::segment_many sharding the batch across a
//               T-thread pool, for each T in --threads
//
// Single-image mode (--single-image WxH): ONE synthetic large image is
// segmented repeatedly — the paper's on-device latency shape — swept
// over --threads x --tile-rows (0 = auto), against an untiled
// single-thread baseline. The reported speedup is the intra-image
// scaling the tiled encode pipeline buys.
//
// In both modes every configuration's label hash is checked against
// the baseline; any divergence is a hard failure (exit 1) — the
// speedup table of a wrong result is worthless. On a 1-core host the
// parallel rows legitimately show ~1x.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "src/core/session.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace seghdc;

std::uint64_t batch_hash(const std::vector<core::SegmentationResult>& results) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

// Size-list parsing (comma/space separated, zeros kept only where they
// mean auto/unbounded) is shared with bench_serving via
// util::Cli::parse_size_list.
std::vector<std::size_t> parse_thread_list(const std::string& spec) {
  return util::Cli::parse_size_list(spec, /*allow_zero=*/false);
}

struct Row {
  std::string name;
  double seconds = 0.0;
  std::uint64_t hash = 0;
};

/// --single-image mode: one synthetic WxH image, segmented through a
/// session per (threads, tile_rows) cell; best-of-`repeats` latency,
/// intra-image speedup vs the untiled single-thread baseline, hard
/// failure on any label-hash divergence.
int run_single_image(const util::Cli& cli, core::SegHdcConfig config,
                     const std::vector<std::size_t>& thread_list,
                     std::size_t repeats, bool csv) {
  const std::string spec = cli.get("single-image", "1024x768");
  const auto dims =
      util::Cli::parse_size_list(spec, /*allow_zero=*/false);
  if (dims.size() != 2) {
    std::fprintf(stderr, "--single-image expects WxH, got '%s'\n",
                 spec.c_str());
    return 1;
  }
  data::Dsb2018Config dataset_config;
  dataset_config.width = dims[0];
  dataset_config.height = dims[1];
  const img::ImageU8 image =
      data::Dsb2018Generator(dataset_config).generate(0).image;

  const auto tile_list =
      util::Cli::parse_size_list(cli.get("tile-rows", "0"),
                                 /*allow_zero=*/true);
  if (tile_list.empty() || thread_list.empty()) {
    // An empty sweep would "pass" after checking nothing — reject it so
    // a typo'd flag can't turn the CI hash gate into a no-op.
    std::fprintf(stderr,
                 "--tile-rows ('%s') and --threads must each name at least "
                 "one value\n",
                 cli.get("tile-rows", "0").c_str());
    return 1;
  }

  std::printf("bench_throughput --single-image: one %zux%zux3 image, "
              "dim=%zu, iterations=%zu, best of %zu repeats\n",
              dims[0], dims[1], config.dim, config.iterations, repeats);
  std::printf("kernel backend: %s | cpu: %s\n",
              hdc::simd::active_backend().name,
              hdc::simd::cpu_feature_string().c_str());

  const auto time_single = [&](const core::SegHdcSession& session) {
    Row row;
    for (std::size_t r = 0; r < repeats; ++r) {
      const util::Stopwatch watch;
      const auto result = session.segment(image);
      const double seconds = watch.seconds();
      row.hash = metrics::label_map_hash(result.labels,
                                         14695981039346656037ULL);
      row.seconds = r == 0 ? seconds : std::min(row.seconds, seconds);
    }
    return row;
  };

  std::vector<Row> rows;
  {
    // Baseline: one thread, one band — the untiled serial encode.
    util::ThreadPool one(1);
    auto baseline_config = config;
    baseline_config.tile_rows = dims[1];
    const core::SegHdcSession session(
        baseline_config, core::SegHdcSession::Options{&one});
    auto row = time_single(session);
    row.name = "serial(untiled)";
    rows.push_back(row);
  }
  const double baseline_seconds = rows.front().seconds;
  const std::uint64_t expected_hash = rows.front().hash;

  for (const std::size_t threads : thread_list) {
    util::ThreadPool pool(threads);
    for (const std::size_t tile_rows : tile_list) {
      auto cell_config = config;
      cell_config.tile_rows = tile_rows;
      const core::SegHdcSession session(
          cell_config, core::SegHdcSession::Options{&pool});
      auto row = time_single(session);
      row.name = "t" + std::to_string(threads) + "/r" +
                 (tile_rows == 0 ? std::string("auto")
                                 : std::to_string(tile_rows));
      rows.push_back(row);
    }
  }

  bool hashes_match = true;
  if (csv) {
    std::printf("mode,seconds,speedup_vs_serial,hash\n");
  } else {
    std::printf("%-16s %10s %9s  %s\n", "mode", "seconds", "speedup",
                "label hash");
  }
  for (const auto& row : rows) {
    const double speedup = baseline_seconds / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%016llx\n", row.name.c_str(), row.seconds,
                  speedup, static_cast<unsigned long long>(row.hash));
    } else {
      std::printf("%-16s %10.4f %8.2fx  %016llx%s\n", row.name.c_str(),
                  row.seconds, speedup,
                  static_cast<unsigned long long>(row.hash),
                  row.hash == expected_hash ? "" : "  MISMATCH");
    }
    hashes_match = hashes_match && row.hash == expected_hash;
  }
  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: label hashes diverge across tile/thread cells\n");
    return 1;
  }
  std::printf(
      "all label hashes identical across thread counts and tile sizes\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto image_count =
      static_cast<std::size_t>(cli.get_int("images", 16));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  const bool csv = cli.get_flag("csv");

  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 1000));
  config.beta = static_cast<std::size_t>(cli.get_int("beta", 8));
  config.clusters = static_cast<std::size_t>(cli.get_int("clusters", 2));
  config.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 6));
  config.color_quantization_shift =
      static_cast<std::size_t>(cli.get_int("quantize", 2));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const auto thread_list =
      parse_thread_list(cli.get("threads", "1,2,4,8"));

  // Kernel backend: --backend forces one (hard error on unknown or
  // unavailable names), otherwise the env/auto-dispatched selection is
  // reported so every run records which kernels produced its numbers.
  const std::string backend_flag = cli.get("backend", "");
  if (!backend_flag.empty()) {
    hdc::simd::force_backend(backend_flag);
  }

  if (cli.has("single-image")) {
    return run_single_image(cli, config, thread_list, repeats, csv);
  }

  data::Dsb2018Config dataset_config;
  dataset_config.width = static_cast<std::size_t>(cli.get_int("width", 128));
  dataset_config.height =
      static_cast<std::size_t>(cli.get_int("height", 96));
  const data::Dsb2018Generator dataset(dataset_config);
  std::vector<img::ImageU8> images;
  images.reserve(image_count);
  for (std::size_t i = 0; i < image_count; ++i) {
    images.push_back(dataset.generate(i).image);
  }

  std::printf("bench_throughput: %zu images %zux%zux3, dim=%zu, "
              "iterations=%zu, best of %zu repeats\n",
              images.size(), dataset_config.width, dataset_config.height,
              config.dim, config.iterations, repeats);
  std::printf("kernel backend: %s | cpu: %s\n",
              hdc::simd::active_backend().name,
              hdc::simd::cpu_feature_string().c_str());

  // Best-of-N wall time for one batch pass through `run`.
  const auto time_batch = [&](const auto& run) {
    Row row;
    for (std::size_t r = 0; r < repeats; ++r) {
      const util::Stopwatch watch;
      const auto results = run();
      const double seconds = watch.seconds();
      row.hash = batch_hash(results);
      row.seconds = r == 0 ? seconds : std::min(row.seconds, seconds);
    }
    return row;
  };

  std::vector<Row> rows;

  {
    util::ThreadPool one(1);
    auto row = time_batch([&] {
      std::vector<core::SegmentationResult> results;
      results.reserve(images.size());
      for (const auto& image : images) {
        // Fresh session per image: the legacy SegHdc::segment cost
        // (encoder item memories rebuilt for every call).
        const core::SegHdcSession session(config,
                                          core::SegHdcSession::Options{&one});
        results.push_back(session.segment(image));
      }
      return results;
    });
    row.name = "legacy(rebuild)";
    rows.push_back(row);
  }

  // Per-image latency of the serving baseline, recorded through the
  // same registry/histogram machinery the server exports — so the
  // percentiles in BENCH_throughput.json mean the same thing as the
  // ones in BENCH_serving.json.
  obs::MetricsRegistry registry;
  obs::Histogram& per_image_seconds = registry.histogram(
      "seghdc_bench_image_seconds",
      "Per-image segment() latency of the sequential session loop", "",
      images.size() * repeats);
  {
    util::ThreadPool one(1);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&one});
    auto row = time_batch([&] {
      std::vector<core::SegmentationResult> results;
      results.reserve(images.size());
      for (const auto& image : images) {
        const util::Stopwatch image_watch;
        results.push_back(session.segment(image));
        per_image_seconds.record(image_watch.seconds());
      }
      return results;
    });
    row.name = "session(seq)";
    rows.push_back(row);
  }
  const double baseline_seconds = rows.back().seconds;
  const std::uint64_t expected_hash = rows.back().hash;

  for (const std::size_t threads : thread_list) {
    util::ThreadPool pool(threads);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&pool});
    auto row = time_batch([&] { return session.segment_many(images); });
    row.name = "many@" + std::to_string(threads);
    rows.push_back(row);
  }

  bool hashes_match = true;
  if (csv) {
    std::printf("mode,seconds,images_per_sec,speedup_vs_session,hash\n");
  } else {
    std::printf("%-16s %10s %12s %9s  %s\n", "mode", "seconds",
                "images/sec", "speedup", "label hash");
  }
  for (const auto& row : rows) {
    const double ips = static_cast<double>(images.size()) / row.seconds;
    const double speedup = baseline_seconds / row.seconds;
    if (csv) {
      std::printf("%s,%.4f,%.2f,%.2f,%016llx\n", row.name.c_str(),
                  row.seconds, ips, speedup,
                  static_cast<unsigned long long>(row.hash));
    } else {
      std::printf("%-16s %10.4f %12.2f %8.2fx  %016llx%s\n",
                  row.name.c_str(), row.seconds, ips, speedup,
                  static_cast<unsigned long long>(row.hash),
                  row.hash == expected_hash ? "" : "  MISMATCH");
    }
    hashes_match = hashes_match && row.hash == expected_hash;
  }

  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: label hashes diverge across configurations\n");
    return 1;
  }
  std::printf("all label hashes identical across modes and thread counts\n");

  // Machine-readable headline: the fastest segment_many row for
  // throughput, the sequential loop's histogram for per-image latency.
  const Row* best = nullptr;
  double best_ips = 0.0;
  for (const auto& row : rows) {
    if (row.name.rfind("many@", 0) != 0) {
      continue;
    }
    const double ips = static_cast<double>(images.size()) / row.seconds;
    if (best == nullptr || ips > best_ips) {
      best = &row;
      best_ips = ips;
    }
  }
  if (best != nullptr) {
    char hash_hex[32];
    std::snprintf(hash_hex, sizeof hash_hex, "\"%016llx\"",
                  static_cast<unsigned long long>(expected_hash));
    bench::write_bench_json(
        "BENCH_throughput.json", "bench_throughput", best_ips,
        per_image_seconds.percentiles(),
        {{"mode", "\"" + best->name + "\""},
         {"images", std::to_string(images.size())},
         {"repeats", std::to_string(repeats)},
         {"label_hash", hash_hex}});
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_throughput failed: %s\n", error.what());
  return 1;
}
