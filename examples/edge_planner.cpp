// Edge-deployment planner: before shipping a segmentation workload to a
// device, project latency and peak memory for both SegHDC and the CNN
// baseline across candidate image sizes — the decision Table II of the
// paper boils down to ("the baseline OOMs at 520x696; SegHDC runs in
// minutes").
//
//   ./edge_planner [--dim 2000] [--iterations 3]
#include <cstdio>
#include <exception>

#include "src/device/latency_model.hpp"
#include "src/device/memory_model.hpp"
#include "src/util/cli.hpp"

namespace {

struct Candidate {
  const char* label;
  std::size_t width, height, channels;
};

}  // namespace

int main(int argc, char** argv) try {
  const seghdc::util::Cli cli(argc, argv);
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 2000));
  const auto iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 3));

  const auto pi = seghdc::device::DeviceSpec::raspberry_pi_4b();
  std::printf("target device: %s\n  %s, %.1f GB RAM (%.1f GB usable)\n\n",
              pi.name.c_str(), pi.cpu.c_str(),
              static_cast<double>(pi.mem_total_bytes) / (1 << 30),
              static_cast<double>(pi.mem_available_bytes) / (1 << 30));

  const Candidate candidates[] = {
      {"QVGA gray", 320, 240, 1},
      {"DSB2018 tile", 320, 256, 3},
      {"BBBC005 full", 696, 520, 1},
      {"1 MP gray", 1024, 1024, 1},
  };

  seghdc::baseline::KimConfig kim;  // reference configuration
  seghdc::core::SegHdcConfig seghdc_config;
  seghdc_config.dim = dim;
  seghdc_config.iterations = iterations;

  std::printf("%-14s | %-24s | %-24s\n", "workload", "SegHDC (proj.)",
              "CNN baseline (proj.)");
  std::printf("%-14s | %-11s %-12s | %-11s %-12s\n", "", "latency",
              "peak mem", "latency", "peak mem");
  for (const auto& c : candidates) {
    const seghdc::device::SegHdcWorkload hdc_load{
        .pixels = c.width * c.height,
        .dim = dim,
        .clusters = 2,
        .iterations = iterations,
    };
    const double hdc_latency =
        seghdc::device::project_seghdc_latency(pi, hdc_load);
    const auto hdc_memory = seghdc::device::estimate_seghdc_memory(
        seghdc_config, c.height, c.width);

    const seghdc::device::KimWorkload kim_load{
        .config = kim,
        .channels = c.channels,
        .height = c.height,
        .width = c.width,
        .iterations = kim.max_iterations,
    };
    const double kim_latency =
        seghdc::device::project_kim_latency(pi, kim_load);
    const auto kim_memory =
        seghdc::device::estimate_kim_memory(kim, c.channels, c.height,
                                            c.width);

    char hdc_mem[32];
    char kim_mem[32];
    std::snprintf(hdc_mem, sizeof hdc_mem, "%.0f MB %s",
                  static_cast<double>(hdc_memory.peak_bytes()) / (1 << 20),
                  hdc_memory.fits(pi) ? "ok" : "OOM!");
    std::snprintf(kim_mem, sizeof kim_mem, "%.0f MB %s",
                  static_cast<double>(kim_memory.peak_bytes()) / (1 << 20),
                  kim_memory.fits(pi) ? "ok" : "OOM!");
    std::printf("%-14s | %9.1fs  %-12s | %9.0fs  %-12s\n", c.label,
                hdc_latency, hdc_mem, kim_latency, kim_mem);
  }
  std::printf("\nCNN projections assume the reference configuration "
              "(100 channels, %zu iterations).\n", kim.max_iterations);
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "edge_planner failed: %s\n", error.what());
  return 1;
}
