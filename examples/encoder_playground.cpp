// Encoder playground: prints Fig. 3-style Hamming-distance grids for the
// four position-encoding variants and the Manhattan structure of the
// color ladder, so the paper's central mechanism can be inspected
// numerically.
//
//   ./encoder_playground [--dim 4096] [--grid 6]
#include <cstdio>
#include <exception>

#include "src/core/color_encoder.hpp"
#include "src/core/position_encoder.hpp"
#include "src/hdc/distances.hpp"
#include "src/util/cli.hpp"
#include "src/util/rng.hpp"

namespace {

void print_grid(const char* title, seghdc::core::PositionEncoding encoding,
                std::size_t dim, std::size_t grid, double alpha,
                std::size_t beta) {
  using namespace seghdc;
  core::PositionEncoderConfig config{
      .dim = dim,
      .rows = grid,
      .cols = grid,
      .encoding = encoding,
      .alpha = alpha,
      .beta = beta,
  };
  util::Rng rng(7);
  const core::PositionEncoder encoder(config, rng);
  const auto origin = encoder.encode(0, 0);

  std::printf("%s (x_row=%zu, x_col=%zu)\n", title,
              encoder.row_flip_unit(), encoder.col_flip_unit());
  std::printf("  hamming(p(0,0), p(i,j)) for i,j < %zu:\n", grid);
  for (std::size_t i = 0; i < grid; ++i) {
    std::printf("   ");
    for (std::size_t j = 0; j < grid; ++j) {
      std::printf("%6zu",
                  hdc::hamming_distance(origin, encoder.encode(i, j)));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace seghdc;
  const util::Cli cli(argc, argv);
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 4096));
  const auto grid = static_cast<std::size_t>(cli.get_int("grid", 6));

  std::printf("== Position encodings (paper Fig. 3) ==\n\n");
  print_grid("(a) uniform: row/column flips collide",
             core::PositionEncoding::kUniform, dim, grid, 1.0, 1);
  print_grid("(b) Manhattan: disjoint half-regions",
             core::PositionEncoding::kManhattan, dim, grid, 1.0, 1);
  print_grid("(c) decay Manhattan (alpha = 0.5)",
             core::PositionEncoding::kDecayManhattan, dim, grid, 0.5, 1);
  print_grid("(d) block decay Manhattan (alpha = 0.5, beta = 2)",
             core::PositionEncoding::kBlockDecayManhattan, dim, grid, 0.5,
             2);

  std::printf("== Color ladder (paper Section III-2) ==\n\n");
  util::Rng rng(11);
  const core::ColorEncoder colors(
      core::ColorEncoderConfig{.dim = dim, .channels = 1}, rng);
  std::printf("  hamming(v_0, v_k) for gray levels k (unit uc = %zu):\n",
              colors.channel_span(0) / 255);
  for (const std::size_t k : {0, 1, 2, 4, 8, 16, 32, 64, 128, 255}) {
    std::printf("   k=%3zu: %6zu\n", k,
                hdc::hamming_distance(
                    colors.channel_hv(0, 0),
                    colors.channel_hv(0, static_cast<std::uint8_t>(k))));
  }

  std::printf("\n== Pseudo-orthogonality (paper Lemma 1) ==\n\n");
  core::PositionEncoderConfig pos_config{
      .dim = dim, .rows = grid, .cols = grid,
      .encoding = core::PositionEncoding::kManhattan,
      .alpha = 1.0, .beta = 1};
  util::Rng rng2(13);
  const core::PositionEncoder positions(pos_config, rng2);
  std::printf("  N(dh(position(0,0), color(128))) = %.4f  (~0.5)\n",
              hdc::normalized_hamming(positions.encode(0, 0),
                                      colors.channel_hv(0, 128)));
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "encoder_playground failed: %s\n", error.what());
  return 1;
}
