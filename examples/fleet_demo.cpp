// Multi-tenant serving: three differently-configured segmentation
// services sharing one process and one thread pool through
// serve::SegHdcFleet — per-tenant admission quotas, fair-share
// dispatch under a fleet-wide in-flight cap, and a hot retire while
// the other tenants keep streaming.
//
//   ./fleet_demo [--images 12] [--threads 4] [--max-in-flight 2]
//
// The demo registers a fast screening tenant, a high-accuracy tenant,
// and a low-power tenant (same traffic, different SegHdcConfig each),
// floods all three, prints the per-tenant and fleet-wide stats, then
// retires the screening tenant mid-run — its drain completes every
// accepted request and the survivors are untouched.
#include <cstdio>
#include <exception>
#include <future>
#include <string>
#include <vector>

#include "src/core/config.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/serve/fleet.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"

int main(int argc, char** argv) try {
  const seghdc::util::Cli cli(argc, argv);
  const auto image_count =
      static_cast<std::size_t>(cli.get_int("images", 12));

  // 1. One pool for the whole fleet: tenant count scales admission
  // state, not thread count. The fleet-wide in-flight cap is the knob
  // fair share arbitrates under load.
  seghdc::util::ThreadPool pool(
      static_cast<std::size_t>(cli.get_int("threads", 4)));
  seghdc::serve::FleetOptions fleet_options;
  fleet_options.pool = &pool;
  fleet_options.max_in_flight_total =
      static_cast<std::size_t>(cli.get_int("max-in-flight", 2));
  seghdc::serve::SegHdcFleet fleet(fleet_options);

  // 2. Three tenants, three operating points of the same algorithm.
  seghdc::core::SegHdcConfig screening;  // fast, low dimension
  screening.dim = 512;
  screening.iterations = 3;
  seghdc::core::SegHdcConfig accurate;  // the paper's operating point
  accurate.dim = 2000;
  accurate.iterations = 8;
  seghdc::core::SegHdcConfig low_power;  // tiny HVs for an MCU-ish budget
  low_power.dim = 256;
  low_power.iterations = 4;

  seghdc::serve::TenantOptions quota;
  quota.max_queued = 16;   // admission queue cap (kBlock: producer waits)
  quota.max_in_flight = 2; // per-tenant dispatch cap
  fleet.add_tenant("screening", screening, quota);
  fleet.add_tenant("accurate", accurate, quota);
  fleet.add_tenant("low-power", low_power, quota);

  // 3. The same synthetic traffic for everyone, interleaved.
  const seghdc::data::Dsb2018Generator camera{
      seghdc::data::Dsb2018Config{}};
  std::vector<seghdc::img::ImageU8> images;
  for (std::size_t i = 0; i < image_count; ++i) {
    images.push_back(camera.generate(i).image);
  }
  std::vector<std::vector<std::future<seghdc::core::SegmentationResult>>>
      futures(3);
  const std::vector<std::string> names = {"screening", "accurate",
                                          "low-power"};
  for (const auto& image : images) {
    for (std::size_t t = 0; t < names.size(); ++t) {
      futures[t].push_back(fleet.submit(names[t], image));
    }
  }

  // 4. Retire the screening tenant while the fleet is loaded: the drain
  // completes everything it accepted, the other tenants never notice.
  fleet.retire_tenant("screening");
  std::printf("retired 'screening' mid-run; live tenants now:");
  for (const auto& name : fleet.tenant_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  for (std::size_t t = 0; t < names.size(); ++t) {
    std::size_t clusters = 0;
    for (auto& future : futures[t]) {
      clusters += future.get().cluster_pixel_counts.size();
    }
    std::printf("%-10s delivered %zu results (%zu clusters total)\n",
                names[t].c_str(), futures[t].size(), clusters);
  }

  // 5. The fleet's books: per-tenant quotas and the shared latency view.
  const auto stats = fleet.stats();
  std::printf("\nfleet: %llu accepted, %llu completed, %.1f images/sec, "
              "p95 %.1f ms (percentiles over last %llu of %llu requests)\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              stats.throughput_images_per_sec,
              stats.latency.p95_seconds * 1e3,
              static_cast<unsigned long long>(stats.latency.window_count),
              static_cast<unsigned long long>(stats.latency.count));
  for (const auto& tenant : stats.tenants) {
    std::printf("  %-10s accepted=%llu dispatched=%llu completed=%llu "
                "p95=%.1f ms\n",
                tenant.name.c_str(),
                static_cast<unsigned long long>(tenant.accepted),
                static_cast<unsigned long long>(tenant.dispatched),
                static_cast<unsigned long long>(tenant.server.completed),
                tenant.server.latency.p95_seconds * 1e3);
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "fleet_demo failed: %s\n", error.what());
  return 1;
}
