// Compare segmentation methods on equal footing with the eval API:
// SegHDC vs the Otsu classical baseline (and optionally the CNN
// baseline with --with-cnn) over any of the three synthetic suites.
//
//   ./method_comparison [--dataset DSB2018] [--images 6] [--with-cnn]
//                       [--out out/comparison]
#include <cstdio>
#include <exception>
#include <memory>

#include "src/datasets/bbbc005.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/datasets/monuseg.hpp"
#include "src/eval/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

namespace {

using namespace seghdc;

std::unique_ptr<data::DatasetGenerator> make_dataset(
    const std::string& name) {
  if (name == "BBBC005") {
    data::Bbbc005Config config;
    config.width = 348;  // host-scale frame
    config.height = 260;
    config.min_radius = 8.0;
    config.max_radius = 15.0;
    return std::make_unique<data::Bbbc005Generator>(config);
  }
  if (name == "DSB2018") {
    return std::make_unique<data::Dsb2018Generator>();
  }
  if (name == "MoNuSeg") {
    return std::make_unique<data::MonusegGenerator>();
  }
  throw std::invalid_argument("unknown dataset '" + name +
                              "' (BBBC005|DSB2018|MoNuSeg)");
}

void report(const eval::SuiteResult& result) {
  std::printf("%-10s %8.4f %8.4f %8.4f %8.4f %10.2fs\n",
              result.method.c_str(), result.mean_iou(),
              result.stddev_iou(), result.min_iou(), result.max_iou(),
              result.mean_seconds());
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto dataset_name = cli.get("dataset", "DSB2018");
  const auto images = static_cast<std::size_t>(cli.get_int("images", 6));
  const auto out_dir = cli.get("out", "out/comparison");
  util::ensure_directory(out_dir);

  const auto dataset = make_dataset(dataset_name);
  std::printf("dataset: %s, %zu images\n\n", dataset_name.c_str(), images);
  std::printf("%-10s %8s %8s %8s %8s %11s\n", "method", "mean", "std",
              "min", "max", "s/image");

  core::SegHdcConfig config;
  config.dim = 2000;
  config.beta = dataset->profile().suggested_beta;
  config.clusters = dataset->profile().suggested_clusters;
  config.iterations = 10;
  config.color_quantization_shift = 2;

  const auto seghdc_result = eval::evaluate_suite(
      *dataset, images, "SegHDC", eval::seghdc_method(config));
  report(seghdc_result);
  eval::write_suite_csv(seghdc_result, out_dir + "/seghdc.csv");

  const auto otsu_result = eval::evaluate_suite(
      *dataset, images, "Otsu", eval::otsu_method());
  report(otsu_result);
  eval::write_suite_csv(otsu_result, out_dir + "/otsu.csv");

  const auto otsu_eq_result = eval::evaluate_suite(
      *dataset, images, "Otsu+eq", eval::otsu_method(true));
  report(otsu_eq_result);
  eval::write_suite_csv(otsu_eq_result, out_dir + "/otsu_eq.csv");

  if (cli.get_flag("with-cnn")) {
    baseline::KimConfig kim;
    kim.feature_channels = 32;
    kim.max_iterations = 60;
    const auto kim_result = eval::evaluate_suite(
        *dataset, images, "CNN-BL", eval::kim_method(kim, 2));
    report(kim_result);
    eval::write_suite_csv(kim_result, out_dir + "/cnn.csv");
  }

  std::printf("\nper-image CSVs under %s/\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "method_comparison failed: %s\n", error.what());
  return 1;
}
