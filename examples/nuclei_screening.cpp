// High-throughput screening scenario (the workload BBBC005 models):
// segment a batch of fluorescent cell images, estimate per-well cell
// confluence (foreground fraction) and cell counts, and emit a CSV
// report — the kind of pipeline a plate-screening rig would run on-device.
//
//   ./nuclei_screening [--images 8] [--dim 2000] [--out out/screening]
#include <cstdio>
#include <exception>

#include "src/core/seghdc.hpp"
#include "src/datasets/bbbc005.hpp"
#include "src/imaging/connected_components.hpp"
#include "src/imaging/morphology.hpp"
#include "src/imaging/pnm.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  const seghdc::util::Cli cli(argc, argv);
  const auto image_count =
      static_cast<std::size_t>(cli.get_int("images", 8));
  const auto out_dir = cli.get("out", "out/screening");
  seghdc::util::ensure_directory(out_dir);

  // Scaled-down wells keep this demo snappy; drop the config override to
  // run full 520x696 BBBC005 geometry.
  seghdc::data::Bbbc005Config data_config;
  data_config.width = 348;
  data_config.height = 260;
  const seghdc::data::Bbbc005Generator dataset(data_config);

  seghdc::core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 2000));
  config.beta = dataset.profile().suggested_beta;
  config.clusters = 2;
  config.iterations = 10;
  const seghdc::core::SegHdc seghdc(config);

  seghdc::util::CsvWriter csv(
      out_dir + "/report.csv",
      {"well", "cells_true", "cells_detected", "confluence", "iou",
       "seconds"});

  std::printf("%-14s %10s %14s %12s %8s %9s\n", "well", "cells_true",
              "cells_detected", "confluence", "iou", "seconds");
  double iou_sum = 0.0;
  for (std::size_t i = 0; i < image_count; ++i) {
    const auto sample = dataset.generate(i);
    const auto result = seghdc.segment(sample.image);
    const auto matched = seghdc::metrics::best_foreground_iou(
        result.labels, config.clusters, sample.mask);

    // Post-process: morphological opening removes speckle before
    // counting cells as connected components.
    const auto cleaned = seghdc::img::open3x3(matched.mask);
    const auto components = seghdc::img::connected_components(cleaned);
    std::size_t detected = 0;
    for (const auto& component : components.components) {
      if (component.area >= 40) {  // reject sub-cellular fragments
        ++detected;
      }
    }

    std::uint64_t fg_pixels = 0;
    for (const auto v : matched.mask.pixels()) {
      fg_pixels += v != 0 ? 1 : 0;
    }
    const double confluence = static_cast<double>(fg_pixels) /
                              static_cast<double>(matched.mask.pixel_count());

    std::printf("%-14s %10zu %14zu %11.1f%% %8.4f %8.2fs\n",
                sample.id.c_str(), sample.instance_count, detected,
                confluence * 100.0, matched.iou,
                result.timings.total_seconds);
    csv.row({sample.id, std::to_string(sample.instance_count),
             std::to_string(detected),
             seghdc::util::CsvWriter::field(confluence),
             seghdc::util::CsvWriter::field(matched.iou),
             seghdc::util::CsvWriter::field(
                 result.timings.total_seconds)});
    iou_sum += matched.iou;

    if (i == 0) {
      seghdc::img::write_pgm(sample.image, out_dir + "/well0_image.pgm");
      seghdc::img::write_pgm(matched.mask, out_dir + "/well0_mask.pgm");
    }
  }
  std::printf("mean IoU over %zu wells: %.4f\n", image_count,
              iou_sum / static_cast<double>(image_count));
  std::printf("report: %s/report.csv\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "nuclei_screening failed: %s\n", error.what());
  return 1;
}
