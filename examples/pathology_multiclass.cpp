// Digital-pathology scenario (the workload MoNuSeg models): 3-way
// clustering of an H&E tissue tile — nuclei vs. cytoplasm/gland tissue
// vs. stroma — exactly the k=3 configuration the paper uses for
// MoNuSeg. Writes the color-coded cluster map next to the input and
// reports nuclei IoU after optimal cluster matching.
//
//   ./pathology_multiclass [--dim 4000] [--tiles 3] [--out out/pathology]
#include <cstdio>
#include <exception>

#include "src/core/seghdc.hpp"
#include "src/datasets/monuseg.hpp"
#include "src/imaging/color.hpp"
#include "src/imaging/pnm.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  const seghdc::util::Cli cli(argc, argv);
  const auto tiles = static_cast<std::size_t>(cli.get_int("tiles", 3));
  const auto out_dir = cli.get("out", "out/pathology");
  seghdc::util::ensure_directory(out_dir);

  const seghdc::data::MonusegGenerator dataset;

  seghdc::core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 4000));
  config.beta = dataset.profile().suggested_beta;          // 26
  config.clusters = dataset.profile().suggested_clusters;  // 3
  config.iterations = 10;
  // Color dominates position on busy histology texture; gamma > 1
  // re-weights toward color exactly as Section III-③ describes.
  config.gamma = static_cast<std::size_t>(cli.get_int("gamma", 2));
  const seghdc::core::SegHdc seghdc(config);

  std::printf("%-14s %8s %10s %12s %9s\n", "tile", "nuclei", "clusters",
              "nuclei_iou", "seconds");
  for (std::size_t i = 0; i < tiles; ++i) {
    const auto sample = dataset.generate(i);
    const auto result = seghdc.segment(sample.image);
    const auto matched = seghdc::metrics::best_foreground_iou(
        result.labels, config.clusters, sample.mask);

    std::printf("%-14s %8zu %10zu %12.4f %8.2fs\n", sample.id.c_str(),
                sample.instance_count, result.clusters, matched.iou,
                result.timings.total_seconds);

    const auto prefix = out_dir + "/" + sample.id;
    seghdc::img::write_ppm(sample.image, prefix + "_image.ppm");
    seghdc::img::write_ppm(seghdc::img::colorize_labels(result.labels),
                           prefix + "_clusters.ppm");
    seghdc::img::write_pgm(matched.mask, prefix + "_nuclei.pgm");
    seghdc::img::write_pgm(sample.mask, prefix + "_truth.pgm");
  }
  std::printf("tiles written under %s/\n", out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "pathology_multiclass failed: %s\n", error.what());
  return 1;
}
