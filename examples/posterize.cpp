// Posterize: large-K palette mapping as a segmentation workload — the
// regime the candidate-pruned assignment path was built for. Clusters a
// colorful image into K palette entries, runs the SAME problem once with
// exhaustive assignment and once with pruning forced, and hard-fails
// (exit 1) if the label maps differ anywhere: pruning is an exactness
// contract, not an approximation.
//
//   ./posterize [input.ppm] [--output posterized.ppm] [--clusters 16]
//               [--dim 2000] [--iterations 6] [--seed 42]
//
// Without an input path a synthetic 96x72 test card (two color
// gradients, a sun disc, and a horizon band) is posterized instead, so
// the example runs self-contained in CI. The output image replaces each
// pixel with its cluster's mean color.
#include <cstdio>
#include <exception>
#include <vector>

#include "src/core/session.hpp"
#include "src/imaging/pnm.hpp"
#include "src/util/cli.hpp"

namespace {

using namespace seghdc;

/// Synthetic color card: sky/sea gradients, a bright sun disc, and a
/// dark horizon band — enough distinct color families that K = 16
/// palette slots all get used.
img::ImageU8 make_test_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const bool sky = y < height / 2;
      const auto fx = static_cast<double>(x) / static_cast<double>(width);
      const auto fy = static_cast<double>(y) / static_cast<double>(height);
      if (sky) {
        image.at(x, y, 0) = static_cast<std::uint8_t>(40 + 180 * fx);
        image.at(x, y, 1) = static_cast<std::uint8_t>(90 + 120 * fy);
        image.at(x, y, 2) = static_cast<std::uint8_t>(200 - 80 * fx);
      } else {
        image.at(x, y, 0) = static_cast<std::uint8_t>(20 + 40 * fy);
        image.at(x, y, 1) = static_cast<std::uint8_t>(60 + 150 * fx);
        image.at(x, y, 2) = static_cast<std::uint8_t>(90 + 60 * fy);
      }
      // Sun disc in the upper-left sky.
      const double dx = fx - 0.25;
      const double dy = fy - 0.22;
      if (dx * dx + dy * dy < 0.012) {
        image.at(x, y, 0) = 250;
        image.at(x, y, 1) = 220;
        image.at(x, y, 2) = 90;
      }
      // Dark horizon band.
      if (y >= height / 2 && y < height / 2 + height / 16 + 1) {
        image.at(x, y, 0) = 25;
        image.at(x, y, 1) = 30;
        image.at(x, y, 2) = 45;
      }
    }
  }
  return image;
}

/// Replaces every pixel with its cluster's mean color.
img::ImageU8 palette_map(const img::ImageU8& image,
                         const img::LabelMap& labels,
                         std::size_t clusters) {
  const std::size_t channels = image.channels();
  std::vector<std::uint64_t> sum(clusters * channels, 0);
  std::vector<std::uint64_t> count(clusters, 0);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const auto label = labels(x, y);
      ++count[label];
      for (std::size_t c = 0; c < channels; ++c) {
        sum[label * channels + c] += image.at(x, y, c);
      }
    }
  }
  img::ImageU8 out(image.width(), image.height(), 3);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const auto label = labels(x, y);
      for (std::size_t c = 0; c < 3; ++c) {
        const auto channel = c < channels ? c : channels - 1;
        out.at(x, y, c) = static_cast<std::uint8_t>(
            sum[label * channels + channel] / count[label]);
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto clusters =
      static_cast<std::size_t>(cli.get_int("clusters", 16));
  const std::string output = cli.get("output", "posterized.ppm");

  img::ImageU8 image =
      cli.positional().empty() ? make_test_card(96, 72)
                               : img::read_pnm(cli.positional()[0]);
  std::printf("posterize: %zux%zu, %zu channel(s), %zu palette slots\n",
              image.width(), image.height(), image.channels(), clusters);

  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 2000));
  config.clusters = clusters;
  config.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 6));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // Same problem, both assignment modes. The pruned run is the one we
  // keep; the exhaustive run is the ground truth it must match bit for
  // bit (same tie-breaking: lowest cluster index wins).
  config.assign_mode = core::AssignMode::kExhaustive;
  const core::SegHdcSession exhaustive_session(config);
  const auto exhaustive = exhaustive_session.segment(image);

  config.assign_mode = core::AssignMode::kPruned;
  const core::SegHdcSession pruned_session(config);
  const auto pruned = pruned_session.segment(image);

  if (exhaustive.labels != pruned.labels) {
    std::fprintf(stderr,
                 "FAIL: pruned labels diverge from exhaustive assignment\n");
    return 1;
  }
  const auto candidate_pairs =
      pruned.ops.distance_evals + pruned.ops.candidates_pruned;
  std::printf("pruned == exhaustive (%zu unique points, %zu iterations); "
              "pruning skipped %.1f%% of %llu candidate pairs\n",
              pruned.unique_points, pruned.iterations_run,
              candidate_pairs == 0
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(pruned.ops.candidates_pruned) /
                        static_cast<double>(candidate_pairs),
              static_cast<unsigned long long>(candidate_pairs));

  img::write_ppm(palette_map(image, pruned.labels, pruned.clusters),
                 output);
  std::printf("wrote %s\n", output.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "posterize failed: %s\n", error.what());
  return 1;
}
