// Quickstart: segment one synthetic nuclei image with SegHDC in ~20
// lines of user code.
//
//   ./quickstart [--dim 2000] [--iterations 10] [--out out/quickstart]
//
// Generates a DSB2018-like RGB tile, runs the SegHDC pipeline, evaluates
// IoU against the known ground truth, and writes the image / ground
// truth / predicted mask as PPM/PGM files.
#include <cstdio>
#include <exception>

#include "src/core/session.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/imaging/pnm.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) try {
  const seghdc::util::Cli cli(argc, argv);
  const auto out_dir = cli.get("out", "out/quickstart");
  seghdc::util::ensure_directory(out_dir);

  // 1. A sample image (normally: load your own via img::read_pnm).
  const seghdc::data::Dsb2018Generator dataset;
  const seghdc::data::Sample sample = dataset.generate(0);
  std::printf("image: %s  (%zux%zu, %zu channels, %zu nuclei)\n",
              sample.id.c_str(), sample.image.width(),
              sample.image.height(), sample.image.channels(),
              sample.instance_count);

  // 2. Configure SegHDC (defaults follow the paper's Section IV-A).
  seghdc::core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 2000));
  config.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 10));
  config.beta = dataset.profile().suggested_beta;        // 26
  config.clusters = dataset.profile().suggested_clusters;  // 2

  // 3. Segment. A session reuses the encoder state across calls (and
  // batches via segment_many); for one image it costs the same as the
  // stateless SegHdc and returns identical results.
  const seghdc::core::SegHdcSession session(config);
  const seghdc::core::SegmentationResult result =
      session.segment(sample.image);

  // 4. Evaluate against the ground truth.
  const seghdc::metrics::MatchedIou matched =
      seghdc::metrics::best_foreground_iou(result.labels, config.clusters,
                                           sample.mask);

  std::printf("segmented in %.3f s (encode %.3f s, cluster %.3f s), "
              "%zu unique points\n",
              result.timings.total_seconds, result.timings.encode_seconds,
              result.timings.cluster_seconds, result.unique_points);
  std::printf("IoU = %.4f\n", matched.iou);

  // 5. Persist the qualitative results.
  seghdc::img::write_ppm(sample.image, out_dir + "/image.ppm");
  seghdc::img::write_pgm(sample.mask, out_dir + "/ground_truth.pgm");
  seghdc::img::write_pgm(matched.mask, out_dir + "/prediction.pgm");
  std::printf("wrote %s/{image.ppm,ground_truth.pgm,prediction.pgm}\n",
              out_dir.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "quickstart failed: %s\n", error.what());
  return 1;
}
