// Command-line segmentation of an arbitrary PNG/PGM/PPM image — the
// tool a downstream user actually runs on their own microscopy frames
// (the input format is sniffed from content, the outputs dispatch on
// extension):
//
//   ./segment_file input.png output.png [--clusters 2] [--dim 2000]
//                  [--beta 26] [--alpha 0.2] [--iterations 10]
//                  [--min-area 0] [--clusters-map clusters.ppm]
//
// Writes the best-guess binary foreground mask (brightest cluster(s) by
// mean intensity) to `output`, optionally post-processed and with the
// raw cluster map saved alongside.
#include <cstdio>
#include <exception>
#include <vector>

#include "src/core/session.hpp"
#include "src/imaging/color.hpp"
#include "src/imaging/png.hpp"
#include "src/imaging/postprocess.hpp"
#include "src/util/cli.hpp"

namespace {

using namespace seghdc;

/// Picks foreground clusters by mean intensity: every cluster whose mean
/// luma is on the far side of the global midpoint between the darkest
/// and brightest cluster means. With k = 2 this is simply "the brighter
/// cluster" (or the darker one under --dark-foreground).
std::uint32_t foreground_by_intensity(const img::ImageU8& image,
                                      const img::LabelMap& labels,
                                      std::size_t clusters,
                                      bool dark_foreground) {
  std::vector<double> sum(clusters, 0.0);
  std::vector<std::size_t> count(clusters, 0);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const auto label = labels(x, y);
      sum[label] += img::pixel_intensity(image, x, y);
      ++count[label];
    }
  }
  double lo = 255.0;
  double hi = 0.0;
  std::vector<double> means(clusters, 0.0);
  for (std::size_t c = 0; c < clusters; ++c) {
    means[c] = count[c] == 0 ? 0.0
                             : sum[c] / static_cast<double>(count[c]);
    lo = std::min(lo, means[c]);
    hi = std::max(hi, means[c]);
  }
  const double midpoint = (lo + hi) / 2.0;
  std::uint32_t mask = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    const bool bright = means[c] > midpoint;
    if (bright != dark_foreground) {
      mask |= 1u << c;
    }
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: %s input.{png,pgm,ppm} output.{png,pgm} [--clusters 2] "
                 "[--dim 2000] [--beta 26] [--alpha 0.2] [--gamma 1] "
                 "[--iterations 10] [--seed 42] [--quantize 2] "
                 "[--min-area N] [--dark-foreground] "
                 "[--clusters-map file.ppm]\n",
                 argv[0]);
    return 2;
  }

  const auto image = img::read_image(cli.positional()[0]);
  std::printf("loaded %s: %zux%zu, %zu channel(s)\n",
              cli.positional()[0].c_str(), image.width(), image.height(),
              image.channels());

  core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 2000));
  config.clusters = static_cast<std::size_t>(cli.get_int("clusters", 2));
  config.beta = static_cast<std::size_t>(cli.get_int("beta", 26));
  config.alpha = cli.get_double("alpha", 0.2);
  config.gamma = static_cast<std::size_t>(cli.get_int("gamma", 1));
  config.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 10));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  config.color_quantization_shift =
      static_cast<std::size_t>(cli.get_int("quantize", 2));

  const core::SegHdcSession session(config);
  const auto result = session.segment(image);
  std::printf("segmented in %.2f s (%zu unique points, %zu clusters)\n",
              result.timings.total_seconds, result.unique_points,
              result.clusters);

  const auto fg_mask = foreground_by_intensity(
      image, result.labels, config.clusters,
      cli.get_flag("dark-foreground"));
  auto mask = img::labels_to_mask(result.labels, fg_mask);

  const auto min_area =
      static_cast<std::size_t>(cli.get_int("min-area", 0));
  if (min_area > 0) {
    mask = img::clean_mask(mask, min_area);
  }
  img::write_image(mask, cli.positional()[1]);
  std::printf("wrote mask: %s\n", cli.positional()[1].c_str());

  const auto clusters_path = cli.get("clusters-map", "");
  if (!clusters_path.empty()) {
    img::write_image(img::colorize_labels(result.labels), clusters_path);
    std::printf("wrote cluster map: %s\n", clusters_path.c_str());
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "segment_file failed: %s\n", error.what());
  return 1;
}
