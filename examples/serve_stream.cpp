// Serving a temporal stream: synthetic camera frames are written to disk
// as PPM, read back through `img::read_pnm` (the same path a real camera
// pipeline or ffmpeg dump would take), and pushed through a
// SegHdcServer stream handle so consecutive frames warm-start each
// other — previous-frame centroid seeding, unchanged-band encode reuse,
// and bit-for-bit replay of byte-identical frames.
//
//   ./serve_stream [--frames 24] [--width 96] [--height 72]
//                  [--dim 1000] [--threads 4] [--queue 8] [--keep]
//                  [--trace stream.json]
//
// --trace captures a span timeline of the whole run (queue waits,
// encode bands, K-Means iterations, tile-reuse decisions) and writes
// Chrome-trace JSON — drop it on https://ui.perfetto.dev to see where
// each frame spent its time.
//
// The feed is a static prefix (a parked camera), a slow pan, then a
// static tail — the shape warm-start is built for. A cold per-frame
// loop over the same files is timed first; the per-frame table then
// shows what the stream path skipped (reused tiles, fewer K-Means
// iterations, replayed frames) and the measured speedup. Frame 0 of the
// stream is hash-checked against the cold loop: the first frame of a
// stream IS the cold path.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "src/core/session.hpp"
#include "src/imaging/pnm.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace {

// One synthetic camera frame: a gradient background, a fixed noisy
// texture band (so dedup has real work), and a dark square parked at
// `square_x` — the thing that moves when the camera pans.
seghdc::img::ImageU8 render_frame(std::size_t width, std::size_t height,
                                  std::size_t square_x) {
  seghdc::img::ImageU8 frame(width, height, 3);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const auto base = static_cast<std::uint8_t>(160 + (y * 40) / height);
      frame.at(x, y, 0) = base;
      frame.at(x, y, 1) = base;
      frame.at(x, y, 2) = static_cast<std::uint8_t>(base - 10);
    }
  }
  for (std::size_t x = 0; x < width; ++x) {  // static texture band
    frame.at(x, 0, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  const std::size_t side = height / 4;
  for (std::size_t dy = 0; dy < side; ++dy) {
    for (std::size_t dx = 0; dx < side; ++dx) {
      const std::size_t x = square_x + dx;
      const std::size_t y = height / 3 + dy;
      if (x < width && y < height) {
        frame.at(x, y, 0) = 40;
        frame.at(x, y, 1) = 45;
        frame.at(x, y, 2) = 50;
      }
    }
  }
  return frame;
}

}  // namespace

int main(int argc, char** argv) try {
  namespace fs = std::filesystem;
  const seghdc::util::Cli cli(argc, argv);
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 24));
  const auto width = static_cast<std::size_t>(cli.get_int("width", 96));
  const auto height = static_cast<std::size_t>(cli.get_int("height", 72));
  const bool keep = cli.get_flag("keep");

  // --trace <path>: record spans for the whole run (cold loop included)
  // and export Chrome-trace JSON before exiting.
  const std::string trace_path = cli.get("trace", "");
  std::optional<seghdc::obs::TraceSession> trace;
  if (!trace_path.empty()) {
    trace.emplace();
  }

  seghdc::core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 1000));
  config.beta = 8;
  config.iterations = 6;
  config.color_quantization_shift = 2;

  // 1. The "recording": a static prefix, a 1-px/frame pan, a static
  // tail — written as P6 PPM files and read back through read_pnm, the
  // loader any external frame source would hit.
  const fs::path dir = fs::temp_directory_path() / "seghdc_stream_frames";
  fs::create_directories(dir);
  std::vector<std::string> paths;
  const std::size_t prefix = frames / 4;
  const std::size_t tail = frames / 4;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t pan =
        f < prefix ? 0 : std::min(f - prefix, frames - prefix - tail);
    const auto frame = render_frame(width, height, width / 8 + pan);
    char name[32];
    std::snprintf(name, sizeof(name), "frame_%03zu.ppm",
                  static_cast<std::size_t>(f));
    paths.push_back((dir / name).string());
    seghdc::img::write_pnm(frame, paths.back());
  }

  seghdc::util::ThreadPool pool(
      static_cast<std::size_t>(cli.get_int("threads", 4)));

  // 2. Cold reference: every frame segmented from scratch, no temporal
  // state. This is what a per-image deployment would pay.
  const seghdc::core::SegHdcSession session(
      config, seghdc::core::SegHdcSession::Options{&pool});
  std::vector<double> cold_ms;
  std::vector<std::size_t> cold_iters;
  std::vector<std::uint64_t> cold_hash;
  for (const auto& path : paths) {
    const auto frame = seghdc::img::read_pnm(path);
    const seghdc::util::Stopwatch watch;
    const auto result = session.segment(frame);
    cold_ms.push_back(watch.seconds() * 1e3);
    cold_iters.push_back(result.iterations_run);
    cold_hash.push_back(seghdc::metrics::label_map_hash(result.labels));
  }

  // 3. Stream path: the same files through a server stream handle.
  // Submission is async (futures keep frame identity); the server keeps
  // per-stream FIFO order so frame N always warms frame N+1.
  seghdc::serve::ServerOptions options;
  options.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 8));
  options.pool = &pool;
  seghdc::serve::SegHdcServer server(config, options);
  auto stream = server.open_stream();
  const seghdc::util::Stopwatch stream_watch;
  std::vector<std::future<seghdc::core::StreamFrameResult>> in_flight;
  for (const auto& path : paths) {
    in_flight.push_back(server.submit(stream, seghdc::img::read_pnm(path)));
  }

  // 4. Per-frame table: what warm-start actually skipped.
  std::printf("%5s %5s %6s %13s %12s %9s %9s\n", "frame", "warm",
              "replay", "tiles reused", "iters(cold)", "cold ms", "warm ms");
  double warm_total_ms = 0.0, cold_total_ms = 0.0;
  bool frame0_matches = true;
  for (std::size_t f = 0; f < in_flight.size(); ++f) {
    const auto outcome = in_flight[f].get();
    const auto& s = outcome.stats;
    if (f == 0) {
      frame0_matches =
          seghdc::metrics::label_map_hash(outcome.result.labels) ==
          cold_hash[0];
    }
    warm_total_ms += s.seconds * 1e3;
    cold_total_ms += cold_ms[f];
    std::printf("%5zu %5s %6s %7zu/%-5zu %6zu (%zu) %9.2f %9.2f\n",
                s.frame_index, s.warm ? "yes" : "-",
                s.replayed ? "yes" : "-", s.tiles_reused, s.tiles_total,
                s.kmeans_iterations, cold_iters[f], cold_ms[f],
                s.seconds * 1e3);
  }
  const double wall = stream_watch.seconds();

  // 5. The stream dashboard: one stats() snapshot.
  const auto stats = server.stats();
  std::printf("\nstream: %llu frames (%llu warm, %llu replayed), "
              "%llu of %llu tiles re-encoded, %llu K-Means iterations\n",
              static_cast<unsigned long long>(stats.stream.frames),
              static_cast<unsigned long long>(stats.stream.warm_frames),
              static_cast<unsigned long long>(stats.stream.replayed_frames),
              static_cast<unsigned long long>(stats.stream.tiles_encoded),
              static_cast<unsigned long long>(stats.stream.tiles_encoded +
                                              stats.stream.tiles_reused),
              static_cast<unsigned long long>(
                  stats.stream.kmeans_iterations));
  std::printf("per-frame compute: %.1f ms cold -> %.1f ms warm "
              "(%.2fx); stream wall time %.1f ms\n",
              cold_total_ms, warm_total_ms, cold_total_ms / warm_total_ms,
              wall * 1e3);
  std::printf("frame 0 labels %s the cold path\n",
              frame0_matches ? "bit-identical to" : "DIVERGE from");

  if (keep) {
    std::printf("frames kept in %s\n", dir.string().c_str());
  } else {
    fs::remove_all(dir);
  }
  if (trace.has_value()) {
    trace->write_json(trace_path);
    std::printf("trace json -> %s (%zu events) — open in "
                "https://ui.perfetto.dev\n",
                trace_path.c_str(), trace->events().size());
  }
  return frame0_matches ? 0 : 1;
} catch (const std::exception& error) {
  std::fprintf(stderr, "serve_stream failed: %s\n", error.what());
  return 1;
}
