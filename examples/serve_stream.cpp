// Serving a live stream: push a synthetic camera feed through the async
// pipelined SegHdcServer and watch backpressure, tail latency, and
// throughput — the request-level shape of the ROADMAP's "heavy traffic"
// target, in ~60 lines of user code.
//
//   ./serve_stream [--frames 32] [--dim 1000] [--queue 4]
//                  [--reject] [--threads 4]
//
// Frames are submitted as fast as the source produces them. With the
// default kBlock policy a full queue throttles the producer (a camera
// would drop frames itself); with --reject the server sheds load
// explicitly and the example counts the shed frames — the two
// backpressure strategies an edge deployment chooses between.
#include <cstdio>
#include <exception>
#include <future>
#include <vector>

#include "src/core/session.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/serve/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/parallel.hpp"

int main(int argc, char** argv) try {
  const seghdc::util::Cli cli(argc, argv);
  const auto frames = static_cast<std::size_t>(cli.get_int("frames", 32));
  const bool reject = cli.get_flag("reject");

  seghdc::core::SegHdcConfig config;
  config.dim = static_cast<std::size_t>(cli.get_int("dim", 1000));
  config.beta = 8;
  config.iterations = 6;
  config.color_quantization_shift = 2;

  // 1. The serving pipeline: bounded admission queue, one encode and one
  // cluster stage thread (different frames overlap across the stages),
  // intra-stage data parallelism on the pool.
  seghdc::util::ThreadPool pool(
      static_cast<std::size_t>(cli.get_int("threads", 4)));
  seghdc::serve::ServerOptions options;
  options.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 4));
  options.backpressure = reject
                             ? seghdc::serve::BackpressurePolicy::kReject
                             : seghdc::serve::BackpressurePolicy::kBlock;
  options.pool = &pool;
  seghdc::serve::SegHdcServer server(config, options);

  // 2. The "camera": synthetic DSB2018-like frames, submitted as fast as
  // they arrive. Futures keep frame identity; completion is async.
  const seghdc::data::Dsb2018Generator camera;
  std::vector<std::future<seghdc::core::SegmentationResult>> in_flight;
  std::size_t shed = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    try {
      in_flight.push_back(server.submit(camera.generate(f).image));
    } catch (const seghdc::serve::RejectedError&) {
      ++shed;  // load shed: the frame is dropped, the pipeline is full
    }
  }

  // 3. Consume completions (a UI thread would poll or use the sink
  // overload instead of blocking).
  std::size_t foreground_heavy = 0;
  for (auto& future : in_flight) {
    const auto result = future.get();
    if (result.cluster_pixel_counts[1] * 3 >
        result.labels.width() * result.labels.height()) {
      ++foreground_heavy;  // pretend downstream logic looks at frames
    }
  }

  // 4. The serving dashboard: one stats() snapshot.
  const auto stats = server.stats();
  std::printf("frames: %zu produced, %zu accepted, %zu completed, "
              "%zu shed\n",
              frames, in_flight.size(),
              static_cast<std::size_t>(stats.completed), shed);
  std::printf("throughput: %.1f images/sec sustained\n",
              stats.throughput_images_per_sec);
  // Percentiles/max cover the recorder's sliding window, not the whole
  // lifetime — cite the window count next to them (they differ once the
  // window wraps under sustained traffic).
  std::printf("latency: p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  "
              "(max %.1f ms over last %llu of %llu requests)\n",
              stats.latency.p50_seconds * 1e3,
              stats.latency.p95_seconds * 1e3,
              stats.latency.p99_seconds * 1e3,
              stats.latency.max_seconds * 1e3,
              static_cast<unsigned long long>(stats.latency.window_count),
              static_cast<unsigned long long>(stats.latency.count));
  std::printf("%zu of %zu frames were foreground-heavy\n",
              foreground_heavy, in_flight.size());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "serve_stream failed: %s\n", error.what());
  return 1;
}
