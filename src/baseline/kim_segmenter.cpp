#include "src/baseline/kim_segmenter.hpp"

#include <unordered_map>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/optimizer.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::baseline {

void KimConfig::validate() const {
  util::expects(feature_channels >= 2,
                "KimConfig.feature_channels must be >= 2");
  util::expects(conv_layers >= 1, "KimConfig.conv_layers must be >= 1");
  util::expects(max_iterations >= 1,
                "KimConfig.max_iterations must be >= 1");
  util::expects(min_labels >= 1, "KimConfig.min_labels must be >= 1");
  util::expects(learning_rate > 0.0,
                "KimConfig.learning_rate must be positive");
  util::expects(momentum >= 0.0 && momentum < 1.0,
                "KimConfig.momentum must be in [0, 1)");
  util::expects(similarity_weight >= 0.0 && continuity_weight >= 0.0,
                "KimConfig loss weights must be non-negative");
}

KimSegmenter::KimSegmenter(const KimConfig& config) : config_(config) {
  config_.validate();
}

namespace {

/// The reference architecture: nConv x (3x3 conv -> ReLU -> BN) followed
/// by a 1x1 conv -> BN head. Owns layers and wires the optimizer.
struct KimNet {
  std::vector<nn::Conv2d> convs;
  std::vector<nn::ReLU> relus;
  std::vector<nn::BatchNorm2d> norms;
  nn::Conv2d head;
  nn::BatchNorm2d head_norm;

  KimNet(std::size_t in_channels, std::size_t features,
         std::size_t conv_layers, util::Rng& rng)
      : head(features, features, 1, rng), head_norm(features) {
    convs.reserve(conv_layers);
    relus.resize(conv_layers);
    norms.reserve(conv_layers);
    for (std::size_t layer = 0; layer < conv_layers; ++layer) {
      const std::size_t in = layer == 0 ? in_channels : features;
      convs.emplace_back(in, features, 3, rng);
      norms.emplace_back(features);
    }
  }

  void register_parameters(nn::SgdMomentum& optimizer) {
    for (std::size_t layer = 0; layer < convs.size(); ++layer) {
      optimizer.add_parameters(convs[layer].weights(),
                               convs[layer].weight_grad());
      optimizer.add_parameters(convs[layer].bias(),
                               convs[layer].bias_grad());
      optimizer.add_parameters(norms[layer].gamma(),
                               norms[layer].gamma_grad());
      optimizer.add_parameters(norms[layer].beta(),
                               norms[layer].beta_grad());
    }
    optimizer.add_parameters(head.weights(), head.weight_grad());
    optimizer.add_parameters(head.bias(), head.bias_grad());
    optimizer.add_parameters(head_norm.gamma(), head_norm.gamma_grad());
    optimizer.add_parameters(head_norm.beta(), head_norm.beta_grad());
  }

  void zero_grad() {
    for (std::size_t layer = 0; layer < convs.size(); ++layer) {
      convs[layer].zero_grad();
      norms[layer].zero_grad();
    }
    head.zero_grad();
    head_norm.zero_grad();
  }

  nn::Tensor forward(const nn::Tensor& input) {
    nn::Tensor x = input;
    for (std::size_t layer = 0; layer < convs.size(); ++layer) {
      x = convs[layer].forward(x);
      x = relus[layer].forward(x);
      x = norms[layer].forward(x);
    }
    x = head.forward(x);
    return head_norm.forward(x);
  }

  void backward(const nn::Tensor& grad_response) {
    nn::Tensor g = head_norm.backward(grad_response);
    g = head.backward(g);
    for (std::size_t layer = convs.size(); layer-- > 0;) {
      g = norms[layer].backward(g);
      g = relus[layer].backward(g);
      g = convs[layer].backward(g);
    }
  }
};

nn::Tensor image_to_tensor(const img::ImageU8& image) {
  nn::Tensor tensor(image.channels(), image.height(), image.width());
  for (std::size_t c = 0; c < image.channels(); ++c) {
    for (std::size_t y = 0; y < image.height(); ++y) {
      for (std::size_t x = 0; x < image.width(); ++x) {
        tensor(c, y, x) = static_cast<float>(image(x, y, c)) / 255.0F;
      }
    }
  }
  return tensor;
}

}  // namespace

KimResult KimSegmenter::segment(const img::ImageU8& image) const {
  util::expects(image.channels() == 1 || image.channels() == 3,
                "KimSegmenter supports 1- or 3-channel images");
  util::expects(image.width() >= 2 && image.height() >= 2,
                "KimSegmenter needs at least a 2x2 image");

  const util::Stopwatch watch;
  util::Rng rng(config_.seed);
  const nn::Tensor input = image_to_tensor(image);

  KimNet net(image.channels(), config_.feature_channels,
             config_.conv_layers, rng);
  nn::SgdMomentum optimizer(config_.learning_rate, config_.momentum);
  net.register_parameters(optimizer);

  KimResult result;
  result.loss_history.reserve(config_.max_iterations);
  std::vector<std::uint32_t> labels;

  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    const nn::Tensor response = net.forward(input);
    labels = nn::argmax_labels(response);
    result.iterations_run = iter + 1;

    const std::size_t n_labels = nn::distinct_labels(labels);
    if (n_labels < config_.min_labels) {
      result.early_stopped = true;
      break;
    }

    const nn::LossResult similarity =
        nn::softmax_cross_entropy(response, labels);
    const nn::LossResult continuity = nn::continuity_loss(response);

    nn::Tensor grad(response.channels(), response.height(),
                    response.width());
    const auto sim_w = static_cast<float>(config_.similarity_weight);
    const auto con_w = static_cast<float>(config_.continuity_weight);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad.data()[i] = sim_w * similarity.grad.data()[i] +
                       con_w * continuity.grad.data()[i];
    }
    result.loss_history.push_back(config_.similarity_weight *
                                      similarity.loss +
                                  config_.continuity_weight *
                                      continuity.loss);

    net.zero_grad();
    net.backward(grad);
    optimizer.step();
  }

  // Final labels from the last computed argmax.
  result.labels = img::LabelMap(image.width(), image.height(), 1, 0);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      result.labels(x, y) = labels[y * image.width() + x];
    }
  }
  result.label_count = compact_labels(result.labels);
  result.train_seconds = watch.seconds();
  return result;
}

std::uint64_t KimSegmenter::total_macs(const KimConfig& config,
                                       std::size_t channels,
                                       std::size_t height, std::size_t width,
                                       std::size_t iterations) {
  std::uint64_t forward = 0;
  for (std::size_t layer = 0; layer < config.conv_layers; ++layer) {
    const std::size_t in =
        layer == 0 ? channels : config.feature_channels;
    forward += nn::Conv2d::forward_macs(in, config.feature_channels, 3,
                                        height, width);
  }
  forward += nn::Conv2d::forward_macs(config.feature_channels,
                                      config.feature_channels, 1, height,
                                      width);
  // Backward ~ 2x forward (dW GEMM + dX GEMM); BN/ReLU/loss are O(HW)
  // and negligible next to the conv GEMMs.
  return forward * 3 * iterations;
}

std::size_t compact_labels(img::LabelMap& labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (auto& value : labels.pixels()) {
    const auto [it, inserted] = remap.try_emplace(
        value, static_cast<std::uint32_t>(remap.size()));
    value = it->second;
  }
  return remap.size();
}

}  // namespace seghdc::baseline
