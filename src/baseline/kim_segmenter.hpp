// The paper's baseline (its reference [16]): W. Kim et al.,
// "Unsupervised Learning of Image Segmentation Based on Differentiable
// Feature Clustering", IEEE TIP 2020.
//
// Per image, a small CNN is trained from scratch against its OWN argmax
// pseudo-labels plus a spatial continuity regulariser:
//
//   net: [3x3 conv -> ReLU -> BN] x nConv  ->  1x1 conv -> BN
//   loop: response = net(image)
//         target   = argmax_c response          (pseudo-labels)
//         stop if #distinct(target) < min_labels
//         loss = sim * CE(response, target) + con * L1(dy, dx of response)
//         SGD(momentum) step
//   output: final argmax labels
//
// Reference defaults: 100 channels, nConv = 2, up to 1000 iterations,
// lr = 0.1, momentum = 0.9 — the configuration whose Raspberry-Pi cost
// (11,453 s / OOM at 520x696, paper Table II) the device model projects.
// The host benches run a scaled-down configuration (see DESIGN.md §4).
#ifndef SEGHDC_BASELINE_KIM_SEGMENTER_HPP
#define SEGHDC_BASELINE_KIM_SEGMENTER_HPP

#include <cstdint>
#include <vector>

#include "src/imaging/image.hpp"
#include "src/nn/tensor.hpp"

namespace seghdc::baseline {

struct KimConfig {
  std::size_t feature_channels = 100;  ///< reference: 100
  std::size_t conv_layers = 2;         ///< nConv; reference: 2
  std::size_t max_iterations = 1000;   ///< reference: 1000
  std::size_t min_labels = 3;          ///< early stop when fewer remain
  double learning_rate = 0.1;
  double momentum = 0.9;
  double similarity_weight = 1.0;      ///< stepsize_sim
  double continuity_weight = 1.0;      ///< stepsize_con
  std::uint64_t seed = 1;

  void validate() const;
};

struct KimResult {
  img::LabelMap labels;          ///< raw argmax labels, RELABELLED to 0..L-1
  std::size_t label_count = 0;   ///< distinct labels in the output
  std::size_t iterations_run = 0;
  bool early_stopped = false;
  double train_seconds = 0.0;
  std::vector<double> loss_history;
};

class KimSegmenter {
 public:
  explicit KimSegmenter(const KimConfig& config);

  const KimConfig& config() const { return config_; }

  /// Trains on `image` (1 or 3 channels, normalised internally) and
  /// returns the final label map.
  KimResult segment(const img::ImageU8& image) const;

  /// Total MACs of one full run at `iterations` iterations over an
  /// H x W, C-channel image (forward + backward ~ 3x forward). Used by
  /// the device latency model.
  static std::uint64_t total_macs(const KimConfig& config,
                                  std::size_t channels, std::size_t height,
                                  std::size_t width,
                                  std::size_t iterations);

 private:
  KimConfig config_;
};

/// Renumbers the labels of `labels` to a dense 0..L-1 range (stable:
/// first-seen order); returns L. Exposed for tests and for mapping the
/// baseline's up-to-q labels onto the metrics' cluster-count limit.
std::size_t compact_labels(img::LabelMap& labels);

}  // namespace seghdc::baseline

#endif  // SEGHDC_BASELINE_KIM_SEGMENTER_HPP
