#include "src/baseline/otsu_segmenter.hpp"

#include "src/imaging/color.hpp"
#include "src/imaging/filters.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::baseline {

OtsuResult OtsuSegmenter::segment(const img::ImageU8& image) const {
  util::expects(image.channels() == 1 || image.channels() == 3,
                "OtsuSegmenter supports 1- or 3-channel images");
  img::ImageU8 gray = img::to_gray(image);
  if (equalize_first_) {
    gray = img::equalize_histogram(gray);
  }
  OtsuResult result;
  result.threshold = img::otsu_threshold(gray);
  result.labels = img::LabelMap(gray.width(), gray.height(), 1, 0);
  for (std::size_t y = 0; y < gray.height(); ++y) {
    for (std::size_t x = 0; x < gray.width(); ++x) {
      result.labels(x, y) = gray(x, y) > result.threshold ? 1 : 0;
    }
  }
  return result;
}

}  // namespace seghdc::baseline
