// Classical global-threshold segmentation (Otsu) — the "traditional
// imaging processing" comparator the paper's introduction contrasts
// learning-based segmentation against. It is essentially free to
// compute, so it bounds what intensity information alone achieves:
// everywhere SegHDC beats Otsu, the position encoding and HV clustering
// are earning their keep (uneven illumination, per-nucleus brightness
// spread, texture).
#ifndef SEGHDC_BASELINE_OTSU_SEGMENTER_HPP
#define SEGHDC_BASELINE_OTSU_SEGMENTER_HPP

#include "src/imaging/image.hpp"

namespace seghdc::baseline {

struct OtsuResult {
  img::LabelMap labels;       ///< 0 = below threshold, 1 = above
  std::uint8_t threshold = 0; ///< the Otsu threshold used
};

class OtsuSegmenter {
 public:
  /// Optionally histogram-equalizes before thresholding.
  explicit OtsuSegmenter(bool equalize_first = false)
      : equalize_first_(equalize_first) {}

  /// Thresholds the (luma of the) image; 1 or 3 channels.
  OtsuResult segment(const img::ImageU8& image) const;

 private:
  bool equalize_first_;
};

}  // namespace seghdc::baseline

#endif  // SEGHDC_BASELINE_OTSU_SEGMENTER_HPP
