#include "src/core/color_encoder.hpp"

#include <algorithm>

#include "src/util/contracts.hpp"

namespace seghdc::core {

namespace {
constexpr std::size_t kLevels = 256;
}  // namespace

ColorEncoder::ColorEncoder(const ColorEncoderConfig& config, util::Rng& rng)
    : config_(config) {
  util::expects(config_.channels == 1 || config_.channels == 3,
                "ColorEncoder supports 1 or 3 channels");
  util::expects(config_.dim >= config_.channels * 2,
                "ColorEncoder dim too small for the channel count");
  util::expects(config_.gamma >= 1, "ColorEncoder gamma must be >= 1");

  const std::size_t base = config_.dim / config_.channels;
  channel_dims_.resize(config_.channels, base);
  channel_dims_.back() = config_.dim - base * (config_.channels - 1);
  channel_spans_.resize(config_.channels, 0);

  for (std::size_t c = 0; c < config_.channels; ++c) {
    const std::size_t d_c = channel_dims_[c];
    if (config_.encoding == ColorEncoding::kRandom) {
      // RColor ablation: classical random codebook, no level structure.
      randoms_.push_back(
          std::make_unique<hdc::RandomItemMemory>(d_c, kLevels, rng));
      ladders_.push_back(nullptr);
      continue;
    }
    // Paper ladder: unit uc = floor(d_c/256), falling back to fractional
    // stepping when a whole unit per level does not fit. gamma widens
    // every flip run gamma-fold (Fig. 5: "0 can flip to 1 and then
    // change as long as to be 11"); the cumulative offsets clip at the
    // channel capacity, so nearby colors move gamma times further apart
    // while distant colors saturate.
    const std::size_t uc = d_c / kLevels;
    const std::size_t base_span =
        uc >= 1 ? (kLevels - 1) * uc
                : std::max<std::size_t>(
                      1, ((kLevels - 1) * d_c) / kLevels);
    std::vector<std::size_t> offsets(kLevels);
    for (std::size_t k = 0; k < kLevels; ++k) {
      const std::size_t base_offset = k * base_span / (kLevels - 1);
      offsets[k] = std::min(d_c, base_offset * config_.gamma);
    }
    channel_spans_[c] = offsets.back();
    ladders_.push_back(
        std::make_unique<hdc::LevelItemMemory>(d_c, std::move(offsets), rng));
    randoms_.push_back(nullptr);
  }
}

std::size_t ColorEncoder::channel_dim(std::size_t channel) const {
  util::expects(channel < config_.channels,
                "ColorEncoder::channel_dim channel in range");
  return channel_dims_[channel];
}

std::size_t ColorEncoder::channel_span(std::size_t channel) const {
  util::expects(channel < config_.channels,
                "ColorEncoder::channel_span channel in range");
  return channel_spans_[channel];
}

const hdc::HyperVector& ColorEncoder::channel_hv(std::size_t channel,
                                                 std::uint8_t value) const {
  util::expects(channel < config_.channels,
                "ColorEncoder::channel_hv channel in range");
  if (config_.encoding == ColorEncoding::kRandom) {
    return randoms_[channel]->at(value);
  }
  return ladders_[channel]->at(value);
}

hdc::HyperVector ColorEncoder::encode(
    std::span<const std::uint8_t> values) const {
  util::expects(values.size() == config_.channels,
                "ColorEncoder::encode needs one value per channel");
  if (config_.channels == 1) {
    return channel_hv(0, values[0]);
  }
  std::vector<hdc::HyperVector> parts;
  parts.reserve(config_.channels);
  for (std::size_t c = 0; c < config_.channels; ++c) {
    parts.push_back(channel_hv(c, values[c]));
  }
  return hdc::HyperVector::concat(parts);
}

}  // namespace seghdc::core
