// Color encoder (paper Section III-②, Fig. 4).
//
// Per channel, 256 level HVs form a ladder where level k differs from
// level 0 in ~k*uc leading bits (uc = floor(d_channel / 256)), so the
// Hamming distance between two color values is proportional to their
// absolute difference — Manhattan distance in color space. For 3-channel
// images each channel owns d/3 dimensions and the per-channel level HVs
// are CONCATENATED (never XORed/multiplied, which would destroy the
// distance; see the paper's discussion of Fig. 4): the distance between
// two RGB triples is then the sum of the per-channel distances, i.e. the
// L1/Manhattan distance over RGB.
//
// The gamma hyper-parameter widens every flip run by a factor of gamma
// (Fig. 5), scaling color distances relative to position distances.
//
// Small-dimension note: the paper's fixed unit uc = floor(d_c/256) is 0
// when a channel has fewer than 256 dimensions (e.g. d=800 RGB gives 266
// per channel). This implementation spreads 256 levels evenly across a
// span of min(d_c, 255*uc*gamma or d_c) bits using integer interpolation,
// which reproduces the paper's ladder exactly when uc >= 1 and degrades
// gracefully (still monotone, still Manhattan-proportional) when it is
// not.
#ifndef SEGHDC_CORE_COLOR_ENCODER_HPP
#define SEGHDC_CORE_COLOR_ENCODER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/item_memory.hpp"
#include "src/util/rng.hpp"

namespace seghdc::core {

struct ColorEncoderConfig {
  std::size_t dim = 10000;   ///< total pixel-HV dimensionality
  std::size_t channels = 1;  ///< 1 (grayscale) or 3 (RGB)
  ColorEncoding encoding = ColorEncoding::kLevelLadder;
  std::size_t gamma = 1;     ///< flip-run widening factor (>= 1)
};

/// Precomputed per-channel color codebooks; serves the concatenated
/// color HV for a pixel's channel values. Immutable after construction.
class ColorEncoder {
 public:
  ColorEncoder(const ColorEncoderConfig& config, util::Rng& rng);

  const ColorEncoderConfig& config() const { return config_; }

  /// Dimensionality of channel c's sub-vector. Channels 0..C-2 get
  /// floor(dim/C); the last channel absorbs the remainder, so the
  /// concatenation is exactly `dim` wide.
  std::size_t channel_dim(std::size_t channel) const;

  /// Ladder span of channel c: hamming(level 0, level 255) in bits.
  /// (0 for the kRandom ablation, where distances carry no structure.)
  std::size_t channel_span(std::size_t channel) const;

  /// The channel-local HV for `value` in channel `channel`.
  const hdc::HyperVector& channel_hv(std::size_t channel,
                                     std::uint8_t value) const;

  /// Concatenated color HV for a pixel's channel values
  /// (values.size() must equal channels).
  hdc::HyperVector encode(std::span<const std::uint8_t> values) const;

 private:
  ColorEncoderConfig config_;
  std::vector<std::size_t> channel_dims_;
  std::vector<std::size_t> channel_spans_;
  // One codebook per channel; exactly one of the two vectors is populated
  // depending on the encoding variant.
  std::vector<std::unique_ptr<hdc::LevelItemMemory>> ladders_;
  std::vector<std::unique_ptr<hdc::RandomItemMemory>> randoms_;
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_COLOR_ENCODER_HPP
