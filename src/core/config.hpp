// Configuration of the SegHDC pipeline (paper Section III).
//
// The hyper-parameters map 1:1 onto the paper's:
//   dim        — hypervector dimensionality d (Section II; default 10,000)
//   alpha      — decay ratio of the position flip unit (Eq. 5)
//   beta       — spatial block size: beta x beta pixel tiles share one
//                position HV (Fig. 3(d))
//   gamma      — color flip-run widening, i.e. the color:position distance
//                weight (Fig. 5)
//   clusters   — K of the K-Means clusterer (2 for BBBC005/DSB2018,
//                3 for MoNuSeg in Section IV-A)
//   iterations — K-Means iteration budget (default 10)
#ifndef SEGHDC_CORE_CONFIG_HPP
#define SEGHDC_CORE_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace seghdc::core {

/// Position-encoding variants, in the order the paper develops them
/// (Fig. 3(a)-(d)), plus the classical random codebook used by the RPos
/// ablation in Table I.
enum class PositionEncoding {
  /// Fig. 3(a): rows and columns both flip from bit 0 — distances
  /// collide (kept for the ablation study; do not use for segmentation).
  kUniform,
  /// Fig. 3(b): rows flip in the first half, columns in the second half;
  /// exact Manhattan distance, flip unit d/(2N).
  kManhattan,
  /// Fig. 3(c): Manhattan with decay ratio alpha (Eq. 5).
  kDecayManhattan,
  /// Fig. 3(d): decay Manhattan over beta x beta blocks — the SegHDC
  /// default.
  kBlockDecayManhattan,
  /// RPos ablation: i.i.d. random row/column HVs (classical HDC [17]).
  kRandom,
};

/// Color-encoding variants: the paper's Manhattan level ladder
/// (Section III-2) and the classical random codebook (RColor ablation).
enum class ColorEncoding {
  kLevelLadder,
  kRandom,
};

/// How the position flip unit is derived when beta > 1.
enum class FlipUnitBasis {
  /// x = max(1, floor(alpha*d / (2*N_rows))) — the literal Eq. 5 (floored
  /// at one bit so small dimensions stay non-degenerate). With block size
  /// beta only N_rows/beta ladder steps are taken, so the ladder spans
  /// ~alpha*d/(2*beta) bits: position distance stays SMALL relative to
  /// color distance, gently smoothing clusters without overriding color.
  /// This matches the paper's reported behaviour at every configuration
  /// it evaluates (including d=800, alpha=1 in Table II) and is the
  /// default.
  kRows,
  /// x = floor(alpha*d / (2*N_blocks)) — Eq. 5 applied to the number of
  /// distinct blocks, so the ladder always spans alpha*d/2 bits
  /// regardless of beta. Position and color distances become comparable;
  /// useful for position-dominant ablations, but at alpha near 1 spatial
  /// proximity overrides color and segmentation degenerates into
  /// quadrant clustering.
  kBlocks,
};

/// Distance used by the clusterer: the paper uses cosine (Eq. 7);
/// Hamming against majority-binarized centroids is provided for ablation.
enum class ClusterDistance {
  kCosine,
  kHamming,
};

/// K-Means assignment strategy. Both modes produce bit-identical
/// assignments (pruning is EXACT — norm bounds and early-exit kernels
/// only skip centroids that provably cannot win, with ties still broken
/// by the lowest index); the choice is purely a performance knob.
enum class AssignMode {
  /// Prune when clusters >= the clusterer's prune_min_clusters
  /// threshold, else exhaustive. Defers to the SEGHDC_ASSIGN_MODE
  /// environment variable when it is set ("auto", "exhaustive",
  /// "pruned"; anything else is a hard error).
  kAuto,
  /// Always scan every centroid with full-length kernels.
  kExhaustive,
  /// Always run norm-bound candidate pruning + early-exit bounded
  /// kernels, regardless of cluster count.
  kPruned,
};

/// Full SegHDC pipeline configuration.
///
/// A config (plus the image) fully determines the segmentation output:
/// the seed drives every random draw, and all parallel paths (the
/// encoder bind pass, the K-Means assignment and update steps,
/// SegHdcSession::segment_many sharding) are schedule-independent. The
/// same config therefore yields the same label map through SegHdc,
/// SegHdcSession, and segment_many at any thread count.
struct SegHdcConfig {
  /// Hypervector dimensionality d (paper Section II; >= 8).
  std::size_t dim = 10000;
  /// Decay ratio of the position flip unit, in (0, 1] (paper Eq. 5).
  double alpha = 0.2;
  /// Spatial block size: beta x beta pixel tiles share one position HV
  /// (paper Fig. 3(d); >= 1, where 1 disables blocking).
  std::size_t beta = 26;
  /// Color flip-run widening — the color:position distance weight
  /// (paper Fig. 5; >= 1).
  std::size_t gamma = 1;
  /// K of the K-Means clusterer (>= 2; labels are in [0, clusters)).
  std::size_t clusters = 2;
  /// K-Means iteration budget (>= 1; see stop_on_convergence).
  std::size_t iterations = 10;
  /// Seed of every random draw in the pipeline. Same (config, image) =>
  /// same output, bit for bit, on every path and thread count.
  std::uint64_t seed = 42;
  /// Position-encoding variant (paper default: block decay Manhattan).
  PositionEncoding position_encoding = PositionEncoding::kBlockDecayManhattan;
  /// Color-encoding variant (paper default: the Manhattan level ladder).
  ColorEncoding color_encoding = ColorEncoding::kLevelLadder;
  /// How the position flip unit is derived when beta > 1 (see enum).
  FlipUnitBasis flip_unit_basis = FlipUnitBasis::kRows;
  /// Clustering distance (paper: cosine, Eq. 7).
  ClusterDistance cluster_distance = ClusterDistance::kCosine;
  /// K-Means assignment strategy (see AssignMode). kAuto (the default)
  /// prunes at large cluster counts and defers to SEGHDC_ASSIGN_MODE
  /// when set; both modes are bit-identical, so this is a performance
  /// knob, never a semantics knob.
  AssignMode assign_mode = AssignMode::kAuto;
  /// Deduplicate pixels sharing (position block, color) before
  /// clustering. Exactly equivalent to per-pixel clustering (weighted
  /// centroids), orders of magnitude faster. Disable only to measure the
  /// naive cost.
  bool deduplicate = true;
  /// Drops this many low bits of every channel value before encoding
  /// (0 = encode exact colors, the paper's setting). Quantisation
  /// collapses sensor noise into shared dedup keys, trading a little
  /// color resolution for a large clustering speedup; 2-3 is
  /// indistinguishable on the benchmark suites (see the ablation bench).
  std::size_t color_quantization_shift = 0;
  /// Fault-injection knob: probability that each bit of every encoded
  /// pixel HV is flipped before clustering (models approximate/faulty
  /// associative memory; 0 = fault-free). HDC's holographic encoding
  /// makes segmentation degrade gracefully — see bench_robustness.
  double bit_error_rate = 0.0;
  /// Extension over the paper's fixed iteration budget: stop clustering
  /// once an iteration changes no assignment (paper Fig. 7(a)/8 show
  /// saturation by iteration ~4). Identical output, lower latency.
  bool stop_on_convergence = false;
  /// Extension: also produce a per-pixel confidence margin (cosine
  /// distance to the runner-up centroid minus distance to the assigned
  /// one; larger = more confident). Costs one extra assignment pass.
  bool compute_margins = false;
  /// Row height of the bands the single-image encode is tiled into —
  /// the intra-image parallelism knob. Phase 1 of the encode builds one
  /// dedup table per band in parallel, then merges the bands in fixed
  /// order so unique-point IDs come out in exactly the serial row-major
  /// first-occurrence order: labels are bit-identical for every value
  /// at every thread count. 0 = resolve from the SEGHDC_TILE_ROWS
  /// environment variable when set and non-zero, else auto-size from
  /// the session pool (~4 bands per thread; one band when the pool is
  /// single-threaded or the call runs on a serialised segment_many
  /// worker, where tiling is pure overhead). Any value >= the image
  /// height means one band, i.e. the untiled serial scan. A performance
  /// knob, never a semantics knob.
  std::size_t tile_rows = 0;
  /// Forces the process-wide span tracer (src/obs/trace.hpp) on when a
  /// session/pipeline is constructed with this config. false (the
  /// default) defers to the SEGHDC_TRACE environment variable ("1" =
  /// on, "0"/unset = leave off, anything else is a hard error). Tracing
  /// is purely observational: labels are bit-identical with it on or
  /// off, at every backend and pool size.
  bool trace = false;
  /// SIMD kernel-backend override (src/hdc/simd/): "" leaves the
  /// process-wide selection alone (SEGHDC_KERNEL_BACKEND environment
  /// variable, else automatic CPU detection); otherwise a registered
  /// backend name ("scalar", "harley-seal", "avx2", "neon") or "auto"
  /// to re-run detection. Applied when a session/pipeline is
  /// constructed; every backend yields bit-identical labels, so this is
  /// a performance knob, never a semantics knob.
  std::string kernel_backend{};

  /// Throws std::invalid_argument when any parameter is out of range.
  void validate() const;

  /// Table I ablation variants: same configuration with the position
  /// (RPos) or color (RColor) encoder replaced by the classical random
  /// codebook.
  SegHdcConfig rpos_variant() const;
  SegHdcConfig rcolor_variant() const;
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_CONFIG_HPP
