#include "src/core/kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"

namespace seghdc::core {

HvKMeans::HvKMeans(const HvKMeansConfig& config) : config_(config) {
  util::expects(config_.clusters >= 2 && config_.clusters <= 64,
                "HvKMeans supports 2..64 clusters");
  util::expects(config_.iterations >= 1,
                "HvKMeans needs at least one iteration");
}

HvKMeansResult HvKMeans::run(std::span<const hdc::HyperVector> points,
                             std::span<const std::uint32_t> weights,
                             std::span<const std::size_t> seed_points) const {
  util::expects(!points.empty(), "HvKMeans::run needs at least one point");
  util::expects(points.size() >= config_.clusters,
                "HvKMeans::run needs at least as many points as clusters");
  util::expects(weights.empty() || weights.size() == points.size(),
                "HvKMeans::run weights must be empty or match points");
  util::expects(seed_points.size() == config_.clusters,
                "HvKMeans::run needs exactly `clusters` seed points");
  const std::size_t dim = points[0].dim();
  for (const auto& p : points) {
    util::expects(p.dim() == dim, "HvKMeans::run points must share one dim");
  }

  const auto weight_of = [&](std::size_t i) -> std::uint32_t {
    return weights.empty() ? 1u : weights[i];
  };

  const std::size_t n = points.size();
  const std::size_t k = config_.clusters;

  HvKMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids.assign(k, hdc::Accumulator(dim));
  result.cluster_weights.assign(k, 0);

  // Initial centroids: the seed points themselves (weight 1 — a seed
  // defines a direction, not a mass).
  for (std::size_t c = 0; c < k; ++c) {
    util::expects(seed_points[c] < n, "HvKMeans seed index in range");
    result.centroids[c].add(points[seed_points[c]], 1);
  }

  // Cached per-point norms (sqrt popcount) for the cosine distance.
  std::vector<double> point_norm(n);
  for (std::size_t i = 0; i < n; ++i) {
    point_norm[i] =
        std::sqrt(static_cast<double>(points[i].popcount()));
  }
  result.ops.popcount_bits += static_cast<std::uint64_t>(n) * dim;

  std::vector<double> distance_to_own(n, 0.0);
  // Majority-binarized centroids for the Hamming variant (rebuilt per
  // iteration).
  std::vector<hdc::HyperVector> binary_centroids;

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    if (config_.distance == ClusterDistance::kHamming) {
      binary_centroids.clear();
      binary_centroids.reserve(k);
      for (const auto& centroid : result.centroids) {
        binary_centroids.push_back(centroid.to_majority());
      }
    }
    // --- Assignment step (data parallel). ---
    std::atomic<std::uint64_t> changed{0};
    util::parallel_for(
        0, n,
        [&](std::size_t i) {
          double best = std::numeric_limits<double>::infinity();
          std::uint32_t best_cluster = 0;
          for (std::size_t c = 0; c < k; ++c) {
            double dist = 0.0;
            if (config_.distance == ClusterDistance::kCosine) {
              const double norm_z = result.centroids[c].norm();
              if (norm_z == 0.0 || point_norm[i] == 0.0) {
                dist = 1.0;
              } else {
                dist = 1.0 - static_cast<double>(
                                 result.centroids[c].dot(points[i])) /
                                 (point_norm[i] * norm_z);
              }
            } else {
              dist = static_cast<double>(hdc::HyperVector::hamming(
                  binary_centroids[c], points[i]));
            }
            if (dist < best) {
              best = dist;
              best_cluster = static_cast<std::uint32_t>(c);
            }
          }
          if (result.assignment[i] != best_cluster) {
            changed.fetch_add(1, std::memory_order_relaxed);
            result.assignment[i] = best_cluster;
          }
          distance_to_own[i] = best;
        },
        /*grain=*/64);
    result.ops.dot_adds += static_cast<std::uint64_t>(n) * k * dim;
    result.ops.distance_evals += static_cast<std::uint64_t>(n) * k;

    // --- Update step: rebuild weighted centroid sums. ---
    for (auto& centroid : result.centroids) {
      centroid.clear();
    }
    std::fill(result.cluster_weights.begin(), result.cluster_weights.end(),
              std::uint64_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = result.assignment[i];
      result.centroids[c].add(points[i], weight_of(i));
      result.cluster_weights[c] += weight_of(i);
    }
    result.ops.centroid_update_adds += static_cast<std::uint64_t>(n) * dim;

    // --- Empty-cluster repair: reseed with the point farthest from its
    // own centroid (deterministic: highest distance, lowest index). ---
    const std::size_t reseeds_before = result.reseeds;
    for (std::size_t c = 0; c < k; ++c) {
      if (result.cluster_weights[c] != 0) {
        continue;
      }
      std::size_t farthest = 0;
      double farthest_distance = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.cluster_weights[result.assignment[i]] > weight_of(i) &&
            distance_to_own[i] > farthest_distance) {
          farthest_distance = distance_to_own[i];
          farthest = i;
        }
      }
      const std::uint32_t old_cluster = result.assignment[farthest];
      result.assignment[farthest] = static_cast<std::uint32_t>(c);
      // Move the point's mass between clusters. Rebuilding the source
      // centroid exactly would need a subtract; reseeding is rare and
      // the next iteration rebuilds all centroids anyway, so only the
      // destination is patched here.
      result.centroids[c].add(points[farthest], weight_of(farthest));
      result.cluster_weights[c] += weight_of(farthest);
      result.cluster_weights[old_cluster] -= weight_of(farthest);
      ++result.reseeds;
    }
    result.iterations_run = iter + 1;

    // Convergence: iteration 0 always "changes" every point relative to
    // the zero-initialised assignment, so only later iterations count;
    // a reseed also perturbs the state and voids the fixed point.
    if (config_.stop_on_convergence && iter > 0 && changed.load() == 0 &&
        result.reseeds == reseeds_before) {
      result.converged = true;
      break;
    }
  }

  return result;
}

std::vector<std::size_t> largest_color_difference_seeds(
    std::span<const std::uint8_t> intensities, std::size_t clusters) {
  util::expects(clusters >= 2, "need at least two clusters");
  util::expects(intensities.size() >= clusters,
                "need at least `clusters` points");

  std::vector<std::size_t> seeds;
  seeds.reserve(clusters);

  // The pair with the largest color difference: global min and max.
  std::size_t min_index = 0;
  std::size_t max_index = 0;
  for (std::size_t i = 1; i < intensities.size(); ++i) {
    if (intensities[i] < intensities[min_index]) {
      min_index = i;
    }
    if (intensities[i] > intensities[max_index]) {
      max_index = i;
    }
  }
  if (min_index == max_index) {
    // Degenerate flat image: fall back to distinct indices.
    for (std::size_t c = 0; c < clusters; ++c) {
      seeds.push_back(c);
    }
    return seeds;
  }
  seeds.push_back(max_index);
  seeds.push_back(min_index);

  // Remaining seeds: farthest-point sampling on intensity.
  while (seeds.size() < clusters) {
    std::size_t best_index = 0;
    int best_gap = -1;
    for (std::size_t i = 0; i < intensities.size(); ++i) {
      int gap = std::numeric_limits<int>::max();
      bool already = false;
      for (const std::size_t s : seeds) {
        if (s == i) {
          already = true;
          break;
        }
        gap = std::min(gap, std::abs(static_cast<int>(intensities[i]) -
                                     static_cast<int>(intensities[s])));
      }
      if (!already && gap > best_gap) {
        best_gap = gap;
        best_index = i;
      }
    }
    seeds.push_back(best_index);
  }
  return seeds;
}

}  // namespace seghdc::core
