#include "src/core/kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "src/obs/trace.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"

namespace seghdc::core {

HvKMeans::HvKMeans(const HvKMeansConfig& config) : config_(config) {
  util::expects(config_.clusters >= 2 && config_.clusters <= 64,
                "HvKMeans supports 2..64 clusters");
  util::expects(config_.iterations >= 1,
                "HvKMeans needs at least one iteration");
}

HvKMeansResult HvKMeans::run(std::span<const hdc::HyperVector> points,
                             std::span<const std::uint32_t> weights,
                             std::span<const std::size_t> seed_points) const {
  // from_hvs validates uniform dimensions; the block overload validates
  // the rest (an empty span packs to an empty block, which it rejects).
  return run(hdc::HvBlock::from_hvs(points), weights, seed_points);
}

HvKMeansResult HvKMeans::run(const hdc::HvBlock& points,
                             std::span<const std::uint32_t> weights,
                             std::span<const std::size_t> seed_points) const {
  util::expects(seed_points.size() == config_.clusters,
                "HvKMeans::run needs exactly `clusters` seed points");
  return run_impl(points, weights,
                  [&](std::vector<hdc::Accumulator>& centroids) {
                    // Initial centroids: the seed points themselves
                    // (weight 1 — a seed defines a direction, not a
                    // mass).
                    for (std::size_t c = 0; c < centroids.size(); ++c) {
                      util::expects(seed_points[c] < points.count(),
                                    "HvKMeans seed index in range");
                      centroids[c].add(points.row(seed_points[c]), 1);
                    }
                  });
}

HvKMeansResult HvKMeans::run_from_centroids(
    const hdc::HvBlock& points, std::span<const std::uint32_t> weights,
    std::span<const hdc::HyperVector> seed_centroids) const {
  util::expects(seed_centroids.size() == config_.clusters,
                "HvKMeans::run_from_centroids needs exactly `clusters` "
                "seed centroids");
  for (const auto& seed : seed_centroids) {
    util::expects(seed.dim() == points.dim(),
                  "HvKMeans::run_from_centroids seed centroid dimension "
                  "must match the points");
  }
  return run_impl(points, weights,
                  [&](std::vector<hdc::Accumulator>& centroids) {
                    for (std::size_t c = 0; c < centroids.size(); ++c) {
                      centroids[c].add(seed_centroids[c], 1);
                    }
                  });
}

HvKMeansResult HvKMeans::run_impl(
    const hdc::HvBlock& points, std::span<const std::uint32_t> weights,
    const std::function<void(std::vector<hdc::Accumulator>&)>&
        init_centroids) const {
  util::expects(!points.empty(), "HvKMeans::run needs at least one point");
  util::expects(points.count() >= config_.clusters,
                "HvKMeans::run needs at least as many points as clusters");
  util::expects(weights.empty() || weights.size() == points.count(),
                "HvKMeans::run weights must be empty or match points");
  // The distance kernels index centroid counts by set-bit position, so a
  // stray bit above dim would read out of bounds; enforce the padding
  // invariant once up front (one word test per row).
  if (points.dim() % 64 != 0) {
    for (std::size_t i = 0; i < points.count(); ++i) {
      util::expects(hdc::kernels::padding_is_zero(points.row(i), points.dim()),
                    "HvKMeans::run block rows must have zero padding bits");
    }
  }

  const auto weight_of = [&](std::size_t i) -> std::uint32_t {
    return weights.empty() ? 1u : weights[i];
  };

  const std::size_t n = points.count();
  const std::size_t dim = points.dim();
  const std::size_t k = config_.clusters;
  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::shared();

  HvKMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids.assign(k, hdc::Accumulator(dim));
  result.cluster_weights.assign(k, 0);

  init_centroids(result.centroids);

  // Cached per-point norms (sqrt popcount) for the cosine distance.
  std::vector<double> point_norm(n);
  pool.parallel_for(
      0, n,
      [&](std::size_t i) {
        point_norm[i] = std::sqrt(static_cast<double>(points.popcount(i)));
      },
      /*grain=*/256);
  result.ops.popcount_bits += static_cast<std::uint64_t>(n) * dim;

  // Update-step partials: one bank of k accumulators per chunk, so the
  // per-cluster accumulation runs without any shared mutable state and
  // the reduction walks the chunks in fixed order. Allocated once here
  // and cleared per iteration. Chunk count depends only on the pool, not
  // on the data; one chunk degrades to the plain sequential loop.
  const std::size_t update_chunks =
      util::SerialScope::active()
          ? 1
          : std::min<std::size_t>({n, pool.thread_count(), 16});
  std::vector<std::vector<hdc::Accumulator>> partial_centroids;
  std::vector<std::vector<std::uint64_t>> partial_weights;
  if (update_chunks > 1) {
    partial_centroids.resize(update_chunks);
    partial_weights.resize(update_chunks);
    for (std::size_t chunk = 0; chunk < update_chunks; ++chunk) {
      partial_centroids[chunk].assign(k, hdc::Accumulator(dim));
      partial_weights[chunk].assign(k, 0);
    }
  }

  std::vector<double> distance_to_own(n, 0.0);
  // Majority-binarized centroids for the Hamming variant; every row is
  // fully overwritten at the top of each iteration.
  hdc::HvBlock binary_centroids;
  if (config_.distance == ClusterDistance::kHamming) {
    binary_centroids = hdc::HvBlock(dim, k);
  }
  // Per-iteration snapshots of the centroid state, so the parallel
  // assignment reads plain arrays instead of calling into Accumulator
  // or re-resolving block rows per (point, centroid) pair. For cosine,
  // the snapshot is the bit-plane decomposition of each centroid
  // (kernels::CountPlanes): building it costs about one point's worth
  // of work per centroid and turns every subsequent dot into
  // plane_count() fused AND+popcount passes — the same bandwidth-bound
  // shape (and SIMD backends) as the Hamming kernel, with bit-identical
  // integer dots.
  std::vector<hdc::kernels::CountPlanes> centroid_planes(
      config_.distance == ClusterDistance::kCosine ? k : 0);
  std::vector<double> centroid_norm(k);
  std::vector<std::span<const std::uint64_t>> binary_centroid_rows(k);

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    const obs::SpanScope iter_span("kmeans_iter", "core", "iter", iter);
    if (config_.distance == ClusterDistance::kHamming) {
      for (std::size_t c = 0; c < k; ++c) {
        const auto majority = result.centroids[c].to_majority();
        const auto src = majority.words();
        const auto dst = binary_centroids.row(c);
        std::copy(src.begin(), src.end(), dst.begin());
        binary_centroid_rows[c] = dst;
      }
    } else {
      for (std::size_t c = 0; c < k; ++c) {
        result.centroids[c].snapshot_planes(centroid_planes[c]);
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      centroid_norm[c] = result.centroids[c].norm();
    }
    // --- Assignment step (data parallel over block rows; fused
    // word-span kernels, no per-point HyperVector temporaries). ---
    std::atomic<std::uint64_t> changed{0};
    pool.parallel_for(
        0, n,
        [&](std::size_t i) {
          const auto point = points.row(i);
          double best = std::numeric_limits<double>::infinity();
          std::uint32_t best_cluster = 0;
          for (std::size_t c = 0; c < k; ++c) {
            const double dist =
                config_.distance == ClusterDistance::kCosine
                    ? hdc::kernels::cosine_distance_planes(
                          centroid_planes[c], centroid_norm[c], point,
                          point_norm[i])
                    : static_cast<double>(hdc::kernels::hamming_words(
                          binary_centroid_rows[c], point));
            if (dist < best) {
              best = dist;
              best_cluster = static_cast<std::uint32_t>(c);
            }
          }
          if (result.assignment[i] != best_cluster) {
            changed.fetch_add(1, std::memory_order_relaxed);
            result.assignment[i] = best_cluster;
          }
          distance_to_own[i] = best;
        },
        /*grain=*/64);
    result.ops.dot_adds += static_cast<std::uint64_t>(n) * k * dim;
    result.ops.distance_evals += static_cast<std::uint64_t>(n) * k;

    // --- Update step: rebuild weighted centroid sums. Each chunk
    // accumulates its contiguous slice of points into its own bank of
    // partial centroids; the banks are then merged in chunk order.
    // Integer adds commute exactly, so the reduced centroids (and every
    // label derived from them) match the sequential loop bit for bit at
    // any thread count. ---
    for (auto& centroid : result.centroids) {
      centroid.clear();
    }
    std::fill(result.cluster_weights.begin(), result.cluster_weights.end(),
              std::uint64_t{0});
    if (update_chunks <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = result.assignment[i];
        result.centroids[c].add(points.row(i), weight_of(i));
        result.cluster_weights[c] += weight_of(i);
      }
    } else {
      pool.parallel_for(
          0, update_chunks,
          [&](std::size_t chunk) {
            auto& centroids = partial_centroids[chunk];
            auto& chunk_weights = partial_weights[chunk];
            for (auto& centroid : centroids) {
              centroid.clear();
            }
            std::fill(chunk_weights.begin(), chunk_weights.end(),
                      std::uint64_t{0});
            const std::size_t lo = chunk * n / update_chunks;
            const std::size_t hi = (chunk + 1) * n / update_chunks;
            for (std::size_t i = lo; i < hi; ++i) {
              const std::uint32_t c = result.assignment[i];
              centroids[c].add(points.row(i), weight_of(i));
              chunk_weights[c] += weight_of(i);
            }
          },
          /*grain=*/1);
      for (std::size_t chunk = 0; chunk < update_chunks; ++chunk) {
        for (std::size_t c = 0; c < k; ++c) {
          result.centroids[c].merge(partial_centroids[chunk][c]);
          result.cluster_weights[c] += partial_weights[chunk][c];
        }
      }
    }
    result.ops.centroid_update_adds += static_cast<std::uint64_t>(n) * dim;

    // --- Empty-cluster repair: reseed with the point farthest from its
    // own centroid (deterministic: highest distance, lowest index). ---
    const std::size_t reseeds_before = result.reseeds;
    for (std::size_t c = 0; c < k; ++c) {
      if (result.cluster_weights[c] != 0) {
        continue;
      }
      std::size_t farthest = 0;
      double farthest_distance = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.cluster_weights[result.assignment[i]] > weight_of(i) &&
            distance_to_own[i] > farthest_distance) {
          farthest_distance = distance_to_own[i];
          farthest = i;
        }
      }
      const std::uint32_t old_cluster = result.assignment[farthest];
      result.assignment[farthest] = static_cast<std::uint32_t>(c);
      // Move the point's mass between clusters. Rebuilding the source
      // centroid exactly would need a subtract; reseeding is rare and
      // the next iteration rebuilds all centroids anyway, so only the
      // destination is patched here.
      result.centroids[c].add(points.row(farthest), weight_of(farthest));
      result.cluster_weights[c] += weight_of(farthest);
      result.cluster_weights[old_cluster] -= weight_of(farthest);
      ++result.reseeds;
    }
    result.iterations_run = iter + 1;

    // Convergence: iteration 0 always "changes" every point relative to
    // the zero-initialised assignment, so only later iterations count;
    // a reseed also perturbs the state and voids the fixed point.
    if (config_.stop_on_convergence && iter > 0 && changed.load() == 0 &&
        result.reseeds == reseeds_before) {
      result.converged = true;
      break;
    }
  }

  return result;
}

std::vector<std::size_t> largest_color_difference_seeds(
    std::span<const std::uint8_t> intensities, std::size_t clusters) {
  util::expects(clusters >= 2, "need at least two clusters");
  util::expects(intensities.size() >= clusters,
                "need at least `clusters` points");

  std::vector<std::size_t> seeds;
  seeds.reserve(clusters);

  // The pair with the largest color difference: global min and max.
  std::size_t min_index = 0;
  std::size_t max_index = 0;
  for (std::size_t i = 1; i < intensities.size(); ++i) {
    if (intensities[i] < intensities[min_index]) {
      min_index = i;
    }
    if (intensities[i] > intensities[max_index]) {
      max_index = i;
    }
  }
  if (min_index == max_index) {
    // Degenerate flat image: fall back to distinct indices.
    for (std::size_t c = 0; c < clusters; ++c) {
      seeds.push_back(c);
    }
    return seeds;
  }
  seeds.push_back(max_index);
  seeds.push_back(min_index);

  // Remaining seeds: farthest-point sampling on intensity.
  while (seeds.size() < clusters) {
    std::size_t best_index = 0;
    int best_gap = -1;
    for (std::size_t i = 0; i < intensities.size(); ++i) {
      int gap = std::numeric_limits<int>::max();
      bool already = false;
      for (const std::size_t s : seeds) {
        if (s == i) {
          already = true;
          break;
        }
        gap = std::min(gap, std::abs(static_cast<int>(intensities[i]) -
                                     static_cast<int>(intensities[s])));
      }
      if (!already && gap > best_gap) {
        best_gap = gap;
        best_index = i;
      }
    }
    seeds.push_back(best_index);
  }
  return seeds;
}

}  // namespace seghdc::core
