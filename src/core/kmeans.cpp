#include "src/core/kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/trace.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"

namespace seghdc::core {

HvKMeans::HvKMeans(const HvKMeansConfig& config) : config_(config) {
  util::expects(config_.clusters >= 2 && config_.clusters <= 4096,
                "HvKMeans supports 2..4096 clusters");
  util::expects(config_.iterations >= 1,
                "HvKMeans needs at least one iteration");
  // Assignment-mode resolution order mirrors the other knobs (config >
  // environment > auto), with malformed overrides a hard error — a
  // forced CI assignment mode that silently fell back would make the
  // pruned-vs-exhaustive matrix meaningless.
  resolved_assign_mode_ = config_.assign_mode;
  if (resolved_assign_mode_ == AssignMode::kAuto) {
    const char* env = std::getenv("SEGHDC_ASSIGN_MODE");
    if (env != nullptr && *env != '\0') {
      const std::string_view value(env);
      if (value == "exhaustive") {
        resolved_assign_mode_ = AssignMode::kExhaustive;
      } else if (value == "pruned") {
        resolved_assign_mode_ = AssignMode::kPruned;
      } else if (value != "auto") {
        throw std::invalid_argument(
            std::string("SEGHDC_ASSIGN_MODE must be one of "
                        "auto|exhaustive|pruned, got '") +
            env + "'");
      }
    }
  }
}

HvKMeansResult HvKMeans::run(std::span<const hdc::HyperVector> points,
                             std::span<const std::uint32_t> weights,
                             std::span<const std::size_t> seed_points) const {
  // from_hvs validates uniform dimensions; the block overload validates
  // the rest (an empty span packs to an empty block, which it rejects).
  return run(hdc::HvBlock::from_hvs(points), weights, seed_points);
}

HvKMeansResult HvKMeans::run(const hdc::HvBlock& points,
                             std::span<const std::uint32_t> weights,
                             std::span<const std::size_t> seed_points) const {
  util::expects(seed_points.size() == config_.clusters,
                "HvKMeans::run needs exactly `clusters` seed points");
  return run_impl(points, weights,
                  [&](std::vector<hdc::Accumulator>& centroids) {
                    // Initial centroids: the seed points themselves
                    // (weight 1 — a seed defines a direction, not a
                    // mass).
                    for (std::size_t c = 0; c < centroids.size(); ++c) {
                      util::expects(seed_points[c] < points.count(),
                                    "HvKMeans seed index in range");
                      centroids[c].add(points.row(seed_points[c]), 1);
                    }
                  });
}

HvKMeansResult HvKMeans::run_from_centroids(
    const hdc::HvBlock& points, std::span<const std::uint32_t> weights,
    std::span<const hdc::HyperVector> seed_centroids) const {
  util::expects(seed_centroids.size() == config_.clusters,
                "HvKMeans::run_from_centroids needs exactly `clusters` "
                "seed centroids");
  for (const auto& seed : seed_centroids) {
    util::expects(seed.dim() == points.dim(),
                  "HvKMeans::run_from_centroids seed centroid dimension "
                  "must match the points");
  }
  return run_impl(points, weights,
                  [&](std::vector<hdc::Accumulator>& centroids) {
                    for (std::size_t c = 0; c < centroids.size(); ++c) {
                      centroids[c].add(seed_centroids[c], 1);
                    }
                  });
}

HvKMeansResult HvKMeans::run_impl(
    const hdc::HvBlock& points, std::span<const std::uint32_t> weights,
    const std::function<void(std::vector<hdc::Accumulator>&)>&
        init_centroids) const {
  util::expects(!points.empty(), "HvKMeans::run needs at least one point");
  util::expects(points.count() >= config_.clusters,
                "HvKMeans::run needs at least as many points as clusters");
  util::expects(weights.empty() || weights.size() == points.count(),
                "HvKMeans::run weights must be empty or match points");
  // The distance kernels index centroid counts by set-bit position, so a
  // stray bit above dim would read out of bounds; enforce the padding
  // invariant once up front (one word test per row).
  if (points.dim() % 64 != 0) {
    for (std::size_t i = 0; i < points.count(); ++i) {
      util::expects(hdc::kernels::padding_is_zero(points.row(i), points.dim()),
                    "HvKMeans::run block rows must have zero padding bits");
    }
  }

  const auto weight_of = [&](std::size_t i) -> std::uint32_t {
    return weights.empty() ? 1u : weights[i];
  };

  const std::size_t n = points.count();
  const std::size_t dim = points.dim();
  const std::size_t k = config_.clusters;
  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::shared();

  HvKMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids.assign(k, hdc::Accumulator(dim));
  result.cluster_weights.assign(k, 0);

  init_centroids(result.centroids);

  // Cached per-point popcounts and norms: the raw popcount is the
  // Hamming norm bound of the pruned assignment, its sqrt the cosine
  // point norm.
  std::vector<std::uint32_t> point_pop(n);
  std::vector<double> point_norm(n);
  pool.parallel_for(
      0, n,
      [&](std::size_t i) {
        const std::size_t pop = points.popcount(i);
        point_pop[i] = static_cast<std::uint32_t>(pop);
        point_norm[i] = std::sqrt(static_cast<double>(pop));
      },
      /*grain=*/256);
  result.ops.popcount_bits += static_cast<std::uint64_t>(n) * dim;
  std::size_t zero_pop_points = 0;
  for (std::size_t i = 0; i < n; ++i) {
    zero_pop_points += point_pop[i] == 0 ? 1 : 0;
  }

  const bool pruned_assign =
      resolved_assign_mode_ == AssignMode::kPruned ||
      (resolved_assign_mode_ == AssignMode::kAuto &&
       k >= config_.prune_min_clusters);
  result.pruned_assignment = pruned_assign;
  // One backend resolve for the whole run; every distance scan below
  // goes through this vtable reference instead of re-dispatching per
  // (point, centroid) pair.
  const hdc::simd::KernelBackend& backend = hdc::simd::active_backend();
  const std::size_t wph = points.words_per_hv();
  // Pruned-mode per-iteration candidate tables (storage reused across
  // iterations): centroid indices sorted by popcount for Hamming,
  // per-centroid dot upper bounds for cosine.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted_pops;
  std::vector<std::int64_t> centroid_count_sum;
  if (pruned_assign) {
    if (config_.distance == ClusterDistance::kHamming) {
      sorted_pops.resize(k);
    } else {
      centroid_count_sum.resize(k);
    }
  }

  // Update-step partials: one bank of k accumulators per chunk, so the
  // per-cluster accumulation runs without any shared mutable state and
  // the reduction walks the chunks in fixed order. Allocated once here
  // and cleared per iteration. Chunk count depends only on the pool, not
  // on the data; one chunk degrades to the plain sequential loop.
  const std::size_t update_chunks =
      util::SerialScope::active()
          ? 1
          : std::min<std::size_t>({n, pool.thread_count(), 16});
  std::vector<std::vector<hdc::Accumulator>> partial_centroids;
  std::vector<std::vector<std::uint64_t>> partial_weights;
  if (update_chunks > 1) {
    partial_centroids.resize(update_chunks);
    partial_weights.resize(update_chunks);
    for (std::size_t chunk = 0; chunk < update_chunks; ++chunk) {
      partial_centroids[chunk].assign(k, hdc::Accumulator(dim));
      partial_weights[chunk].assign(k, 0);
    }
  }

  std::vector<double> distance_to_own(n, 0.0);
  // Majority-binarized centroids for the Hamming variant; every row is
  // fully overwritten at the top of each iteration.
  hdc::HvBlock binary_centroids;
  if (config_.distance == ClusterDistance::kHamming) {
    binary_centroids = hdc::HvBlock(dim, k);
  }
  // Per-iteration snapshots of the centroid state, so the parallel
  // assignment reads plain arrays instead of calling into Accumulator
  // or re-resolving block rows per (point, centroid) pair. For cosine,
  // the snapshot is the bit-plane decomposition of each centroid
  // (kernels::CountPlanes): building it costs about one point's worth
  // of work per centroid and turns every subsequent dot into
  // plane_count() fused AND+popcount passes — the same bandwidth-bound
  // shape (and SIMD backends) as the Hamming kernel, with bit-identical
  // integer dots.
  std::vector<hdc::kernels::CountPlanes> centroid_planes(
      config_.distance == ClusterDistance::kCosine ? k : 0);
  std::vector<double> centroid_norm(k);
  std::vector<std::span<const std::uint64_t>> binary_centroid_rows(k);

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    const obs::SpanScope iter_span("kmeans_iter", "core", "iter", iter);
    if (config_.distance == ClusterDistance::kHamming) {
      for (std::size_t c = 0; c < k; ++c) {
        const auto majority = result.centroids[c].to_majority();
        const auto src = majority.words();
        const auto dst = binary_centroids.row(c);
        std::copy(src.begin(), src.end(), dst.begin());
        binary_centroid_rows[c] = dst;
      }
    } else {
      for (std::size_t c = 0; c < k; ++c) {
        result.centroids[c].snapshot_planes(centroid_planes[c]);
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      centroid_norm[c] = result.centroids[c].norm();
    }
    // --- Assignment step (data parallel over block rows; fused
    // word-span kernels, no per-point HyperVector temporaries). The
    // distance-mode and assign-mode branches are hoisted out of the
    // inner loops: each iteration selects one of four loop bodies
    // (exhaustive/pruned x Hamming/cosine) up front. All four produce
    // bit-identical assignments — the pruned bodies only skip
    // candidates they can PROVE lose the argmin, index tie-break
    // included. ---
    std::atomic<std::uint64_t> changed{0};
    {
      // Measured assignment work, accumulated per point and folded with
      // relaxed atomic adds — integer sums commute, so the totals are
      // identical at every pool size.
      std::atomic<std::uint64_t> evals_total{0};
      std::atomic<std::uint64_t> kernel_evals_total{0};
      std::atomic<std::uint64_t> pruned_total{0};
      std::atomic<std::uint64_t> words_total{0};
      obs::SpanScope assign_span("kmeans_assign", "core", "iter", iter);
      const auto commit = [&](std::size_t i, std::uint32_t best_cluster,
                              double best) {
        if (result.assignment[i] != best_cluster) {
          changed.fetch_add(1, std::memory_order_relaxed);
          result.assignment[i] = best_cluster;
        }
        distance_to_own[i] = best;
      };
      if (!pruned_assign && config_.distance == ClusterDistance::kHamming) {
        pool.parallel_for(
            0, n,
            [&](std::size_t i) {
              const auto point = points.row(i);
              std::size_t best = std::numeric_limits<std::size_t>::max();
              std::uint32_t best_cluster = 0;
              for (std::size_t c = 0; c < k; ++c) {
                const std::size_t dist =
                    backend.hamming(binary_centroid_rows[c], point);
                if (dist < best) {
                  best = dist;
                  best_cluster = static_cast<std::uint32_t>(c);
                }
              }
              commit(i, best_cluster, static_cast<double>(best));
            },
            /*grain=*/64);
        result.ops.words_scanned += static_cast<std::uint64_t>(n) * k * wph;
      } else if (!pruned_assign) {
        pool.parallel_for(
            0, n,
            [&](std::size_t i) {
              const auto point = points.row(i);
              const double pn = point_norm[i];
              double best = std::numeric_limits<double>::infinity();
              std::uint32_t best_cluster = 0;
              for (std::size_t c = 0; c < k; ++c) {
                const double cn = centroid_norm[c];
                // Same shortcut and float expression as
                // cosine_distance_planes, with the backend hoisted.
                const double dist =
                    cn == 0.0 || pn == 0.0
                        ? 1.0
                        : hdc::kernels::cosine_distance_from_dot(
                              hdc::kernels::dot_planes(centroid_planes[c],
                                                       point, backend),
                              cn, pn);
                if (dist < best) {
                  best = dist;
                  best_cluster = static_cast<std::uint32_t>(c);
                }
              }
              commit(i, best_cluster, best);
            },
            /*grain=*/64);
        std::uint64_t words_per_point = 0;
        for (std::size_t c = 0; c < k; ++c) {
          if (centroid_norm[c] != 0.0) {
            words_per_point += centroid_planes[c].plane_count() * wph;
          }
        }
        result.ops.words_scanned +=
            static_cast<std::uint64_t>(n - zero_pop_points) * words_per_point;
      } else if (config_.distance == ClusterDistance::kHamming) {
        // Candidate table: centroid indices sorted by (popcount, index).
        // |popcount(x) - popcount(c)| <= hamming(x, c), so scanning
        // outward from the point's own popcount visits candidates in
        // non-decreasing lower-bound order per side — once a side's
        // bound exceeds the best distance, the rest of that side is
        // pruned wholesale.
        for (std::size_t c = 0; c < k; ++c) {
          sorted_pops[c] = {static_cast<std::uint32_t>(
                                backend.popcount(binary_centroid_rows[c])),
                            static_cast<std::uint32_t>(c)};
        }
        std::sort(sorted_pops.begin(), sorted_pops.end());
        pool.parallel_for(
            0, n,
            [&](std::size_t i) {
              const auto point = points.row(i);
              const std::size_t px = point_pop[i];
              constexpr std::size_t kUnset =
                  std::numeric_limits<std::size_t>::max();
              std::size_t best = kUnset;
              std::uint32_t best_cluster = 0;
              std::uint64_t evals = 0;
              std::uint64_t pruned = 0;
              std::uint64_t words = 0;
              const auto gap_of = [&](std::size_t pc) {
                return pc > px ? pc - px : px - pc;
              };
              // Two-pointer outward scan from the insertion point of px
              // in the sorted table: [0, l) pending on the left, [r, k)
              // on the right.
              std::size_t r = static_cast<std::size_t>(
                  std::lower_bound(
                      sorted_pops.begin(), sorted_pops.end(),
                      std::pair<std::uint32_t, std::uint32_t>{
                          static_cast<std::uint32_t>(px), 0}) -
                  sorted_pops.begin());
              std::size_t l = r;
              while (l > 0 || r < k) {
                const std::size_t gl =
                    l > 0 ? gap_of(sorted_pops[l - 1].first) : kUnset;
                const std::size_t gr =
                    r < k ? gap_of(sorted_pops[r].first) : kUnset;
                const bool take_left = gl <= gr;
                const std::size_t gap = take_left ? gl : gr;
                const std::uint32_t c = take_left ? sorted_pops[l - 1].second
                                                  : sorted_pops[r].second;
                if (best != kUnset) {
                  if (gap > best) {
                    // Everything further out on this side is strictly
                    // worse than best: drop the side wholesale.
                    pruned += take_left ? l : k - r;
                    if (take_left) {
                      l = 0;
                    } else {
                      r = k;
                    }
                    continue;
                  }
                  if (gap == best && c >= best_cluster) {
                    // Distance >= gap == best, and a tie at best can
                    // only matter for a lower index: cannot win. The
                    // side stays open — a lower index may still follow
                    // at the same gap.
                    ++pruned;
                    if (take_left) {
                      --l;
                    } else {
                      ++r;
                    }
                    continue;
                  }
                }
                // bound = best rejects dist >= best (a win needs strict
                // <); +1 when c < best_cluster, which can still win an
                // index tie at exactly best.
                const std::size_t bound =
                    best == kUnset ? kUnset
                                   : (c < best_cluster ? best + 1 : best);
                const auto scan = backend.hamming_bounded(
                    binary_centroid_rows[c], point, bound);
                words += scan.words_scanned;
                if (scan.value < bound) {
                  // One-sided contract: value < bound means the scan
                  // completed and value is the exact distance.
                  ++evals;
                  if (best == kUnset || scan.value < best ||
                      (scan.value == best && c < best_cluster)) {
                    best = scan.value;
                    best_cluster = c;
                  }
                } else {
                  ++pruned;
                }
                if (take_left) {
                  --l;
                } else {
                  ++r;
                }
              }
              evals_total.fetch_add(evals, std::memory_order_relaxed);
              kernel_evals_total.fetch_add(evals, std::memory_order_relaxed);
              pruned_total.fetch_add(pruned, std::memory_order_relaxed);
              words_total.fetch_add(words, std::memory_order_relaxed);
              commit(i, best_cluster, static_cast<double>(best));
            },
            /*grain=*/64);
      } else {
        // Per-centroid dot upper bounds for the cheap skip: dot(x, c)
        // <= min(sum of c's counts, (2^planes_c - 1) * popcount(x)).
        for (std::size_t c = 0; c < k; ++c) {
          std::int64_t sum = 0;
          for (std::size_t b = 0; b < centroid_planes[c].plane_count();
               ++b) {
            sum += static_cast<std::int64_t>(
                       backend.popcount(centroid_planes[c].plane(b)))
                   << b;
          }
          centroid_count_sum[c] = sum;
        }
        pool.parallel_for(
            0, n,
            [&](std::size_t i) {
              const auto point = points.row(i);
              const double pn = point_norm[i];
              const auto px = static_cast<std::int64_t>(point_pop[i]);
              double best = std::numeric_limits<double>::infinity();
              std::uint32_t best_cluster = 0;
              std::uint64_t evals = 0;
              std::uint64_t kernel_evals = 0;
              std::uint64_t pruned = 0;
              std::uint64_t words = 0;
              // Index order, strict < updates: identical tie semantics
              // to the exhaustive loop by construction — every skip
              // below only drops candidates whose distance provably
              // fails `dist < best`.
              for (std::size_t c = 0; c < k; ++c) {
                const double cn = centroid_norm[c];
                if (cn == 0.0 || pn == 0.0) {
                  // Zero-norm shortcut, exactly cosine_distance_planes'.
                  ++evals;
                  if (1.0 < best) {
                    best = 1.0;
                    best_cluster = static_cast<std::uint32_t>(c);
                  }
                  continue;
                }
                const bool have_best =
                    best < std::numeric_limits<double>::infinity();
                if (have_best) {
                  // Cheap exact skip: evaluate the shared float
                  // expression at a dot that can only be larger than
                  // the true one — the expression is weakly antitone in
                  // the dot, so distance(upper) >= best implies
                  // distance(dot) >= best.
                  std::int64_t upper = centroid_count_sum[c];
                  const std::size_t planes_c =
                      centroid_planes[c].plane_count();
                  if (planes_c < 40) {
                    upper = std::min(
                        upper, ((std::int64_t{1} << planes_c) - 1) * px);
                  }
                  if (hdc::kernels::cosine_distance_from_dot(upper, cn,
                                                             pn) >= best) {
                    ++pruned;
                    continue;
                  }
                }
                // In-kernel prune threshold: the largest integer dot
                // that still cannot beat best under the shared float
                // expression. Start at the real-arithmetic crossover
                // and nudge down until the expression itself concedes;
                // bail out (scan uncapped, still exact) if rounding
                // pathologies drag the search out.
                std::int64_t max_useful = -1;
                if (have_best) {
                  const double crossover = (1.0 - best) * (pn * cn);
                  if (crossover >= 0.0 && crossover < 9.0e18) {
                    auto m = static_cast<std::int64_t>(crossover);
                    int steps = 0;
                    while (m >= 0 && hdc::kernels::cosine_distance_from_dot(
                                         m, cn, pn) < best) {
                      --m;
                      if (++steps > 64) {
                        m = -1;
                        break;
                      }
                    }
                    max_useful = m;
                  }
                }
                const auto scan = hdc::kernels::dot_planes_bounded(
                    centroid_planes[c], point,
                    static_cast<std::size_t>(px), max_useful, backend);
                words += scan.words_scanned;
                if (scan.pruned) {
                  // True dot <= max_useful, so its distance >= best:
                  // the exhaustive loop would not have updated either.
                  ++pruned;
                  continue;
                }
                ++evals;
                ++kernel_evals;
                const double dist = hdc::kernels::cosine_distance_from_dot(
                    scan.dot, cn, pn);
                if (dist < best) {
                  best = dist;
                  best_cluster = static_cast<std::uint32_t>(c);
                }
              }
              evals_total.fetch_add(evals, std::memory_order_relaxed);
              kernel_evals_total.fetch_add(kernel_evals,
                                           std::memory_order_relaxed);
              pruned_total.fetch_add(pruned, std::memory_order_relaxed);
              words_total.fetch_add(words, std::memory_order_relaxed);
              commit(i, best_cluster, best);
            },
            /*grain=*/64);
      }
      const std::uint64_t pairs = static_cast<std::uint64_t>(n) * k;
      if (pruned_assign) {
        const std::uint64_t evals = evals_total.load();
        const std::uint64_t pruned = pruned_total.load();
        result.ops.distance_evals += evals;
        result.ops.candidates_pruned += pruned;
        result.ops.dot_adds += kernel_evals_total.load() * dim;
        result.ops.words_scanned += words_total.load();
        assign_span.arg("evaluated", evals);
        assign_span.arg("pruned", pruned);
        assign_span.arg("pruned_pct", pairs != 0 ? pruned * 100 / pairs : 0);
      } else {
        // Exhaustive accounting keeps the classic assumed totals (and
        // words_scanned measured above): every pair is an eval of dim
        // dot adds.
        result.ops.dot_adds += pairs * dim;
        result.ops.distance_evals += pairs;
        assign_span.arg("evaluated", pairs);
        assign_span.arg("pruned", 0);
        assign_span.arg("pruned_pct", 0);
      }
    }

    // --- Update step: rebuild weighted centroid sums. Each chunk
    // accumulates its contiguous slice of points into its own bank of
    // partial centroids; the banks are then merged in chunk order.
    // Integer adds commute exactly, so the reduced centroids (and every
    // label derived from them) match the sequential loop bit for bit at
    // any thread count. ---
    for (auto& centroid : result.centroids) {
      centroid.clear();
    }
    std::fill(result.cluster_weights.begin(), result.cluster_weights.end(),
              std::uint64_t{0});
    if (update_chunks <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = result.assignment[i];
        result.centroids[c].add(points.row(i), weight_of(i));
        result.cluster_weights[c] += weight_of(i);
      }
    } else {
      pool.parallel_for(
          0, update_chunks,
          [&](std::size_t chunk) {
            auto& centroids = partial_centroids[chunk];
            auto& chunk_weights = partial_weights[chunk];
            for (auto& centroid : centroids) {
              centroid.clear();
            }
            std::fill(chunk_weights.begin(), chunk_weights.end(),
                      std::uint64_t{0});
            const std::size_t lo = chunk * n / update_chunks;
            const std::size_t hi = (chunk + 1) * n / update_chunks;
            for (std::size_t i = lo; i < hi; ++i) {
              const std::uint32_t c = result.assignment[i];
              centroids[c].add(points.row(i), weight_of(i));
              chunk_weights[c] += weight_of(i);
            }
          },
          /*grain=*/1);
      for (std::size_t chunk = 0; chunk < update_chunks; ++chunk) {
        for (std::size_t c = 0; c < k; ++c) {
          result.centroids[c].merge(partial_centroids[chunk][c]);
          result.cluster_weights[c] += partial_weights[chunk][c];
        }
      }
    }
    result.ops.centroid_update_adds += static_cast<std::uint64_t>(n) * dim;

    // --- Empty-cluster repair: reseed with the point farthest from its
    // own centroid (deterministic: highest distance, lowest index). ---
    const std::size_t reseeds_before = result.reseeds;
    for (std::size_t c = 0; c < k; ++c) {
      if (result.cluster_weights[c] != 0) {
        continue;
      }
      std::size_t farthest = 0;
      double farthest_distance = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.cluster_weights[result.assignment[i]] > weight_of(i) &&
            distance_to_own[i] > farthest_distance) {
          farthest_distance = distance_to_own[i];
          farthest = i;
        }
      }
      const std::uint32_t old_cluster = result.assignment[farthest];
      result.assignment[farthest] = static_cast<std::uint32_t>(c);
      // Move the point's mass between clusters. Rebuilding the source
      // centroid exactly would need a subtract; reseeding is rare and
      // the next iteration rebuilds all centroids anyway, so only the
      // destination is patched here.
      result.centroids[c].add(points.row(farthest), weight_of(farthest));
      result.cluster_weights[c] += weight_of(farthest);
      result.cluster_weights[old_cluster] -= weight_of(farthest);
      ++result.reseeds;
    }
    result.iterations_run = iter + 1;

    // Convergence: iteration 0 always "changes" every point relative to
    // the zero-initialised assignment, so only later iterations count;
    // a reseed also perturbs the state and voids the fixed point.
    if (config_.stop_on_convergence && iter > 0 && changed.load() == 0 &&
        result.reseeds == reseeds_before) {
      result.converged = true;
      break;
    }
  }

  return result;
}

std::vector<std::size_t> largest_color_difference_seeds(
    std::span<const std::uint8_t> intensities, std::size_t clusters) {
  util::expects(clusters >= 2, "need at least two clusters");
  util::expects(intensities.size() >= clusters,
                "need at least `clusters` points");

  std::vector<std::size_t> seeds;
  seeds.reserve(clusters);

  // The pair with the largest color difference: global min and max.
  std::size_t min_index = 0;
  std::size_t max_index = 0;
  for (std::size_t i = 1; i < intensities.size(); ++i) {
    if (intensities[i] < intensities[min_index]) {
      min_index = i;
    }
    if (intensities[i] > intensities[max_index]) {
      max_index = i;
    }
  }
  if (min_index == max_index) {
    // Degenerate flat image: fall back to distinct indices.
    for (std::size_t c = 0; c < clusters; ++c) {
      seeds.push_back(c);
    }
    return seeds;
  }
  seeds.push_back(max_index);
  seeds.push_back(min_index);

  // Remaining seeds: farthest-point sampling on intensity.
  while (seeds.size() < clusters) {
    std::size_t best_index = 0;
    int best_gap = -1;
    for (std::size_t i = 0; i < intensities.size(); ++i) {
      int gap = std::numeric_limits<int>::max();
      bool already = false;
      for (const std::size_t s : seeds) {
        if (s == i) {
          already = true;
          break;
        }
        gap = std::min(gap, std::abs(static_cast<int>(intensities[i]) -
                                     static_cast<int>(intensities[s])));
      }
      if (!already && gap > best_gap) {
        best_gap = gap;
        best_index = i;
      }
    }
    seeds.push_back(best_index);
  }
  return seeds;
}

}  // namespace seghdc::core
