// Hypervector K-Means (paper Section III-④).
//
// The paper's clusterer, restated: centroids are the integer SUMS of the
// member pixel HVs (never re-binarized between iterations), points are
// assigned by COSINE distance (Eq. 7) because summation scales centroid
// length but not direction, and the initial centroids are the pixels
// with the largest color difference rather than random picks. The
// iteration count is a fixed budget (default 10).
//
// This implementation adds engineering features with identical
// semantics: (1) points carry integer multiplicities, so deduplicated
// pixel sets cluster exactly like the full pixel set; (2) the assignment
// step runs data-parallel, with the cosine dot reformulated word-blocked
// (per-centroid bit-plane snapshots, kernels::CountPlanes) so it streams
// fused AND+popcount passes through the dispatched SIMD backend instead
// of walking set bits serially — the integer dot, and therefore every
// label, is bit-identical to the serial formulation; (3) the update step
// accumulates per-chunk partial centroids in parallel and reduces them
// in fixed order — integer sums are order-independent, so assignments
// and centroids are bit-identical for every thread count; (4) at large
// cluster counts the assignment prunes candidates it can prove are not
// the nearest (per-centroid norm bounds, plus early-exit bounded
// kernels that abort a scan once the running distance loses to the
// best so far) — EXACT pruning only, ties still broken by the lowest
// index, so the pruned path is bit-identical to the exhaustive one and
// rides the same golden hashes (see AssignMode).
#ifndef SEGHDC_CORE_KMEANS_HPP
#define SEGHDC_CORE_KMEANS_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/op_counts.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/util/parallel.hpp"

namespace seghdc::core {

struct HvKMeansConfig {
  std::size_t clusters = 2;
  std::size_t iterations = 10;
  ClusterDistance distance = ClusterDistance::kCosine;
  /// Assignment strategy (see core::AssignMode). kAuto prunes when
  /// clusters >= prune_min_clusters and defers to the
  /// SEGHDC_ASSIGN_MODE environment variable when set (resolved once at
  /// construction; unknown values are hard errors). Pruning is EXACT:
  /// norm bounds and early-exit bounded kernels only skip centroids
  /// that provably cannot win the argmin — including index tie-breaks —
  /// so assignments, centroids, and convergence behaviour are
  /// bit-identical in every mode, at every backend and pool size.
  AssignMode assign_mode = AssignMode::kAuto;
  /// kAuto threshold: prune when clusters >= this. At very small K the
  /// per-point candidate ordering costs more than the scans it skips;
  /// from roughly this K up the pruned scan wins and keeps widening
  /// (see bench_assign).
  std::size_t prune_min_clusters = 8;
  /// Stop as soon as an assignment step changes no point (the paper runs
  /// a fixed budget but observes saturation by iteration ~4; with this
  /// flag the clusterer banks that saving automatically). The result is
  /// identical to running the full budget.
  bool stop_on_convergence = false;
  /// Thread pool for the assignment and update steps (nullptr = the
  /// process-wide shared pool). Results are bit-identical for every pool
  /// size: the assignment writes per-point slots and the update reduces
  /// integer partial sums, which are order-independent.
  util::ThreadPool* pool = nullptr;
};

struct HvKMeansResult {
  /// Cluster index per input point.
  std::vector<std::uint32_t> assignment;
  /// Final integer centroids (sum of member HVs, weighted).
  std::vector<hdc::Accumulator> centroids;
  /// Total member weight per cluster after the final assignment.
  std::vector<std::uint64_t> cluster_weights;
  std::size_t iterations_run = 0;
  /// True when the run ended because assignments stopped changing.
  bool converged = false;
  /// Number of empty-cluster reseeds performed.
  std::size_t reseeds = 0;
  /// True when the run used the candidate-pruned assignment path
  /// (resolved mode kPruned, or kAuto with clusters >=
  /// prune_min_clusters). Purely informational — both paths produce
  /// bit-identical results.
  bool pruned_assignment = false;
  /// Work performed. Assignment accounting is measured, not assumed:
  /// `distance_evals` counts pairs whose exact distance was computed,
  /// `candidates_pruned` counts pairs skipped by norm bounds or aborted
  /// bounded-kernel scans (evals + pruned == points * clusters per
  /// iteration in every mode), `dot_adds` adds `dim` per evaluated
  /// distance whose dot/scan actually ran (so the exhaustive total is
  /// the classic n*k*dim), and `words_scanned` counts the words the
  /// assignment kernels actually streamed, partial scans included.
  OpCounts ops;
};

class HvKMeans {
 public:
  explicit HvKMeans(const HvKMeansConfig& config);

  /// Clusters `points` (all of equal dimension) with per-point integer
  /// `weights` (empty span = all 1). `seed_points` are the indices used
  /// to initialise the centroids and must contain exactly `clusters`
  /// distinct indices — the caller implements the paper's
  /// "largest color difference" selection (see SegHdc::segment).
  /// Convenience overload: packs into an HvBlock and delegates.
  HvKMeansResult run(std::span<const hdc::HyperVector> points,
                     std::span<const std::uint32_t> weights,
                     std::span<const std::size_t> seed_points) const;

  /// The primary entry point: clusters the rows of a packed `HvBlock`.
  /// The assignment step streams the fused word-span kernels over block
  /// rows in parallel — no per-point HyperVector is ever materialised.
  HvKMeansResult run(const hdc::HvBlock& points,
                     std::span<const std::uint32_t> weights,
                     std::span<const std::size_t> seed_points) const;

  /// Warm-start entry point: the initial centroids are given DIRECTLY as
  /// binary HVs instead of as indices into `points`. Each seed HV is
  /// added with weight 1, exactly the seed-point semantics of `run` (a
  /// seed defines a direction, not a mass), so the two entry points
  /// differ only in where the initial directions come from. This is the
  /// temporal/video serving hook: seeding from the previous frame's
  /// majority-binarized centroids starts the iteration near the previous
  /// solution, so near-identical frames converge in a fraction of the
  /// iterations (bank the saving with stop_on_convergence). Requires
  /// exactly `clusters` seed HVs of the points' dimension, zero-padded
  /// like every HyperVector. Deterministic like `run`: same points,
  /// weights, and seed centroids give bit-identical assignments at every
  /// pool size and backend.
  HvKMeansResult run_from_centroids(
      const hdc::HvBlock& points, std::span<const std::uint32_t> weights,
      std::span<const hdc::HyperVector> seed_centroids) const;

 private:
  /// Shared iteration core; `init_centroids` seeds `centroids` (already
  /// sized to `clusters`, all zero) with the initial directions.
  HvKMeansResult run_impl(
      const hdc::HvBlock& points, std::span<const std::uint32_t> weights,
      const std::function<void(std::vector<hdc::Accumulator>&)>&
          init_centroids) const;

  HvKMeansConfig config_;
  /// config_.assign_mode with the SEGHDC_ASSIGN_MODE environment
  /// override folded in (kAuto only; resolved once in the constructor,
  /// hard error on unknown values).
  AssignMode resolved_assign_mode_ = AssignMode::kAuto;
};

/// Farthest-point sampling over scalar intensities: returns `clusters`
/// distinct point indices, starting with the min/max pair (the "largest
/// color difference" of the paper) and greedily maximising the minimum
/// intensity gap for the rest. Weighted duplicates are allowed; indices
/// are deterministic (ties resolve to the lowest index).
std::vector<std::size_t> largest_color_difference_seeds(
    std::span<const std::uint8_t> intensities, std::size_t clusters);

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_KMEANS_HPP
