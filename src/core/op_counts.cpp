#include "src/core/op_counts.hpp"

namespace seghdc::core {

OpCounts& OpCounts::operator+=(const OpCounts& other) {
  bind_xor_bits += other.bind_xor_bits;
  popcount_bits += other.popcount_bits;
  dot_adds += other.dot_adds;
  centroid_update_adds += other.centroid_update_adds;
  distance_evals += other.distance_evals;
  candidates_pruned += other.candidates_pruned;
  words_scanned += other.words_scanned;
  return *this;
}

OpCounts operator+(OpCounts lhs, const OpCounts& rhs) {
  lhs += rhs;
  return lhs;
}

OpCounts analytic_seghdc_ops(std::size_t pixels, std::size_t dim,
                             std::size_t clusters, std::size_t iterations) {
  OpCounts ops;
  const auto px = static_cast<std::uint64_t>(pixels);
  const auto d = static_cast<std::uint64_t>(dim);
  const auto k = static_cast<std::uint64_t>(clusters);
  const auto it = static_cast<std::uint64_t>(iterations);
  // Encoding: one d-bit XOR bind per pixel plus one d-bit popcount for
  // the pixel HV norm used by the cosine distance.
  ops.bind_xor_bits = px * d;
  ops.popcount_bits = px * d;
  // Clustering: per iteration, each pixel evaluates k dot products of d
  // adds, then contributes d adds to its centroid update.
  ops.dot_adds = px * d * k * it;
  ops.centroid_update_adds = px * d * it;
  ops.distance_evals = px * k * it;
  return ops;
}

}  // namespace seghdc::core
