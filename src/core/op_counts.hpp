// Operation accounting for the SegHDC pipeline. Every segmentation
// reports how much elementary work it performed; the device model
// (src/device) converts these counts into projected edge-device latency
// for the paper's Table II and Fig. 7 "latency on PI" axes.
#ifndef SEGHDC_CORE_OP_COUNTS_HPP
#define SEGHDC_CORE_OP_COUNTS_HPP

#include <cstdint>

namespace seghdc::core {

/// Elementary-operation counts, in units of vector *elements* processed
/// (a d-dimensional XOR counts d bind_xor_bits, etc.).
struct OpCounts {
  std::uint64_t bind_xor_bits = 0;       ///< XOR binding work
  std::uint64_t popcount_bits = 0;       ///< popcount/Hamming work
  std::uint64_t dot_adds = 0;            ///< centroid dot-product adds
  std::uint64_t centroid_update_adds = 0;///< centroid accumulation adds
  std::uint64_t distance_evals = 0;      ///< point-centroid distances
  /// (point, centroid) pairs the assignment step skipped without a full
  /// distance: norm-bound skips plus early-exited bounded-kernel scans.
  /// Every assignment pair is either a distance_eval or pruned, so
  /// distance_evals + candidates_pruned == points * clusters *
  /// iterations for a clustering run. Zero under exhaustive assignment.
  std::uint64_t candidates_pruned = 0;
  /// 64-bit words actually streamed by the assignment distance kernels
  /// (full scans and aborted partial scans alike; each cosine plane
  /// pass counts its own words). The honest bandwidth figure pruning is
  /// judged by, where dot_adds stays in logical element units.
  std::uint64_t words_scanned = 0;

  std::uint64_t total_element_ops() const {
    return bind_xor_bits + popcount_bits + dot_adds + centroid_update_adds;
  }

  OpCounts& operator+=(const OpCounts& other);
};

OpCounts operator+(OpCounts lhs, const OpCounts& rhs);

/// Analytic per-pixel op counts of a SegHDC run *without* deduplication —
/// the cost structure of the paper's reference implementation, which the
/// device latency model is calibrated against.
OpCounts analytic_seghdc_ops(std::size_t pixels, std::size_t dim,
                             std::size_t clusters, std::size_t iterations);

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_OP_COUNTS_HPP
