#include "src/core/pixel_producer.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::core {

hdc::HyperVector PixelProducer::produce(const hdc::HyperVector& position,
                                        const hdc::HyperVector& color) const {
  util::expects(position.dim() == color.dim(),
                "PixelProducer requires equal-dimension inputs");
  ops_.bind_xor_bits += position.dim();
  return position ^ color;
}

}  // namespace seghdc::core
