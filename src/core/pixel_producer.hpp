// Pixel HV producer (paper Section III-③, Fig. 5).
//
// Binds a position HV and a color HV into the final pixel HV with
// element-wise XOR. XOR is the right associator because a bit flipped in
// either input flips the same bit of the output: position distance and
// color distance ADD in the bound vector whenever their flip sites
// differ (Fig. 5(c)), and only partially cancel on the rare coinciding
// sites (Fig. 5(d)). Element-wise multiplication would zero out distance
// information instead (paper Section III-①).
#ifndef SEGHDC_CORE_PIXEL_PRODUCER_HPP
#define SEGHDC_CORE_PIXEL_PRODUCER_HPP

#include "src/core/op_counts.hpp"
#include "src/hdc/hypervector.hpp"

namespace seghdc::core {

/// Stateless binder with op accounting. This is the REFERENCE binder
/// (one HyperVector per call) used by tests and ablations; the pipeline
/// itself binds straight into HvBlock rows via kernels::xor_words (see
/// SegHdc::encode) and accounts the same bind_xor_bits there.
class PixelProducer {
 public:
  /// pixel = position XOR color. Dimensions must match.
  hdc::HyperVector produce(const hdc::HyperVector& position,
                           const hdc::HyperVector& color) const;

  /// Cumulative work done by this producer (element XORs).
  const OpCounts& ops() const { return ops_; }
  void reset_ops() { ops_ = OpCounts{}; }

 private:
  mutable OpCounts ops_;
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_PIXEL_PRODUCER_HPP
