#include "src/core/position_encoder.hpp"

#include <algorithm>

#include "src/util/contracts.hpp"

namespace seghdc::core {

namespace {

std::size_t blocks_for(std::size_t extent, std::size_t block) {
  return (extent + block - 1) / block;
}

}  // namespace

PositionEncoder::PositionEncoder(const PositionEncoderConfig& config,
                                 util::Rng& rng)
    : config_(config) {
  util::expects(config_.dim >= 2, "PositionEncoder dim must be >= 2");
  util::expects(config_.rows > 0 && config_.cols > 0,
                "PositionEncoder needs a non-empty image geometry");
  util::expects(config_.alpha > 0.0 && config_.alpha <= 1.0,
                "PositionEncoder alpha must be in (0, 1]");
  util::expects(config_.beta >= 1, "PositionEncoder beta must be >= 1");

  const std::size_t d = config_.dim;
  const bool blocked =
      config_.encoding == PositionEncoding::kBlockDecayManhattan;
  block_ = blocked ? config_.beta : 1;
  const std::size_t row_blocks = blocks_for(config_.rows, block_);
  const std::size_t col_blocks = blocks_for(config_.cols, block_);

  // Effective decay ratio per variant: kManhattan is the alpha = 1 case
  // of the decayed ladder (Fig. 3(b) vs (c)).
  const double alpha =
      config_.encoding == PositionEncoding::kManhattan ? 1.0 : config_.alpha;

  switch (config_.encoding) {
    case PositionEncoding::kRandom: {
      // RPos ablation: one i.i.d. random HV per row/column block; no
      // distance structure at all.
      row_ladder_.reserve(row_blocks);
      for (std::size_t b = 0; b < row_blocks; ++b) {
        row_ladder_.push_back(hdc::HyperVector::random(d, rng));
      }
      col_ladder_.reserve(col_blocks);
      for (std::size_t b = 0; b < col_blocks; ++b) {
        col_ladder_.push_back(hdc::HyperVector::random(d, rng));
      }
      return;
    }
    case PositionEncoding::kUniform: {
      // Fig. 3(a): Eq. 3 flip units, both ladders flipping from bit 0 of
      // the FULL vector — row and column flips collide and distances
      // diminish. Kept for the ablation bench / property tests.
      x_row_ = d / row_blocks;
      x_col_ = d / col_blocks;
      build_ladder(row_ladder_, row_blocks, x_row_, 0, d, rng);
      build_ladder(col_ladder_, col_blocks, x_col_, 0, d, rng);
      return;
    }
    case PositionEncoding::kManhattan:
    case PositionEncoding::kDecayManhattan:
    case PositionEncoding::kBlockDecayManhattan: {
      const std::size_t half = d / 2;
      // Eq. 5: x = floor(alpha*d / (2*N)); N = rows for the literal paper
      // formula, N = blocks so the ladder spans alpha*d/2 independent of
      // beta (see config.hpp FlipUnitBasis).
      const std::size_t n_rows =
          config_.flip_unit_basis == FlipUnitBasis::kRows ? config_.rows
                                                          : row_blocks;
      const std::size_t n_cols =
          config_.flip_unit_basis == FlipUnitBasis::kRows ? config_.cols
                                                          : col_blocks;
      x_row_ = static_cast<std::size_t>(alpha * static_cast<double>(d) /
                                        (2.0 * static_cast<double>(n_rows)));
      x_col_ = static_cast<std::size_t>(alpha * static_cast<double>(d) /
                                        (2.0 * static_cast<double>(n_cols)));
      // Eq. 5 floors to 0 when d < 2N/alpha; clamp to one bit per step
      // so position information degrades gracefully instead of
      // collapsing every row onto one HV (see FlipUnitBasis docs).
      x_row_ = std::max<std::size_t>(x_row_, 1);
      x_col_ = std::max<std::size_t>(x_col_, 1);
      // The ladders must stay inside their half-regions; the clamp above
      // can overrun them only for degenerate geometries (more blocks
      // than d/2), which the wrap-around in build_ladder would silently
      // corrupt — reject instead.
      util::expects(row_blocks * x_row_ <= half,
                    "PositionEncoder: dim too small for this many row "
                    "blocks (ladder exceeds the first half)");
      util::expects(col_blocks * x_col_ <= d - half,
                    "PositionEncoder: dim too small for this many column "
                    "blocks (ladder exceeds the second half)");
      // Rows flip inside [0, d/2), columns inside [d/2, d) — disjoint
      // regions are what make XOR binding distance-preserving (Fig. 3(b)).
      build_ladder(row_ladder_, row_blocks, x_row_, 0, half, rng);
      build_ladder(col_ladder_, col_blocks, x_col_, half, d, rng);
      return;
    }
  }
  util::ensures(false, "unhandled PositionEncoding");
}

void PositionEncoder::build_ladder(std::vector<hdc::HyperVector>& ladder,
                                   std::size_t block_count,
                                   std::size_t flip_unit,
                                   std::size_t region_begin,
                                   std::size_t region_end, util::Rng& rng) {
  ladder.reserve(block_count);
  hdc::HyperVector current = hdc::HyperVector::random(config_.dim, rng);
  ladder.push_back(current);
  std::size_t cursor = region_begin;
  for (std::size_t b = 1; b < block_count; ++b) {
    // Flip the next `flip_unit` bits, wrapping inside the region if a
    // degenerate configuration overruns it (the kUniform ablation can).
    std::size_t remaining = flip_unit;
    while (remaining > 0) {
      if (cursor >= region_end) {
        cursor = region_begin;
      }
      const std::size_t run = std::min(remaining, region_end - cursor);
      current.flip_range(cursor, cursor + run);
      cursor += run;
      remaining -= run;
    }
    ladder.push_back(current);
  }
}

const hdc::HyperVector& PositionEncoder::row_hv(std::size_t i) const {
  util::expects(i < config_.rows, "PositionEncoder::row_hv row in range");
  return row_ladder_[row_block(i)];
}

const hdc::HyperVector& PositionEncoder::col_hv(std::size_t j) const {
  util::expects(j < config_.cols, "PositionEncoder::col_hv column in range");
  return col_ladder_[col_block(j)];
}

hdc::HyperVector PositionEncoder::encode(std::size_t i, std::size_t j) const {
  return row_hv(i) ^ col_hv(j);
}

std::size_t PositionEncoder::row_block(std::size_t i) const {
  return i / block_;
}

std::size_t PositionEncoder::col_block(std::size_t j) const {
  return j / block_;
}

}  // namespace seghdc::core
