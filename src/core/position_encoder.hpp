// Position encoder (paper Section III-①, Fig. 3).
//
// Encodes a pixel coordinate (row i, column j) as p(i,j) = r_i XOR c_j
// where the row/column hypervector ladders are constructed so that the
// Hamming distance between two position HVs equals the (block) Manhattan
// distance between the coordinates scaled by the flip units:
//
//   hamming(p(i,j), p(i+m, j+n)) = |m|' * x_row + |n|' * x_col
//
// (|.|' = distance in beta-sized blocks). The construction: row HVs flip
// cumulative runs of x_row bits inside the FIRST half of the vector,
// column HVs inside the SECOND half, so row and column flips can never
// collide (the failure of the naive "uniform" encoding, Fig. 3(a), kept
// here as an ablation variant).
#ifndef SEGHDC_CORE_POSITION_ENCODER_HPP
#define SEGHDC_CORE_POSITION_ENCODER_HPP

#include <cstddef>
#include <vector>

#include "src/core/config.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/util/rng.hpp"

namespace seghdc::core {

/// Geometry + encoding parameters of a PositionEncoder.
struct PositionEncoderConfig {
  std::size_t dim = 10000;
  std::size_t rows = 0;     ///< image height
  std::size_t cols = 0;     ///< image width
  PositionEncoding encoding = PositionEncoding::kBlockDecayManhattan;
  double alpha = 0.2;       ///< Eq. 5 decay ratio, in (0, 1]
  std::size_t beta = 1;     ///< block size (>= 1); used by kBlockDecay*
  FlipUnitBasis flip_unit_basis = FlipUnitBasis::kRows;
};

/// Precomputes the row/column HV ladders for one image geometry and
/// serves position HVs. Immutable after construction.
class PositionEncoder {
 public:
  /// Builds the ladders; consumes randomness from `rng` (the base HVs).
  PositionEncoder(const PositionEncoderConfig& config, util::Rng& rng);

  const PositionEncoderConfig& config() const { return config_; }

  /// Row HV for image row `i` (i < rows).
  const hdc::HyperVector& row_hv(std::size_t i) const;

  /// Column HV for image column `j` (j < cols).
  const hdc::HyperVector& col_hv(std::size_t j) const;

  /// Position HV p(i,j) = row_hv(i) XOR col_hv(j).
  hdc::HyperVector encode(std::size_t i, std::size_t j) const;

  /// Block index of row i: i/beta for the block variant, i otherwise.
  std::size_t row_block(std::size_t i) const;
  std::size_t col_block(std::size_t j) const;

  /// Number of distinct row/column HVs (= number of blocks).
  std::size_t distinct_rows() const { return row_ladder_.size(); }
  std::size_t distinct_cols() const { return col_ladder_.size(); }

  /// Bits flipped per row/column block step (0 for kRandom).
  std::size_t row_flip_unit() const { return x_row_; }
  std::size_t col_flip_unit() const { return x_col_; }

 private:
  void build_ladder(std::vector<hdc::HyperVector>& ladder,
                    std::size_t block_count, std::size_t flip_unit,
                    std::size_t region_begin, std::size_t region_end,
                    util::Rng& rng);

  PositionEncoderConfig config_;
  std::size_t block_ = 1;   ///< effective beta (1 unless kBlockDecay)
  std::size_t x_row_ = 0;
  std::size_t x_col_ = 0;
  std::vector<hdc::HyperVector> row_ladder_;  ///< one HV per row block
  std::vector<hdc::HyperVector> col_ladder_;  ///< one HV per column block
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_POSITION_ENCODER_HPP
