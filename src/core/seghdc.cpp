#include "src/core/seghdc.hpp"

#include "src/core/session.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::core {

void SegHdcConfig::validate() const {
  util::expects(dim >= 8 && dim <= 1'000'000,
                "SegHdcConfig.dim must be in [8, 1e6]");
  util::expects(alpha > 0.0 && alpha <= 1.0,
                "SegHdcConfig.alpha must be in (0, 1]");
  util::expects(beta >= 1, "SegHdcConfig.beta must be >= 1");
  util::expects(gamma >= 1, "SegHdcConfig.gamma must be >= 1");
  util::expects(clusters >= 2 && clusters <= 256,
                "SegHdcConfig.clusters must be in [2, 256]");
  util::expects(iterations >= 1 && iterations <= 10'000,
                "SegHdcConfig.iterations must be in [1, 10000]");
  util::expects(color_quantization_shift <= 7,
                "SegHdcConfig.color_quantization_shift must be in [0, 7]");
  util::expects(bit_error_rate >= 0.0 && bit_error_rate <= 1.0,
                "SegHdcConfig.bit_error_rate must be in [0, 1]");
}

SegHdcConfig SegHdcConfig::rpos_variant() const {
  SegHdcConfig variant = *this;
  variant.position_encoding = PositionEncoding::kRandom;
  return variant;
}

SegHdcConfig SegHdcConfig::rcolor_variant() const {
  SegHdcConfig variant = *this;
  variant.color_encoding = ColorEncoding::kRandom;
  return variant;
}

SegHdc::SegHdc(const SegHdcConfig& config) : config_(config) {
  config_.validate();
}

// The stateless API is a thin wrapper over a one-shot session: the
// pipeline implementation lives in SegHdcSession (src/core/session.cpp),
// which additionally caches encoder state across calls. A fresh session
// per call reproduces the historical rebuild-every-time behaviour (and
// output) exactly.

EncodedImage SegHdc::encode(const img::ImageU8& image) const {
  return SegHdcSession(config_).encode(image);
}

SegmentationResult SegHdc::segment(const img::ImageU8& image) const {
  return SegHdcSession(config_).segment(image);
}

}  // namespace seghdc::core
