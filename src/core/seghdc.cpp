#include "src/core/seghdc.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/util/parallel.hpp"

#include "src/core/color_encoder.hpp"
#include "src/core/kmeans.hpp"
#include "src/core/position_encoder.hpp"
#include "src/hdc/fault.hpp"
#include "src/imaging/color.hpp"
#include "src/util/contracts.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::core {

void SegHdcConfig::validate() const {
  util::expects(dim >= 8 && dim <= 1'000'000,
                "SegHdcConfig.dim must be in [8, 1e6]");
  util::expects(alpha > 0.0 && alpha <= 1.0,
                "SegHdcConfig.alpha must be in (0, 1]");
  util::expects(beta >= 1, "SegHdcConfig.beta must be >= 1");
  util::expects(gamma >= 1, "SegHdcConfig.gamma must be >= 1");
  util::expects(clusters >= 2 && clusters <= 16,
                "SegHdcConfig.clusters must be in [2, 16]");
  util::expects(iterations >= 1 && iterations <= 10'000,
                "SegHdcConfig.iterations must be in [1, 10000]");
  util::expects(color_quantization_shift <= 7,
                "SegHdcConfig.color_quantization_shift must be in [0, 7]");
  util::expects(bit_error_rate >= 0.0 && bit_error_rate <= 1.0,
                "SegHdcConfig.bit_error_rate must be in [0, 1]");
}

SegHdcConfig SegHdcConfig::rpos_variant() const {
  SegHdcConfig variant = *this;
  variant.position_encoding = PositionEncoding::kRandom;
  return variant;
}

SegHdcConfig SegHdcConfig::rcolor_variant() const {
  SegHdcConfig variant = *this;
  variant.color_encoding = ColorEncoding::kRandom;
  return variant;
}

SegHdc::SegHdc(const SegHdcConfig& config) : config_(config) {
  config_.validate();
}

namespace {

/// Packs (row block, column block, color triple) into a dedup key.
/// Layout: [block_row:16][block_col:16][c0:8][c1:8][c2:8] = 56 bits.
std::uint64_t make_key(std::size_t block_row, std::size_t block_col,
                       const std::array<std::uint8_t, 3>& color) {
  return (static_cast<std::uint64_t>(block_row) << 40) |
         (static_cast<std::uint64_t>(block_col) << 24) |
         (static_cast<std::uint64_t>(color[0]) << 16) |
         (static_cast<std::uint64_t>(color[1]) << 8) |
         static_cast<std::uint64_t>(color[2]);
}

}  // namespace

EncodedImage SegHdc::encode(const img::ImageU8& image) const {
  util::expects(image.channels() == 1 || image.channels() == 3,
                "SegHdc supports 1- or 3-channel images");
  util::expects(image.width() > 0 && image.height() > 0,
                "SegHdc needs a non-empty image");
  // Key packing supports 2^16 blocks per axis.
  util::expects(image.width() < 65536 && image.height() < 65536,
                "SegHdc supports images up to 65535x65535");

  util::Rng rng(config_.seed);
  const PositionEncoderConfig pos_config{
      .dim = config_.dim,
      .rows = image.height(),
      .cols = image.width(),
      .encoding = config_.position_encoding,
      .alpha = config_.alpha,
      .beta = config_.beta,
      .flip_unit_basis = config_.flip_unit_basis,
  };
  const PositionEncoder position_encoder(pos_config, rng);
  const ColorEncoderConfig color_config{
      .dim = config_.dim,
      .channels = image.channels(),
      .encoding = config_.color_encoding,
      .gamma = config_.gamma,
  };
  const ColorEncoder color_encoder(color_config, rng);

  EncodedImage encoded;
  encoded.width = image.width();
  encoded.height = image.height();
  encoded.pixel_to_unique.resize(image.pixel_count());

  // --- Pass 1: dedup keys. When deduplication is disabled every pixel
  // becomes its own "unique" point (identical semantics, full cost). ---
  std::unordered_map<std::uint64_t, std::uint32_t> key_to_unique;
  struct UniqueRef {
    std::size_t x, y;  ///< representative pixel
    std::array<std::uint8_t, 3> color;
  };
  std::vector<UniqueRef> refs;
  if (config_.deduplicate) {
    key_to_unique.reserve(image.pixel_count() / 4 + 16);
  }

  // Quantisation: map v to the midpoint of its bucket so encoded colors
  // stay centred in the original range.
  const std::size_t shift = config_.color_quantization_shift;
  const auto quantize = [shift](std::uint8_t v) -> std::uint8_t {
    if (shift == 0) {
      return v;
    }
    const std::uint8_t bucket = static_cast<std::uint8_t>(v >> shift);
    const std::uint32_t mid = (static_cast<std::uint32_t>(bucket) << shift) +
                              ((1u << shift) >> 1);
    return static_cast<std::uint8_t>(std::min<std::uint32_t>(mid, 255));
  };

  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      std::array<std::uint8_t, 3> color{0, 0, 0};
      for (std::size_t c = 0; c < image.channels(); ++c) {
        color[c] = quantize(image(x, y, c));
      }
      const std::size_t pixel_index = y * image.width() + x;
      if (!config_.deduplicate) {
        encoded.pixel_to_unique[pixel_index] =
            static_cast<std::uint32_t>(refs.size());
        refs.push_back(UniqueRef{x, y, color});
        continue;
      }
      // kRandom position HVs differ per block index as well, so the same
      // key function applies to every encoding variant.
      const std::uint64_t key = make_key(position_encoder.row_block(y),
                                         position_encoder.col_block(x),
                                         color);
      const auto [it, inserted] = key_to_unique.try_emplace(
          key, static_cast<std::uint32_t>(refs.size()));
      if (inserted) {
        refs.push_back(UniqueRef{x, y, color});
      }
      encoded.pixel_to_unique[pixel_index] = it->second;
    }
  }

  // --- Pass 2a: memoise the position and color HVs. Position HVs
  // repeat across every color in a block and color HVs repeat across
  // blocks, so each distinct HV is built exactly once; the per-point
  // work left over is one word-parallel XOR. ---
  encoded.weights.assign(refs.size(), 0);
  encoded.intensities.resize(refs.size());
  std::unordered_map<std::uint64_t, hdc::HyperVector> position_cache;
  std::unordered_map<std::uint32_t, hdc::HyperVector> color_cache;
  // Per-unique-point views into the caches (node-based maps: value
  // addresses are stable across rehashing).
  std::vector<const hdc::HyperVector*> position_of(refs.size());
  std::vector<const hdc::HyperVector*> color_of(refs.size());
  for (std::size_t u = 0; u < refs.size(); ++u) {
    const auto& ref = refs[u];
    const std::uint64_t position_key =
        (static_cast<std::uint64_t>(position_encoder.row_block(ref.y))
         << 20) |
        position_encoder.col_block(ref.x);
    auto pos_it = position_cache.find(position_key);
    if (pos_it == position_cache.end()) {
      pos_it = position_cache
                   .emplace(position_key,
                            position_encoder.encode(ref.y, ref.x))
                   .first;
    }
    position_of[u] = &pos_it->second;
    const std::uint32_t color_key =
        (static_cast<std::uint32_t>(ref.color[0]) << 16) |
        (static_cast<std::uint32_t>(ref.color[1]) << 8) | ref.color[2];
    auto color_it = color_cache.find(color_key);
    if (color_it == color_cache.end()) {
      color_it =
          color_cache
              .emplace(color_key,
                       color_encoder.encode(std::span<const std::uint8_t>(
                           ref.color.data(), image.channels())))
              .first;
    }
    color_of[u] = &color_it->second;
    encoded.intensities[u] =
        image.channels() == 1
            ? ref.color[0]
            : img::luma(ref.color[0], ref.color[1], ref.color[2]);
  }
  for (const auto u : encoded.pixel_to_unique) {
    ++encoded.weights[u];
  }

  // --- Pass 2b: bind position x color straight into the packed block,
  // data-parallel over unique points. No per-point HyperVector is
  // allocated; each row is one fused XOR over cached word spans. ---
  encoded.unique_hvs = hdc::HvBlock(config_.dim, refs.size());
  util::parallel_for(
      0, refs.size(),
      [&](std::size_t u) {
        hdc::kernels::xor_words(encoded.unique_hvs.row(u),
                                position_of[u]->words(),
                                color_of[u]->words());
      },
      /*grain=*/64);
  encoded.ops.bind_xor_bits +=
      static_cast<std::uint64_t>(refs.size()) * config_.dim;

  // Fault injection: corrupt the encoded pixel HVs at the configured
  // bit-error rate (models storing them in an approximate memory).
  if (config_.bit_error_rate > 0.0) {
    util::Rng fault_rng(config_.seed ^ 0xFA017ULL);
    for (std::size_t u = 0; u < encoded.unique_hvs.count(); ++u) {
      hdc::inject_bit_flips(encoded.unique_hvs.row(u), config_.dim,
                            config_.bit_error_rate, fault_rng);
    }
  }

  return encoded;
}

SegmentationResult SegHdc::segment(const img::ImageU8& image) const {
  const util::Stopwatch total_watch;
  util::Stopwatch phase_watch;

  EncodedImage encoded = encode(image);

  SegmentationResult result;
  result.timings.encode_seconds = phase_watch.seconds();
  result.clusters = config_.clusters;
  result.unique_points = encoded.unique_hvs.size();

  // Initial centroids: pixels with the largest color difference
  // (Section III-④).
  const auto seeds = largest_color_difference_seeds(
      encoded.intensities, config_.clusters);

  phase_watch.reset();
  const HvKMeans kmeans(HvKMeansConfig{
      .clusters = config_.clusters,
      .iterations = config_.iterations,
      .distance = config_.cluster_distance,
      .stop_on_convergence = config_.stop_on_convergence,
  });
  const HvKMeansResult clustering =
      kmeans.run(encoded.unique_hvs, encoded.weights, seeds);
  result.timings.cluster_seconds = phase_watch.seconds();

  // --- Label map + per-cluster pixel counts. ---
  result.labels = img::LabelMap(image.width(), image.height(), 1, 0);
  result.cluster_pixel_counts.assign(config_.clusters, 0);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const std::uint32_t unique =
          encoded.pixel_to_unique[y * image.width() + x];
      const std::uint32_t label = clustering.assignment[unique];
      result.labels(x, y) = label;
      ++result.cluster_pixel_counts[label];
    }
  }

  // Optional confidence margins from the final centroids.
  if (config_.compute_margins) {
    std::vector<float> unique_margin(encoded.unique_hvs.size(), 0.0F);
    std::vector<double> centroid_norm(clustering.centroids.size());
    for (std::size_t c = 0; c < clustering.centroids.size(); ++c) {
      centroid_norm[c] = clustering.centroids[c].norm();
    }
    util::parallel_for(
        0, encoded.unique_hvs.size(),
        [&](std::size_t u) {
          const auto point = encoded.unique_hvs.row(u);
          const double point_norm = std::sqrt(
              static_cast<double>(encoded.unique_hvs.popcount(u)));
          double best = std::numeric_limits<double>::infinity();
          double second = std::numeric_limits<double>::infinity();
          for (std::size_t c = 0; c < clustering.centroids.size(); ++c) {
            const double d = hdc::kernels::cosine_distance_words(
                clustering.centroids[c].counts(), centroid_norm[c], point,
                point_norm);
            if (d < best) {
              second = best;
              best = d;
            } else if (d < second) {
              second = d;
            }
          }
          unique_margin[u] = static_cast<float>(second - best);
        },
        /*grain=*/64);
    result.margins = img::ImageF32(image.width(), image.height(), 1);
    for (std::size_t p = 0; p < encoded.pixel_to_unique.size(); ++p) {
      result.margins.pixels()[p] =
          unique_margin[encoded.pixel_to_unique[p]];
    }
  }

  result.iterations_run = clustering.iterations_run;
  result.ops = encoded.ops + clustering.ops;
  result.paper_equivalent_ops = analytic_seghdc_ops(
      image.pixel_count(), config_.dim, config_.clusters,
      config_.iterations);
  result.timings.total_seconds = total_watch.seconds();
  return result;
}

}  // namespace seghdc::core
