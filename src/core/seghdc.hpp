// The SegHDC pipeline (paper Fig. 2): position encoder ① + color encoder
// ② + pixel HV producer ③ + clusterer ④, orchestrated over an image.
//
//   SegHdc seghdc(config);
//   const SegmentationResult result = seghdc.segment(image);
//   // result.labels(x, y) in [0, config.clusters)
//
// SegHdc is stateless: every call rebuilds the encoder item memories.
// For many-image workloads use SegHdcSession (src/core/session.hpp),
// which caches that state per image geometry and batches via
// segment_many; SegHdc is a thin wrapper over a one-shot session and
// produces bitwise-identical results.
//
// The pipeline deduplicates pixels that provably share a pixel HV —
// identical (position block, color triple) — and clusters the unique set
// with multiplicities; this is semantically identical to per-pixel
// clustering and is what makes d = 10,000 tractable. Timings and op
// counts for both the deduplicated run and the paper-equivalent
// per-pixel cost model are reported in the result.
#ifndef SEGHDC_CORE_SEGHDC_HPP
#define SEGHDC_CORE_SEGHDC_HPP

#include <cstdint>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/op_counts.hpp"
#include "src/hdc/kernels.hpp"
#include "src/imaging/image.hpp"

namespace seghdc::core {

/// The encoded form of an image: one HV per *unique* (position block,
/// color) pair plus the pixel -> unique-point mapping. The HVs live in
/// one contiguous structure-of-arrays block (row u = unique point u) so
/// the clusterer streams them with the word-span kernels.
struct EncodedImage {
  hdc::HvBlock unique_hvs;
  std::vector<std::uint32_t> weights;          ///< pixels per unique point
  std::vector<std::uint32_t> pixel_to_unique;  ///< row-major, size = pixels
  std::vector<std::uint8_t> intensities;       ///< per unique point (luma)
  std::size_t width = 0;
  std::size_t height = 0;
  OpCounts ops;  ///< encoding work actually performed
};

struct SegmentationTimings {
  double encode_seconds = 0.0;
  double cluster_seconds = 0.0;
  double total_seconds = 0.0;
};

struct SegmentationResult {
  img::LabelMap labels;  ///< cluster index per pixel
  /// Per-pixel confidence margin (empty unless
  /// SegHdcConfig::compute_margins): distance to the second-closest
  /// centroid minus distance to the assigned one, in cosine-distance
  /// units (>= 0; larger = more confident).
  img::ImageF32 margins;
  std::size_t clusters = 0;
  std::size_t iterations_run = 0;
  std::size_t unique_points = 0;  ///< points actually clustered
  std::vector<std::uint64_t> cluster_pixel_counts;
  SegmentationTimings timings;
  /// Work actually performed (after deduplication).
  OpCounts ops;
  /// Cost of the same segmentation without deduplication — the cost
  /// structure of the paper's reference implementation; this is what the
  /// device model projects onto the Raspberry Pi.
  OpCounts paper_equivalent_ops;
};

class SegHdc {
 public:
  /// Validates `config` (throws std::invalid_argument on bad values).
  explicit SegHdc(const SegHdcConfig& config);

  const SegHdcConfig& config() const { return config_; }

  /// Encodes every pixel of `image` (1 or 3 channels) into pixel HVs.
  /// Exposed separately for tests, ablations, and custom clustering.
  EncodedImage encode(const img::ImageU8& image) const;

  /// Full pipeline: encode + cluster + label map.
  SegmentationResult segment(const img::ImageU8& image) const;

 private:
  SegHdcConfig config_;
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_SEGHDC_HPP
