#include "src/core/session.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/color_encoder.hpp"
#include "src/core/kmeans.hpp"
#include "src/core/position_encoder.hpp"
#include "src/hdc/fault.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/imaging/color.hpp"
#include "src/obs/trace.hpp"
#include "src/util/contracts.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::core {

namespace {

/// Packs (row block, column block, color triple) into a dedup key.
/// Layout: [block_row:16][block_col:16][c0:8][c1:8][c2:8] = 56 bits.
std::uint64_t make_key(std::size_t block_row, std::size_t block_col,
                       const std::array<std::uint8_t, 3>& color) {
  return (static_cast<std::uint64_t>(block_row) << 40) |
         (static_cast<std::uint64_t>(block_col) << 24) |
         (static_cast<std::uint64_t>(color[0]) << 16) |
         (static_cast<std::uint64_t>(color[1]) << 8) |
         static_cast<std::uint64_t>(color[2]);
}

void validate_image(const img::ImageU8& image) {
  util::expects(image.channels() == 1 || image.channels() == 3,
                "SegHdc supports 1- or 3-channel images");
  util::expects(image.width() > 0 && image.height() > 0,
                "SegHdc needs a non-empty image");
  // Key packing supports 2^16 blocks per axis.
  util::expects(image.width() < 65536 && image.height() < 65536,
                "SegHdc supports images up to 65535x65535");
}

/// Geometry cache key: height/width < 2^16 (validated), channels in
/// {1, 3}.
std::uint64_t geometry_key(const img::ImageU8& image) {
  return (static_cast<std::uint64_t>(image.height()) << 24) |
         (static_cast<std::uint64_t>(image.width()) << 8) |
         static_cast<std::uint64_t>(image.channels());
}

/// Dedup-map reserve sized from an observed unique ratio with 10%
/// headroom, so a slightly busier frame than the last one still avoids
/// mid-scan rehashing; clamped to the pixel count (the true maximum).
std::size_t expected_unique(std::size_t pixels, double unique_ratio) {
  const double estimate =
      unique_ratio * static_cast<double>(pixels) * 1.1 + 16.0;
  return std::min(pixels, static_cast<std::size_t>(estimate));
}

/// Quantisation for the dedup key: map v to the midpoint of its bucket
/// so encoded colors stay centred in the original range.
std::uint8_t quantize_midpoint(std::uint8_t v, std::size_t shift) {
  if (shift == 0) {
    return v;
  }
  const std::uint8_t bucket = static_cast<std::uint8_t>(v >> shift);
  const std::uint32_t mid =
      (static_cast<std::uint32_t>(bucket) << shift) + ((1u << shift) >> 1);
  return static_cast<std::uint8_t>(std::min<std::uint32_t>(mid, 255));
}

/// FNV-1a over raw bytes: the fast "did this band change?" check for the
/// stream path. Never trusted alone — a hash hit is confirmed with an
/// exact byte compare before any cache reuse (collisions must not be
/// able to corrupt labels).
std::uint64_t fnv1a_bytes(const std::uint8_t* data, std::size_t count) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

/// The immutable encoder state for one image geometry: the position and
/// color item memories. Construction order matters — the position
/// encoder consumes the seeded RNG stream first, then the color encoder,
/// exactly as the stateless `SegHdc::segment` path always has, so the
/// cached state reproduces its outputs bit for bit.
struct SegHdcSession::EncoderState {
  PositionEncoder position;
  ColorEncoder color;

  EncoderState(const SegHdcConfig& config, const img::ImageU8& image,
               util::Rng& rng)
      : position(
            PositionEncoderConfig{
                .dim = config.dim,
                .rows = image.height(),
                .cols = image.width(),
                .encoding = config.position_encoding,
                .alpha = config.alpha,
                .beta = config.beta,
                .flip_unit_basis = config.flip_unit_basis,
            },
            rng),
        color(
            ColorEncoderConfig{
                .dim = config.dim,
                .channels = image.channels(),
                .encoding = config.color_encoding,
                .gamma = config.gamma,
            },
            rng) {}
};

/// Reusable per-worker arena for encode: the dedup map, the unique-point
/// refs, and the memoised position/color HVs. The HV caches are keyed by
/// encoder state and survive across images of the same geometry (their
/// values are pure functions of the state), so a worker streaming
/// similar frames stops re-deriving the same HVs; the per-image
/// containers are cleared (capacity retained) between calls.
struct SegHdcSession::EncodeScratch {
  struct UniqueRef {
    std::size_t x, y;  ///< representative pixel
    std::array<std::uint8_t, 3> color;
  };

  /// Phase-1 arena of one row band: the band's local dedup table and,
  /// per local unique point, its key, first-occurrence ref, and pixel
  /// weight. `remap` (local id -> global id) is filled by the fixed
  /// band-order merge. One per tile, reused across images (cleared,
  /// capacity retained) like the rest of the scratch.
  struct TileScratch {
    std::unordered_map<std::uint64_t, std::uint32_t> key_to_local;
    std::vector<std::uint64_t> keys;
    std::vector<UniqueRef> refs;
    std::vector<std::uint32_t> weights;
    std::vector<std::uint32_t> remap;

    void begin_band(std::size_t band_pixels, double unique_ratio) {
      key_to_local.clear();
      keys.clear();
      refs.clear();
      weights.clear();
      key_to_local.reserve(expected_unique(band_pixels, unique_ratio));
    }
  };

  std::unordered_map<std::uint64_t, std::uint32_t> key_to_unique;
  std::vector<UniqueRef> refs;
  std::vector<TileScratch> tiles;
  /// Unique ratio (unique points / pixels) observed on the previous
  /// image through this arena; seeds the dedup-map reserves so low-dedup
  /// images (noise, photos) don't rehash repeatedly mid-scan. Starts at
  /// the old fixed 1/4 heuristic.
  double last_unique_ratio = 0.25;
  // Node-based maps: value addresses are stable across rehashing, so the
  // per-point views below may point into them.
  std::unordered_map<std::uint64_t, hdc::HyperVector> position_cache;
  std::unordered_map<std::uint32_t, hdc::HyperVector> color_cache;
  std::vector<const hdc::HyperVector*> position_of;
  std::vector<const hdc::HyperVector*> color_of;
  const EncoderState* cached_state = nullptr;

  void begin_image(const EncoderState& state, std::size_t dim) {
    key_to_unique.clear();
    refs.clear();
    if (cached_state != &state) {
      position_cache.clear();
      color_cache.clear();
      cached_state = &state;
    }
    // Backstop for adversarial color churn (high-entropy RGB streams):
    // cap the cross-image cache by payload bytes, not entries, so the
    // bound holds on edge devices at any dim. ~8 MB of packed words per
    // worker, floored/ceilinged so small dims don't drown in node
    // overhead and large dims keep a useful working set.
    const std::size_t word_budget = (8u << 20) / sizeof(std::uint64_t);
    const std::size_t entry_cap = std::clamp<std::size_t>(
        word_budget / hdc::kernels::words_for_dim(dim), 1024, 1u << 16);
    if (color_cache.size() >= entry_cap) {
      color_cache.clear();
    }
  }
};

/// Temporal cache for one ordered frame stream. Per row band (the PR-4
/// tile layout, pinned per geometry when the stream starts): the band's
/// pixel-byte hash, its local dedup table (keys, weights, band-local
/// pixel ids), and its bound pixel HVs. Band-local encode outputs are
/// pure functions of the dedup keys — the position HV depends only on
/// the block indices and the color HV only on the quantised color — so
/// an unchanged band's cache IS its re-encode, bit for bit. Plus the
/// whole-stream state: the previous frame (reuse baseline + replay
/// trigger), the previous result (replay payload), and the previous
/// centroids' majority snapshots (warm K-Means seeds).
struct SegHdcSession::StreamState {
  struct BandCache {
    std::uint64_t hash = 0;
    /// False until the band's dedup table AND HVs are fully built (a
    /// throw mid-rebuild must not leave a half-cache eligible for
    /// reuse).
    bool valid = false;
    std::unordered_map<std::uint64_t, std::uint32_t> key_to_local;
    std::vector<std::uint64_t> keys;                    // per local unique
    std::vector<EncodeScratch::UniqueRef> refs;         // per local unique
    std::vector<std::uint32_t> weights;                 // per local unique
    std::vector<std::uint8_t> intensities;              // per local unique
    hdc::HvBlock hvs;                                   // per local unique
    std::vector<std::uint32_t> local_ids;               // per band pixel
    std::vector<std::uint32_t> remap;  // local -> global, per frame
  };

  std::uint64_t geometry = 0;  ///< geometry_key of the stream; 0 = none yet
  std::size_t tile_rows = 0;
  std::size_t tile_count = 0;
  img::ImageU8 prev_frame;
  bool has_prev = false;
  std::vector<BandCache> bands;
  std::vector<hdc::HyperVector> prev_centroids;  ///< majority snapshots
  SegmentationResult prev_result;
  bool has_result = false;
  std::size_t frame_index = 0;
  EncodeScratch scratch;
  StreamFrameStats last_stats;

  void reset() {
    geometry = 0;
    tile_rows = 0;
    tile_count = 0;
    prev_frame = img::ImageU8();
    has_prev = false;
    bands.clear();
    prev_centroids.clear();
    prev_result = SegmentationResult();
    has_result = false;
    frame_index = 0;
    last_stats = StreamFrameStats();
    // scratch is deliberately kept: its memoised position/color HVs are
    // pure functions of the encoder state, not of temporal history.
  }
};

SegHdcSession::Stream::Stream() : impl_(std::make_unique<StreamState>()) {}
SegHdcSession::Stream::~Stream() = default;
SegHdcSession::Stream::Stream(Stream&&) noexcept = default;
SegHdcSession::Stream& SegHdcSession::Stream::operator=(Stream&&) noexcept =
    default;

void SegHdcSession::Stream::reset() { impl_->reset(); }

const StreamFrameStats& SegHdcSession::Stream::last_stats() const {
  return impl_->last_stats;
}

SegHdcSession::SegHdcSession(const SegHdcConfig& config,
                             const Options& options)
    : config_(config), pool_(options.pool) {
  config_.validate();
  // Kernel-backend override plumbing: a named backend (or "auto") in
  // the config re-points the process-wide dispatch; "" leaves the
  // SEGHDC_KERNEL_BACKEND / auto-detected selection alone. Throws
  // std::invalid_argument for unknown/unavailable names, like the other
  // config validations.
  if (!config_.kernel_backend.empty()) {
    hdc::simd::force_backend(config_.kernel_backend);
  }
  // Tracing opt-in plumbing, same shape as the backend override: the
  // config can force the process-wide tracer on, otherwise SEGHDC_TRACE
  // is consulted (hard error on malformed values). Observational only —
  // results are bit-identical either way.
  obs::apply_trace_config(config_.trace);
  // Tile-rows resolution order: explicit config value, else the
  // SEGHDC_TILE_ROWS environment variable (read once here), else 0 =
  // auto-sized per image from the pool. Purely a performance knob —
  // outputs are bit-identical for every value.
  tile_rows_ = config_.tile_rows;
  if (tile_rows_ == 0) {
    const char* env = std::getenv("SEGHDC_TILE_ROWS");
    if (env != nullptr && *env != '\0') {
      // Malformed values are hard errors, like SEGHDC_KERNEL_BACKEND:
      // an override that silently fell back to auto would make a forced
      // CI tiling run meaningless. Require a plain digit string (no
      // sign, no whitespace — strtoull would skip both) and reject
      // overflow.
      errno = 0;
      char* end = nullptr;
      const unsigned long long value = std::strtoull(env, &end, 10);
      if (*env < '0' || *env > '9' || *end != '\0' || errno == ERANGE) {
        throw std::invalid_argument(
            std::string("SEGHDC_TILE_ROWS must be a non-negative "
                        "integer, got '") +
            env + "'");
      }
      tile_rows_ = static_cast<std::size_t>(value);
    }
  }
}

SegHdcSession::~SegHdcSession() = default;

SegHdcSession::Scratch::Scratch() : impl_(std::make_unique<EncodeScratch>()) {}
SegHdcSession::Scratch::~Scratch() = default;
SegHdcSession::Scratch::Scratch(Scratch&&) noexcept = default;
SegHdcSession::Scratch& SegHdcSession::Scratch::operator=(Scratch&&) noexcept =
    default;

std::size_t SegHdcSession::tile_rows_for(std::size_t height) const {
  if (tile_rows_ != 0) {
    // Clamp to the image height so "any value >= height means one
    // band" holds without the ceil-division in the caller overflowing
    // on huge overrides (height + tile_rows - 1 must not wrap).
    return std::min(tile_rows_, height);
  }
  // Auto: ~4 bands per pool thread for load balance. One band when the
  // encode cannot fan out anyway — a single-thread pool, or a
  // segment_many worker whose inner loops are pinned serial — so the
  // hot serving path pays zero tiling overhead.
  if (util::SerialScope::active()) {
    return height;
  }
  const std::size_t threads = pool().thread_count();
  if (threads <= 1) {
    return height;
  }
  return std::max<std::size_t>(1, (height + 4 * threads - 1) / (4 * threads));
}

std::size_t SegHdcSession::stream_tile_rows_for(std::size_t height) const {
  if (tile_rows_ != 0) {
    return std::min(tile_rows_, height);
  }
  // Auto: bands of ~height/16 rows (finer when the pool wants more
  // parallelism), so a localized frame-to-frame change dirties a few
  // bands instead of the whole image even on a 1-thread pool.
  const std::size_t threads =
      util::SerialScope::active() ? 1 : pool().thread_count();
  const std::size_t bands = std::max<std::size_t>(16, 4 * threads);
  return std::max<std::size_t>(1, (height + bands - 1) / bands);
}

util::ThreadPool& SegHdcSession::pool() const {
  return pool_ != nullptr ? *pool_ : util::ThreadPool::shared();
}

std::size_t SegHdcSession::encoder_states_built() const {
  const std::lock_guard<std::mutex> lock(states_mutex_);
  return states_.size();
}

const SegHdcSession::EncoderState& SegHdcSession::state_for(
    const img::ImageU8& image) const {
  const std::uint64_t key = geometry_key(image);
  {
    const std::lock_guard<std::mutex> lock(states_mutex_);
    const auto it = states_.find(key);
    if (it != states_.end()) {
      return *it->second;
    }
  }
  // Build outside the lock so distinct geometries construct in parallel;
  // a same-geometry race is resolved by try_emplace (one winner, the
  // loser's identical state is discarded).
  util::Rng rng(config_.seed);
  auto built = std::make_unique<EncoderState>(config_, image, rng);
  const std::lock_guard<std::mutex> lock(states_mutex_);
  const auto [it, inserted] = states_.try_emplace(key, std::move(built));
  return *it->second;
}

EncodedImage SegHdcSession::encode(const img::ImageU8& image) const {
  validate_image(image);
  std::unique_lock<std::mutex> lock(scratch_mutex_, std::try_to_lock);
  if (lock.owns_lock()) {
    return encode_impl(image, state_for(image), shared_scratch());
  }
  EncodeScratch scratch;
  return encode_impl(image, state_for(image), scratch);
}

EncodedImage SegHdcSession::encode(const img::ImageU8& image,
                                   Scratch& scratch) const {
  validate_image(image);
  return encode_impl(image, state_for(image), *scratch.impl_);
}

SegmentationResult SegHdcSession::segment(const img::ImageU8& image,
                                          Scratch& scratch) const {
  validate_image(image);
  return segment_impl(image, *scratch.impl_);
}

SegmentationResult SegHdcSession::cluster_and_finalize(
    EncodedImage&& encoded) const {
  util::expects(encoded.width > 0 && encoded.height > 0,
                "cluster_and_finalize needs a non-empty encode");
  util::expects(
      encoded.pixel_to_unique.size() == encoded.width * encoded.height,
      "cluster_and_finalize: pixel_to_unique does not cover the image");
  util::expects(encoded.unique_hvs.dim() == config_.dim,
                "cluster_and_finalize: encode dim != session config dim");
  return finalize_impl(std::move(encoded));
}

/// The session-owned scratch used by single-image segment()/encode()
/// calls, so a plain `for (image : stream) session.segment(image)` loop
/// keeps its memoised position/color HVs warm between frames. Callers
/// must hold scratch_mutex_; concurrent callers that lose the try_lock
/// fall back to a private scratch (identical output, cold caches).
SegHdcSession::EncodeScratch& SegHdcSession::shared_scratch() const {
  if (!shared_scratch_) {
    shared_scratch_ = std::make_unique<EncodeScratch>();
  }
  return *shared_scratch_;
}

EncodedImage SegHdcSession::encode_impl(const img::ImageU8& image,
                                        const EncoderState& state,
                                        EncodeScratch& scratch) const {
  const PositionEncoder& position_encoder = state.position;
  const ColorEncoder& color_encoder = state.color;
  scratch.begin_image(state, config_.dim);

  EncodedImage encoded;
  encoded.width = image.width();
  encoded.height = image.height();
  encoded.pixel_to_unique.resize(image.pixel_count());

  // --- Pass 1: dedup keys, tiled into row bands. Each band builds its
  // local key -> first-occurrence table in parallel (with per-pixel
  // weights counted on the way); the bands are then merged into the
  // global table in fixed band order, so unique-point IDs come out in
  // exactly the order the old serial row-major scan assigned them —
  // labels are bit-identical at every thread count and tile size. When
  // deduplication is disabled every pixel is its own "unique" point
  // with ID = pixel index (identical semantics, full cost), which the
  // bands fill directly. ---
  auto& key_to_unique = scratch.key_to_unique;
  auto& refs = scratch.refs;
  const std::size_t width = image.width();
  const std::size_t height = image.height();
  const std::size_t pixel_count = image.pixel_count();
  const std::size_t tile_rows = tile_rows_for(height);
  const std::size_t tile_count = (height + tile_rows - 1) / tile_rows;

  const std::size_t shift = config_.color_quantization_shift;
  const auto quantized_color = [&](std::size_t x, std::size_t y) {
    std::array<std::uint8_t, 3> color{0, 0, 0};
    for (std::size_t c = 0; c < image.channels(); ++c) {
      color[c] = quantize_midpoint(image(x, y, c), shift);
    }
    return color;
  };

  if (!config_.deduplicate) {
    // Every pixel its own unique point: band-parallel direct fill.
    refs.resize(pixel_count);
    pool().parallel_for(
        0, tile_count,
        [&](std::size_t t) {
          const std::size_t y_end = std::min(height, (t + 1) * tile_rows);
          for (std::size_t y = t * tile_rows; y < y_end; ++y) {
            for (std::size_t x = 0; x < width; ++x) {
              const std::size_t pixel_index = y * width + x;
              encoded.pixel_to_unique[pixel_index] =
                  static_cast<std::uint32_t>(pixel_index);
              refs[pixel_index] =
                  EncodeScratch::UniqueRef{x, y, quantized_color(x, y)};
            }
          }
        },
        /*grain=*/1);
    encoded.weights.assign(refs.size(), 1);
  } else if (tile_count == 1) {
    // One band: scan straight into the global table — the serial
    // reference path, with no double-hash merge overhead. This is also
    // the segment_many worker shape (SerialScope pins auto to one band).
    key_to_unique.reserve(
        expected_unique(pixel_count, scratch.last_unique_ratio));
    encoded.weights.clear();
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const auto color = quantized_color(x, y);
        // kRandom position HVs differ per block index as well, so the
        // same key function applies to every encoding variant.
        const std::uint64_t key = make_key(position_encoder.row_block(y),
                                           position_encoder.col_block(x),
                                           color);
        const auto [it, inserted] = key_to_unique.try_emplace(
            key, static_cast<std::uint32_t>(refs.size()));
        if (inserted) {
          refs.push_back(EncodeScratch::UniqueRef{x, y, color});
          encoded.weights.push_back(0);
        }
        ++encoded.weights[it->second];
        encoded.pixel_to_unique[y * width + x] = it->second;
      }
    }
  } else {
    if (scratch.tiles.size() < tile_count) {
      scratch.tiles.resize(tile_count);
    }
    const double unique_ratio = scratch.last_unique_ratio;
    // Phase 1a: per-band local dedup tables, in parallel. Band t only
    // touches its own arena and its own slice of pixel_to_unique (which
    // temporarily holds band-local IDs).
    pool().parallel_for(
        0, tile_count,
        [&](std::size_t t) {
          const obs::SpanScope span("encode_band", "core", "band", t);
          auto& tile = scratch.tiles[t];
          const std::size_t y_begin = t * tile_rows;
          const std::size_t y_end = std::min(height, y_begin + tile_rows);
          tile.begin_band((y_end - y_begin) * width, unique_ratio);
          for (std::size_t y = y_begin; y < y_end; ++y) {
            for (std::size_t x = 0; x < width; ++x) {
              const auto color = quantized_color(x, y);
              const std::uint64_t key =
                  make_key(position_encoder.row_block(y),
                           position_encoder.col_block(x), color);
              const auto [it, inserted] = tile.key_to_local.try_emplace(
                  key, static_cast<std::uint32_t>(tile.refs.size()));
              if (inserted) {
                tile.keys.push_back(key);
                tile.refs.push_back(EncodeScratch::UniqueRef{x, y, color});
                tile.weights.push_back(0);
              }
              ++tile.weights[it->second];
              encoded.pixel_to_unique[y * width + x] = it->second;
            }
          }
        },
        /*grain=*/1);

    // Phase 1b: merge bands in fixed order. A key's global ID is
    // assigned at its first band (bands are row-ordered and each band's
    // locals are in row-major first-occurrence order), so IDs — and the
    // representative refs — replicate the serial scan exactly. Work is
    // O(sum of band unique counts), not O(pixels).
    key_to_unique.reserve(
        expected_unique(pixel_count, scratch.last_unique_ratio));
    for (std::size_t t = 0; t < tile_count; ++t) {
      auto& tile = scratch.tiles[t];
      tile.remap.resize(tile.refs.size());
      for (std::size_t local = 0; local < tile.refs.size(); ++local) {
        const auto [it, inserted] = key_to_unique.try_emplace(
            tile.keys[local], static_cast<std::uint32_t>(refs.size()));
        if (inserted) {
          refs.push_back(tile.refs[local]);
        }
        tile.remap[local] = it->second;
      }
    }
    // Weight histogram: per-band counts were taken in phase 1a, so the
    // old serial O(pixels) pass shrinks to summing band partials over
    // the merged unique set.
    encoded.weights.assign(refs.size(), 0);
    for (std::size_t t = 0; t < tile_count; ++t) {
      const auto& tile = scratch.tiles[t];
      for (std::size_t local = 0; local < tile.refs.size(); ++local) {
        encoded.weights[tile.remap[local]] += tile.weights[local];
      }
    }
    // Phase 1c: relabel each band's pixels from band-local to global
    // IDs, band-parallel again.
    pool().parallel_for(
        0, tile_count,
        [&](std::size_t t) {
          const auto& remap = scratch.tiles[t].remap;
          const std::size_t begin = t * tile_rows * width;
          const std::size_t end =
              std::min(height, (t + 1) * tile_rows) * width;
          for (std::size_t p = begin; p < end; ++p) {
            encoded.pixel_to_unique[p] = remap[encoded.pixel_to_unique[p]];
          }
        },
        /*grain=*/1);
  }
  // Images are validated non-empty, so pixel_count >= 1 here.
  scratch.last_unique_ratio =
      static_cast<double>(refs.size()) / static_cast<double>(pixel_count);

  // --- Pass 2a: memoise the position and color HVs. Position HVs
  // repeat across every color in a block and color HVs repeat across
  // blocks, so each distinct HV is built exactly once per session
  // geometry; the per-point work left over is one word-parallel XOR. ---
  encoded.intensities.resize(refs.size());
  auto& position_cache = scratch.position_cache;
  auto& color_cache = scratch.color_cache;
  auto& position_of = scratch.position_of;
  auto& color_of = scratch.color_of;
  position_of.assign(refs.size(), nullptr);
  color_of.assign(refs.size(), nullptr);
  for (std::size_t u = 0; u < refs.size(); ++u) {
    const auto& ref = refs[u];
    const std::uint64_t position_key =
        (static_cast<std::uint64_t>(position_encoder.row_block(ref.y))
         << 20) |
        position_encoder.col_block(ref.x);
    auto pos_it = position_cache.find(position_key);
    if (pos_it == position_cache.end()) {
      pos_it = position_cache
                   .emplace(position_key,
                            position_encoder.encode(ref.y, ref.x))
                   .first;
    }
    position_of[u] = &pos_it->second;
    const std::uint32_t color_key =
        (static_cast<std::uint32_t>(ref.color[0]) << 16) |
        (static_cast<std::uint32_t>(ref.color[1]) << 8) | ref.color[2];
    auto color_it = color_cache.find(color_key);
    if (color_it == color_cache.end()) {
      color_it =
          color_cache
              .emplace(color_key,
                       color_encoder.encode(std::span<const std::uint8_t>(
                           ref.color.data(), image.channels())))
              .first;
    }
    color_of[u] = &color_it->second;
    encoded.intensities[u] =
        image.channels() == 1
            ? ref.color[0]
            : img::luma(ref.color[0], ref.color[1], ref.color[2]);
  }
  // --- Pass 2b: bind position x color straight into the packed block,
  // data-parallel over unique points. No per-point HyperVector is
  // allocated; each row is one fused XOR over cached word spans. ---
  encoded.unique_hvs = hdc::HvBlock(config_.dim, refs.size());
  pool().parallel_for(
      0, refs.size(),
      [&](std::size_t u) {
        hdc::kernels::xor_words(encoded.unique_hvs.row(u),
                                position_of[u]->words(),
                                color_of[u]->words());
      },
      /*grain=*/64);
  encoded.ops.bind_xor_bits +=
      static_cast<std::uint64_t>(refs.size()) * config_.dim;

  // Fault injection: corrupt the encoded pixel HVs at the configured
  // bit-error rate (models storing them in an approximate memory).
  if (config_.bit_error_rate > 0.0) {
    util::Rng fault_rng(config_.seed ^ 0xFA017ULL);
    for (std::size_t u = 0; u < encoded.unique_hvs.count(); ++u) {
      hdc::inject_bit_flips(encoded.unique_hvs.row(u), config_.dim,
                            config_.bit_error_rate, fault_rng);
    }
  }

  return encoded;
}

SegmentationResult SegHdcSession::segment(const img::ImageU8& image) const {
  validate_image(image);
  std::unique_lock<std::mutex> lock(scratch_mutex_, std::try_to_lock);
  if (lock.owns_lock()) {
    return segment_impl(image, shared_scratch());
  }
  EncodeScratch scratch;
  return segment_impl(image, scratch);
}

SegmentationResult SegHdcSession::segment_impl(const img::ImageU8& image,
                                               EncodeScratch& scratch) const {
  const util::Stopwatch total_watch;
  const util::Stopwatch encode_watch;
  EncodedImage encoded = encode_impl(image, state_for(image), scratch);
  const double encode_seconds = encode_watch.seconds();

  SegmentationResult result = finalize_impl(std::move(encoded));
  result.timings.encode_seconds = encode_seconds;
  result.timings.total_seconds = total_watch.seconds();
  return result;
}

SegmentationResult SegHdcSession::finalize_impl(EncodedImage encoded) const {
  return finalize_impl(std::move(encoded), FinalizeOptions{});
}

SegmentationResult SegHdcSession::finalize_impl(
    EncodedImage encoded, const FinalizeOptions& options) const {
  const util::Stopwatch finalize_watch;
  util::Stopwatch phase_watch;

  SegmentationResult result;
  result.clusters = config_.clusters;
  result.unique_points = encoded.unique_hvs.size();

  phase_watch.reset();
  const HvKMeans kmeans(HvKMeansConfig{
      .clusters = config_.clusters,
      .iterations = config_.iterations,
      .distance = config_.cluster_distance,
      .assign_mode = config_.assign_mode,
      .stop_on_convergence = config_.stop_on_convergence ||
                             options.force_stop_on_convergence,
      .pool = pool_,
  });
  HvKMeansResult clustering;
  {
    obs::SpanScope span("kmeans", "core", "unique_points",
                        encoded.unique_hvs.size());
    if (!options.warm_centroids.empty()) {
      // Warm start (stream path): seed from the previous frame's majority
      // centroids — the seed-selection scan is skipped entirely.
      clustering = kmeans.run_from_centroids(encoded.unique_hvs,
                                             encoded.weights,
                                             options.warm_centroids);
      span.arg("warm", 1);
    } else {
      // Initial centroids: pixels with the largest color difference
      // (Section III-④).
      const auto seeds = largest_color_difference_seeds(
          encoded.intensities, config_.clusters);
      clustering = kmeans.run(encoded.unique_hvs, encoded.weights, seeds);
    }
  }
  result.timings.cluster_seconds = phase_watch.seconds();

  if (options.centroids_out != nullptr) {
    options.centroids_out->clear();
    options.centroids_out->reserve(clustering.centroids.size());
    for (const auto& centroid : clustering.centroids) {
      options.centroids_out->push_back(centroid.to_majority());
    }
  }

  // --- Label map + per-cluster pixel counts. ---
  {
    const obs::SpanScope label_span("label_map", "core");
    result.labels = img::LabelMap(encoded.width, encoded.height, 1, 0);
    result.cluster_pixel_counts.assign(config_.clusters, 0);
    for (std::size_t y = 0; y < encoded.height; ++y) {
      for (std::size_t x = 0; x < encoded.width; ++x) {
        const std::uint32_t unique =
            encoded.pixel_to_unique[y * encoded.width + x];
        const std::uint32_t label = clustering.assignment[unique];
        result.labels(x, y) = label;
        ++result.cluster_pixel_counts[label];
      }
    }
  }

  result.ops = encoded.ops + clustering.ops;

  // Optional confidence margins from the final centroids. Everything in
  // this block — norms, distances, and their op counts — exists only
  // when margins are requested; with compute_margins off the pipeline
  // performs (and reports) zero margin work and result.margins stays
  // empty.
  if (config_.compute_margins) {
    std::vector<float> unique_margin(encoded.unique_hvs.size(), 0.0F);
    std::vector<double> centroid_norm(clustering.centroids.size());
    // Same word-blocked cosine as the clusterer's assignment step: one
    // bit-plane snapshot per final centroid, then fused AND+popcount
    // passes per point (bit-identical dots, SIMD-dispatched).
    std::vector<hdc::kernels::CountPlanes> centroid_planes(
        clustering.centroids.size());
    for (std::size_t c = 0; c < clustering.centroids.size(); ++c) {
      centroid_norm[c] = clustering.centroids[c].norm();
      clustering.centroids[c].snapshot_planes(centroid_planes[c]);
    }
    pool().parallel_for(
        0, encoded.unique_hvs.size(),
        [&](std::size_t u) {
          const auto point = encoded.unique_hvs.row(u);
          const double point_norm = std::sqrt(
              static_cast<double>(encoded.unique_hvs.popcount(u)));
          double best = std::numeric_limits<double>::infinity();
          double second = std::numeric_limits<double>::infinity();
          for (std::size_t c = 0; c < clustering.centroids.size(); ++c) {
            const double d = hdc::kernels::cosine_distance_planes(
                centroid_planes[c], centroid_norm[c], point, point_norm);
            if (d < best) {
              second = best;
              best = d;
            } else if (d < second) {
              second = d;
            }
          }
          unique_margin[u] = static_cast<float>(second - best);
        },
        /*grain=*/64);
    result.margins = img::ImageF32(encoded.width, encoded.height, 1);
    for (std::size_t p = 0; p < encoded.pixel_to_unique.size(); ++p) {
      result.margins.pixels()[p] =
          unique_margin[encoded.pixel_to_unique[p]];
    }
    const auto unique = static_cast<std::uint64_t>(encoded.unique_hvs.size());
    result.ops.popcount_bits += unique * config_.dim;
    result.ops.dot_adds += unique * config_.clusters * config_.dim;
    result.ops.distance_evals += unique * config_.clusters;
  }

  result.iterations_run = clustering.iterations_run;
  result.paper_equivalent_ops = analytic_seghdc_ops(
      encoded.width * encoded.height, config_.dim, config_.clusters,
      config_.iterations);
  // Everything this function did — seeds, K-Means, label map, margins —
  // so stage drivers can compose encode + finalize into a true compute
  // total. cluster_seconds stays K-Means-only, matching the historical
  // phase split.
  result.timings.total_seconds = finalize_watch.seconds();
  return result;
}

StreamFrameResult SegHdcSession::segment_stream(const img::ImageU8& frame,
                                                Stream& stream) const {
  validate_image(frame);
  StreamState& s = *stream.impl_;
  const util::Stopwatch total_watch;

  // Fault injection consumes one sequential RNG stream over the global
  // unique rows and no-dedup skips the tile tables entirely — both are
  // incompatible with per-band caching, so those configs re-encode every
  // frame (replay and warm seeding still apply).
  const bool band_cache_active =
      config_.deduplicate && config_.bit_error_rate == 0.0;

  const std::uint64_t geometry = geometry_key(frame);
  if (s.geometry != geometry) {
    // New stream, reset(), or mid-stream geometry change: drop all
    // temporal state and pin the band layout for this geometry. The
    // frame below runs the exact cold path.
    const std::size_t frame_index = s.frame_index;
    s.reset();
    s.frame_index = frame_index;
    s.geometry = geometry;
    s.tile_rows = stream_tile_rows_for(frame.height());
    s.tile_count = (frame.height() + s.tile_rows - 1) / s.tile_rows;
    s.bands.resize(s.tile_count);
  }

  StreamFrameStats stats;
  stats.frame_index = s.frame_index;

  // Replay shortcut: segmentation is a pure function of (config, image),
  // so a frame byte-identical to its predecessor replays the cached
  // result — bit-for-bit equal labels with zero pipeline work.
  if (s.has_result && s.has_prev && frame == s.prev_frame) {
    const obs::SpanScope span("stream_replay", "stream", "frame",
                              s.frame_index);
    stats.warm = true;
    stats.replayed = true;
    stats.tiles_total = band_cache_active ? s.tile_count : 0;
    stats.tiles_reused = stats.tiles_total;
    SegmentationResult result = s.prev_result;  // copy; cache stays armed
    result.ops = OpCounts{};  // honest: this frame performed no work
    result.timings = SegmentationTimings{};
    result.timings.total_seconds = total_watch.seconds();
    stats.seconds = result.timings.total_seconds;
    s.last_stats = stats;
    ++s.frame_index;
    return StreamFrameResult{std::move(result), stats};
  }

  const EncoderState& state = state_for(frame);
  const util::Stopwatch encode_watch;
  EncodedImage encoded =
      band_cache_active ? encode_stream_impl(frame, state, s, stats)
                        : encode_impl(frame, state, s.scratch);
  const double encode_seconds = encode_watch.seconds();

  FinalizeOptions options;
  std::vector<hdc::HyperVector> next_centroids;
  options.centroids_out = &next_centroids;
  if (!s.prev_centroids.empty()) {
    options.warm_centroids = s.prev_centroids;
    options.force_stop_on_convergence = true;
    stats.warm = true;
  }
  SegmentationResult result = finalize_impl(std::move(encoded), options);
  result.timings.encode_seconds = encode_seconds;
  result.timings.total_seconds = total_watch.seconds();
  stats.kmeans_iterations = result.iterations_run;

  s.prev_frame = frame;                          // next frame's baseline
  s.has_prev = true;
  s.prev_centroids = std::move(next_centroids);  // next frame's warm seeds
  s.prev_result = result;                        // next frame's replay
  s.has_result = true;
  stats.seconds = result.timings.total_seconds;
  s.last_stats = stats;
  ++s.frame_index;
  return StreamFrameResult{std::move(result), stats};
}

EncodedImage SegHdcSession::encode_stream_impl(const img::ImageU8& image,
                                               const EncoderState& state,
                                               StreamState& stream,
                                               StreamFrameStats& stats) const {
  const PositionEncoder& position_encoder = state.position;
  const ColorEncoder& color_encoder = state.color;
  EncodeScratch& scratch = stream.scratch;
  scratch.begin_image(state, config_.dim);

  EncodedImage encoded;
  encoded.width = image.width();
  encoded.height = image.height();
  encoded.pixel_to_unique.resize(image.pixel_count());

  const std::size_t width = image.width();
  const std::size_t height = image.height();
  const std::size_t channels = image.channels();
  const std::size_t pixel_count = image.pixel_count();
  const std::size_t tile_rows = stream.tile_rows;
  const std::size_t tile_count = stream.tile_count;
  const std::size_t shift = config_.color_quantization_shift;
  stats.tiles_total = tile_count;

  // --- Phase S1: per-band change detection + dirty-band dedup rebuild,
  // band-parallel. A band is reused only when its byte hash matches AND
  // an exact byte compare against the previous frame confirms it; on a
  // miss the band's local dedup table (keys, weights, band-local pixel
  // ids) is rebuilt exactly like cold phase 1a. ---
  const double unique_ratio = scratch.last_unique_ratio;
  std::vector<std::uint8_t> reused(tile_count, 0);
  pool().parallel_for(
      0, tile_count,
      [&](std::size_t t) {
        obs::SpanScope span("band_reuse_check", "stream", "band", t);
        auto& band = stream.bands[t];
        const std::size_t y_begin = t * tile_rows;
        const std::size_t y_end = std::min(height, y_begin + tile_rows);
        const std::size_t byte_begin = y_begin * width * channels;
        const std::size_t byte_count = (y_end - y_begin) * width * channels;
        const std::uint8_t* bytes = image.data() + byte_begin;
        const std::uint64_t hash = fnv1a_bytes(bytes, byte_count);
        if (band.valid && stream.has_prev && band.hash == hash &&
            std::memcmp(bytes, stream.prev_frame.data() + byte_begin,
                        byte_count) == 0) {
          reused[t] = 1;
          span.arg("reused", 1);
          return;
        }
        span.arg("reused", 0);
        band.hash = hash;
        band.valid = false;  // until the HVs are rebuilt in phase S2
        band.key_to_local.clear();
        band.keys.clear();
        band.refs.clear();
        band.weights.clear();
        band.local_ids.clear();
        band.local_ids.reserve((y_end - y_begin) * width);
        band.key_to_local.reserve(
            expected_unique((y_end - y_begin) * width, unique_ratio));
        for (std::size_t y = y_begin; y < y_end; ++y) {
          for (std::size_t x = 0; x < width; ++x) {
            std::array<std::uint8_t, 3> color{0, 0, 0};
            for (std::size_t c = 0; c < channels; ++c) {
              color[c] = quantize_midpoint(image(x, y, c), shift);
            }
            const std::uint64_t key =
                make_key(position_encoder.row_block(y),
                         position_encoder.col_block(x), color);
            const auto [it, inserted] = band.key_to_local.try_emplace(
                key, static_cast<std::uint32_t>(band.refs.size()));
            if (inserted) {
              band.keys.push_back(key);
              band.refs.push_back(EncodeScratch::UniqueRef{x, y, color});
              band.weights.push_back(0);
            }
            ++band.weights[it->second];
            band.local_ids.push_back(it->second);
          }
        }
      },
      /*grain=*/1);

  // --- Phase S2: rebuild the dirty bands' HVs (cold pass 2a/2b, band
  // scope): memoise position/color HVs serially through the shared
  // caches, then bind band-local rows in parallel. Band-local HVs are
  // pure functions of the dedup key, so a rebuilt band is bit-identical
  // to what its cache held when the pixels last had these bytes. ---
  std::uint64_t dirty_locals = 0;
  for (std::size_t t = 0; t < tile_count; ++t) {
    if (reused[t] != 0) {
      continue;
    }
    auto& band = stream.bands[t];
    const std::size_t n_local = band.refs.size();
    band.intensities.resize(n_local);
    auto& position_of = scratch.position_of;
    auto& color_of = scratch.color_of;
    position_of.assign(n_local, nullptr);
    color_of.assign(n_local, nullptr);
    for (std::size_t u = 0; u < n_local; ++u) {
      const auto& ref = band.refs[u];
      const std::uint64_t position_key =
          (static_cast<std::uint64_t>(position_encoder.row_block(ref.y))
           << 20) |
          position_encoder.col_block(ref.x);
      auto pos_it = scratch.position_cache.find(position_key);
      if (pos_it == scratch.position_cache.end()) {
        pos_it = scratch.position_cache
                     .emplace(position_key,
                              position_encoder.encode(ref.y, ref.x))
                     .first;
      }
      position_of[u] = &pos_it->second;
      const std::uint32_t color_key =
          (static_cast<std::uint32_t>(ref.color[0]) << 16) |
          (static_cast<std::uint32_t>(ref.color[1]) << 8) | ref.color[2];
      auto color_it = scratch.color_cache.find(color_key);
      if (color_it == scratch.color_cache.end()) {
        color_it =
            scratch.color_cache
                .emplace(color_key,
                         color_encoder.encode(std::span<const std::uint8_t>(
                             ref.color.data(), channels)))
                .first;
      }
      color_of[u] = &color_it->second;
      band.intensities[u] =
          channels == 1 ? ref.color[0]
                        : img::luma(ref.color[0], ref.color[1], ref.color[2]);
    }
    band.hvs = hdc::HvBlock(config_.dim, n_local);
    pool().parallel_for(
        0, n_local,
        [&](std::size_t u) {
          hdc::kernels::xor_words(band.hvs.row(u), position_of[u]->words(),
                                  color_of[u]->words());
        },
        /*grain=*/64);
    dirty_locals += n_local;
    band.valid = true;
  }
  encoded.ops.bind_xor_bits += dirty_locals * config_.dim;

  // --- Phase S3: fixed band-order merge, exactly cold phase 1b: a key's
  // global ID is assigned at its first band, so unique IDs, weights, and
  // intensities replicate the serial row-major scan bit for bit whether
  // a band came from cache or rebuild. The merged unique HVs are row
  // copies from the owning band's cache. ---
  struct Origin {
    std::uint32_t band;
    std::uint32_t local;
  };
  std::vector<Origin> origin;
  auto& key_to_unique = scratch.key_to_unique;
  key_to_unique.reserve(expected_unique(pixel_count, unique_ratio));
  for (std::size_t t = 0; t < tile_count; ++t) {
    auto& band = stream.bands[t];
    band.remap.resize(band.keys.size());
    for (std::size_t local = 0; local < band.keys.size(); ++local) {
      const auto [it, inserted] = key_to_unique.try_emplace(
          band.keys[local], static_cast<std::uint32_t>(origin.size()));
      if (inserted) {
        origin.push_back(Origin{static_cast<std::uint32_t>(t),
                                static_cast<std::uint32_t>(local)});
      }
      band.remap[local] = it->second;
    }
  }
  const std::size_t n_unique = origin.size();
  encoded.weights.assign(n_unique, 0);
  for (std::size_t t = 0; t < tile_count; ++t) {
    const auto& band = stream.bands[t];
    for (std::size_t local = 0; local < band.keys.size(); ++local) {
      encoded.weights[band.remap[local]] += band.weights[local];
    }
  }
  encoded.intensities.resize(n_unique);
  encoded.unique_hvs = hdc::HvBlock(config_.dim, n_unique);
  pool().parallel_for(
      0, n_unique,
      [&](std::size_t u) {
        const auto& band = stream.bands[origin[u].band];
        const auto src = band.hvs.row(origin[u].local);
        const auto dst = encoded.unique_hvs.row(u);
        std::copy(src.begin(), src.end(), dst.begin());
        encoded.intensities[u] = band.intensities[origin[u].local];
      },
      /*grain=*/64);

  // --- Phase S4: relabel band-local pixel ids to global IDs,
  // band-parallel (cold phase 1c, sourced from the band caches). ---
  pool().parallel_for(
      0, tile_count,
      [&](std::size_t t) {
        const auto& band = stream.bands[t];
        const std::size_t p_begin = t * tile_rows * width;
        for (std::size_t i = 0; i < band.local_ids.size(); ++i) {
          encoded.pixel_to_unique[p_begin + i] =
              band.remap[band.local_ids[i]];
        }
      },
      /*grain=*/1);

  scratch.last_unique_ratio =
      static_cast<double>(n_unique) / static_cast<double>(pixel_count);
  std::size_t reused_count = 0;
  for (const std::uint8_t r : reused) {
    reused_count += r;
  }
  stats.tiles_reused = reused_count;
  stats.tiles_encoded = tile_count - reused_count;
  return encoded;
}

std::vector<SegmentationResult> SegHdcSession::segment_many(
    std::span<const img::ImageU8> images) const {
  // Collect via the streaming overload: each result is moved into its
  // slot the moment its image completes — no SegmentationResult (label
  // maps, margins, count vectors) is ever copied.
  std::vector<SegmentationResult> results(images.size());
  segment_many(images, [&results](std::size_t i, SegmentationResult&& r) {
    results[i] = std::move(r);
  });
  return results;
}

void SegHdcSession::segment_many(
    std::span<const img::ImageU8> images,
    const std::function<void(std::size_t, SegmentationResult&&)>& sink)
    const {
  if (images.empty()) {
    return;
  }
  // Validate everything and build the encoder state for every distinct
  // geometry up front, so the parallel section below only ever reads the
  // state cache.
  for (const auto& image : images) {
    validate_image(image);
    state_for(image);
  }

  util::ThreadPool& workers_pool = pool();
  const std::size_t workers =
      std::min(images.size(), workers_pool.thread_count());
  std::atomic<std::size_t> next{0};
  std::mutex sink_mutex;
  workers_pool.parallel_for(
      0, workers,
      [&](std::size_t) {
        // One scratch arena per worker; image-level sharding is the
        // parallelism, so the per-image inner loops run serially on this
        // worker instead of re-entering the pool.
        EncodeScratch scratch;
        const util::SerialScope serial;
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= images.size()) {
            return;
          }
          SegmentationResult result = segment_impl(images[i], scratch);
          // Hand off under the sink mutex so callers get serialised
          // invocations; the worker holds no result memory afterwards.
          const std::lock_guard<std::mutex> lock(sink_mutex);
          sink(i, std::move(result));
        }
      },
      /*grain=*/1);
}

}  // namespace seghdc::core
