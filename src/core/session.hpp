// SegHdcSession: the reusable, many-image serving form of the SegHDC
// pipeline (paper Fig. 2).
//
// `SegHdc::segment()` is stateless and therefore rebuilds the position
// and color item memories on every call — fine for one image, wasteful
// for traffic. A session builds that immutable encoder state once per
// image geometry (height, width, channels) and reuses it across calls:
//
//   SegHdcSession session(config);
//   for (const auto& image : stream) {
//     const auto result = session.segment(image);   // encoders reused
//   }
//
// or, for batches, `segment_many` shards the images across the thread
// pool with one scratch arena per worker:
//
//   const auto results = session.segment_many(images);
//
// Inside one call, the encode is tiled into row bands (see
// SegHdcConfig::tile_rows): the dedup scan, the weight histogram, and
// the bind pass all parallelise across the pool, so a single large
// image saturates the cores, not just batches of small ones.
//
// Guarantees:
//   - `segment` is bitwise-identical to `SegHdc::segment` for the same
//     config and image (same label maps, margins, op counts), at every
//     pool size and tile size — the band merge reproduces the serial
//     row-major first-occurrence order exactly.
//   - `segment_many` returns exactly what a sequential `segment` loop
//     returns, for every pool size (per-image work is deterministic and
//     images never share mutable state).
//   - const methods are safe to call concurrently; the encoder-state
//     cache is internally synchronised.
//   - the pipeline splits at the EncodedImage seam: `encode(image,
//     scratch)` then `cluster_and_finalize(encoded)` equals
//     `segment(image)` bit for bit — the contract the async serving
//     layer (src/serve/) pipelines on.
#ifndef SEGHDC_CORE_SESSION_HPP
#define SEGHDC_CORE_SESSION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/seghdc.hpp"
#include "src/imaging/image.hpp"
#include "src/util/parallel.hpp"

namespace seghdc::core {

class SegHdcSession {
  struct EncoderState;   // per-geometry item memories (private)
  struct EncodeScratch;  // per-worker encode arena (private)

 public:
  struct Options {
    /// Pool for every parallel loop the session issues (image sharding
    /// in `segment_many`, encode bind pass, clustering). nullptr = the
    /// process-wide shared pool. Outputs are identical for every pool.
    util::ThreadPool* pool = nullptr;
  };

  /// Validates `config` (throws std::invalid_argument on bad values).
  explicit SegHdcSession(const SegHdcConfig& config)
      : SegHdcSession(config, Options{}) {}
  SegHdcSession(const SegHdcConfig& config, const Options& options);

  ~SegHdcSession();
  SegHdcSession(const SegHdcSession&) = delete;
  SegHdcSession& operator=(const SegHdcSession&) = delete;

  const SegHdcConfig& config() const { return config_; }

  /// Opaque reusable encode arena for external pipeline drivers (the
  /// serving layer in src/serve/): one per worker thread, passed to the
  /// `encode`/`segment` overloads below, it keeps the dedup tables and
  /// memoised position/color HVs warm across that worker's images
  /// without contending on the session-owned shared scratch. Movable,
  /// not copyable; NOT safe to share between concurrent calls. A
  /// default-constructed Scratch is cold but valid.
  class Scratch {
   public:
    Scratch();
    ~Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

   private:
    friend class SegHdcSession;
    std::unique_ptr<EncodeScratch> impl_;
  };

  /// Encodes every pixel of `image` (1 or 3 channels) into pixel HVs,
  /// reusing the cached encoder state for the image's geometry.
  EncodedImage encode(const img::ImageU8& image) const;

  /// Same, through a caller-owned arena (stage 1 of the serving
  /// pipeline). Deterministic: output is bit-identical whether the
  /// arena is cold, warm, or the session-shared one. Safe to call
  /// concurrently as long as each call uses a distinct Scratch.
  EncodedImage encode(const img::ImageU8& image, Scratch& scratch) const;

  /// Stage 2 of the serving pipeline: clusters an `encode` result and
  /// builds the label map (+ margins when configured). Consumes
  /// `encoded`. `segment(image)` == `cluster_and_finalize(encode(image))`
  /// bit for bit — splitting the stages never changes the output, so a
  /// pipelined server can overlap the encode of one image with the
  /// clustering of another. Thread-safe (no mutable session state);
  /// `timings.encode_seconds` is 0 here, the driver measured that stage.
  SegmentationResult cluster_and_finalize(EncodedImage&& encoded) const;

  /// Full pipeline: encode + cluster + label map. Bitwise-identical to
  /// `SegHdc::segment` with the same config.
  SegmentationResult segment(const img::ImageU8& image) const;

  /// Full pipeline through a caller-owned arena; same guarantees as the
  /// Scratch `encode` overload.
  SegmentationResult segment(const img::ImageU8& image,
                             Scratch& scratch) const;

  /// Segments a batch: images are sharded across the pool, one worker
  /// per pool thread, each with its own scratch arena; the per-image
  /// inner loops run serially on their worker. results[i] is exactly
  /// `segment(images[i])` for every pool size. Results are moved into
  /// the returned vector (via the streaming overload below); nothing is
  /// copied.
  std::vector<SegmentationResult> segment_many(
      std::span<const img::ImageU8> images) const;

  /// Streaming form: hands each result to `sink(index, std::move(r))`
  /// the moment its image completes, so peak memory is one in-flight
  /// result per worker instead of the whole batch — the shape for very
  /// large batches (write-to-disk, ship-over-network sinks).
  /// Completion order is arbitrary but the delivered (index, result)
  /// pairs are exactly the collecting overload's vector. Sink
  /// invocations are serialised internally; the callback need not be
  /// thread-safe, but it runs on worker threads and while it runs its
  /// worker segments nothing.
  void segment_many(
      std::span<const img::ImageU8> images,
      const std::function<void(std::size_t, SegmentationResult&&)>& sink)
      const;

  /// Number of distinct (height, width, channels) encoder states built
  /// so far — observability for tests and serving dashboards.
  std::size_t encoder_states_built() const;

  /// The resolved tile-rows override: SegHdcConfig::tile_rows when
  /// non-zero, else the SEGHDC_TILE_ROWS environment value read at
  /// construction, else 0 (auto-size per image from the pool).
  /// Observability for tests and bench headers; the output never
  /// depends on it.
  std::size_t tile_rows_override() const { return tile_rows_; }

 private:
  /// Returns the encoder state for the image's geometry, building and
  /// caching it on first use (thread-safe; concurrent same-geometry
  /// builds resolve to one winner).
  const EncoderState& state_for(const img::ImageU8& image) const;

  EncodedImage encode_impl(const img::ImageU8& image,
                           const EncoderState& state,
                           EncodeScratch& scratch) const;
  SegmentationResult segment_impl(const img::ImageU8& image,
                                  EncodeScratch& scratch) const;
  /// Cluster + label map + margins over a finished encode. Fills
  /// `timings.cluster_seconds` (and total = cluster); callers stitch in
  /// the encode time they measured.
  SegmentationResult finalize_impl(EncodedImage encoded) const;

  /// Band height used to tile this image's encode passes (>= 1).
  std::size_t tile_rows_for(std::size_t height) const;

  EncodeScratch& shared_scratch() const;
  util::ThreadPool& pool() const;

  SegHdcConfig config_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t tile_rows_ = 0;  ///< resolved override; 0 = auto
  mutable std::mutex states_mutex_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<EncoderState>>
      states_;
  // Warm scratch for single-image segment()/encode() streams; guarded by
  // scratch_mutex_ (losers of the try_lock use a cold private scratch).
  mutable std::mutex scratch_mutex_;
  mutable std::unique_ptr<EncodeScratch> shared_scratch_;
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_SESSION_HPP
