// SegHdcSession: the reusable, many-image serving form of the SegHDC
// pipeline (paper Fig. 2).
//
// `SegHdc::segment()` is stateless and therefore rebuilds the position
// and color item memories on every call — fine for one image, wasteful
// for traffic. A session builds that immutable encoder state once per
// image geometry (height, width, channels) and reuses it across calls:
//
//   SegHdcSession session(config);
//   for (const auto& image : stream) {
//     const auto result = session.segment(image);   // encoders reused
//   }
//
// or, for batches, `segment_many` shards the images across the thread
// pool with one scratch arena per worker:
//
//   const auto results = session.segment_many(images);
//
// Inside one call, the encode is tiled into row bands (see
// SegHdcConfig::tile_rows): the dedup scan, the weight histogram, and
// the bind pass all parallelise across the pool, so a single large
// image saturates the cores, not just batches of small ones.
//
// Guarantees:
//   - `segment` is bitwise-identical to `SegHdc::segment` for the same
//     config and image (same label maps, margins, op counts), at every
//     pool size and tile size — the band merge reproduces the serial
//     row-major first-occurrence order exactly.
//   - `segment_many` returns exactly what a sequential `segment` loop
//     returns, for every pool size (per-image work is deterministic and
//     images never share mutable state).
//   - const methods are safe to call concurrently; the encoder-state
//     cache is internally synchronised.
//   - the pipeline splits at the EncodedImage seam: `encode(image,
//     scratch)` then `cluster_and_finalize(encoded)` equals
//     `segment(image)` bit for bit — the contract the async serving
//     layer (src/serve/) pipelines on.
#ifndef SEGHDC_CORE_SESSION_HPP
#define SEGHDC_CORE_SESSION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/seghdc.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/imaging/image.hpp"
#include "src/util/parallel.hpp"

namespace seghdc::core {

/// Per-frame observability for the temporal stream path
/// (`SegHdcSession::segment_stream`): what the warm-start machinery
/// actually did for this frame, so serving dashboards and the bench can
/// report measured reuse instead of assumed reuse.
struct StreamFrameStats {
  /// 0-based index of this frame within its stream.
  std::size_t frame_index = 0;
  /// True when K-Means was seeded from the previous frame's centroids
  /// (false on the first frame of a stream / after a geometry change).
  bool warm = false;
  /// True when the frame was byte-identical to its predecessor and the
  /// cached previous result was replayed without any pipeline work.
  bool replayed = false;
  /// Row-band tiles in the stream cache layout (0 when the band cache
  /// is inactive: dedup disabled or fault injection on).
  std::size_t tiles_total = 0;
  /// Bands whose pixel bytes were unchanged — dedup table and encoded
  /// HVs reused from the previous frame.
  std::size_t tiles_reused = 0;
  /// Bands re-encoded because their pixels changed.
  std::size_t tiles_encoded = 0;
  /// K-Means iterations this frame actually ran (0 on replay).
  std::size_t kmeans_iterations = 0;
  /// Wall time of the whole segment_stream call.
  double seconds = 0.0;
};

/// A segmented stream frame: the segmentation itself plus the stream
/// stats describing how much of it was reused from the previous frame.
struct StreamFrameResult {
  SegmentationResult result;
  StreamFrameStats stats;
};

class SegHdcSession {
  struct EncoderState;   // per-geometry item memories (private)
  struct EncodeScratch;  // per-worker encode arena (private)
  struct StreamState;    // per-stream temporal cache (private)

 public:
  struct Options {
    /// Pool for every parallel loop the session issues (image sharding
    /// in `segment_many`, encode bind pass, clustering). nullptr = the
    /// process-wide shared pool. Outputs are identical for every pool.
    util::ThreadPool* pool = nullptr;
  };

  /// Validates `config` (throws std::invalid_argument on bad values).
  explicit SegHdcSession(const SegHdcConfig& config)
      : SegHdcSession(config, Options{}) {}
  SegHdcSession(const SegHdcConfig& config, const Options& options);

  ~SegHdcSession();
  SegHdcSession(const SegHdcSession&) = delete;
  SegHdcSession& operator=(const SegHdcSession&) = delete;

  const SegHdcConfig& config() const { return config_; }

  /// Opaque reusable encode arena for external pipeline drivers (the
  /// serving layer in src/serve/): one per worker thread, passed to the
  /// `encode`/`segment` overloads below, it keeps the dedup tables and
  /// memoised position/color HVs warm across that worker's images
  /// without contending on the session-owned shared scratch. Movable,
  /// not copyable; NOT safe to share between concurrent calls. A
  /// default-constructed Scratch is cold but valid.
  class Scratch {
   public:
    Scratch();
    ~Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

   private:
    friend class SegHdcSession;
    std::unique_ptr<EncodeScratch> impl_;
  };

  /// Temporal state for one ordered frame sequence (camera feed, video):
  /// the previous frame's pixel bytes, the per-band dedup/HV caches, the
  /// previous result (for byte-identical replay), and the previous
  /// K-Means centroids (for warm seeding). Create one per stream and
  /// feed it consecutive frames through `segment_stream`; `reset()`
  /// drops all temporal state so the next frame runs cold. Movable, not
  /// copyable; NOT safe to share between concurrent calls — frames of
  /// one stream are ordered by definition.
  class Stream {
   public:
    Stream();
    ~Stream();
    Stream(Stream&&) noexcept;
    Stream& operator=(Stream&&) noexcept;
    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    /// Forgets everything about previous frames: the next
    /// `segment_stream` call is a cold first frame.
    void reset();

    /// Stats of the most recent frame through this stream (all zeros
    /// before the first frame).
    const StreamFrameStats& last_stats() const;

   private:
    friend class SegHdcSession;
    std::unique_ptr<StreamState> impl_;
  };

  /// Encodes every pixel of `image` (1 or 3 channels) into pixel HVs,
  /// reusing the cached encoder state for the image's geometry.
  EncodedImage encode(const img::ImageU8& image) const;

  /// Same, through a caller-owned arena (stage 1 of the serving
  /// pipeline). Deterministic: output is bit-identical whether the
  /// arena is cold, warm, or the session-shared one. Safe to call
  /// concurrently as long as each call uses a distinct Scratch.
  EncodedImage encode(const img::ImageU8& image, Scratch& scratch) const;

  /// Stage 2 of the serving pipeline: clusters an `encode` result and
  /// builds the label map (+ margins when configured). Consumes
  /// `encoded`. `segment(image)` == `cluster_and_finalize(encode(image))`
  /// bit for bit — splitting the stages never changes the output, so a
  /// pipelined server can overlap the encode of one image with the
  /// clustering of another. Thread-safe (no mutable session state);
  /// `timings.encode_seconds` is 0 here, the driver measured that stage.
  SegmentationResult cluster_and_finalize(EncodedImage&& encoded) const;

  /// Full pipeline: encode + cluster + label map. Bitwise-identical to
  /// `SegHdc::segment` with the same config.
  SegmentationResult segment(const img::ImageU8& image) const;

  /// Full pipeline through a caller-owned arena; same guarantees as the
  /// Scratch `encode` overload.
  SegmentationResult segment(const img::ImageU8& image,
                             Scratch& scratch) const;

  /// Segments a batch: images are sharded across the pool, one worker
  /// per pool thread, each with its own scratch arena; the per-image
  /// inner loops run serially on their worker. results[i] is exactly
  /// `segment(images[i])` for every pool size. Results are moved into
  /// the returned vector (via the streaming overload below); nothing is
  /// copied.
  std::vector<SegmentationResult> segment_many(
      std::span<const img::ImageU8> images) const;

  /// Streaming form: hands each result to `sink(index, std::move(r))`
  /// the moment its image completes, so peak memory is one in-flight
  /// result per worker instead of the whole batch — the shape for very
  /// large batches (write-to-disk, ship-over-network sinks).
  /// Completion order is arbitrary but the delivered (index, result)
  /// pairs are exactly the collecting overload's vector. Sink
  /// invocations are serialised internally; the callback need not be
  /// thread-safe, but it runs on worker threads and while it runs its
  /// worker segments nothing.
  void segment_many(
      std::span<const img::ImageU8> images,
      const std::function<void(std::size_t, SegmentationResult&&)>& sink)
      const;

  /// Temporal/video serving: segments `frame` as the next frame of
  /// `stream`, warm-starting from the stream's previous frame. Opt-in
  /// semantics — warm-started labels may differ from a cold `segment`
  /// of the same frame (by design; the drift is bounded by tests):
  ///   - K-Means is seeded from the previous frame's majority-binarized
  ///     centroids instead of `largest_color_difference_seeds`, and
  ///     stops on convergence, so near-identical frames converge in a
  ///     fraction of the iteration budget.
  ///   - Row bands whose pixel bytes are unchanged since the previous
  ///     frame (content hash + exact byte compare) reuse their cached
  ///     dedup table and encoded HVs instead of re-encoding.
  ///   - A frame byte-identical to its predecessor replays the cached
  ///     previous result outright (bit-for-bit equal labels, zero
  ///     pipeline work).
  /// The FIRST frame of a stream (and the first after `reset()` or a
  /// geometry change) runs the exact cold path: bit-identical to
  /// `segment(frame)`. Deterministic: the same frame sequence produces
  /// bit-identical labels at every pool size, tile size, and kernel
  /// backend (band caches change what is recomputed, never what is
  /// computed). Thread-safe across *streams* (const session state is
  /// internally synchronised); calls on one Stream must be externally
  /// ordered. Falls back to full re-encode per frame (no band cache,
  /// tiles_total = 0) when deduplication is off or fault injection is
  /// on; replay and warm seeding still apply.
  StreamFrameResult segment_stream(const img::ImageU8& frame,
                                   Stream& stream) const;

  /// Number of distinct (height, width, channels) encoder states built
  /// so far — observability for tests and serving dashboards.
  std::size_t encoder_states_built() const;

  /// The resolved tile-rows override: SegHdcConfig::tile_rows when
  /// non-zero, else the SEGHDC_TILE_ROWS environment value read at
  /// construction, else 0 (auto-size per image from the pool).
  /// Observability for tests and bench headers; the output never
  /// depends on it.
  std::size_t tile_rows_override() const { return tile_rows_; }

 private:
  /// Returns the encoder state for the image's geometry, building and
  /// caching it on first use (thread-safe; concurrent same-geometry
  /// builds resolve to one winner).
  const EncoderState& state_for(const img::ImageU8& image) const;

  EncodedImage encode_impl(const img::ImageU8& image,
                           const EncoderState& state,
                           EncodeScratch& scratch) const;
  SegmentationResult segment_impl(const img::ImageU8& image,
                                  EncodeScratch& scratch) const;
  /// Finalize-stage knobs for the stream path. Defaults reproduce the
  /// cold `segment` behaviour exactly.
  struct FinalizeOptions {
    /// Non-empty = warm start: seed K-Means from these binary HVs
    /// (previous frame's majority centroids) instead of
    /// `largest_color_difference_seeds`.
    std::span<const hdc::HyperVector> warm_centroids{};
    /// Force `stop_on_convergence` regardless of config — semantics-free
    /// (a converged assignment is a fixed point), it only banks unused
    /// iterations on warm frames.
    bool force_stop_on_convergence = false;
    /// When non-null, receives the final centroids' majority-binarized
    /// snapshots (the warm seeds for the next frame).
    std::vector<hdc::HyperVector>* centroids_out = nullptr;
  };

  /// Cluster + label map + margins over a finished encode. Fills
  /// `timings.cluster_seconds` (and total = cluster); callers stitch in
  /// the encode time they measured.
  SegmentationResult finalize_impl(EncodedImage encoded) const;
  SegmentationResult finalize_impl(EncodedImage encoded,
                                   const FinalizeOptions& options) const;

  /// Stream-banded encode: like `encode_impl` but rides the per-band
  /// caches in `stream`, re-encoding only bands whose bytes changed.
  /// Output is bit-identical to `encode_impl` (op counts reflect work
  /// actually done). Fills the tile fields of `stats`.
  EncodedImage encode_stream_impl(const img::ImageU8& image,
                                  const EncoderState& state,
                                  StreamState& stream,
                                  StreamFrameStats& stats) const;

  /// Band height used to tile this image's encode passes (>= 1).
  std::size_t tile_rows_for(std::size_t height) const;

  /// Band height for the STREAM cache layout. Streams never collapse to
  /// one band on small pools: bands are the reuse granularity there —
  /// a single band can only ever reuse a byte-identical frame, which
  /// the replay shortcut already covers. Purely a performance knob like
  /// tile_rows_for: labels are identical for every value.
  std::size_t stream_tile_rows_for(std::size_t height) const;

  EncodeScratch& shared_scratch() const;
  util::ThreadPool& pool() const;

  SegHdcConfig config_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t tile_rows_ = 0;  ///< resolved override; 0 = auto
  mutable std::mutex states_mutex_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<EncoderState>>
      states_;
  // Warm scratch for single-image segment()/encode() streams; guarded by
  // scratch_mutex_ (losers of the try_lock use a cold private scratch).
  mutable std::mutex scratch_mutex_;
  mutable std::unique_ptr<EncodeScratch> shared_scratch_;
};

}  // namespace seghdc::core

#endif  // SEGHDC_CORE_SESSION_HPP
