#include "src/datasets/bbbc005.hpp"

#include <vector>

#include "src/imaging/draw.hpp"
#include "src/imaging/filters.hpp"
#include "src/imaging/noise.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::data {

Bbbc005Generator::Bbbc005Generator(Bbbc005Config config)
    : config_(config) {
  util::expects(config_.width >= 32 && config_.height >= 32,
                "Bbbc005Generator image must be at least 32x32");
  util::expects(config_.min_cells >= 1 &&
                    config_.min_cells <= config_.max_cells,
                "Bbbc005Generator cell count range must be non-empty");
  util::expects(config_.min_radius > 0 &&
                    config_.min_radius <= config_.max_radius,
                "Bbbc005Generator radius range must be non-empty");
  util::expects(config_.blur_steps >= 1,
                "Bbbc005Generator needs at least one blur step");
  profile_ = DatasetProfile{
      .name = "BBBC005",
      .width = config_.width,
      .height = config_.height,
      .channels = 1,
      .suggested_clusters = 2,
      .suggested_beta = 21,  // paper Section IV-A
  };
}

Sample Bbbc005Generator::generate(std::size_t index) const {
  util::Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));

  Sample sample;
  sample.id = "bbbc005_" + std::to_string(index);
  sample.image = img::ImageU8(config_.width, config_.height, 1,
                              config_.background_level);
  sample.mask = img::ImageU8(config_.width, config_.height, 1, 0);

  const std::size_t cells = static_cast<std::size_t>(rng.next_in(
      static_cast<std::int64_t>(config_.min_cells),
      static_cast<std::int64_t>(config_.max_cells)));

  std::vector<img::BlobShape> placed;
  placed.reserve(cells);
  const std::size_t max_attempts = cells * 40;
  std::size_t attempts = 0;
  while (placed.size() < cells && attempts < max_attempts) {
    ++attempts;
    const double radius =
        rng.next_double_in(config_.min_radius, config_.max_radius);
    const double margin = radius * 1.6;
    const double cx = rng.next_double_in(
        margin, static_cast<double>(config_.width) - margin);
    const double cy = rng.next_double_in(
        margin, static_cast<double>(config_.height) - margin);
    auto shape = img::BlobShape::random(cx, cy, radius,
                                        config_.max_eccentricity,
                                        config_.irregularity, rng);
    // BBBC005 cells are non-overlapping; keep a small guaranteed gap.
    if (img::overlaps_any(shape, placed, 3.0)) {
      continue;
    }
    placed.push_back(shape);
  }

  for (const auto& shape : placed) {
    img::fill_blob(sample.image, &sample.mask, shape,
                   img::gradient_shade(config_.cell_center_level,
                                       config_.cell_edge_level));
  }
  sample.instance_count = placed.size();

  // Focus sweep: deterministic per-index blur level (BBBC005 images come
  // in a staged focus series rather than random defocus).
  const std::size_t step = index % config_.blur_steps;
  const double t = config_.blur_steps == 1
                       ? 0.0
                       : static_cast<double>(step) /
                             static_cast<double>(config_.blur_steps - 1);
  const double sigma = config_.min_blur_sigma +
                       t * (config_.max_blur_sigma - config_.min_blur_sigma);
  sample.image = img::gaussian_blur(sample.image, sigma);

  img::add_shot_noise(sample.image, config_.shot_noise_scale, rng);
  img::add_gaussian_noise(sample.image, config_.gaussian_noise_sigma, rng);
  return sample;
}

}  // namespace seghdc::data
