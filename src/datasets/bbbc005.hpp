// BBBC005-like synthetic fluorescent cell images.
//
// The real BBBC005 (Broad Bioimage Benchmark Collection) is itself a
// *simulated* corpus: SIMCEP-generated fluorescent cell-body images,
// 520x696 grayscale, with a controlled number of cells per image and a
// sweep of focus-blur levels. This generator reproduces those governing
// characteristics: bright convex cell bodies with soft internal gradients
// on a dark background, per-sample focus blur drawn from a sweep, photon
// shot noise, and an exact ground-truth mask. It is the easiest of the
// three suites (paper: SegHDC 0.9414 IoU) because foreground/background
// are well separated in intensity.
#ifndef SEGHDC_DATASETS_BBBC005_HPP
#define SEGHDC_DATASETS_BBBC005_HPP

#include "src/datasets/dataset.hpp"
#include "src/util/rng.hpp"

namespace seghdc::data {

struct Bbbc005Config {
  std::size_t width = 696;
  std::size_t height = 520;
  std::size_t min_cells = 10;
  std::size_t max_cells = 35;
  double min_radius = 14.0;
  double max_radius = 26.0;
  double max_eccentricity = 0.45;
  double irregularity = 0.08;      ///< boundary harmonic amplitude
  std::uint8_t background_level = 18;
  std::uint8_t cell_center_level = 210;
  std::uint8_t cell_edge_level = 150;
  /// Focus-blur sweep: sample i uses sigma interpolated across
  /// [min_blur_sigma, max_blur_sigma] by (i mod blur_steps), mirroring
  /// BBBC005's staged focus series.
  double min_blur_sigma = 0.8;
  double max_blur_sigma = 3.8;
  std::size_t blur_steps = 5;
  double shot_noise_scale = 1.0;
  double gaussian_noise_sigma = 5.0;
  std::uint64_t seed = 0xBBBC005;
};

class Bbbc005Generator final : public DatasetGenerator {
 public:
  explicit Bbbc005Generator(Bbbc005Config config = {});

  const DatasetProfile& profile() const override { return profile_; }
  Sample generate(std::size_t index) const override;

  const Bbbc005Config& config() const { return config_; }

 private:
  Bbbc005Config config_;
  DatasetProfile profile_;
};

}  // namespace seghdc::data

#endif  // SEGHDC_DATASETS_BBBC005_HPP
