// Dataset abstraction for the three synthetic benchmark suites.
//
// The paper evaluates on BBBC005, DSB2018 and MoNuSeg. Those corpora are
// not redistributable here, so each generator synthesises images with the
// same governing characteristics (size, channel count, object statistics,
// noise regime) plus exact ground-truth masks — see DESIGN.md §4 for the
// substitution rationale. Generators are pure functions of
// (config, index): the same sample index always yields the same image,
// so every experiment is reproducible and samples can be generated lazily
// in parallel.
#ifndef SEGHDC_DATASETS_DATASET_HPP
#define SEGHDC_DATASETS_DATASET_HPP

#include <cstdint>
#include <string>

#include "src/imaging/image.hpp"

namespace seghdc::data {

/// One dataset sample: an image plus its binary ground-truth mask
/// (255 = nucleus/cell foreground) and the instance count used to draw it.
struct Sample {
  std::string id;
  img::ImageU8 image;
  img::ImageU8 mask;
  std::size_t instance_count = 0;
};

/// Per-dataset hyper-parameters the paper fixes in Section IV-A.
struct DatasetProfile {
  std::string name;
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t channels = 1;
  std::size_t suggested_clusters = 2;  ///< paper: 2 (BBBC, DSB), 3 (MoNuSeg)
  std::size_t suggested_beta = 21;     ///< paper: 21 (BBBC), 26 (DSB, MoNuSeg)
};

/// Interface implemented by the three generators.
class DatasetGenerator {
 public:
  virtual ~DatasetGenerator() = default;

  virtual const DatasetProfile& profile() const = 0;

  /// Deterministically generates sample `index` (any non-negative index).
  virtual Sample generate(std::size_t index) const = 0;
};

}  // namespace seghdc::data

#endif  // SEGHDC_DATASETS_DATASET_HPP
