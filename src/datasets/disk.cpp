#include "src/datasets/disk.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/imaging/connected_components.hpp"
#include "src/imaging/png.hpp"
#include "src/imaging/pnm.hpp"

namespace seghdc::data {

namespace fs = std::filesystem;

namespace {

constexpr const char* kProfileFile = "profile.txt";

/// Splits "<id>_image.png" / "<id>_mask.pgm" into (id, role). Returns
/// role "" for files that follow neither pattern (profile.txt, stray
/// files) — those are ignored by the scan, not errors: dataset dirs in
/// the wild carry READMEs and checksums.
std::pair<std::string, std::string> classify(const std::string& filename) {
  const auto dot = filename.find_last_of('.');
  const std::string stem =
      dot == std::string::npos ? filename : filename.substr(0, dot);
  for (const char* role : {"image", "mask"}) {
    const std::string suffix = std::string{"_"} + role;
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return {stem.substr(0, stem.size() - suffix.size()), role};
    }
  }
  return {"", ""};
}

DatasetProfile parse_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("DiskDataset: cannot open " + path);
  }
  DatasetProfile profile;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream parts(line);
    std::string key;
    parts >> key;
    bool ok = true;
    if (key == "name") {
      parts >> profile.name;
    } else if (key == "width") {
      parts >> profile.width;
    } else if (key == "height") {
      parts >> profile.height;
    } else if (key == "channels") {
      parts >> profile.channels;
    } else if (key == "clusters") {
      parts >> profile.suggested_clusters;
    } else if (key == "beta") {
      parts >> profile.suggested_beta;
    } else {
      ok = false;
    }
    if (!ok || parts.fail()) {
      throw std::runtime_error("DiskDataset: bad profile line '" + line +
                               "' in " + path);
    }
  }
  return profile;
}

}  // namespace

DiskDataset::DiskDataset(const std::string& directory)
    : directory_(directory) {
  if (!fs::is_directory(directory)) {
    throw std::runtime_error("DiskDataset: " + directory +
                             " is not a directory");
  }

  // map keeps ids sorted, which fixes sample order across filesystems
  // whose directory iteration order differs.
  std::map<std::string, std::pair<std::string, std::string>> pairs;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const auto [id, role] = classify(entry.path().filename().string());
    if (role == "image") {
      pairs[id].first = entry.path().string();
    } else if (role == "mask") {
      pairs[id].second = entry.path().string();
    }
  }
  if (pairs.empty()) {
    throw std::runtime_error("DiskDataset: no <id>_image/<id>_mask pairs in " +
                             directory);
  }
  for (const auto& [id, paths] : pairs) {
    if (paths.first.empty()) {
      throw std::runtime_error("DiskDataset: mask without image for id '" +
                               id + "' in " + directory);
    }
    if (paths.second.empty()) {
      throw std::runtime_error("DiskDataset: image without mask for id '" +
                               id + "' in " + directory);
    }
    ids_.push_back(id);
    image_paths_.push_back(paths.first);
    mask_paths_.push_back(paths.second);
  }

  const std::string profile_path =
      (fs::path(directory) / kProfileFile).string();
  if (fs::exists(profile_path)) {
    profile_ = parse_profile(profile_path);
  } else {
    // Derive shape from the first sample; clusters/beta keep the
    // library defaults from DatasetProfile.
    const auto first = img::read_image(image_paths_.front());
    profile_.name = fs::path(directory).filename().string();
    profile_.width = first.width();
    profile_.height = first.height();
    profile_.channels = first.channels();
  }
}

Sample DiskDataset::generate(std::size_t index) const {
  if (index >= ids_.size()) {
    throw std::out_of_range("DiskDataset: sample index " +
                            std::to_string(index) + " >= size() " +
                            std::to_string(ids_.size()));
  }
  Sample sample;
  sample.id = ids_[index];
  sample.image = img::read_image(image_paths_[index]);
  sample.mask = img::read_image(mask_paths_[index]);
  if (sample.mask.channels() != 1) {
    throw std::runtime_error("DiskDataset: mask " + mask_paths_[index] +
                             " has " + std::to_string(sample.mask.channels()) +
                             " channels (expected 1)");
  }
  if (sample.mask.width() != sample.image.width() ||
      sample.mask.height() != sample.image.height()) {
    throw std::runtime_error("DiskDataset: mask " + mask_paths_[index] +
                             " shape does not match image " +
                             image_paths_[index]);
  }
  sample.instance_count =
      img::connected_components(sample.mask).components.size();
  return sample;
}

std::size_t export_dataset(const DatasetGenerator& generator,
                           std::size_t count, const std::string& directory,
                           const std::string& format) {
  std::string image_ext;
  std::string mask_ext;
  if (format == "png") {
    image_ext = mask_ext = "png";
  } else if (format == "pnm") {
    image_ext = generator.profile().channels == 3 ? "ppm" : "pgm";
    mask_ext = "pgm";
  } else {
    throw std::invalid_argument("export_dataset: unknown format '" + format +
                                "' (use \"png\" or \"pnm\")");
  }
  fs::create_directories(directory);

  for (std::size_t i = 0; i < count; ++i) {
    const Sample sample = generator.generate(i);
    const fs::path base = fs::path(directory) / sample.id;
    img::write_image(sample.image, base.string() + "_image." + image_ext);
    img::write_image(sample.mask, base.string() + "_mask." + mask_ext);
  }

  const auto& profile = generator.profile();
  const std::string profile_path =
      (fs::path(directory) / kProfileFile).string();
  std::ofstream out(profile_path);
  if (!out) {
    throw std::runtime_error("export_dataset: cannot open " + profile_path);
  }
  out << "name " << profile.name << "\n"
      << "width " << profile.width << "\n"
      << "height " << profile.height << "\n"
      << "channels " << profile.channels << "\n"
      << "clusters " << profile.suggested_clusters << "\n"
      << "beta " << profile.suggested_beta << "\n";
  if (!out.flush()) {
    throw std::runtime_error("export_dataset: short write to " +
                             profile_path);
  }
  return count;
}

}  // namespace seghdc::data
