// On-disk dataset loader: the bridge between the synthetic generators
// and real-world corpora. A disk dataset is a directory of
// `<id>_image.<ext>` / `<id>_mask.<ext>` pairs (PNG or PNM, mixed
// freely) plus an optional `profile.txt` carrying the DatasetProfile.
// `export_dataset` materialises any DatasetGenerator into that layout,
// so the hermetic CI path is: generate -> export -> DiskDataset ->
// eval, touching the exact loader code a real BBBC005/DSB2018/MoNuSeg
// download would use.
#ifndef SEGHDC_DATASETS_DISK_HPP
#define SEGHDC_DATASETS_DISK_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "src/datasets/dataset.hpp"

namespace seghdc::data {

/// Dataset backed by image/mask files on disk. Construction scans the
/// directory eagerly (sorted by id, so sample order is stable across
/// filesystems); pixel data is read lazily per generate() call.
///
/// Layout rules, enforced with hard errors (no silent skips):
///   - every `<id>_image.<ext>` must have a `<id>_mask.<ext2>` partner
///     and vice versa (extensions may differ: PNG image, PNM mask is fine)
///   - a directory with no pairs at all is an error
///   - masks must be single-channel and the same WxH as their image
/// `profile.txt`, when present, is `key value` lines (name, width,
/// height, channels, clusters, beta); without it the profile is derived
/// from the first sample with the library-default clusters/beta.
class DiskDataset final : public DatasetGenerator {
 public:
  explicit DiskDataset(const std::string& directory);

  const DatasetProfile& profile() const override { return profile_; }

  /// Number of image/mask pairs found on disk. Unlike the synthetic
  /// generators (unbounded index), generate(i) requires i < size().
  std::size_t size() const { return ids_.size(); }

  /// Loads pair `index` (in sorted-id order). The instance count is
  /// recovered by connected-component labeling of the mask. Throws
  /// std::out_of_range past size(), std::runtime_error on unreadable
  /// or mismatched files.
  Sample generate(std::size_t index) const override;

  const std::string& directory() const { return directory_; }
  const std::vector<std::string>& ids() const { return ids_; }

 private:
  std::string directory_;
  DatasetProfile profile_;
  std::vector<std::string> ids_;
  std::vector<std::string> image_paths_;  ///< parallel to ids_
  std::vector<std::string> mask_paths_;   ///< parallel to ids_
};

/// Materialises samples [0, count) of `generator` into `directory`
/// (created if missing) using the DiskDataset layout, plus a
/// `profile.txt` so the round trip preserves clusters/beta. `format`
/// selects the pixel container: "png" or "pnm". Returns the number of
/// samples written. Existing files with the same names are overwritten.
std::size_t export_dataset(const DatasetGenerator& generator,
                           std::size_t count, const std::string& directory,
                           const std::string& format = "png");

}  // namespace seghdc::data

#endif  // SEGHDC_DATASETS_DISK_HPP
