#include "src/datasets/dsb2018.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "src/imaging/draw.hpp"
#include "src/imaging/filters.hpp"
#include "src/imaging/noise.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::data {

Dsb2018Generator::Dsb2018Generator(Dsb2018Config config) : config_(config) {
  util::expects(config_.width >= 32 && config_.height >= 32,
                "Dsb2018Generator image must be at least 32x32");
  util::expects(config_.min_nuclei >= 1 &&
                    config_.min_nuclei <= config_.max_nuclei,
                "Dsb2018Generator nucleus count range must be non-empty");
  util::expects(config_.brightfield_fraction >= 0.0 &&
                    config_.brightfield_fraction <= 1.0,
                "Dsb2018Generator brightfield_fraction must be in [0, 1]");
  profile_ = DatasetProfile{
      .name = "DSB2018",
      .width = config_.width,
      .height = config_.height,
      .channels = 3,
      .suggested_clusters = 2,
      .suggested_beta = 26,  // paper Section IV-A
  };
}

namespace {

/// RGB shading for a nucleus: per-channel interior gradient between a
/// center color and an edge color.
img::ShadeFn nucleus_shade(const std::array<std::uint8_t, 3>& center,
                           const std::array<std::uint8_t, 3>& edge) {
  return [center, edge](double fraction, std::size_t c, std::uint8_t) {
    const double value = center[c] + (edge[c] - center[c]) * fraction;
    return static_cast<std::uint8_t>(std::clamp(value + 0.5, 0.0, 255.0));
  };
}

}  // namespace

Sample Dsb2018Generator::generate(std::size_t index) const {
  util::Rng rng(config_.seed ^ (0xbf58476d1ce4e5b9ULL * (index + 1)));

  Sample sample;
  sample.id = "dsb2018_" + std::to_string(index);
  const bool brightfield = rng.next_double() < config_.brightfield_fraction;

  // Background: fluorescence is near-black with a slight channel tint and
  // an illumination ramp; brightfield is light gray-pink with stain
  // texture. Both regimes exist in stage1_train.
  std::array<std::uint8_t, 3> bg{};
  if (brightfield) {
    bg = {222, 213, 222};
  } else {
    const auto tint = static_cast<std::uint8_t>(rng.next_in(0, 22));
    bg = {static_cast<std::uint8_t>(10 + tint / 2),
          static_cast<std::uint8_t>(12 + tint),
          static_cast<std::uint8_t>(14 + tint / 2)};
  }

  sample.image = img::ImageU8(config_.width, config_.height, 3);
  // Uneven illumination: a diagonal ramp of random strength (real DSB
  // tiles rarely have flat backgrounds).
  const double ramp = rng.next_double_in(0.0, 28.0);
  const double ramp_angle = rng.next_double_in(0.0, 6.283185307179586);
  const double ramp_dx = std::cos(ramp_angle);
  const double ramp_dy = std::sin(ramp_angle);
  for (std::size_t y = 0; y < config_.height; ++y) {
    for (std::size_t x = 0; x < config_.width; ++x) {
      const double t =
          (ramp_dx * static_cast<double>(x) / config_.width +
           ramp_dy * static_cast<double>(y) / config_.height + 1.0) /
          2.0;
      const double offset = ramp * (t - 0.5) * (brightfield ? -1.0 : 1.0);
      for (std::size_t c = 0; c < 3; ++c) {
        sample.image(x, y, c) = static_cast<std::uint8_t>(
            std::clamp(bg[c] + offset, 0.0, 255.0));
      }
    }
  }
  sample.mask = img::ImageU8(config_.width, config_.height, 1, 0);

  const std::size_t nuclei = static_cast<std::size_t>(rng.next_in(
      static_cast<std::int64_t>(config_.min_nuclei),
      static_cast<std::int64_t>(config_.max_nuclei)));

  // Nuclei cluster around a few attractor points (DSB tiles typically
  // show one or two colonies rather than a uniform scatter).
  const std::size_t attractors = 1 + static_cast<std::size_t>(rng.next_in(0, 2));
  std::vector<std::pair<double, double>> centers;
  centers.reserve(attractors);
  for (std::size_t a = 0; a < attractors; ++a) {
    centers.emplace_back(
        rng.next_double_in(config_.width * 0.2, config_.width * 0.8),
        rng.next_double_in(config_.height * 0.2, config_.height * 0.8));
  }

  std::vector<img::BlobShape> placed;
  placed.reserve(nuclei);
  const std::size_t max_attempts = nuclei * 50;
  std::size_t attempts = 0;
  while (placed.size() < nuclei && attempts < max_attempts) {
    ++attempts;
    const auto& [ax, ay] = centers[rng.next_below(centers.size())];
    const double spread =
        std::min(config_.width, config_.height) * 0.30;
    const double cx = std::clamp(ax + spread * rng.next_gaussian(), 12.0,
                                 static_cast<double>(config_.width) - 12.0);
    const double cy = std::clamp(ay + spread * rng.next_gaussian(), 12.0,
                                 static_cast<double>(config_.height) - 12.0);
    const double radius =
        rng.next_double_in(config_.min_radius, config_.max_radius);
    auto shape = img::BlobShape::random(cx, cy, radius,
                                        config_.max_eccentricity,
                                        config_.irregularity, rng);
    // Allow touching nuclei (negative gap) ~20% of the time, as in real
    // colonies, but avoid heavy stacking.
    const double gap = rng.next_double() < 0.2 ? -3.0 : 1.5;
    if (img::overlaps_any(shape, placed, gap)) {
      continue;
    }
    placed.push_back(shape);
  }

  for (const auto& shape : placed) {
    // Per-nucleus staining/expression level: real tiles mix bright and
    // barely-visible nuclei, which is what keeps IoU off the ceiling.
    std::array<std::uint8_t, 3> center{};
    std::array<std::uint8_t, 3> edge{};
    if (brightfield) {
      const auto level = static_cast<std::uint8_t>(rng.next_in(104, 168));
      center = {level, static_cast<std::uint8_t>(level * 3 / 4),
                static_cast<std::uint8_t>(std::min(255, level + 36))};
      edge = {static_cast<std::uint8_t>(level + 42),
              static_cast<std::uint8_t>(level * 3 / 4 + 42),
              static_cast<std::uint8_t>(std::min(255, level + 66))};
    } else {
      const auto level = static_cast<std::uint8_t>(rng.next_in(84, 208));
      center = {level, level,
                static_cast<std::uint8_t>(std::min(255, level + 12))};
      edge = {static_cast<std::uint8_t>(level * 11 / 20),
              static_cast<std::uint8_t>(level * 11 / 20),
              static_cast<std::uint8_t>(level * 11 / 20 + 8)};
    }
    img::fill_blob(sample.image, &sample.mask, shape,
                   nucleus_shade(center, edge));
  }
  sample.instance_count = placed.size();

  sample.image = img::gaussian_blur(sample.image, 1.0);
  img::apply_vignette(sample.image, config_.vignette_edge_gain);
  img::add_shot_noise(sample.image, config_.shot_noise_scale, rng);
  img::add_gaussian_noise(sample.image, config_.gaussian_noise_sigma, rng);
  return sample;
}

}  // namespace seghdc::data
