// DSB2018-like synthetic nuclei images.
//
// The 2018 Data Science Bowl "stage1_train" set mixes acquisition
// modalities: mostly dark-field fluorescence (bright nuclei on a near-
// black background) with a minority of stained bright-field images (dark
// purple nuclei on a light background), in small RGB tiles. This
// generator reproduces that mix: a per-sample modality draw, clustered
// nuclei with touching pairs, illumination vignetting, and sensor noise.
// Default tile size 320x256x3 matches the latency image the paper uses
// in Table II (256 x 320 x 3).
#ifndef SEGHDC_DATASETS_DSB2018_HPP
#define SEGHDC_DATASETS_DSB2018_HPP

#include "src/datasets/dataset.hpp"
#include "src/util/rng.hpp"

namespace seghdc::data {

struct Dsb2018Config {
  std::size_t width = 320;
  std::size_t height = 256;
  std::size_t min_nuclei = 8;
  std::size_t max_nuclei = 26;
  double min_radius = 9.0;
  double max_radius = 19.0;
  double max_eccentricity = 0.35;
  double irregularity = 0.12;
  /// Fraction of samples drawn as stained bright-field (the rest are
  /// dark-field fluorescence). DSB2018's stage1_train is mostly
  /// fluorescence.
  double brightfield_fraction = 0.25;
  double vignette_edge_gain = 0.82;
  double gaussian_noise_sigma = 6.0;
  double shot_noise_scale = 0.7;
  std::uint64_t seed = 0xD5B2018;
};

class Dsb2018Generator final : public DatasetGenerator {
 public:
  explicit Dsb2018Generator(Dsb2018Config config = {});

  const DatasetProfile& profile() const override { return profile_; }
  Sample generate(std::size_t index) const override;

  const Dsb2018Config& config() const { return config_; }

 private:
  Dsb2018Config config_;
  DatasetProfile profile_;
};

}  // namespace seghdc::data

#endif  // SEGHDC_DATASETS_DSB2018_HPP
