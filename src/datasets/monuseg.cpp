#include "src/datasets/monuseg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/imaging/draw.hpp"
#include "src/imaging/filters.hpp"
#include "src/imaging/noise.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::data {

MonusegGenerator::MonusegGenerator(MonusegConfig config) : config_(config) {
  util::expects(config_.width >= 64 && config_.height >= 64,
                "MonusegGenerator image must be at least 64x64");
  util::expects(config_.min_nuclei >= 1 &&
                    config_.min_nuclei <= config_.max_nuclei,
                "MonusegGenerator nucleus count range must be non-empty");
  util::expects(config_.min_patches <= config_.max_patches,
                "MonusegGenerator patch count range must be non-empty");
  profile_ = DatasetProfile{
      .name = "MoNuSeg",
      .width = config_.width,
      .height = config_.height,
      .channels = 3,
      .suggested_clusters = 3,  // paper Section IV-A
      .suggested_beta = 26,
  };
}

Sample MonusegGenerator::generate(std::size_t index) const {
  util::Rng rng(config_.seed ^ (0x94d049bb133111ebULL * (index + 1)));

  Sample sample;
  sample.id = "monuseg_" + std::to_string(index);
  sample.image = img::ImageU8(config_.width, config_.height, 3);
  sample.mask = img::ImageU8(config_.width, config_.height, 1, 0);

  // --- Stroma: eosin-pink base modulated by two value-noise fields plus
  // a deep-fiber layer whose dark strands overlap the nuclei intensity
  // range — the ambiguity that keeps both methods near 0.5 IoU on real
  // MoNuSeg tiles. ---
  const auto texture =
      img::value_noise(config_.width, config_.height, 48, 4, rng);
  const auto fibers =
      img::value_noise(config_.width, config_.height, 12, 3, rng);
  const auto deep_fibers =
      img::value_noise(config_.width, config_.height, 20, 3, rng);
  for (std::size_t y = 0; y < config_.height; ++y) {
    for (std::size_t x = 0; x < config_.width; ++x) {
      const double t = texture(x, y);
      const double f = fibers(x, y);
      // Eosin palette: light pink, darker where fiber density is high.
      double shade = 0.70 + 0.30 * t - 0.22 * f;
      // Deep fibers: the darkest ~20% of the field drops toward
      // hematoxylin range.
      const double deep = deep_fibers(x, y);
      if (deep > 0.68) {
        shade -= (deep - 0.68) * 1.4;
      }
      shade = std::max(0.30, shade);
      sample.image(x, y, 0) =
          static_cast<std::uint8_t>(std::clamp(238.0 * shade, 0.0, 255.0));
      sample.image(x, y, 1) =
          static_cast<std::uint8_t>(std::clamp(186.0 * shade, 0.0, 255.0));
      sample.image(x, y, 2) =
          static_cast<std::uint8_t>(std::clamp(212.0 * shade, 0.0, 255.0));
    }
  }

  // --- Cytoplasm / gland patches: intermediate intensity stratum. ---
  const std::size_t patches = static_cast<std::size_t>(rng.next_in(
      static_cast<std::int64_t>(config_.min_patches),
      static_cast<std::int64_t>(config_.max_patches)));
  for (std::size_t p = 0; p < patches; ++p) {
    const double radius = rng.next_double_in(
        config_.width * 0.10, config_.width * 0.22);
    const double cx =
        rng.next_double_in(radius, static_cast<double>(config_.width) - radius);
    const double cy = rng.next_double_in(
        radius, static_cast<double>(config_.height) - radius);
    auto patch = img::BlobShape::random(cx, cy, radius, 0.5, 0.25, rng);
    // Patches darken the stroma toward a mauve tone; they are NOT
    // foreground in the ground truth (only nuclei are annotated in
    // MoNuSeg), which is what makes k=3 clustering necessary.
    img::fill_blob(
        sample.image, nullptr, patch,
        [](double fraction, std::size_t, std::uint8_t current) {
          const double keep = 0.75 + 0.25 * fraction;
          return static_cast<std::uint8_t>(
              std::clamp(current * keep, 0.0, 255.0));
        });
  }

  // --- Nuclei: small crowded hematoxylin-purple blobs. ---
  const std::size_t nuclei = static_cast<std::size_t>(rng.next_in(
      static_cast<std::int64_t>(config_.min_nuclei),
      static_cast<std::int64_t>(config_.max_nuclei)));
  std::vector<img::BlobShape> placed;
  placed.reserve(nuclei);
  const std::size_t max_attempts = nuclei * 30;
  std::size_t attempts = 0;
  while (placed.size() < nuclei && attempts < max_attempts) {
    ++attempts;
    const double radius =
        rng.next_double_in(config_.min_radius, config_.max_radius);
    const double cx = rng.next_double_in(
        radius + 1, static_cast<double>(config_.width) - radius - 1);
    const double cy = rng.next_double_in(
        radius + 1, static_cast<double>(config_.height) - radius - 1);
    auto shape = img::BlobShape::random(cx, cy, radius,
                                        config_.max_eccentricity,
                                        config_.irregularity, rng);
    // Histology nuclei pack tightly; only forbid strong overlap.
    if (img::overlaps_any(shape, placed, -2.0)) {
      continue;
    }
    placed.push_back(shape);
  }

  for (const auto& shape : placed) {
    // Chromatin texture: interior darkness varies with a per-nucleus
    // random phase so nuclei are not flat discs.
    const double phase = rng.next_double_in(0.0, 6.283185307179586);
    const double depth = rng.next_double_in(0.75, 1.0);
    img::fill_blob(
        sample.image, &sample.mask, shape,
        [phase, depth](double fraction, std::size_t c, std::uint8_t) {
          // Base hematoxylin purple, lightening slightly toward the rim,
          // with a radial chromatin ripple.
          const double ripple =
              0.08 * std::sin(9.0 * fraction * fraction + phase);
          const double t = std::clamp(
              depth * (1.0 - 0.35 * fraction + ripple), 0.0, 1.0);
          static constexpr double kCenter[3] = {98.0, 66.0, 134.0};
          static constexpr double kRim[3] = {168.0, 132.0, 182.0};
          const double value = kRim[c] + (kCenter[c] - kRim[c]) * t;
          return static_cast<std::uint8_t>(
              std::clamp(value + 0.5, 0.0, 255.0));
        });
  }
  sample.instance_count = placed.size();

  sample.image = img::gaussian_blur(sample.image, 0.6);
  img::add_gaussian_noise(sample.image, config_.gaussian_noise_sigma, rng);
  return sample;
}

}  // namespace seghdc::data
