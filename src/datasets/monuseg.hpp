// MoNuSeg-like synthetic H&E histology tiles.
//
// MoNuSeg contains 1000x1000 H&E-stained tissue crops with hundreds of
// small, crowded nuclei over strongly textured stroma — by far the
// hardest of the paper's three suites (both methods score ~0.5 IoU).
// This generator reproduces that regime: an eosin-pink stroma built from
// multi-octave value noise, intermediate-intensity cytoplasm/gland
// regions (the reason the paper sets k = 3 here), and many small
// hematoxylin-purple nuclei with chromatin texture. The default tile is
// 256x256 (a scaled crop; the paper's full tiles are 1000x1000 — runtime
// substitution documented in DESIGN.md §4).
#ifndef SEGHDC_DATASETS_MONUSEG_HPP
#define SEGHDC_DATASETS_MONUSEG_HPP

#include "src/datasets/dataset.hpp"
#include "src/util/rng.hpp"

namespace seghdc::data {

struct MonusegConfig {
  std::size_t width = 256;
  std::size_t height = 256;
  std::size_t min_nuclei = 60;
  std::size_t max_nuclei = 140;
  double min_radius = 3.5;
  double max_radius = 7.5;
  double max_eccentricity = 0.4;
  double irregularity = 0.15;
  /// Number of larger cytoplasm/gland patches of intermediate intensity.
  std::size_t min_patches = 3;
  std::size_t max_patches = 7;
  double gaussian_noise_sigma = 7.0;
  std::uint64_t seed = 0x140005E6;  // "MoNuSeG"
};

class MonusegGenerator final : public DatasetGenerator {
 public:
  explicit MonusegGenerator(MonusegConfig config = {});

  const DatasetProfile& profile() const override { return profile_; }
  Sample generate(std::size_t index) const override;

  const MonusegConfig& config() const { return config_; }

 private:
  MonusegConfig config_;
  DatasetProfile profile_;
};

}  // namespace seghdc::data

#endif  // SEGHDC_DATASETS_MONUSEG_HPP
