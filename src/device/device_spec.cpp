#include "src/device/device_spec.hpp"

namespace seghdc::device {

DeviceSpec DeviceSpec::raspberry_pi_4b() {
  DeviceSpec spec;
  spec.name = "Raspberry Pi 4 Model B (4 GB)";
  spec.cpu = "Broadcom BCM2711, 4x Cortex-A72 @ 1.5 GHz";
  spec.cores = 4;
  spec.frequency_hz = 1.5e9;
  spec.mem_total_bytes = 4ULL * 1024 * 1024 * 1024;
  // ~400 MB for Raspberry Pi OS + daemons leaves ~3.6 GB for the
  // segmentation process.
  spec.mem_available_bytes = spec.mem_total_bytes - 400ULL * 1024 * 1024;
  // Calibrated against paper Table II (see device_spec.hpp).
  spec.hdc_seconds_per_pixel_iter = 1.3331e-4;
  spec.hdc_seconds_per_pixel_iter_dim = 1.545e-8;
  spec.cnn_macs_per_second = 2.204e9;
  // Measured Pi 4B draw: ~2.7 W idle, ~6.4 W all-core NEON load,
  // ~5.1 W single-threaded interpreter load.
  spec.hdc_active_watts = 5.1;
  spec.cnn_active_watts = 6.4;
  return spec;
}

}  // namespace seghdc::device
