// Edge-device description used by the on-device experiments (paper
// Table II, Fig. 7 latency axes). The paper deploys on a Raspberry Pi 4
// Model B (4 GB); this module models that device so the same experiments
// run without the hardware — DESIGN.md §4 documents the substitution.
//
// Calibration: the two throughput constants are fitted once against the
// paper's own reported measurements (SegHDC: the two Table II rows;
// CNN baseline: 11,453 s for the DSB2018 image) and then reused for
// every projection, so Table II ratios, Fig. 7(a) and Fig. 7(b) are all
// produced by one fixed model rather than per-experiment tuning.
#ifndef SEGHDC_DEVICE_DEVICE_SPEC_HPP
#define SEGHDC_DEVICE_DEVICE_SPEC_HPP

#include <cstdint>
#include <string>

namespace seghdc::device {

struct DeviceSpec {
  std::string name;
  std::string cpu;
  std::size_t cores = 1;
  double frequency_hz = 1e9;
  std::uint64_t mem_total_bytes = 0;
  /// Memory a user process can actually claim (total minus OS/desktop).
  std::uint64_t mem_available_bytes = 0;

  // --- SegHDC latency model (reference implementation = interpreted
  // NumPy pipeline, as deployed by the authors):
  //   t = pixels * iterations * (a + b * dim) * (clusters / 2)
  // `a` captures the per-pixel interpreter overhead that dominates on
  // the Pi; `b` the vectorised per-dimension arithmetic. ---
  double hdc_seconds_per_pixel_iter = 0.0;      ///< a
  double hdc_seconds_per_pixel_iter_dim = 0.0;  ///< b

  // --- CNN latency model: t = total_MACs / cnn_macs_per_second. ---
  double cnn_macs_per_second = 1.0;

  // --- Energy model: E = watts * seconds. Separate sustained-load
  // figures for the two workloads because the CNN saturates NEON/memory
  // (higher draw) while the interpreted HDC pipeline does not. ---
  double hdc_active_watts = 0.0;
  double cnn_active_watts = 0.0;

  /// Raspberry Pi 4 Model B, 4 GB — the paper's deployment target.
  /// Constants calibrated as described in the header comment:
  ///   a = 1.3331e-4 s, b = 1.545e-8 s (exact fit of both Table II
  ///   SegHDC rows; reproduces Fig. 7(a) within ~25% and Fig. 7(b)'s
  ///   near-flat dimension scaling), cnn rate = 2.204 GMAC/s (exact fit
  ///   of the Table II baseline row).
  static DeviceSpec raspberry_pi_4b();
};

}  // namespace seghdc::device

#endif  // SEGHDC_DEVICE_DEVICE_SPEC_HPP
