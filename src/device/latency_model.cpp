#include "src/device/latency_model.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::device {

double project_seghdc_latency(const DeviceSpec& spec,
                              const SegHdcWorkload& workload) {
  util::expects(workload.pixels > 0 && workload.dim > 0,
                "project_seghdc_latency needs a non-empty workload");
  util::expects(workload.clusters >= 2,
                "project_seghdc_latency needs >= 2 clusters");
  const double per_pixel_iter =
      spec.hdc_seconds_per_pixel_iter +
      spec.hdc_seconds_per_pixel_iter_dim * static_cast<double>(workload.dim);
  return static_cast<double>(workload.pixels) *
         static_cast<double>(workload.iterations) * per_pixel_iter *
         (static_cast<double>(workload.clusters) / 2.0);
}

double project_kim_latency(const DeviceSpec& spec,
                           const KimWorkload& workload) {
  util::expects(workload.height > 0 && workload.width > 0,
                "project_kim_latency needs a non-empty workload");
  util::expects(workload.iterations > 0,
                "project_kim_latency needs >= 1 iteration");
  const std::uint64_t macs = baseline::KimSegmenter::total_macs(
      workload.config, workload.channels, workload.height, workload.width,
      workload.iterations);
  return static_cast<double>(macs) / spec.cnn_macs_per_second;
}

double project_seghdc_energy(const DeviceSpec& spec,
                             const SegHdcWorkload& workload) {
  return spec.hdc_active_watts * project_seghdc_latency(spec, workload);
}

double project_kim_energy(const DeviceSpec& spec,
                          const KimWorkload& workload) {
  return spec.cnn_active_watts * project_kim_latency(spec, workload);
}

}  // namespace seghdc::device
