// Projects workload descriptions onto a DeviceSpec to obtain edge-device
// latency — the "Latency on PI" numbers of paper Table II and the
// latency axes of Fig. 7(a)/(b).
#ifndef SEGHDC_DEVICE_LATENCY_MODEL_HPP
#define SEGHDC_DEVICE_LATENCY_MODEL_HPP

#include <cstdint>

#include "src/baseline/kim_segmenter.hpp"
#include "src/device/device_spec.hpp"

namespace seghdc::device {

/// Shape of one SegHDC segmentation run.
struct SegHdcWorkload {
  std::size_t pixels = 0;
  std::size_t dim = 0;
  std::size_t clusters = 2;
  std::size_t iterations = 10;
};

/// Projected seconds for SegHDC on `spec`:
///   pixels * iterations * (a + b*dim) * (clusters/2).
double project_seghdc_latency(const DeviceSpec& spec,
                              const SegHdcWorkload& workload);

/// Shape of one CNN-baseline run (per-image training).
struct KimWorkload {
  baseline::KimConfig config;
  std::size_t channels = 3;
  std::size_t height = 0;
  std::size_t width = 0;
  /// Iterations actually executed (the reference runs max_iterations
  /// unless early-stopped).
  std::size_t iterations = 0;
};

/// Projected seconds for the CNN baseline on `spec`: MACs / rate.
double project_kim_latency(const DeviceSpec& spec,
                           const KimWorkload& workload);

/// Projected energy (joules) for a SegHDC run: hdc watts x seconds.
double project_seghdc_energy(const DeviceSpec& spec,
                             const SegHdcWorkload& workload);

/// Projected energy (joules) for a CNN-baseline run: cnn watts x seconds.
double project_kim_energy(const DeviceSpec& spec,
                          const KimWorkload& workload);

}  // namespace seghdc::device

#endif  // SEGHDC_DEVICE_LATENCY_MODEL_HPP
