#include "src/device/memory_model.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::device {

namespace {
constexpr std::uint64_t kFloatBytes = sizeof(float);
constexpr std::uint64_t kMiB = 1024ULL * 1024;
}  // namespace

std::uint64_t MemoryEstimate::peak_bytes() const {
  const auto tensor_bytes = static_cast<double>(
      parameter_bytes + activation_bytes + workspace_bytes);
  return static_cast<std::uint64_t>(tensor_bytes * overhead_factor) +
         runtime_bytes;
}

bool MemoryEstimate::fits(const DeviceSpec& spec) const {
  return peak_bytes() <= spec.mem_available_bytes;
}

MemoryEstimate estimate_kim_memory(const baseline::KimConfig& config,
                                   std::size_t channels, std::size_t height,
                                   std::size_t width) {
  util::expects(height > 0 && width > 0,
                "estimate_kim_memory needs a non-empty image");
  const std::uint64_t hw = static_cast<std::uint64_t>(height) * width;
  const std::uint64_t f = config.feature_channels;

  MemoryEstimate estimate;

  // --- Parameters: conv weights/biases + BN affine, x3 for grads and
  // momentum buffers. ---
  std::uint64_t params = 0;
  for (std::size_t layer = 0; layer < config.conv_layers; ++layer) {
    const std::uint64_t in = layer == 0 ? channels : f;
    params += in * f * 9 + f;  // 3x3 weights + bias
    params += 2 * f;           // BN gamma/beta
  }
  params += f * f + f;  // 1x1 head
  params += 2 * f;      // head BN
  estimate.parameter_bytes = params * kFloatBytes * 3;

  // --- Activations saved for backward: input; per conv block the conv
  // output, ReLU output and BN normalised copy + BN output; head conv
  // output + head BN pair. ---
  std::uint64_t activation_floats = channels * hw;  // input
  activation_floats += config.conv_layers * (4 * f * hw);
  activation_floats += 3 * f * hw;  // head conv out, head BN xhat + out
  estimate.activation_bytes = activation_floats * kFloatBytes;

  // --- Workspace: im2col of the widest 3x3 conv lives across the
  // forward AND is re-materialised as dcols in backward, so both are
  // resident at the backward peak. Plus one response-gradient tensor. ---
  const std::uint64_t widest_in = config.conv_layers > 1 ? f : channels;
  const std::uint64_t im2col = widest_in * 9 * hw * kFloatBytes;
  estimate.workspace_bytes = 2 * im2col + f * hw * kFloatBytes;

  // PyTorch caching allocator rounds blocks and keeps freed segments.
  estimate.overhead_factor = 1.25;
  // CPython + libtorch + loaded shared objects on the Pi.
  estimate.runtime_bytes = 350 * kMiB;
  return estimate;
}

MemoryEstimate estimate_seghdc_memory(const core::SegHdcConfig& config,
                                      std::size_t height, std::size_t width) {
  util::expects(height > 0 && width > 0,
                "estimate_seghdc_memory needs a non-empty image");
  const std::uint64_t pixels = static_cast<std::uint64_t>(height) * width;

  MemoryEstimate estimate;
  // Reference layout: pixel HVs as one byte per element (NumPy uint8),
  // plus the row/column ladders and 256-level color codebooks.
  const std::uint64_t ladder_rows = (height + config.beta - 1) / config.beta;
  const std::uint64_t ladder_cols = (width + config.beta - 1) / config.beta;
  estimate.parameter_bytes =
      (ladder_rows + ladder_cols + 256) * config.dim;
  estimate.activation_bytes = pixels * config.dim;  // pixel HVs
  // Centroids (int32) + assignment vector + distance scratch.
  estimate.workspace_bytes =
      config.clusters * config.dim * 4 + pixels * (4 + 8);
  estimate.overhead_factor = 1.15;  // NumPy temporaries
  estimate.runtime_bytes = 150 * kMiB;  // CPython + NumPy
  return estimate;
}

}  // namespace seghdc::device
