// Peak-memory estimator for both methods on an edge device — the model
// behind the paper's Table II "×* Out of memory" result: the CNN
// baseline cannot process a 520x696 image on the 4 GB Raspberry Pi,
// while SegHDC fits comfortably.
//
// The CNN estimate follows the PyTorch CPU execution model the reference
// implementation runs on: parameters + momentum + gradients, every
// activation saved for backward (conv outputs, ReLU outputs, BN
// normalised tensors), the im2col workspace of the widest conv — which
// is materialised BOTH forward (cols) and backward (dcols) — plus an
// allocator-fragmentation factor and the fixed Python/Torch runtime
// footprint.
#ifndef SEGHDC_DEVICE_MEMORY_MODEL_HPP
#define SEGHDC_DEVICE_MEMORY_MODEL_HPP

#include <cstdint>

#include "src/baseline/kim_segmenter.hpp"
#include "src/core/config.hpp"
#include "src/device/device_spec.hpp"

namespace seghdc::device {

struct MemoryEstimate {
  std::uint64_t parameter_bytes = 0;   ///< weights + grads + momentum
  std::uint64_t activation_bytes = 0;  ///< saved-for-backward tensors
  std::uint64_t workspace_bytes = 0;   ///< im2col / scratch buffers
  std::uint64_t runtime_bytes = 0;     ///< interpreter + framework
  /// Allocator fragmentation / caching multiplier applied to the tensor
  /// portions (not the fixed runtime footprint).
  double overhead_factor = 1.0;

  std::uint64_t peak_bytes() const;
  /// True when peak_bytes() fits in the device's available memory.
  bool fits(const DeviceSpec& spec) const;
};

/// Peak memory of one CNN-baseline training iteration on an
/// `height` x `width` image with `channels` input channels.
MemoryEstimate estimate_kim_memory(const baseline::KimConfig& config,
                                   std::size_t channels, std::size_t height,
                                   std::size_t width);

/// Peak memory of a SegHDC run (reference implementation layout: one
/// byte per HV element, per-pixel pixel HVs, integer centroids).
MemoryEstimate estimate_seghdc_memory(const core::SegHdcConfig& config,
                                      std::size_t height, std::size_t width);

}  // namespace seghdc::device

#endif  // SEGHDC_DEVICE_MEMORY_MODEL_HPP
