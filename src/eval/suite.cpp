#include "src/eval/suite.hpp"

#include <algorithm>
#include <cmath>

#include "src/baseline/otsu_segmenter.hpp"
#include "src/imaging/filters.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/contracts.hpp"
#include "src/util/csv.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::eval {

double SuiteResult::mean_iou() const {
  double sum = 0.0;
  for (const auto& record : records) {
    sum += record.iou;
  }
  return records.empty() ? 0.0 : sum / static_cast<double>(records.size());
}

double SuiteResult::min_iou() const {
  double value = records.empty() ? 0.0 : records.front().iou;
  for (const auto& record : records) {
    value = std::min(value, record.iou);
  }
  return value;
}

double SuiteResult::max_iou() const {
  double value = 0.0;
  for (const auto& record : records) {
    value = std::max(value, record.iou);
  }
  return value;
}

double SuiteResult::stddev_iou() const {
  if (records.size() < 2) {
    return 0.0;
  }
  const double mean = mean_iou();
  double sum_sq = 0.0;
  for (const auto& record : records) {
    sum_sq += (record.iou - mean) * (record.iou - mean);
  }
  return std::sqrt(sum_sq / static_cast<double>(records.size() - 1));
}

double SuiteResult::mean_seconds() const {
  return records.empty()
             ? 0.0
             : total_seconds() / static_cast<double>(records.size());
}

double SuiteResult::total_seconds() const {
  double sum = 0.0;
  for (const auto& record : records) {
    sum += record.seconds;
  }
  return sum;
}

SuiteResult evaluate_suite(const data::DatasetGenerator& dataset,
                           std::size_t images,
                           const std::string& method_name,
                           const Method& method) {
  util::expects(images > 0, "evaluate_suite needs at least one image");
  util::expects(static_cast<bool>(method),
                "evaluate_suite needs a method");
  SuiteResult result;
  result.dataset = dataset.profile().name;
  result.method = method_name;
  result.records.reserve(images);
  for (std::size_t i = 0; i < images; ++i) {
    const auto sample = dataset.generate(i);
    const util::Stopwatch watch;
    const auto labels = method(sample);
    const double seconds = watch.seconds();
    util::expects(labels.width() == sample.mask.width() &&
                      labels.height() == sample.mask.height(),
                  "method returned a label map of the wrong size");
    const auto matched =
        metrics::best_foreground_iou_any(labels, sample.mask);
    result.records.push_back(ImageRecord{
        .id = sample.id,
        .iou = matched.iou,
        .seconds = seconds,
        .instances = sample.instance_count,
    });
  }
  return result;
}

void write_suite_csv(const SuiteResult& result, const std::string& path) {
  util::CsvWriter csv(path,
                      {"dataset", "method", "image", "iou", "seconds",
                       "instances"});
  for (const auto& record : result.records) {
    csv.row({result.dataset, result.method, record.id,
             util::CsvWriter::field(record.iou),
             util::CsvWriter::field(record.seconds),
             std::to_string(record.instances)});
  }
  csv.row({result.dataset, result.method, "mean",
           util::CsvWriter::field(result.mean_iou()),
           util::CsvWriter::field(result.mean_seconds()), ""});
}

Method seghdc_method(const core::SegHdcConfig& config) {
  return [config](const data::Sample& sample) {
    const core::SegHdc seghdc(config);
    return seghdc.segment(sample.image).labels;
  };
}

Method kim_method(const baseline::KimConfig& config,
                  std::size_t train_downscale) {
  util::expects(train_downscale >= 1,
                "kim_method train_downscale must be >= 1");
  return [config, train_downscale](const data::Sample& sample) {
    img::ImageU8 train_image = sample.image;
    if (train_downscale > 1) {
      train_image = img::resize_bilinear(
          sample.image, sample.image.width() / train_downscale,
          sample.image.height() / train_downscale);
    }
    const baseline::KimSegmenter segmenter(config);
    auto labels = segmenter.segment(train_image).labels;
    if (train_downscale > 1) {
      labels = img::resize_nearest(labels, sample.image.width(),
                                   sample.image.height());
    }
    return labels;
  };
}

Method otsu_method(bool equalize_first) {
  return [equalize_first](const data::Sample& sample) {
    const baseline::OtsuSegmenter otsu(equalize_first);
    return otsu.segment(sample.image).labels;
  };
}

}  // namespace seghdc::eval
