#include "src/eval/suite.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "src/baseline/otsu_segmenter.hpp"
#include "src/core/session.hpp"
#include "src/imaging/filters.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/contracts.hpp"
#include "src/util/csv.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::eval {

double SuiteResult::mean_iou() const {
  double sum = 0.0;
  for (const auto& record : records) {
    sum += record.iou;
  }
  return records.empty() ? 0.0 : sum / static_cast<double>(records.size());
}

double SuiteResult::min_iou() const {
  double value = records.empty() ? 0.0 : records.front().iou;
  for (const auto& record : records) {
    value = std::min(value, record.iou);
  }
  return value;
}

double SuiteResult::max_iou() const {
  double value = 0.0;
  for (const auto& record : records) {
    value = std::max(value, record.iou);
  }
  return value;
}

double SuiteResult::stddev_iou() const {
  if (records.size() < 2) {
    return 0.0;
  }
  const double mean = mean_iou();
  double sum_sq = 0.0;
  for (const auto& record : records) {
    sum_sq += (record.iou - mean) * (record.iou - mean);
  }
  return std::sqrt(sum_sq / static_cast<double>(records.size() - 1));
}

double SuiteResult::mean_seconds() const {
  return records.empty()
             ? 0.0
             : total_seconds() / static_cast<double>(records.size());
}

double SuiteResult::total_seconds() const {
  double sum = 0.0;
  for (const auto& record : records) {
    sum += record.seconds;
  }
  return sum;
}

core::OpCounts SuiteResult::total_ops() const {
  core::OpCounts total;
  for (const auto& record : records) {
    total += record.ops;
  }
  return total;
}

SuiteResult evaluate_suite(const data::DatasetGenerator& dataset,
                           std::size_t images,
                           const std::string& method_name,
                           const Method& method) {
  util::expects(images > 0, "evaluate_suite needs at least one image");
  util::expects(static_cast<bool>(method),
                "evaluate_suite needs a method");
  SuiteResult result;
  result.dataset = dataset.profile().name;
  result.method = method_name;
  result.records.reserve(images);
  const util::Stopwatch wall;
  obs::LatencyRecorder latency;
  for (std::size_t i = 0; i < images; ++i) {
    const auto sample = dataset.generate(i);
    const util::Stopwatch watch;
    const auto labels = method(sample);
    const double seconds = watch.seconds();
    util::expects(labels.width() == sample.mask.width() &&
                      labels.height() == sample.mask.height(),
                  "method returned a label map of the wrong size");
    const auto matched =
        metrics::best_foreground_iou_any(labels, sample.mask);
    latency.record(seconds);
    ImageRecord record;
    record.id = sample.id;
    record.iou = matched.iou;
    record.seconds = seconds;
    record.instances = sample.instance_count;
    result.records.push_back(std::move(record));
  }
  result.wall_seconds = wall.seconds();
  result.latency = latency.snapshot();
  return result;
}

EvalPath parse_eval_path(const std::string& name) {
  if (name == "one_shot") {
    return EvalPath::kOneShot;
  }
  if (name == "batch") {
    return EvalPath::kBatch;
  }
  if (name == "server") {
    return EvalPath::kServer;
  }
  throw std::invalid_argument("parse_eval_path: unknown eval path '" + name +
                              "' (use one_shot, batch or server)");
}

const char* eval_path_name(EvalPath path) {
  switch (path) {
    case EvalPath::kOneShot:
      return "one_shot";
    case EvalPath::kBatch:
      return "batch";
    case EvalPath::kServer:
      return "server";
  }
  throw std::invalid_argument("eval_path_name: invalid EvalPath");
}

namespace {

/// True when two configs produce the same output content (performance
/// knobs — assign_mode, tile_rows, kernel_backend, trace — excluded by
/// the library's determinism guarantees).
bool same_semantics(const core::SegHdcConfig& a,
                    const core::SegHdcConfig& b) {
  return a.dim == b.dim && a.alpha == b.alpha && a.beta == b.beta &&
         a.gamma == b.gamma && a.clusters == b.clusters &&
         a.iterations == b.iterations && a.seed == b.seed &&
         a.position_encoding == b.position_encoding &&
         a.color_encoding == b.color_encoding &&
         a.flip_unit_basis == b.flip_unit_basis &&
         a.cluster_distance == b.cluster_distance &&
         a.deduplicate == b.deduplicate &&
         a.color_quantization_shift == b.color_quantization_shift &&
         a.bit_error_rate == b.bit_error_rate &&
         a.stop_on_convergence == b.stop_on_convergence &&
         a.compute_margins == b.compute_margins;
}

}  // namespace

SuiteResult evaluate_seghdc(const data::DatasetGenerator& dataset,
                            std::size_t images,
                            const core::SegHdcConfig& config,
                            const EvalOptions& options) {
  util::expects(images > 0, "evaluate_seghdc needs at least one image");
  if (options.server != nullptr &&
      !same_semantics(options.server->config(), config)) {
    throw std::invalid_argument(
        "evaluate_seghdc: external server config does not match the eval "
        "config (labels would not be comparable)");
  }

  SuiteResult result;
  result.dataset = dataset.profile().name;
  result.method = "seghdc";
  result.path = eval_path_name(options.path);
  result.records.reserve(images);
  result.labels_hash = 14695981039346656037ULL;  // FNV-1a offset basis

  const util::Stopwatch wall;
  obs::LatencyRecorder local_latency(options.latency_window);

  // Session for the synchronous paths; locally owned server (built only
  // when needed) for the serving path.
  core::SegHdcSession session(config,
                              core::SegHdcSession::Options{options.pool});
  std::unique_ptr<serve::SegHdcServer> owned_server;
  serve::SegHdcServer* server = options.server;
  if (options.path == EvalPath::kServer && server == nullptr) {
    serve::ServerOptions server_options = options.server_options;
    if (server_options.pool == nullptr) {
      server_options.pool = options.pool;
    }
    owned_server =
        std::make_unique<serve::SegHdcServer>(config, server_options);
    server = owned_server.get();
  }

  // Scores result `i` and appends its record. Called strictly in sample
  // order, which is what makes labels_hash a chained fingerprint.
  const auto score = [&](std::size_t index, const data::Sample& sample,
                         core::SegmentationResult&& r) {
    util::expects(r.labels.width() == sample.mask.width() &&
                      r.labels.height() == sample.mask.height(),
                  "segmentation returned a label map of the wrong size");
    const auto matched =
        metrics::best_foreground_iou_any(r.labels, sample.mask);
    result.labels_hash =
        metrics::label_map_hash(r.labels, result.labels_hash);
    const double seconds = r.timings.total_seconds;
    if (options.path != EvalPath::kServer) {
      local_latency.record(seconds);
    }
    result.records.push_back(ImageRecord{
        .id = sample.id,
        .iou = matched.iou,
        .seconds = seconds,
        .instances = sample.instance_count,
        .label_hash = metrics::label_map_hash(r.labels),
        .ops = r.ops,
        .unique_points = r.unique_points,
        .iterations_run = r.iterations_run,
    });
    if (options.sink) {
      options.sink(index, sample, r);
    }
  };

  // Wave loop: at most `wave` samples (plus their results) are alive at
  // once, so thousand-image sweeps run in bounded memory on every path.
  const std::size_t wave =
      options.batch_size == 0 ? images : options.batch_size;
  for (std::size_t start = 0; start < images; start += wave) {
    const std::size_t end = std::min(images, start + wave);
    std::vector<data::Sample> samples;
    samples.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      samples.push_back(dataset.generate(i));
    }

    switch (options.path) {
      case EvalPath::kOneShot: {
        for (std::size_t i = 0; i < samples.size(); ++i) {
          score(start + i, samples[i], session.segment(samples[i].image));
        }
        break;
      }
      case EvalPath::kBatch: {
        std::vector<img::ImageU8> wave_images;
        wave_images.reserve(samples.size());
        for (const auto& sample : samples) {
          wave_images.push_back(sample.image);
        }
        auto results = session.segment_many(wave_images);
        for (std::size_t i = 0; i < samples.size(); ++i) {
          score(start + i, samples[i], std::move(results[i]));
        }
        break;
      }
      case EvalPath::kServer: {
        std::vector<std::future<core::SegmentationResult>> futures;
        futures.reserve(samples.size());
        for (const auto& sample : samples) {
          futures.push_back(server->submit(sample.image));
        }
        for (std::size_t i = 0; i < samples.size(); ++i) {
          score(start + i, samples[i], futures[i].get());
        }
        break;
      }
    }
  }

  if (options.path == EvalPath::kServer) {
    result.latency = server->stats().latency;
  } else {
    result.latency = local_latency.snapshot();
  }
  result.wall_seconds = wall.seconds();
  return result;
}

void write_suite_csv(const SuiteResult& result, const std::string& path) {
  util::CsvWriter csv(path,
                      {"dataset", "method", "image", "iou", "seconds",
                       "instances"});
  for (const auto& record : result.records) {
    csv.row({result.dataset, result.method, record.id,
             util::CsvWriter::field(record.iou),
             util::CsvWriter::field(record.seconds),
             std::to_string(record.instances)});
  }
  csv.row({result.dataset, result.method, "mean",
           util::CsvWriter::field(result.mean_iou()),
           util::CsvWriter::field(result.mean_seconds()), ""});
}

Method seghdc_method(const core::SegHdcConfig& config) {
  return [config](const data::Sample& sample) {
    const core::SegHdc seghdc(config);
    return seghdc.segment(sample.image).labels;
  };
}

Method kim_method(const baseline::KimConfig& config,
                  std::size_t train_downscale) {
  util::expects(train_downscale >= 1,
                "kim_method train_downscale must be >= 1");
  return [config, train_downscale](const data::Sample& sample) {
    img::ImageU8 train_image = sample.image;
    if (train_downscale > 1) {
      train_image = img::resize_bilinear(
          sample.image, sample.image.width() / train_downscale,
          sample.image.height() / train_downscale);
    }
    const baseline::KimSegmenter segmenter(config);
    auto labels = segmenter.segment(train_image).labels;
    if (train_downscale > 1) {
      labels = img::resize_nearest(labels, sample.image.width(),
                                   sample.image.height());
    }
    return labels;
  };
}

Method otsu_method(bool equalize_first) {
  return [equalize_first](const data::Sample& sample) {
    const baseline::OtsuSegmenter otsu(equalize_first);
    return otsu.segment(sample.image).labels;
  };
}

}  // namespace seghdc::eval
