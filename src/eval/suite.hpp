// Dataset-sweep evaluation: run any segmentation method over a
// generated suite, score every image against its ground truth with the
// optimal cluster->foreground matching, and aggregate — the measurement
// loop behind the paper's Table I, exposed as a public API so users can
// benchmark their own configurations (or their own methods) against
// SegHDC on the same footing.
#ifndef SEGHDC_EVAL_SUITE_HPP
#define SEGHDC_EVAL_SUITE_HPP

#include <functional>
#include <string>
#include <vector>

#include "src/baseline/kim_segmenter.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/dataset.hpp"

namespace seghdc::eval {

/// Outcome of one method on one image.
struct ImageRecord {
  std::string id;
  double iou = 0.0;
  double seconds = 0.0;
  std::size_t instances = 0;  ///< ground-truth instance count
};

/// Aggregate of a method over a suite.
struct SuiteResult {
  std::string dataset;
  std::string method;
  std::vector<ImageRecord> records;

  double mean_iou() const;
  double min_iou() const;
  double max_iou() const;
  /// Sample standard deviation of the per-image IoU (0 for < 2 images).
  double stddev_iou() const;
  double mean_seconds() const;
  double total_seconds() const;
};

/// A segmentation method under evaluation: sample in, label map out
/// (any number of labels; scoring handles the matching).
using Method = std::function<img::LabelMap(const data::Sample&)>;

/// Runs `method` over samples [0, images) of `dataset`, timing each
/// call and scoring with metrics::best_foreground_iou_any.
SuiteResult evaluate_suite(const data::DatasetGenerator& dataset,
                           std::size_t images,
                           const std::string& method_name,
                           const Method& method);

/// Writes one CSV row per image plus a trailing "mean" row.
void write_suite_csv(const SuiteResult& result, const std::string& path);

/// The library's own methods as evaluation functors.
Method seghdc_method(const core::SegHdcConfig& config);
/// `train_downscale` > 1 trains the CNN at reduced resolution and
/// upsamples the labels (DESIGN.md §4).
Method kim_method(const baseline::KimConfig& config,
                  std::size_t train_downscale = 1);
Method otsu_method(bool equalize_first = false);

}  // namespace seghdc::eval

#endif  // SEGHDC_EVAL_SUITE_HPP
