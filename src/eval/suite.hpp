// Dataset-sweep evaluation: run any segmentation method over a
// generated suite, score every image against its ground truth with the
// optimal cluster->foreground matching, and aggregate — the measurement
// loop behind the paper's Table I, exposed as a public API so users can
// benchmark their own configurations (or their own methods) against
// SegHDC on the same footing.
//
// For the library's own method there are three execution paths, all
// producing bit-identical labels (a tier-1 invariant):
//   - EvalPath::kOneShot — sequential SegHdcSession::segment, the
//     debugging shape;
//   - EvalPath::kBatch   — SegHdcSession::segment_many waves, the
//     offline-sweep shape;
//   - EvalPath::kServer  — serve::SegHdcServer::submit, the production
//     shape: reproducing the paper's accuracy tables IS a serving
//     workload, with queue admission, pipelined stages, and real
//     submit-to-done tail latencies in the report.
#ifndef SEGHDC_EVAL_SUITE_HPP
#define SEGHDC_EVAL_SUITE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/baseline/kim_segmenter.hpp"
#include "src/core/op_counts.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/dataset.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/server.hpp"

namespace seghdc::eval {

/// Outcome of one method on one image.
struct ImageRecord {
  std::string id;
  double iou = 0.0;
  double seconds = 0.0;        ///< pipeline time (timings.total_seconds)
  std::size_t instances = 0;   ///< ground-truth instance count
  /// FNV-1a fingerprint of the label map (0 for methods evaluated
  /// through the generic functor API, which does not expose labels).
  std::uint64_t label_hash = 0;
  /// Work actually performed (measured accounting: in pruned assignment
  /// mode these are the counted distances/prunes, never a blanket
  /// formula). Zero for generic-functor evaluation.
  core::OpCounts ops;
  std::size_t unique_points = 0;
  std::size_t iterations_run = 0;
};

/// Aggregate of a method over a suite.
struct SuiteResult {
  std::string dataset;
  std::string method;
  /// Execution-path name ("one_shot", "batch", "server", or
  /// "functor" for the generic evaluate_suite loop).
  std::string path = "functor";
  std::vector<ImageRecord> records;

  /// Chained label_map_hash over the per-image label maps in sample
  /// order, seeded with the FNV-1a offset basis — one fingerprint for
  /// the whole sweep, comparable across paths/pools/backends. 0 for
  /// generic-functor evaluation.
  std::uint64_t labels_hash = 0;
  /// Wall-clock of the whole sweep (includes sample generation and
  /// scoring, unlike the per-image pipeline seconds).
  double wall_seconds = 0.0;
  /// Latency distribution: submit-to-done percentiles from the server's
  /// metrics registry on the server path, per-image pipeline seconds on
  /// the other paths.
  obs::LatencyPercentiles latency;

  double mean_iou() const;
  double min_iou() const;
  double max_iou() const;
  /// Sample standard deviation of the per-image IoU (0 for < 2 images).
  double stddev_iou() const;
  double mean_seconds() const;
  double total_seconds() const;
  /// Sum of the per-image measured op counts.
  core::OpCounts total_ops() const;
};

/// A segmentation method under evaluation: sample in, label map out
/// (any number of labels; scoring handles the matching).
using Method = std::function<img::LabelMap(const data::Sample&)>;

/// Runs `method` over samples [0, images) of `dataset`, timing each
/// call and scoring with metrics::best_foreground_iou_any.
SuiteResult evaluate_suite(const data::DatasetGenerator& dataset,
                           std::size_t images,
                           const std::string& method_name,
                           const Method& method);

/// Which execution machinery carries the SegHDC sweep.
enum class EvalPath {
  kOneShot,  ///< sequential SegHdcSession::segment
  kBatch,    ///< SegHdcSession::segment_many waves
  kServer,   ///< serve::SegHdcServer::submit (the production path)
};

/// Parses "one_shot" / "batch" / "server"; anything else is a hard
/// std::invalid_argument naming the value (no silent fallback).
EvalPath parse_eval_path(const std::string& name);
const char* eval_path_name(EvalPath path);

/// Knobs for evaluate_seghdc. None of them change result content — the
/// per-image labels (and so iou/label hashes) are bit-identical across
/// every path/batch_size/pool/server combination; only throughput,
/// latency, and memory shape differ.
struct EvalOptions {
  EvalPath path = EvalPath::kOneShot;
  /// Images in flight per wave on the batch and server paths (bounds
  /// peak memory for thousand-image sweeps). 0 = the whole suite in one
  /// wave. Ignored on the one-shot path.
  std::size_t batch_size = 64;
  /// Pool for the session's data parallelism (and the locally built
  /// server's, unless server_options.pool is set). nullptr = the
  /// process-wide shared pool.
  util::ThreadPool* pool = nullptr;
  /// Server path only: evaluate through this existing server instead of
  /// building one (the fleet/shared-traffic shape; its config must match
  /// `config` — enforced with a hard error). The reported latency then
  /// covers every request in the server's window, not just this sweep's.
  serve::SegHdcServer* server = nullptr;
  /// Server path only, ignored when `server` is set: options for the
  /// locally built server (queue capacity, worker counts, ...). The
  /// SEGHDC_TEST_QUEUE_CAP harness override applies to it like to any
  /// other server.
  serve::ServerOptions server_options;
  /// Window for the non-server latency percentiles.
  std::size_t latency_window = 65536;
  /// Optional per-image tap, invoked in sample order after scoring —
  /// the hook the qualitative benches (Fig. 6/8 mask writers) use.
  /// Called on the evaluating thread; keep it short on serving paths.
  std::function<void(std::size_t index, const data::Sample& sample,
                     const core::SegmentationResult& result)>
      sink;
};

/// Runs SegHDC with `config` over samples [0, images) of `dataset`
/// through the selected execution path. Records carry measured op
/// counts and label hashes; SuiteResult.labels_hash pins the whole
/// sweep. See EvalOptions for the path-identity guarantee.
SuiteResult evaluate_seghdc(const data::DatasetGenerator& dataset,
                            std::size_t images,
                            const core::SegHdcConfig& config,
                            const EvalOptions& options = {});

/// Writes one CSV row per image plus a trailing "mean" row.
void write_suite_csv(const SuiteResult& result, const std::string& path);

/// The library's own methods as evaluation functors.
Method seghdc_method(const core::SegHdcConfig& config);
/// `train_downscale` > 1 trains the CNN at reduced resolution and
/// upsamples the labels (DESIGN.md §4).
Method kim_method(const baseline::KimConfig& config,
                  std::size_t train_downscale = 1);
Method otsu_method(bool equalize_first = false);

}  // namespace seghdc::eval

#endif  // SEGHDC_EVAL_SUITE_HPP
