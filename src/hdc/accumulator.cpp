#include "src/hdc/accumulator.hpp"

#include <cmath>

#include "src/hdc/kernels.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::hdc {

Accumulator::Accumulator(std::size_t dim) : counts_(dim, 0) {}

void Accumulator::clear() {
  counts_.assign(counts_.size(), 0);
  total_weight_ = 0;
  sum_squares_ = 0;
}

void Accumulator::add(const HyperVector& hv, std::uint32_t weight) {
  util::expects(hv.dim() == counts_.size(),
                "Accumulator::add dimension mismatch");
  add(hv.words(), weight);
}

void Accumulator::add(std::span<const std::uint64_t> packed_bits,
                      std::uint32_t weight) {
  util::expects(packed_bits.size() == kernels::words_for_dim(counts_.size()),
                "Accumulator::add packed word count mismatch");
  util::expects(kernels::padding_is_zero(packed_bits, counts_.size()),
                "Accumulator::add padding bits must be zero");
  const auto w = static_cast<std::int64_t>(weight);
  // The fused kernel returns the pre-add dot, so the incremental norm
  // stays a single pass over the counts: summing (x+w)^2 - x^2 =
  // 2xw + w^2 over the set bits is 2w * dot_old + w^2 * popcount — the
  // same integers the old per-bit walk produced. The popcount is a
  // second read of the packed words, but those are 1/8 the bytes of the
  // counts pass and cache-hot, so folding it into the kernel's return
  // isn't worth widening the vtable signature.
  const std::int64_t old_dot =
      kernels::accumulate_counts_words(counts_, packed_bits, w);
  const auto set_bits =
      static_cast<std::int64_t>(kernels::popcount_words(packed_bits));
  sum_squares_ += 2 * w * old_dot + w * w * set_bits;
  total_weight_ += weight;
}

void Accumulator::merge(const Accumulator& other) {
  util::expects(other.counts_.size() == counts_.size(),
                "Accumulator::merge dimension mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::int64_t b = other.counts_[i];
    if (b == 0) {
      continue;
    }
    // (x+b)^2 - x^2 = 2xb + b^2 keeps sum_squares_ exact under merging,
    // so norm() is independent of how adds were grouped into partials.
    sum_squares_ += 2 * counts_[i] * b + b * b;
    counts_[i] += b;
  }
  total_weight_ += other.total_weight_;
}

void Accumulator::snapshot_planes(kernels::CountPlanes& out) const {
  out.build(counts_);
}

std::int64_t Accumulator::at(std::size_t index) const {
  util::expects(index < counts_.size(),
                "Accumulator::at index within dimension");
  return counts_[index];
}

std::int64_t Accumulator::dot(const HyperVector& hv) const {
  util::expects(hv.dim() == counts_.size(),
                "Accumulator::dot dimension mismatch");
  return dot(hv.words());
}

std::int64_t Accumulator::dot(std::span<const std::uint64_t> packed_bits) const {
  util::expects(packed_bits.size() == kernels::words_for_dim(counts_.size()),
                "Accumulator::dot packed word count mismatch");
  util::expects(kernels::padding_is_zero(packed_bits, counts_.size()),
                "Accumulator::dot padding bits must be zero");
  return kernels::dot_counts_words(counts_, packed_bits);
}

double Accumulator::norm() const {
  return std::sqrt(static_cast<double>(sum_squares_));
}

double Accumulator::cosine_distance(const HyperVector& hv) const {
  util::expects(hv.dim() == counts_.size(),
                "Accumulator::cosine_distance dimension mismatch");
  return kernels::cosine_distance_words(
      counts_, norm(), hv.words(),
      std::sqrt(static_cast<double>(hv.popcount())));
}

HyperVector Accumulator::to_majority() const {
  HyperVector hv(counts_.size());
  const auto threshold = static_cast<std::int64_t>(total_weight_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] * 2 > threshold) {
      hv.set(i, true);
    }
  }
  return hv;
}

}  // namespace seghdc::hdc
