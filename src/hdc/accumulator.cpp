#include "src/hdc/accumulator.hpp"

#include <cmath>

#include "src/util/contracts.hpp"

namespace seghdc::hdc {

Accumulator::Accumulator(std::size_t dim) : counts_(dim, 0) {}

void Accumulator::clear() {
  counts_.assign(counts_.size(), 0);
  total_weight_ = 0;
  sum_squares_ = 0;
}

void Accumulator::add(const HyperVector& hv, std::uint32_t weight) {
  util::expects(hv.dim() == counts_.size(),
                "Accumulator::add dimension mismatch");
  const auto w = static_cast<std::int64_t>(weight);
  hv.for_each_set_bit([&](std::size_t i) {
    const std::int64_t before = counts_[i];
    counts_[i] = before + w;
    // Maintain sum of squares incrementally: (x+w)^2 - x^2 = 2xw + w^2.
    sum_squares_ += 2 * before * w + w * w;
  });
  total_weight_ += weight;
}

std::int64_t Accumulator::at(std::size_t index) const {
  util::expects(index < counts_.size(),
                "Accumulator::at index within dimension");
  return counts_[index];
}

std::int64_t Accumulator::dot(const HyperVector& hv) const {
  util::expects(hv.dim() == counts_.size(),
                "Accumulator::dot dimension mismatch");
  std::int64_t sum = 0;
  hv.for_each_set_bit([&](std::size_t i) { sum += counts_[i]; });
  return sum;
}

double Accumulator::norm() const {
  return std::sqrt(static_cast<double>(sum_squares_));
}

double Accumulator::cosine_distance(const HyperVector& hv) const {
  util::expects(hv.dim() == counts_.size(),
                "Accumulator::cosine_distance dimension mismatch");
  const double norm_z = norm();
  const double norm_y = std::sqrt(static_cast<double>(hv.popcount()));
  if (norm_z == 0.0 || norm_y == 0.0) {
    return 1.0;
  }
  const double cosine = static_cast<double>(dot(hv)) / (norm_y * norm_z);
  return 1.0 - cosine;
}

HyperVector Accumulator::to_majority() const {
  HyperVector hv(counts_.size());
  const auto threshold = static_cast<std::int64_t>(total_weight_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] * 2 > threshold) {
      hv.set(i, true);
    }
  }
  return hv;
}

}  // namespace seghdc::hdc
