// Integer accumulator over binary hypervectors — the "bundling" operation
// of HDC and the centroid representation of the paper's clusterer
// (Section III-④): "all HVs in the same class will be summed to produce
// the new centroid HV". Cosine distance is used against these integer
// centroids precisely because summation changes vector length but not
// direction (paper Eq. 7 and surrounding discussion).
#ifndef SEGHDC_HDC_ACCUMULATOR_HPP
#define SEGHDC_HDC_ACCUMULATOR_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"

namespace seghdc::hdc {

/// Element-wise integer sum of (weighted) binary hypervectors.
class Accumulator {
 public:
  Accumulator() = default;
  explicit Accumulator(std::size_t dim);

  std::size_t dim() const { return counts_.size(); }

  /// Resets all components to zero and the total weight to zero.
  void clear();

  /// Adds `hv` with multiplicity `weight` (component-wise: counts[i] +=
  /// weight for every set bit i). Weighted adds are what make the
  /// deduplicated K-Means exactly equivalent to the per-pixel version.
  /// Forwards through the packed-span overload below, so there is one
  /// implementation (and one op/kernel path) for both.
  void add(const HyperVector& hv, std::uint32_t weight = 1);

  /// Same, over pre-packed words (e.g. an `HvBlock` row): exactly
  /// ceil(dim/64) words, padding bits zero. Runs on the dispatched
  /// accumulate kernel (word-blocked masked adds on SIMD backends), not
  /// a bit-serial set-bit walk; every backend produces identical counts
  /// and norms.
  void add(std::span<const std::uint64_t> packed_bits,
           std::uint32_t weight = 1);

  /// Component-wise sum with another accumulator of the same dimension:
  /// counts, total weight, and the incremental norm all merge exactly.
  /// Integer sums are order-independent, which is what lets the K-Means
  /// update step accumulate into per-thread partials and reduce them in
  /// any grouping with bit-identical results.
  void merge(const Accumulator& other);

  /// Sum of the weights added since the last clear().
  std::uint64_t total_weight() const { return total_weight_; }

  /// Component value at `index`.
  std::int64_t at(std::size_t index) const;

  std::span<const std::int64_t> counts() const { return counts_; }

  /// Rebuilds `out` as the bit-plane snapshot of the current counts
  /// (kernels::CountPlanes), the layout the clusterer's word-blocked
  /// cosine assignment streams over. Counts are non-negative by
  /// construction, so the build never throws.
  void snapshot_planes(kernels::CountPlanes& out) const;

  /// Dot product with a binary HV: sum of counts at the HV's set bits.
  std::int64_t dot(const HyperVector& hv) const;

  /// Same, over pre-packed words with zero padding.
  std::int64_t dot(std::span<const std::uint64_t> packed_bits) const;

  /// Euclidean norm of the accumulator (sqrt of sum of squares).
  double norm() const;

  /// Cosine distance to a binary HV per paper Eq. 7:
  ///   1 - (y . z) / (|y| |z|).
  /// Returns 1.0 when either vector has zero norm (maximally distant by
  /// convention, so empty centroids never attract points).
  double cosine_distance(const HyperVector& hv) const;

  /// Majority-rule binarization: bit i set iff counts[i]*2 > total_weight.
  /// Ties (exactly half) resolve to 0. Classical HDC bundling output;
  /// used by the Hamming-distance clustering variant.
  HyperVector to_majority() const;

 private:
  std::vector<std::int64_t> counts_;
  std::uint64_t total_weight_ = 0;
  // Norm bookkeeping: kept incrementally so the clusterer's per-point
  // cosine distance never rescans the full accumulator.
  std::int64_t sum_squares_ = 0;
};

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_ACCUMULATOR_HPP
