// Shared packed-bit primitives: the word-count helper, the padding
// invariant predicate, and THE set-bit walk. This header exists so that
// HyperVector and the kernel layer (src/hdc/kernels.hpp) use one
// implementation of the countr_zero iteration — a future SIMD/blocked
// rewrite happens here once and every caller inherits it.
#ifndef SEGHDC_HDC_BITOPS_HPP
#define SEGHDC_HDC_BITOPS_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace seghdc::hdc::kernels {

/// Words needed to hold `dim` packed bits.
constexpr std::size_t words_for_dim(std::size_t dim) {
  return (dim + 63) / 64;
}

/// True when every bit above `dim` in the last word of `words` is zero —
/// the padding invariant all kernels rely on.
constexpr bool padding_is_zero(std::span<const std::uint64_t> words,
                               std::size_t dim) {
  const std::size_t tail = dim % 64;
  return tail == 0 || words.empty() || (words.back() >> tail) == 0;
}

/// Invokes `fn(index)` for every set bit of `words` in ascending order.
template <typename Fn>
void for_each_set_bit_words(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      fn(w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

}  // namespace seghdc::hdc::kernels

#endif  // SEGHDC_HDC_BITOPS_HPP
