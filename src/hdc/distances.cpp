#include "src/hdc/distances.hpp"

#include <cmath>
#include <cstdlib>

#include "src/hdc/kernels.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::hdc {

std::size_t hamming_distance(const HyperVector& a, const HyperVector& b) {
  util::expects(a.dim() == b.dim(),
                "hamming_distance requires equal dimensions");
  // Straight onto the dispatched word-span kernel (same integers on
  // every backend; HyperVector::hamming routes there too).
  return kernels::hamming_words(a.words(), b.words());
}

double normalized_hamming(const HyperVector& a, const HyperVector& b) {
  util::expects(a.dim() > 0, "normalized_hamming requires non-empty HVs");
  return static_cast<double>(HyperVector::hamming(a, b)) /
         static_cast<double>(a.dim());
}

double cosine_distance(const HyperVector& a, const HyperVector& b) {
  util::expects(a.dim() == b.dim(),
                "cosine_distance requires equal dimensions");
  const auto pop_a = a.popcount();
  const auto pop_b = b.popcount();
  if (pop_a == 0 || pop_b == 0) {
    return 1.0;
  }
  // dot(a, b) for binary vectors = popcount(a AND b)
  //          = (pop_a + pop_b - hamming(a, b)) / 2.
  const auto ham = HyperVector::hamming(a, b);
  const double dot = static_cast<double>(pop_a + pop_b - ham) / 2.0;
  return 1.0 - dot / (std::sqrt(static_cast<double>(pop_a)) *
                      std::sqrt(static_cast<double>(pop_b)));
}

double cosine_distance(const Accumulator& centroid, const HyperVector& hv) {
  return centroid.cosine_distance(hv);
}

std::uint64_t manhattan_distance(std::span<const std::int64_t> p,
                                 std::span<const std::int64_t> q) {
  util::expects(p.size() == q.size(),
                "manhattan_distance requires equal lengths");
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += static_cast<std::uint64_t>(std::llabs(p[i] - q[i]));
  }
  return sum;
}

std::uint64_t manhattan_distance_2d(std::int64_t x1, std::int64_t y1,
                                    std::int64_t x2, std::int64_t y2) {
  return static_cast<std::uint64_t>(std::llabs(x1 - x2)) +
         static_cast<std::uint64_t>(std::llabs(y1 - y2));
}

}  // namespace seghdc::hdc
