// Distance functions used throughout SegHDC: Hamming (binary HVs),
// cosine (HV vs. integer centroid, paper Eq. 7), and the Manhattan / L1
// distance (paper Eq. 1) that the position and color encoders are designed
// to realise in Hamming space.
#ifndef SEGHDC_HDC_DISTANCES_HPP
#define SEGHDC_HDC_DISTANCES_HPP

#include <cstdint>
#include <span>

#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"

namespace seghdc::hdc {

/// Hamming distance between two equal-dimension binary HVs.
std::size_t hamming_distance(const HyperVector& a, const HyperVector& b);

/// Hamming distance divided by the dimension, in [0, 1]. Two random HVs
/// concentrate tightly around 0.5 ("pseudo-orthogonal", paper Lemma 1).
double normalized_hamming(const HyperVector& a, const HyperVector& b);

/// Cosine distance 1 - cos(a, b) between two binary HVs (treating bits as
/// 0/1 components). Returns 1 when either is all-zero.
double cosine_distance(const HyperVector& a, const HyperVector& b);

/// Cosine distance between a binary HV and an integer accumulator
/// centroid (paper Eq. 7). Forwards to Accumulator::cosine_distance.
double cosine_distance(const Accumulator& centroid, const HyperVector& hv);

/// Manhattan (L1) distance between two integer coordinate vectors
/// (paper Eq. 1). Requires equal lengths.
std::uint64_t manhattan_distance(std::span<const std::int64_t> p,
                                 std::span<const std::int64_t> q);

/// Manhattan distance between two 2-D points — the form used by the
/// position encoder (paper Eq. 2).
std::uint64_t manhattan_distance_2d(std::int64_t x1, std::int64_t y1,
                                    std::int64_t x2, std::int64_t y2);

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_DISTANCES_HPP
