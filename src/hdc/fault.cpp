#include "src/hdc/fault.hpp"

#include <cmath>

#include "src/hdc/kernels.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::hdc {

namespace {

/// Core sampler: invokes `flip(i)` for each bit the error model flips.
/// Dense regime tests every bit; sparse regime draws geometric gaps
/// between flips (inverse-CDF sampling), O(expected flips).
template <typename FlipFn>
std::size_t sample_flips(std::size_t dim, double rate, util::Rng& rng,
                         FlipFn&& flip) {
  util::expects(rate >= 0.0 && rate <= 1.0,
                "inject_bit_flips rate must be in [0, 1]");
  if (rate == 0.0 || dim == 0) {
    return 0;
  }
  std::size_t flipped = 0;
  if (rate >= 0.5) {
    for (std::size_t i = 0; i < dim; ++i) {
      if (rng.next_double() < rate) {
        flip(i);
        ++flipped;
      }
    }
    return flipped;
  }
  const double log_keep = std::log1p(-rate);
  double position = 0.0;
  for (;;) {
    const double u = rng.next_double();
    // Gap to the next flipped bit.
    position += std::floor(std::log1p(-u) / log_keep) + 1.0;
    if (position > static_cast<double>(dim)) {
      return flipped;
    }
    flip(static_cast<std::size_t>(position) - 1);
    ++flipped;
  }
}

}  // namespace

std::size_t inject_bit_flips(HyperVector& hv, double rate,
                             util::Rng& rng) {
  return sample_flips(hv.dim(), rate, rng,
                      [&](std::size_t i) { hv.flip(i); });
}

std::size_t inject_bit_flips(std::span<std::uint64_t> packed_bits,
                             std::size_t dim, double rate, util::Rng& rng) {
  util::expects(packed_bits.size() == kernels::words_for_dim(dim),
                "inject_bit_flips packed word count must match dim");
  return sample_flips(dim, rate, rng, [&](std::size_t i) {
    packed_bits[i / 64] ^= std::uint64_t{1} << (i % 64);
  });
}

}  // namespace seghdc::hdc
