#include "src/hdc/fault.hpp"

#include <cmath>

#include "src/util/contracts.hpp"

namespace seghdc::hdc {

std::size_t inject_bit_flips(HyperVector& hv, double rate,
                             util::Rng& rng) {
  util::expects(rate >= 0.0 && rate <= 1.0,
                "inject_bit_flips rate must be in [0, 1]");
  if (rate == 0.0 || hv.dim() == 0) {
    return 0;
  }
  std::size_t flipped = 0;
  if (rate >= 0.5) {
    // Dense regime: test every bit directly.
    for (std::size_t i = 0; i < hv.dim(); ++i) {
      if (rng.next_double() < rate) {
        hv.flip(i);
        ++flipped;
      }
    }
    return flipped;
  }
  // Sparse regime: geometric skips between flips (inverse-CDF sampling
  // of the gap distribution), O(expected flips).
  const double log_keep = std::log1p(-rate);
  double position = 0.0;
  for (;;) {
    const double u = rng.next_double();
    // Gap to the next flipped bit.
    position += std::floor(std::log1p(-u) / log_keep) + 1.0;
    if (position > static_cast<double>(hv.dim())) {
      return flipped;
    }
    hv.flip(static_cast<std::size_t>(position) - 1);
    ++flipped;
  }
}

}  // namespace seghdc::hdc
