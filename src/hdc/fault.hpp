// Fault injection for binary hypervectors.
//
// A core selling point of HDC (paper Section I, citing its refs [18]
// and [22]) is robustness: the information in a hypervector is spread
// holographically across all d dimensions, so random bit errors — from
// low-voltage SRAM, approximate memories, or radiation — degrade
// similarity gracefully instead of catastrophically. This module
// provides the error model used by the robustness bench and the
// failure-injection tests: independent per-bit flips at a given rate.
#ifndef SEGHDC_HDC_FAULT_HPP
#define SEGHDC_HDC_FAULT_HPP

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/hdc/hypervector.hpp"
#include "src/util/rng.hpp"

namespace seghdc::hdc {

/// Flips each bit of `hv` independently with probability `rate`
/// (in [0, 1]). Returns the number of bits actually flipped.
/// Sparse rates (< 0.5) sample geometric gaps between flips
/// (inverse-CDF), costing O(flips) RNG draws; dense rates fall back to
/// one Bernoulli draw per bit, O(d).
std::size_t inject_bit_flips(HyperVector& hv, double rate, util::Rng& rng);

/// Same error model over `dim` packed bits (e.g. an `HvBlock` row);
/// consumes the identical RNG stream, so the two overloads produce
/// bit-identical corruption for the same input.
std::size_t inject_bit_flips(std::span<std::uint64_t> packed_bits,
                             std::size_t dim, double rate, util::Rng& rng);

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_FAULT_HPP
