#include "src/hdc/hypervector.hpp"

#include "src/hdc/kernels.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::hdc {

HyperVector::HyperVector(std::size_t dim)
    : dim_(dim), words_(words_for(dim), 0) {}

HyperVector HyperVector::random(std::size_t dim, util::Rng& rng) {
  HyperVector hv(dim);
  for (auto& word : hv.words_) {
    word = rng();
  }
  hv.clear_padding();
  return hv;
}

HyperVector HyperVector::from_words(std::size_t dim,
                                    std::span<const std::uint64_t> words) {
  util::expects(words.size() == words_for(dim),
                "HyperVector::from_words word count must match dim");
  HyperVector hv(dim);
  for (std::size_t w = 0; w < words.size(); ++w) {
    hv.words_[w] = words[w];
  }
  hv.clear_padding();
  return hv;
}

void HyperVector::clear_padding() {
  const std::size_t tail = dim_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

bool HyperVector::get(std::size_t index) const {
  util::expects(index < dim_, "HyperVector::get index within dimension");
  return ((words_[index / 64] >> (index % 64)) & 1) != 0;
}

void HyperVector::set(std::size_t index, bool value) {
  util::expects(index < dim_, "HyperVector::set index within dimension");
  const std::uint64_t mask = std::uint64_t{1} << (index % 64);
  if (value) {
    words_[index / 64] |= mask;
  } else {
    words_[index / 64] &= ~mask;
  }
}

void HyperVector::flip(std::size_t index) {
  util::expects(index < dim_, "HyperVector::flip index within dimension");
  words_[index / 64] ^= std::uint64_t{1} << (index % 64);
}

void HyperVector::flip_range(std::size_t begin, std::size_t end) {
  util::expects(begin <= end && end <= dim_,
                "HyperVector::flip_range requires begin <= end <= dim");
  if (begin == end) {
    return;
  }
  const std::size_t first_word = begin / 64;
  const std::size_t last_word = (end - 1) / 64;
  if (first_word == last_word) {
    // Mask covering bits [begin%64, end%64) of a single word.
    const std::size_t len = end - begin;
    const std::uint64_t ones =
        len == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1);
    words_[first_word] ^= ones << (begin % 64);
    return;
  }
  words_[first_word] ^= ~std::uint64_t{0} << (begin % 64);
  for (std::size_t w = first_word + 1; w < last_word; ++w) {
    words_[w] = ~words_[w];
  }
  const std::size_t tail = end % 64;
  const std::uint64_t tail_mask =
      tail == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << tail) - 1);
  words_[last_word] ^= tail_mask;
  clear_padding();
}

std::size_t HyperVector::popcount() const {
  // Through the dispatched kernel layer, so standalone HVs inherit the
  // same SIMD backends as HvBlock rows.
  return kernels::popcount_words(words_);
}

HyperVector HyperVector::operator^(const HyperVector& other) const {
  HyperVector result = *this;
  result ^= other;
  return result;
}

HyperVector& HyperVector::operator^=(const HyperVector& other) {
  util::expects(dim_ == other.dim_,
                "HyperVector XOR requires equal dimensions");
  kernels::xor_words(words_, words_, other.words_);
  return *this;
}

std::size_t HyperVector::hamming(const HyperVector& a, const HyperVector& b) {
  util::expects(a.dim_ == b.dim_,
                "Hamming distance requires equal dimensions");
  return kernels::hamming_words(a.words_, b.words_);
}

HyperVector HyperVector::concat(std::span<const HyperVector> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) {
    total += part.dim();
  }
  HyperVector result(total);
  // Word-level splice: each part is OR-ed in at its bit offset with two
  // shifted writes per word. Parts' padding bits are zero by invariant,
  // so the OR never leaks stray bits.
  std::size_t offset = 0;
  for (const auto& part : parts) {
    if (part.dim() == 0) {
      continue;
    }
    const auto words = part.words();
    const std::size_t word_offset = offset / 64;
    const std::size_t shift = offset % 64;
    if (shift == 0) {
      for (std::size_t w = 0; w < words.size(); ++w) {
        result.words_[word_offset + w] |= words[w];
      }
    } else {
      for (std::size_t w = 0; w < words.size(); ++w) {
        result.words_[word_offset + w] |= words[w] << shift;
        const std::uint64_t high = words[w] >> (64 - shift);
        if (high != 0) {
          result.words_[word_offset + w + 1] |= high;
        }
      }
    }
    offset += part.dim();
  }
  result.clear_padding();
  return result;
}

HyperVector HyperVector::slice(std::size_t begin, std::size_t end) const {
  util::expects(begin <= end && end <= dim_,
                "HyperVector::slice requires begin <= end <= dim");
  HyperVector result(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    if (get(i)) {
      result.set(i - begin, true);
    }
  }
  return result;
}

}  // namespace seghdc::hdc
