// Binary hypervector: the fundamental data type of hyperdimensional
// computing (paper Section II). A hypervector (HV) is a d-dimensional
// vector of bits, with d typically in the hundreds to tens of thousands.
//
// Representation: bit-packed into 64-bit words so that the two operations
// SegHDC leans on — XOR binding and Hamming distance — run word-parallel
// (one XOR / one popcount per 64 dimensions). The unused padding bits of
// the last word are kept at zero as a class invariant; every mutator
// preserves it and popcount()/hamming() rely on it.
#ifndef SEGHDC_HDC_HYPERVECTOR_HPP
#define SEGHDC_HDC_HYPERVECTOR_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/hdc/bitops.hpp"
#include "src/util/rng.hpp"

namespace seghdc::hdc {

/// Bit-packed binary hypervector of fixed dimensionality.
class HyperVector {
 public:
  /// An empty (dimension-0) HV; useful as a placeholder before assignment.
  HyperVector() = default;

  /// All-zero HV of dimension `dim`.
  explicit HyperVector(std::size_t dim);

  /// HV with each bit drawn i.i.d. uniform from {0, 1}. This is the
  /// classical HDC "random seed HV": two such vectors are
  /// pseudo-orthogonal (normalized Hamming distance ~ 0.5) with
  /// overwhelming probability at high dimension.
  static HyperVector random(std::size_t dim, util::Rng& rng);

  /// HV built from pre-packed words (e.g. an HvBlock row). `words` must
  /// hold exactly ceil(dim/64) entries; padding bits are cleared.
  static HyperVector from_words(std::size_t dim,
                                std::span<const std::uint64_t> words);

  std::size_t dim() const { return dim_; }
  bool empty() const { return dim_ == 0; }

  /// Value of bit `index`. Requires index < dim().
  bool get(std::size_t index) const;

  /// Sets bit `index` to `value`. Requires index < dim().
  void set(std::size_t index, bool value);

  /// Inverts bit `index`. Requires index < dim().
  void flip(std::size_t index);

  /// Inverts all bits in [begin, end). Requires begin <= end <= dim().
  /// This is the primitive behind the paper's Manhattan-distance
  /// encodings: flipping a run of `x` bits moves the HV exactly Hamming
  /// distance `x` away from its previous value.
  void flip_range(std::size_t begin, std::size_t end);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Element-wise XOR (the HDC binding operator). Requires equal dims.
  HyperVector operator^(const HyperVector& other) const;
  HyperVector& operator^=(const HyperVector& other);

  bool operator==(const HyperVector& other) const = default;

  /// Hamming distance: number of differing bits. Requires equal dims.
  static std::size_t hamming(const HyperVector& a, const HyperVector& b);

  /// Concatenates `parts` into one HV whose dimension is the sum of the
  /// parts' dimensions (paper Fig. 4: the 3-channel color HV is the
  /// concatenation of three d/3-dimensional channel HVs).
  static HyperVector concat(std::span<const HyperVector> parts);

  /// Copy of bits [begin, end) as a new (end-begin)-dimensional HV.
  HyperVector slice(std::size_t begin, std::size_t end) const;

  /// Invokes `fn(index)` for every set bit in ascending order, via the
  /// shared word walk in src/hdc/bitops.hpp.
  template <typename Fn>
  void for_each_set_bit(Fn&& fn) const {
    kernels::for_each_set_bit_words(words_, std::forward<Fn>(fn));
  }

  /// Raw word storage (little-endian bit order within each word). The
  /// last word's padding bits are guaranteed zero.
  std::span<const std::uint64_t> words() const { return words_; }

 private:
  static std::size_t words_for(std::size_t dim) { return (dim + 63) / 64; }
  void clear_padding();

  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_HYPERVECTOR_HPP
