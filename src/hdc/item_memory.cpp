#include "src/hdc/item_memory.hpp"

#include <utility>

#include "src/util/contracts.hpp"

namespace seghdc::hdc {

RandomItemMemory::RandomItemMemory(std::size_t dim, std::size_t symbols,
                                   util::Rng& rng)
    : dim_(dim) {
  util::expects(dim > 0, "RandomItemMemory dimension must be positive");
  util::expects(symbols > 0, "RandomItemMemory needs at least one symbol");
  items_.reserve(symbols);
  for (std::size_t s = 0; s < symbols; ++s) {
    items_.push_back(HyperVector::random(dim, rng));
  }
}

const HyperVector& RandomItemMemory::at(std::size_t symbol) const {
  util::expects(symbol < items_.size(),
                "RandomItemMemory::at symbol out of range");
  return items_[symbol];
}

namespace {

std::vector<std::size_t> linear_offsets(std::size_t levels,
                                        std::size_t span) {
  util::expects(levels >= 2, "LevelItemMemory needs at least two levels");
  std::vector<std::size_t> offsets(levels);
  for (std::size_t k = 0; k < levels; ++k) {
    // offset(k) = floor(k * span / (levels-1)): exact multiples when span
    // is a multiple of levels-1 (the paper's uc ladder), evenly spread
    // fractional steps otherwise.
    offsets[k] = k * span / (levels - 1);
  }
  return offsets;
}

}  // namespace

LevelItemMemory::LevelItemMemory(std::size_t dim, std::size_t levels,
                                 std::size_t span, util::Rng& rng,
                                 std::size_t region_begin)
    : LevelItemMemory(dim, linear_offsets(levels, span), rng,
                      region_begin) {}

LevelItemMemory::LevelItemMemory(std::size_t dim,
                                 std::vector<std::size_t> offsets,
                                 util::Rng& rng, std::size_t region_begin)
    : dim_(dim), offsets_(std::move(offsets)) {
  util::expects(dim > 0, "LevelItemMemory dimension must be positive");
  util::expects(offsets_.size() >= 2,
                "LevelItemMemory needs at least two levels");
  util::expects(offsets_.front() == 0,
                "LevelItemMemory offsets must start at 0");
  for (std::size_t k = 1; k < offsets_.size(); ++k) {
    util::expects(offsets_[k] >= offsets_[k - 1],
                  "LevelItemMemory offsets must be non-decreasing");
  }
  util::expects(region_begin + offsets_.back() <= dim,
                "LevelItemMemory flip region must fit in the dimension");
  span_ = offsets_.back();

  items_.reserve(offsets_.size());
  HyperVector current = HyperVector::random(dim, rng);
  items_.push_back(current);
  for (std::size_t k = 1; k < offsets_.size(); ++k) {
    // Flip the incremental range [offset(k-1), offset(k)) so that level k
    // differs from level 0 in exactly offset(k) leading region bits.
    current.flip_range(region_begin + offsets_[k - 1],
                       region_begin + offsets_[k]);
    items_.push_back(current);
  }
}

const HyperVector& LevelItemMemory::at(std::size_t level) const {
  util::expects(level < items_.size(),
                "LevelItemMemory::at level out of range");
  return items_[level];
}

std::size_t LevelItemMemory::offset(std::size_t level) const {
  util::expects(level < offsets_.size(),
                "LevelItemMemory::offset level out of range");
  return offsets_[level];
}

}  // namespace seghdc::hdc
