// Item memories: fixed codebooks mapping discrete symbols to hypervectors.
//
// * RandomItemMemory — the classical HDC codebook ([17] in the paper):
//   every symbol gets an i.i.d. random HV, so all pairs are
//   pseudo-orthogonal and NO similarity structure survives encoding.
//   SegHDC's RPos / RColor ablation columns in Table I are exactly this
//   codebook substituted for the structured position / color encoders.
//
// * LevelItemMemory — a linear "level ladder": level k is the base HV with
//   the first offset(k) bits flipped, offset(k) = floor(k * span / (L-1)).
//   Hamming(level_a, level_b) = |offset(a) - offset(b)|, i.e. Hamming
//   distance realises the Manhattan distance between level indices
//   (paper Section III-②). With span = (L-1) * unit this reproduces the
//   paper's fixed flip unit `uc = floor(d/256)` exactly; with other spans
//   it degrades gracefully when the dimension is too small for a whole
//   unit per level (e.g. d=800 split across 3 color channels).
#ifndef SEGHDC_HDC_ITEM_MEMORY_HPP
#define SEGHDC_HDC_ITEM_MEMORY_HPP

#include <cstddef>
#include <vector>

#include "src/hdc/hypervector.hpp"
#include "src/util/rng.hpp"

namespace seghdc::hdc {

/// Codebook of i.i.d. random hypervectors, one per symbol.
class RandomItemMemory {
 public:
  /// Generates `symbols` random HVs of dimension `dim`.
  RandomItemMemory(std::size_t dim, std::size_t symbols, util::Rng& rng);

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return items_.size(); }

  /// HV for `symbol`. Requires symbol < size().
  const HyperVector& at(std::size_t symbol) const;

 private:
  std::size_t dim_;
  std::vector<HyperVector> items_;
};

/// Linear level ladder over [0, levels) with Manhattan-distance structure.
class LevelItemMemory {
 public:
  /// `span` is the total number of bit positions the ladder sweeps from
  /// level 0 to level levels-1; it must satisfy span <= dim. The flipped
  /// region is [region_begin, region_begin + span).
  LevelItemMemory(std::size_t dim, std::size_t levels, std::size_t span,
                  util::Rng& rng, std::size_t region_begin = 0);

  /// General ladder with caller-provided cumulative flip offsets, one
  /// per level (monotone non-decreasing, offsets.front() == 0,
  /// offsets.back() + region_begin <= dim). Level k differs from level 0
  /// in exactly offsets[k] region bits; used by the color encoder's
  /// gamma widening, where offsets grow gamma-fold and clip at the
  /// channel capacity.
  LevelItemMemory(std::size_t dim, std::vector<std::size_t> offsets,
                  util::Rng& rng, std::size_t region_begin = 0);

  std::size_t dim() const { return dim_; }
  std::size_t levels() const { return offsets_.size(); }
  std::size_t span() const { return span_; }

  /// HV for `level`. Requires level < levels().
  const HyperVector& at(std::size_t level) const;

  /// Number of bits flipped (relative to level 0) at `level`; the Hamming
  /// distance between levels a and b is |offset(a) - offset(b)|.
  std::size_t offset(std::size_t level) const;

 private:
  std::size_t dim_;
  std::size_t span_;
  std::vector<std::size_t> offsets_;
  std::vector<HyperVector> items_;
};

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_ITEM_MEMORY_HPP
