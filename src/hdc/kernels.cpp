#include "src/hdc/kernels.hpp"

#include <bit>

#include "src/util/contracts.hpp"

namespace seghdc::hdc {

namespace kernels {

std::size_t popcount_words(std::span<const std::uint64_t> words) {
  std::size_t count = 0;
  for (const auto word : words) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

std::size_t hamming_words(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b) {
  util::expects(a.size() == b.size(),
                "hamming_words requires equal word counts");
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

void xor_words(std::span<std::uint64_t> dst,
               std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> b) {
  util::expects(dst.size() == a.size() && a.size() == b.size(),
                "xor_words requires equal word counts");
  for (std::size_t w = 0; w < dst.size(); ++w) {
    dst[w] = a[w] ^ b[w];
  }
}

std::int64_t dot_counts_words(std::span<const std::int64_t> counts,
                              std::span<const std::uint64_t> words) {
  std::int64_t sum = 0;
  for_each_set_bit_words(words, [&](std::size_t i) { sum += counts[i]; });
  return sum;
}

double cosine_distance_words(std::span<const std::int64_t> counts,
                             double centroid_norm,
                             std::span<const std::uint64_t> words,
                             double point_norm) {
  if (centroid_norm == 0.0 || point_norm == 0.0) {
    return 1.0;
  }
  const auto dot = static_cast<double>(dot_counts_words(counts, words));
  return 1.0 - dot / (point_norm * centroid_norm);
}

}  // namespace kernels

HvBlock::HvBlock(std::size_t dim, std::size_t count)
    : dim_(dim),
      words_per_hv_(kernels::words_for_dim(dim)),
      count_(count),
      storage_(words_per_hv_ * count, 0) {}

HvBlock HvBlock::from_hvs(std::span<const HyperVector> hvs) {
  if (hvs.empty()) {
    return HvBlock{};
  }
  HvBlock block(hvs[0].dim(), hvs.size());
  for (std::size_t i = 0; i < hvs.size(); ++i) {
    util::expects(hvs[i].dim() == block.dim_,
                  "HvBlock::from_hvs requires uniform dimensions");
    const auto src = hvs[i].words();
    const auto dst = block.row(i);
    for (std::size_t w = 0; w < src.size(); ++w) {
      dst[w] = src[w];
    }
  }
  return block;
}

std::span<std::uint64_t> HvBlock::row(std::size_t i) {
  util::expects(i < count_, "HvBlock::row index within block");
  return std::span<std::uint64_t>(storage_.data() + i * words_per_hv_,
                                  words_per_hv_);
}

std::span<const std::uint64_t> HvBlock::row(std::size_t i) const {
  util::expects(i < count_, "HvBlock::row index within block");
  return std::span<const std::uint64_t>(storage_.data() + i * words_per_hv_,
                                        words_per_hv_);
}

HyperVector HvBlock::to_hypervector(std::size_t i) const {
  return HyperVector::from_words(dim_, row(i));
}

std::size_t HvBlock::popcount(std::size_t i) const {
  return kernels::popcount_words(row(i));
}

}  // namespace seghdc::hdc
