#include "src/hdc/kernels.hpp"

#include <bit>

#include "src/hdc/simd/backend.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::hdc {

// The free kernels validate shapes once and forward to the
// runtime-dispatched backend (src/hdc/simd/): call sites are oblivious
// to which ISA implementation runs underneath, and every backend
// returns the same integers.

namespace kernels {

std::size_t popcount_words(std::span<const std::uint64_t> words) {
  return simd::active_backend().popcount(words);
}

std::size_t hamming_words(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b) {
  util::expects(a.size() == b.size(),
                "hamming_words requires equal word counts");
  return simd::active_backend().hamming(a, b);
}

simd::BoundedScan hamming_words_bounded(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> b,
                                        std::size_t bound,
                                        const simd::KernelBackend& backend) {
  util::expects(a.size() == b.size(),
                "hamming_words_bounded requires equal word counts");
  return backend.hamming_bounded(a, b, bound);
}

simd::BoundedScan hamming_words_bounded(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> b,
                                        std::size_t bound) {
  return hamming_words_bounded(a, b, bound, simd::active_backend());
}

void xor_words(std::span<std::uint64_t> dst,
               std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> b) {
  util::expects(dst.size() == a.size() && a.size() == b.size(),
                "xor_words requires equal word counts");
  simd::active_backend().xor_bind(dst, a, b);
}

std::int64_t dot_counts_words(std::span<const std::int64_t> counts,
                              std::span<const std::uint64_t> words) {
  return simd::active_backend().dot_counts(counts, words);
}

std::int64_t accumulate_counts_words(std::span<std::int64_t> counts,
                                     std::span<const std::uint64_t> words,
                                     std::int64_t weight) {
  return simd::active_backend().accumulate_words(counts, words, weight);
}

double cosine_distance_words(std::span<const std::int64_t> counts,
                             double centroid_norm,
                             std::span<const std::uint64_t> words,
                             double point_norm) {
  if (centroid_norm == 0.0 || point_norm == 0.0) {
    return 1.0;
  }
  return cosine_distance_from_dot(dot_counts_words(counts, words),
                                  centroid_norm, point_norm);
}

void CountPlanes::build(std::span<const std::int64_t> counts) {
  dim_ = counts.size();
  words_per_plane_ = words_for_dim(dim_);
  // OR of all counts: its bit width is exactly the number of planes
  // needed, and a set sign bit flags any negative input in one test.
  std::int64_t envelope = 0;
  for (const auto count : counts) {
    envelope |= count;
  }
  util::expects(envelope >= 0,
                "CountPlanes::build requires non-negative counts");
  planes_ = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(envelope)));
  storage_.assign(planes_ * words_per_plane_, 0);
  simd::active_backend().build_planes(counts, storage_, words_per_plane_);
}

std::span<const std::uint64_t> CountPlanes::plane(std::size_t b) const {
  util::expects(b < planes_, "CountPlanes::plane index within plane count");
  return std::span<const std::uint64_t>(
      storage_.data() + b * words_per_plane_, words_per_plane_);
}

std::int64_t dot_planes(const CountPlanes& planes,
                        std::span<const std::uint64_t> words,
                        const simd::KernelBackend& backend) {
  util::expects(words.size() == planes.words_per_plane(),
                "dot_planes word count must match the planes");
  std::int64_t sum = 0;
  for (std::size_t b = 0; b < planes.plane_count(); ++b) {
    sum += static_cast<std::int64_t>(backend.and_popcount(planes.plane(b),
                                                          words))
           << b;
  }
  return sum;
}

std::int64_t dot_planes(const CountPlanes& planes,
                        std::span<const std::uint64_t> words) {
  return dot_planes(planes, words, simd::active_backend());
}

double cosine_distance_planes(const CountPlanes& planes,
                              double centroid_norm,
                              std::span<const std::uint64_t> words,
                              double point_norm) {
  if (centroid_norm == 0.0 || point_norm == 0.0) {
    return 1.0;
  }
  return cosine_distance_from_dot(dot_planes(planes, words), centroid_norm,
                                  point_norm);
}

BoundedDot dot_planes_bounded(const CountPlanes& planes,
                              std::span<const std::uint64_t> words,
                              std::size_t point_popcount,
                              std::int64_t max_useful_dot,
                              const simd::KernelBackend& backend) {
  util::expects(words.size() == planes.words_per_plane(),
                "dot_planes_bounded word count must match the planes");
  const auto pop = static_cast<std::int64_t>(point_popcount);
  std::int64_t dot = 0;
  std::size_t words_scanned = 0;
  // Most-significant plane first, so the large contributions settle
  // early and the remaining-planes bound tightens fastest. int64
  // addition is exact and commutative, so the summation order cannot
  // change the integer relative to dot_planes' ascending walk.
  for (std::size_t b = planes.plane_count(); b-- > 0;) {
    // Everything below plane b contributes at most (2^b - 1) * pop
    // (each lower plane's AND-popcount is at most pop). The shift-width
    // guard keeps the bound arithmetic far from int64 overflow for any
    // representable counts; planes that high simply scan uncapped.
    std::int64_t cap = -1;
    if (max_useful_dot >= 0 && b < 40) {
      const std::int64_t rest = ((std::int64_t{1} << b) - 1) * pop;
      const std::int64_t headroom = max_useful_dot - dot - rest;
      if (headroom >= 0) {
        cap = headroom >> b;
      }
    }
    const auto plane = planes.plane(b);
    if (cap >= 0) {
      const simd::BoundedScan scan = backend.and_popcount_capped(
          plane, words, static_cast<std::size_t>(cap));
      words_scanned += scan.words_scanned;
      if (scan.value <= static_cast<std::size_t>(cap)) {
        // Plane b contributes at most cap * 2^b (one-sided contract),
        // so the full dot is <= dot + cap * 2^b + rest
        // <= max_useful_dot: abandon the remaining planes.
        return BoundedDot{dot, words_scanned, true};
      }
      dot += static_cast<std::int64_t>(scan.value) << b;
    } else {
      const std::size_t pc = backend.and_popcount(plane, words);
      words_scanned += words.size();
      dot += static_cast<std::int64_t>(pc) << b;
    }
  }
  return BoundedDot{dot, words_scanned, false};
}

}  // namespace kernels

HvBlock::HvBlock(std::size_t dim, std::size_t count)
    : dim_(dim),
      words_per_hv_(kernels::words_for_dim(dim)),
      count_(count),
      storage_(words_per_hv_ * count, 0) {}

HvBlock HvBlock::from_hvs(std::span<const HyperVector> hvs) {
  if (hvs.empty()) {
    return HvBlock{};
  }
  HvBlock block(hvs[0].dim(), hvs.size());
  for (std::size_t i = 0; i < hvs.size(); ++i) {
    util::expects(hvs[i].dim() == block.dim_,
                  "HvBlock::from_hvs requires uniform dimensions");
    const auto src = hvs[i].words();
    const auto dst = block.row(i);
    for (std::size_t w = 0; w < src.size(); ++w) {
      dst[w] = src[w];
    }
  }
  return block;
}

std::span<std::uint64_t> HvBlock::row(std::size_t i) {
  util::expects(i < count_, "HvBlock::row index within block");
  return std::span<std::uint64_t>(storage_.data() + i * words_per_hv_,
                                  words_per_hv_);
}

std::span<const std::uint64_t> HvBlock::row(std::size_t i) const {
  util::expects(i < count_, "HvBlock::row index within block");
  return std::span<const std::uint64_t>(storage_.data() + i * words_per_hv_,
                                        words_per_hv_);
}

HyperVector HvBlock::to_hypervector(std::size_t i) const {
  return HyperVector::from_words(dim_, row(i));
}

std::size_t HvBlock::popcount(std::size_t i) const {
  return kernels::popcount_words(row(i));
}

}  // namespace seghdc::hdc
