// Word-parallel kernel layer for the SegHDC hot path.
//
// The pipeline's inner loops — XOR binding during encoding, Hamming and
// cosine distances during clustering — all reduce to passes over packed
// 64-bit words. This header provides (1) free kernels operating on raw
// `uint64_t` word spans, fused where it pays (XOR+popcount Hamming never
// materialises the XOR), (2) `HvBlock`, a structure-of-arrays container
// holding many packed HVs contiguously so those kernels stream through
// memory instead of chasing one heap allocation per `HyperVector`, and
// (3) `CountPlanes`, the bit-plane decomposition of an integer centroid
// that turns the cosine dot into a handful of AND+popcount passes.
// `SegHdc::encode` writes pixel HVs straight into an `HvBlock`, and
// `HvKMeans` runs its assignment step over block rows; per-point
// `HyperVector` temporaries never appear in either inner loop.
//
// This layer is a thin forwarding veneer: the word crunching is done by
// the runtime-dispatched backend subsystem in src/hdc/simd/ (scalar /
// Harley-Seal / AVX2 / NEON, selected per CPU at startup and
// overridable via SEGHDC_KERNEL_BACKEND). Call sites keep these
// signatures; every backend produces bit-identical integers.
//
// Invariants mirror `HyperVector`: bits are little-endian within each
// word and the padding bits of a row's last word are zero. Kernels rely
// on that invariant exactly like `HyperVector::popcount` does.
//
// Thread-safety: the free kernels are pure functions of their operands
// (plus the process-wide backend selection) — safe to call concurrently
// on any spans that don't alias a concurrent write. HvBlock and
// CountPlanes are plain containers: concurrent const access is safe,
// mutation is the caller's to synchronise.
#ifndef SEGHDC_HDC_KERNELS_HPP
#define SEGHDC_HDC_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/hdc/bitops.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/simd/backend.hpp"

namespace seghdc::hdc {

namespace kernels {

// words_for_dim, padding_is_zero, and for_each_set_bit_words live in
// src/hdc/bitops.hpp (shared with HyperVector) and are re-exported by
// this namespace.

/// Number of set bits across `words`.
std::size_t popcount_words(std::span<const std::uint64_t> words);

/// Fused XOR+popcount Hamming distance: popcount(a ^ b) computed one
/// word at a time, no intermediate vector. Requires equal sizes.
std::size_t hamming_words(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b);

/// Early-exit Hamming through the given backend's bounded slot: may
/// abort the scan once the running distance reaches `bound`. The
/// returned BoundedScan's `value` is the exact distance whenever it is
/// < bound; when >= bound it may be partial but the true distance is
/// also >= bound (see simd::BoundedScan). Requires equal sizes.
simd::BoundedScan hamming_words_bounded(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> b,
                                        std::size_t bound,
                                        const simd::KernelBackend& backend);

/// Same, through the process-wide dispatched backend.
simd::BoundedScan hamming_words_bounded(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> b,
                                        std::size_t bound);

/// dst = a ^ b (the HDC binding operator). Requires equal sizes.
void xor_words(std::span<std::uint64_t> dst,
               std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> b);

/// Dot product of an integer centroid against packed bits: the sum of
/// `counts[i]` over every set bit i of `words`. `counts` must cover the
/// bit span (counts.size() >= 64 * words.size() - padding).
std::int64_t dot_counts_words(std::span<const std::int64_t> counts,
                              std::span<const std::uint64_t> words);

/// Weighted accumulate into an integer centroid — the K-Means update
/// primitive: counts[i] += weight for every set bit i of `words`,
/// word-blocked on the dispatched backend. Returns the sum of the
/// pre-add counts over those bits (the old-counts dot), which is what
/// Accumulator::add needs to keep its incremental norm exact in the
/// same pass. Same span contract as dot_counts_words.
std::int64_t accumulate_counts_words(std::span<std::int64_t> counts,
                                     std::span<const std::uint64_t> words,
                                     std::int64_t weight);

/// Cosine distance (paper Eq. 7) between a packed binary point and an
/// integer centroid, with both norms precomputed by the caller (the
/// clusterer caches them): 1 - dot / (point_norm * centroid_norm).
/// Returns 1.0 when either norm is zero, matching
/// `Accumulator::cosine_distance`.
double cosine_distance_words(std::span<const std::int64_t> counts,
                             double centroid_norm,
                             std::span<const std::uint64_t> words,
                             double point_norm);

/// Bit-plane decomposition of a non-negative integer count vector (a
/// centroid snapshot): plane b is the packed bitmask of bit b across all
/// counts, so
///
///   dot(counts, x) = sum_b 2^b * popcount(plane_b AND x)
///
/// exactly. That reformulates the cosine dot — previously a bit-serial
/// walk of ~popcount(x) dependent adds — into `plane_count()` fused
/// AND+popcount passes over packed words: the same bandwidth-bound shape
/// as the Hamming kernel, and SIMD-accelerated by the same backends.
/// `HvKMeans` builds one per centroid per iteration (cost ~ one point's
/// worth of work, amortised over every point in the assignment step).
class CountPlanes {
 public:
  CountPlanes() = default;

  /// Rebuilds the planes from `counts` (all entries must be >= 0; the
  /// number of planes is the bit width of the largest count). Reuses
  /// storage across calls, so per-iteration snapshots do not allocate
  /// once warm.
  void build(std::span<const std::int64_t> counts);

  /// Count-vector length of the last build (0 before any build).
  std::size_t dim() const { return dim_; }
  /// Bit width of the largest count seen by the last build (0 for an
  /// all-zero or empty vector: the dot is 0 with no passes).
  std::size_t plane_count() const { return planes_; }
  /// Packed words per plane: words_for_dim(dim()).
  std::size_t words_per_plane() const { return words_per_plane_; }

  /// Packed bitmask of bit `b` of every count. Padding bits are zero.
  std::span<const std::uint64_t> plane(std::size_t b) const;

 private:
  std::size_t dim_ = 0;
  std::size_t words_per_plane_ = 0;
  std::size_t planes_ = 0;
  std::vector<std::uint64_t> storage_;
};

/// Word-blocked dot product: sum of counts over the set bits of `words`,
/// computed plane-by-plane with the given backend's fused AND+popcount.
/// Exact — bit-identical to dot_counts_words on the same counts.
std::int64_t dot_planes(const CountPlanes& planes,
                        std::span<const std::uint64_t> words,
                        const simd::KernelBackend& backend);

/// Same, through the process-wide dispatched backend.
std::int64_t dot_planes(const CountPlanes& planes,
                        std::span<const std::uint64_t> words);

/// Cosine distance (paper Eq. 7) via the word-blocked dot. Matches
/// cosine_distance_words bit for bit (the dot is the same integer, the
/// float arithmetic is the same expression).
double cosine_distance_planes(const CountPlanes& planes,
                              double centroid_norm,
                              std::span<const std::uint64_t> words,
                              double point_norm);

/// THE cosine float expression: every cosine-distance path (words,
/// planes, the pruned assignment's bound checks) must funnel the
/// integer dot through this one function so the rounding is identical
/// everywhere — that shared expression is what makes the pruned
/// assignment's float-threshold reasoning exact rather than
/// approximate. Returns 1.0 when either norm is zero.
inline double cosine_distance_from_dot(std::int64_t dot,
                                       double centroid_norm,
                                       double point_norm) {
  if (centroid_norm == 0.0 || point_norm == 0.0) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(dot) / (point_norm * centroid_norm);
}

/// Result of a bounded plane dot. When `pruned` is false, `dot` is the
/// exact full dot (bit-identical to dot_planes). When true, the true
/// dot is provably <= the caller's `max_useful_dot` and `dot` holds
/// only the partial accumulation. `words_scanned` counts every word
/// streamed across all plane passes (backend-dependent on abort).
struct BoundedDot {
  std::int64_t dot;
  std::size_t words_scanned;
  bool pruned;
};

/// Early-exit word-blocked dot for the pruned cosine assignment:
/// computes dot(counts, x) plane-by-plane from the most significant
/// plane down, abandoning the scan once the dot provably cannot exceed
/// `max_useful_dot` (each remaining plane b contributes at most
/// 2^b * point_popcount, and the in-flight plane pass runs through the
/// backend's capped AND+popcount). Exact by the one-sided contract: a
/// dot > max_useful_dot is always returned exactly; a dot <=
/// max_useful_dot may come back as `pruned` instead. Pass a negative
/// `max_useful_dot` to disable pruning (the dot is always exact —
/// useful when no best-so-far exists yet). `point_popcount` must be
/// popcount(words).
BoundedDot dot_planes_bounded(const CountPlanes& planes,
                              std::span<const std::uint64_t> words,
                              std::size_t point_popcount,
                              std::int64_t max_useful_dot,
                              const simd::KernelBackend& backend);

}  // namespace kernels

/// Structure-of-arrays block of `count` packed binary HVs sharing one
/// dimensionality. Row i occupies words [i*words_per_hv, (i+1)*words_per_hv)
/// of one contiguous allocation; rows are what the kernels above consume.
class HvBlock {
 public:
  HvBlock() = default;

  /// `count` all-zero rows of dimension `dim`.
  HvBlock(std::size_t dim, std::size_t count);

  /// Packs existing HyperVectors (all of equal dimension) into a block.
  static HvBlock from_hvs(std::span<const HyperVector> hvs);

  /// Shared dimensionality of every row (bits per HV).
  std::size_t dim() const { return dim_; }
  /// Number of HVs in the block.
  std::size_t count() const { return count_; }
  /// Alias for count(), so the block drops into container-style call
  /// sites (`encoded.unique_hvs.size()`).
  std::size_t size() const { return count_; }
  /// True when the block holds no HVs.
  bool empty() const { return count_ == 0; }
  /// Packed words per row: words_for_dim(dim()).
  std::size_t words_per_hv() const { return words_per_hv_; }

  /// Packed words of HV `i`. Padding bits of the last word are zero as
  /// long as writers preserve the invariant (xor_words of clean inputs
  /// does, as does copying from a HyperVector).
  std::span<std::uint64_t> row(std::size_t i);
  std::span<const std::uint64_t> row(std::size_t i) const;

  /// Copies row `i` out as a standalone HyperVector.
  HyperVector to_hypervector(std::size_t i) const;

  /// Number of set bits in row `i`.
  std::size_t popcount(std::size_t i) const;

  /// The whole storage (count * words_per_hv words).
  std::span<const std::uint64_t> words() const { return storage_; }

 private:
  std::size_t dim_ = 0;
  std::size_t words_per_hv_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> storage_;
};

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_KERNELS_HPP
