// Word-parallel kernel layer for the SegHDC hot path.
//
// The pipeline's inner loops — XOR binding during encoding, Hamming and
// cosine distances during clustering — all reduce to passes over packed
// 64-bit words. This header provides (1) free kernels operating on raw
// `uint64_t` word spans, fused where it pays (XOR+popcount Hamming never
// materialises the XOR), and (2) `HvBlock`, a structure-of-arrays
// container holding many packed HVs contiguously so those kernels stream
// through memory instead of chasing one heap allocation per
// `HyperVector`. `SegHdc::encode` writes pixel HVs straight into an
// `HvBlock`, and `HvKMeans` runs its assignment step over block rows;
// per-point `HyperVector` temporaries never appear in either inner loop.
//
// Invariants mirror `HyperVector`: bits are little-endian within each
// word and the padding bits of a row's last word are zero. Kernels rely
// on that invariant exactly like `HyperVector::popcount` does.
#ifndef SEGHDC_HDC_KERNELS_HPP
#define SEGHDC_HDC_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/hdc/bitops.hpp"
#include "src/hdc/hypervector.hpp"

namespace seghdc::hdc {

namespace kernels {

// words_for_dim, padding_is_zero, and for_each_set_bit_words live in
// src/hdc/bitops.hpp (shared with HyperVector) and are re-exported by
// this namespace.

/// Number of set bits across `words`.
std::size_t popcount_words(std::span<const std::uint64_t> words);

/// Fused XOR+popcount Hamming distance: popcount(a ^ b) computed one
/// word at a time, no intermediate vector. Requires equal sizes.
std::size_t hamming_words(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b);

/// dst = a ^ b (the HDC binding operator). Requires equal sizes.
void xor_words(std::span<std::uint64_t> dst,
               std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> b);

/// Dot product of an integer centroid against packed bits: the sum of
/// `counts[i]` over every set bit i of `words`. `counts` must cover the
/// bit span (counts.size() >= 64 * words.size() - padding).
std::int64_t dot_counts_words(std::span<const std::int64_t> counts,
                              std::span<const std::uint64_t> words);

/// Cosine distance (paper Eq. 7) between a packed binary point and an
/// integer centroid, with both norms precomputed by the caller (the
/// clusterer caches them): 1 - dot / (point_norm * centroid_norm).
/// Returns 1.0 when either norm is zero, matching
/// `Accumulator::cosine_distance`.
double cosine_distance_words(std::span<const std::int64_t> counts,
                             double centroid_norm,
                             std::span<const std::uint64_t> words,
                             double point_norm);

}  // namespace kernels

/// Structure-of-arrays block of `count` packed binary HVs sharing one
/// dimensionality. Row i occupies words [i*words_per_hv, (i+1)*words_per_hv)
/// of one contiguous allocation; rows are what the kernels above consume.
class HvBlock {
 public:
  HvBlock() = default;

  /// `count` all-zero rows of dimension `dim`.
  HvBlock(std::size_t dim, std::size_t count);

  /// Packs existing HyperVectors (all of equal dimension) into a block.
  static HvBlock from_hvs(std::span<const HyperVector> hvs);

  std::size_t dim() const { return dim_; }
  /// Number of HVs in the block.
  std::size_t count() const { return count_; }
  /// Alias for count(), so the block drops into container-style call
  /// sites (`encoded.unique_hvs.size()`).
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t words_per_hv() const { return words_per_hv_; }

  /// Packed words of HV `i`. Padding bits of the last word are zero as
  /// long as writers preserve the invariant (xor_words of clean inputs
  /// does, as does copying from a HyperVector).
  std::span<std::uint64_t> row(std::size_t i);
  std::span<const std::uint64_t> row(std::size_t i) const;

  /// Copies row `i` out as a standalone HyperVector.
  HyperVector to_hypervector(std::size_t i) const;

  /// Number of set bits in row `i`.
  std::size_t popcount(std::size_t i) const;

  /// The whole storage (count * words_per_hv words).
  std::span<const std::uint64_t> words() const { return storage_; }

 private:
  std::size_t dim_ = 0;
  std::size_t words_per_hv_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> storage_;
};

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_KERNELS_HPP
