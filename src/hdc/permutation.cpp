#include "src/hdc/permutation.hpp"

namespace seghdc::hdc {

HyperVector rotate(const HyperVector& hv, std::size_t shift) {
  if (hv.dim() == 0) {
    return hv;
  }
  const std::size_t d = hv.dim();
  const std::size_t offset = shift % d;
  if (offset == 0) {
    return hv;
  }
  HyperVector result(d);
  // Bit-wise construction: rotation is never in a per-pixel hot path.
  for (std::size_t i = 0; i < d; ++i) {
    if (hv.get((i + offset) % d)) {
      result.set(i, true);
    }
  }
  return result;
}

HyperVector rho(const HyperVector& hv, std::size_t times) {
  return rotate(hv, times);
}

}  // namespace seghdc::hdc
