// Cyclic permutation (the HDC "rho" operator): rotating a hypervector's
// bits produces a vector pseudo-orthogonal to the original, which
// classical HDC uses to encode order/sequence information. SegHDC itself
// binds position with XOR ladders instead, but the operator belongs in
// any complete HDC substrate (and enables sequence-encoding extensions,
// e.g. video frames).
#ifndef SEGHDC_HDC_PERMUTATION_HPP
#define SEGHDC_HDC_PERMUTATION_HPP

#include <cstddef>

#include "src/hdc/hypervector.hpp"

namespace seghdc::hdc {

/// Cyclic left-rotation of the bit vector by `shift` positions
/// (bit i of the result = bit (i + shift) mod d of the input).
HyperVector rotate(const HyperVector& hv, std::size_t shift);

/// Applies rotate() `times` times with shift 1 — the classical rho^n.
/// Equivalent to rotate(hv, times % dim) but spelled out for clarity.
HyperVector rho(const HyperVector& hv, std::size_t times = 1);

}  // namespace seghdc::hdc

#endif  // SEGHDC_HDC_PERMUTATION_HPP
