// Runtime-dispatched SIMD kernel backends for the packed-HV hot loops.
//
// Every inner loop of the pipeline — XOR binding, Hamming distance,
// masked popcounts for the word-blocked cosine — funnels through one
// `KernelBackend`: a vtable of word-span kernels. Several backends are
// compiled into every binary:
//
//   scalar       one std::popcount per word — the reference everything
//                else must match bit for bit
//   harley-seal  carry-save-adder popcount over 16-word blocks; portable,
//                ~3-5x fewer popcount reductions than scalar
//   avx2         256-bit vpshufb nibble-LUT popcount (x86-64 only,
//                compiled per-TU with target("avx2") attributes and
//                registered only when cpuid reports AVX2)
//   neon         128-bit vcnt popcount (aarch64 only)
//
// Selection is automatic at first use: the highest-priority backend
// whose `available()` probe passes, overridable per process via the
// SEGHDC_KERNEL_BACKEND environment variable ("scalar", "harley-seal",
// "avx2", "neon", or "auto") and per config via
// SegHdcConfig::kernel_backend. All backends produce bit-identical
// results — the property suite in tests/test_simd_backends.cpp runs
// every registered backend against the scalar reference, and the golden
// label hashes must not move under any of them.
//
// To add a backend: write src/hdc/simd/backend_<name>.cpp defining a
// `const KernelBackend* <name>_backend()` accessor (return nullptr when
// the TU is compiled out for the target), declare it below, and append
// it to the registry list in registry.cpp. Guard anything
// ISA-specific with function-level target attributes so the TU still
// compiles for every architecture. Every slot must be populated —
// including the bounded early-exit slots (hamming_bounded,
// and_popcount_capped), whose one-sided exactness contract
// (BoundedScan below) is what lets the candidate-pruned K-Means
// assignment stay bit-identical to the exhaustive scan.
#ifndef SEGHDC_HDC_SIMD_BACKEND_HPP
#define SEGHDC_HDC_SIMD_BACKEND_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace seghdc::hdc::simd {

/// Result of a bounded kernel scan (hamming_bounded /
/// and_popcount_capped below). `value` is the running count at the
/// point the scan stopped and `words_scanned` the number of words it
/// actually streamed. The exactness contract is one-sided on purpose so
/// backends can check their abort condition at block granularity
/// without breaking bit-identity:
///
///   hamming_bounded:      value <  bound  =>  value is the exact full
///                         distance (a scan whose running count never
///                         reaches `bound` can never abort). When
///                         value >= bound it may be a partial count,
///                         but the true distance is >= value >= bound
///                         — exactly what a caller pruning on
///                         "distance >= bound" needs.
///   and_popcount_capped:  value >  cap    =>  value is the exact full
///                         AND-popcount (the abort condition proves
///                         final <= cap, so a final > cap can never
///                         trigger it). When value <= cap the true
///                         count is also <= cap (possibly partial) —
///                         exactly what a caller pruning on
///                         "count <= cap" needs.
///
/// Backends may abort at different word offsets (different block
/// widths), so `words_scanned` is backend-dependent — only `value`'s
/// contract above is part of the bit-identity discipline.
struct BoundedScan {
  std::size_t value;
  std::size_t words_scanned;
};

/// Vtable of word-span kernels. All spans are packed little-endian
/// 64-bit words; binary ops require equal sizes (callers validate).
/// Implementations must be exact: the same inputs produce the same
/// integers on every backend, so labels and golden hashes never depend
/// on which backend dispatch picked.
struct KernelBackend {
  /// Registry name, also the SEGHDC_KERNEL_BACKEND spelling.
  const char* name;
  /// Auto-selection rank: the highest-priority available backend wins.
  int priority;
  /// Runtime probe (cpuid on x86); registered backends may still be
  /// unavailable on the executing CPU.
  bool (*available)();

  /// Number of set bits across `words`.
  std::size_t (*popcount)(std::span<const std::uint64_t> words);
  /// Fused XOR+popcount: popcount(a ^ b) without materialising the XOR.
  std::size_t (*hamming)(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b);
  /// Fused AND+popcount: popcount(a & b) — the per-plane primitive of
  /// the word-blocked cosine dot.
  std::size_t (*and_popcount)(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b);
  /// Early-exit Hamming: like `hamming`, but may abort the fused
  /// XOR+popcount scan once the running distance reaches `bound`
  /// (checked per block so the SIMD lanes stay full). See BoundedScan
  /// for the exactness contract. The candidate-pruned K-Means
  /// assignment calls this with the current best distance as `bound`.
  BoundedScan (*hamming_bounded)(std::span<const std::uint64_t> a,
                                 std::span<const std::uint64_t> b,
                                 std::size_t bound);
  /// Early-exit AND+popcount: like `and_popcount`, but may abort once
  /// running + 64 * words_remaining <= cap — i.e. once the final count
  /// provably cannot exceed `cap`. See BoundedScan for the contract.
  /// The bounded plane-dot (kernels::dot_planes_bounded) uses this to
  /// abandon a cosine dot that can no longer beat the current best.
  BoundedScan (*and_popcount_capped)(std::span<const std::uint64_t> a,
                                     std::span<const std::uint64_t> b,
                                     std::size_t cap);
  /// dst = a ^ b (the HDC binding operator).
  void (*xor_bind)(std::span<std::uint64_t> dst,
                   std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> b);
  /// Bit-serial dot of an integer count vector against packed bits:
  /// sum of counts[i] over set bits i. Kept in the vtable for the
  /// gather-style callers (Accumulator::dot); the clustering hot loop
  /// uses the bandwidth-bound plane formulation built on and_popcount
  /// (hdc::CountPlanes in src/hdc/kernels.hpp) instead.
  std::int64_t (*dot_counts)(std::span<const std::int64_t> counts,
                             std::span<const std::uint64_t> words);
  /// Fused weighted accumulate — the K-Means centroid-update primitive:
  /// counts[i] += weight for every set bit i of `words`, word-blocked
  /// (masked lane adds instead of a bit-serial set-bit walk). Returns
  /// the sum of the PRE-add counts over those same bits (the dot of the
  /// old counts with `words`), so Accumulator::add maintains its
  /// incremental sum-of-squares without a second gather pass. `counts`
  /// must cover the bit span exactly like dot_counts (set bits only
  /// below counts.size(); callers enforce zero padding).
  std::int64_t (*accumulate_words)(std::span<std::int64_t> counts,
                                   std::span<const std::uint64_t> words,
                                   std::int64_t weight);
  /// Bit-plane scatter backing kernels::CountPlanes::build: for every
  /// count i and every set bit b of counts[i], sets bit (i % 64) of
  /// storage[b * words_per_plane + i / 64]. `storage` arrives zeroed and
  /// sized planes * words_per_plane with planes >= bit_width of every
  /// count; counts are non-negative (the caller validates).
  void (*build_planes)(std::span<const std::int64_t> counts,
                       std::span<std::uint64_t> storage,
                       std::size_t words_per_plane);
};

/// Every compiled-in backend, in registration order (scalar first).
/// Includes backends whose `available()` probe fails on this CPU.
std::span<const KernelBackend* const> registered_backends();

/// Registered backend by name, or nullptr when unknown. "auto" is not a
/// backend and returns nullptr.
const KernelBackend* find_backend(std::string_view name);

/// The backend all dispatched kernels route through. Resolved on first
/// call: SEGHDC_KERNEL_BACKEND if set (a hard error when it names an
/// unknown or unavailable backend — a forced backend silently falling
/// back would defeat the CI matrix), otherwise the highest-priority
/// available backend. Thread-safe.
const KernelBackend& active_backend();

/// Forces dispatch to `name` ("auto" re-runs automatic selection,
/// ignoring the environment). Throws std::invalid_argument when `name`
/// is unknown or unavailable on this CPU. Returns the now-active
/// backend. Process-global; intended for config plumbing, bench
/// `--backend` flags, and the per-backend test matrix. Thread-safe —
/// the switch is one atomic store, and because every backend computes
/// identical integers, kernels in flight during the switch still
/// return correct results.
const KernelBackend& force_backend(std::string_view name);

/// Clears any forced/resolved selection so the next active_backend()
/// call re-reads the environment. Test hook.
void reset_backend_selection();

}  // namespace seghdc::hdc::simd

#endif  // SEGHDC_HDC_SIMD_BACKEND_HPP
