// AVX2 backend: 256-bit vpshufb nibble-LUT popcount (Mula's method).
//
// Each 256-bit lane splits every byte into two nibbles, table-looks-up
// their popcounts with vpshufb, and horizontally folds the byte sums
// with vpsadbw into four 64-bit partials — 4 words per vector, no
// cross-lane shuffles, exact integer arithmetic. Hamming and the cosine
// plane primitive fuse their XOR/AND into the same pass.
//
// The whole TU compiles on any x86-64 toolchain without global -mavx2:
// every vector function carries a function-level target("avx2")
// attribute, and dispatch only routes here when the cpuid probe
// (cpu_has_avx2) passes at runtime. On non-x86-64 targets the accessor
// returns nullptr and the registry skips the backend entirely.
#include "src/hdc/simd/backends_internal.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include "src/hdc/simd/cpu_features.hpp"

namespace seghdc::hdc::simd {

namespace {

#define SEGHDC_AVX2 __attribute__((target("avx2")))

/// Per-byte popcount of `v` via two vpshufb nibble lookups, folded to
/// four u64 partial sums with vpsadbw.
SEGHDC_AVX2 inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

SEGHDC_AVX2 inline std::uint64_t reduce_epi64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

SEGHDC_AVX2 std::size_t avx2_popcount(std::span<const std::uint64_t> words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words.size(); i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words.data() + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::uint64_t total = reduce_epi64(acc);
  for (; i < words.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return static_cast<std::size_t>(total);
}

SEGHDC_AVX2 std::size_t avx2_hamming(std::span<const std::uint64_t> a,
                                     std::span<const std::uint64_t> b) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(va, vb)));
  }
  std::uint64_t total = reduce_epi64(acc);
  for (; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return static_cast<std::size_t>(total);
}

SEGHDC_AVX2 std::size_t avx2_and_popcount(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(va, vb)));
  }
  std::uint64_t total = reduce_epi64(acc);
  for (; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

// Bounded variants process two vectors (8 words) per abort check: wide
// enough to keep the vpshufb pipeline fed, narrow enough that an abort
// saves most of the span. The running count lives in a scalar (one
// vpsadbw reduce per block) so the check is a plain compare.

SEGHDC_AVX2 BoundedScan avx2_hamming_bounded(std::span<const std::uint64_t> a,
                                             std::span<const std::uint64_t> b,
                                             std::size_t bound) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 8 <= a.size(); w += 8) {
    if (count >= bound) {
      return BoundedScan{count, w};
    }
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + w));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + w));
    const __m256i va1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a.data() + w + 4));
    const __m256i vb1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b.data() + w + 4));
    const __m256i sum =
        _mm256_add_epi64(popcount_epi64(_mm256_xor_si256(va0, vb0)),
                         popcount_epi64(_mm256_xor_si256(va1, vb1)));
    count += static_cast<std::size_t>(reduce_epi64(sum));
  }
  if (count >= bound) {
    return BoundedScan{count, w};
  }
  for (; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return BoundedScan{count, w};
}

SEGHDC_AVX2 BoundedScan avx2_and_popcount_capped(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    std::size_t cap) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 8 <= a.size(); w += 8) {
    if (count + 64 * (a.size() - w) <= cap) {
      return BoundedScan{count, w};
    }
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + w));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + w));
    const __m256i va1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a.data() + w + 4));
    const __m256i vb1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b.data() + w + 4));
    const __m256i sum =
        _mm256_add_epi64(popcount_epi64(_mm256_and_si256(va0, vb0)),
                         popcount_epi64(_mm256_and_si256(va1, vb1)));
    count += static_cast<std::size_t>(reduce_epi64(sum));
  }
  if (w < a.size() && count + 64 * (a.size() - w) <= cap) {
    return BoundedScan{count, w};
  }
  for (; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return BoundedScan{count, w};
}

SEGHDC_AVX2 void avx2_xor_bind(std::span<std::uint64_t> dst,
                               std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) {
  std::size_t i = 0;
  for (; i + 4 <= dst.size(); i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                        _mm256_xor_si256(va, vb));
  }
  for (; i < dst.size(); ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

/// Masked-lane accumulate: each 64-bit mask word selects lanes of 16
/// consecutive 4 x int64 count vectors. The nibble selector starts at
/// {1,2,4,8} and slides left 4 bits per group, so one broadcast of the
/// mask word drives all 16 compares — no per-bit countr_zero chain, and
/// the pre-add dot rides the same pass in a vector accumulator.
SEGHDC_AVX2 std::int64_t avx2_accumulate_words(
    std::span<std::int64_t> counts, std::span<const std::uint64_t> words,
    std::int64_t weight) {
  __m256i dot_acc = _mm256_setzero_si256();
  const __m256i weight_vec = _mm256_set1_epi64x(weight);
  const std::size_t full = counts.size() / 64;
  std::size_t w = 0;
  for (; w < full && w < words.size(); ++w) {
    const std::uint64_t bits = words[w];
    if (bits == 0) {
      continue;
    }
    std::int64_t* base = counts.data() + w * 64;
    const __m256i bcast =
        _mm256_set1_epi64x(static_cast<std::int64_t>(bits));
    __m256i select = _mm256_setr_epi64x(1, 2, 4, 8);
    for (std::size_t g = 0; g < 16; ++g) {
      const __m256i mask =
          _mm256_cmpeq_epi64(_mm256_and_si256(bcast, select), select);
      __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 4 * g));
      dot_acc = _mm256_add_epi64(dot_acc, _mm256_and_si256(c, mask));
      c = _mm256_add_epi64(c, _mm256_and_si256(weight_vec, mask));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(base + 4 * g), c);
      select = _mm256_slli_epi64(select, 4);
    }
  }
  auto dot = static_cast<std::int64_t>(reduce_epi64(dot_acc));
  if (w < words.size()) {
    dot += detail::scalar_accumulate_words(counts.subspan(w * 64),
                                           words.subspan(w), weight);
  }
  return dot;
}

/// Plane scatter via sign-bit extraction: shifting bit b of four counts
/// up to bit 63 turns movemask_pd into a 4-wide bit gather, so each
/// plane word of a 64-count block assembles from 16 shift+movemask
/// pairs. A per-block OR envelope skips planes the block never reaches
/// (storage arrives zeroed).
SEGHDC_AVX2 void avx2_build_planes(std::span<const std::int64_t> counts,
                                   std::span<std::uint64_t> storage,
                                   std::size_t words_per_plane) {
  const std::size_t full = counts.size() / 64;
  for (std::size_t block = 0; block < full; ++block) {
    const std::int64_t* base = counts.data() + block * 64;
    __m256i envelope_vec = _mm256_setzero_si256();
    for (std::size_t g = 0; g < 16; ++g) {
      envelope_vec = _mm256_or_si256(
          envelope_vec, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(base + 4 * g)));
    }
    const __m128i env_fold =
        _mm_or_si128(_mm256_castsi256_si128(envelope_vec),
                     _mm256_extracti128_si256(envelope_vec, 1));
    const auto envelope = static_cast<std::uint64_t>(
        _mm_extract_epi64(env_fold, 0) | _mm_extract_epi64(env_fold, 1));
    const auto block_planes =
        static_cast<std::size_t>(std::bit_width(envelope));
    for (std::size_t b = 0; b < block_planes; ++b) {
      const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(63 - b));
      std::uint64_t word = 0;
      for (std::size_t g = 0; g < 16; ++g) {
        const __m256i v = _mm256_sll_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(base + 4 * g)),
            shift);
        word |= static_cast<std::uint64_t>(static_cast<unsigned>(
                    _mm256_movemask_pd(_mm256_castsi256_pd(v))))
                << (4 * g);
      }
      storage[b * words_per_plane + block] = word;
    }
  }
  if (full * 64 < counts.size()) {
    // Partial trailing block via the reference scatter; the plane/word
    // layout is global, so pass the tail with its original word index.
    for (std::size_t i = full * 64; i < counts.size(); ++i) {
      auto bits = static_cast<std::uint64_t>(counts[i]);
      const std::uint64_t mask = std::uint64_t{1} << (i % 64);
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        storage[b * words_per_plane + full] |= mask;
      }
    }
  }
}

#undef SEGHDC_AVX2

const KernelBackend kAvx2Backend{
    .name = "avx2",
    .priority = 30,
    .available = cpu_has_avx2,
    .popcount = avx2_popcount,
    .hamming = avx2_hamming,
    .and_popcount = avx2_and_popcount,
    .hamming_bounded = avx2_hamming_bounded,
    .and_popcount_capped = avx2_and_popcount_capped,
    .xor_bind = avx2_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
    .accumulate_words = avx2_accumulate_words,
    .build_planes = avx2_build_planes,
};

}  // namespace

const KernelBackend* avx2_backend() { return &kAvx2Backend; }

}  // namespace seghdc::hdc::simd

#else  // non-x86-64 targets: backend compiled out.

namespace seghdc::hdc::simd {

const KernelBackend* avx2_backend() { return nullptr; }

}  // namespace seghdc::hdc::simd

#endif
