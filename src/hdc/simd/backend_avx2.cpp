// AVX2 backend: 256-bit vpshufb nibble-LUT popcount (Mula's method).
//
// Each 256-bit lane splits every byte into two nibbles, table-looks-up
// their popcounts with vpshufb, and horizontally folds the byte sums
// with vpsadbw into four 64-bit partials — 4 words per vector, no
// cross-lane shuffles, exact integer arithmetic. Hamming and the cosine
// plane primitive fuse their XOR/AND into the same pass.
//
// The whole TU compiles on any x86-64 toolchain without global -mavx2:
// every vector function carries a function-level target("avx2")
// attribute, and dispatch only routes here when the cpuid probe
// (cpu_has_avx2) passes at runtime. On non-x86-64 targets the accessor
// returns nullptr and the registry skips the backend entirely.
#include "src/hdc/simd/backends_internal.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include "src/hdc/simd/cpu_features.hpp"

namespace seghdc::hdc::simd {

namespace {

#define SEGHDC_AVX2 __attribute__((target("avx2")))

/// Per-byte popcount of `v` via two vpshufb nibble lookups, folded to
/// four u64 partial sums with vpsadbw.
SEGHDC_AVX2 inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

SEGHDC_AVX2 inline std::uint64_t reduce_epi64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

SEGHDC_AVX2 std::size_t avx2_popcount(std::span<const std::uint64_t> words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words.size(); i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words.data() + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::uint64_t total = reduce_epi64(acc);
  for (; i < words.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return static_cast<std::size_t>(total);
}

SEGHDC_AVX2 std::size_t avx2_hamming(std::span<const std::uint64_t> a,
                                     std::span<const std::uint64_t> b) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(va, vb)));
  }
  std::uint64_t total = reduce_epi64(acc);
  for (; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return static_cast<std::size_t>(total);
}

SEGHDC_AVX2 std::size_t avx2_and_popcount(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(va, vb)));
  }
  std::uint64_t total = reduce_epi64(acc);
  for (; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

SEGHDC_AVX2 void avx2_xor_bind(std::span<std::uint64_t> dst,
                               std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) {
  std::size_t i = 0;
  for (; i + 4 <= dst.size(); i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                        _mm256_xor_si256(va, vb));
  }
  for (; i < dst.size(); ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

#undef SEGHDC_AVX2

const KernelBackend kAvx2Backend{
    .name = "avx2",
    .priority = 30,
    .available = cpu_has_avx2,
    .popcount = avx2_popcount,
    .hamming = avx2_hamming,
    .and_popcount = avx2_and_popcount,
    .xor_bind = avx2_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
};

}  // namespace

const KernelBackend* avx2_backend() { return &kAvx2Backend; }

}  // namespace seghdc::hdc::simd

#else  // non-x86-64 targets: backend compiled out.

namespace seghdc::hdc::simd {

const KernelBackend* avx2_backend() { return nullptr; }

}  // namespace seghdc::hdc::simd

#endif
