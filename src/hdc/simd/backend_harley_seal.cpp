// Portable Harley-Seal popcount backend.
//
// A carry-save adder (CSA) tree folds 16 words into one "sixteens" word
// plus lower-order partials, so only 5 hardware/software popcounts run
// per 16-word block instead of 16. On baseline x86-64 builds (no
// -mpopcnt) std::popcount lowers to a multi-op SWAR sequence, which
// makes the 16:5 reduction worth ~3x; with a native popcnt instruction
// it still wins on long spans by shortening the dependent add chain.
// Everything here is plain uint64 arithmetic — exact on any target.
//
// The CSA core is templated over a word source so popcount (load),
// Hamming (load+XOR), and the cosine plane primitive (load+AND) share
// one implementation.
#include "src/hdc/simd/backends_internal.hpp"

namespace seghdc::hdc::simd {

namespace {

/// Carry-save adder: returns the sum bit, writes the carry into `high`.
inline std::uint64_t csa(std::uint64_t& high, std::uint64_t a,
                         std::uint64_t b, std::uint64_t c) {
  const std::uint64_t partial = a ^ b;
  high = (a & b) | (partial & c);
  return partial ^ c;
}

/// Popcount of `size` words produced by `word(i)`, Harley-Seal over
/// 16-word blocks with a scalar tail.
template <typename WordFn>
std::size_t harley_seal_count(std::size_t size, WordFn word) {
  std::uint64_t total = 0;
  std::uint64_t ones = 0;
  std::uint64_t twos = 0;
  std::uint64_t fours = 0;
  std::uint64_t eights = 0;
  std::size_t i = 0;
  for (; i + 16 <= size; i += 16) {
    std::uint64_t twos_a;
    std::uint64_t twos_b;
    std::uint64_t fours_a;
    std::uint64_t fours_b;
    std::uint64_t eights_a;
    std::uint64_t eights_b;
    std::uint64_t sixteens;
    ones = csa(twos_a, ones, word(i + 0), word(i + 1));
    ones = csa(twos_b, ones, word(i + 2), word(i + 3));
    twos = csa(fours_a, twos, twos_a, twos_b);
    ones = csa(twos_a, ones, word(i + 4), word(i + 5));
    ones = csa(twos_b, ones, word(i + 6), word(i + 7));
    twos = csa(fours_b, twos, twos_a, twos_b);
    fours = csa(eights_a, fours, fours_a, fours_b);
    ones = csa(twos_a, ones, word(i + 8), word(i + 9));
    ones = csa(twos_b, ones, word(i + 10), word(i + 11));
    twos = csa(fours_a, twos, twos_a, twos_b);
    ones = csa(twos_a, ones, word(i + 12), word(i + 13));
    ones = csa(twos_b, ones, word(i + 14), word(i + 15));
    twos = csa(fours_b, twos, twos_a, twos_b);
    fours = csa(eights_b, fours, fours_a, fours_b);
    eights = csa(sixteens, eights, eights_a, eights_b);
    total += static_cast<std::uint64_t>(std::popcount(sixteens));
  }
  total = 16 * total + 8 * static_cast<std::uint64_t>(std::popcount(eights)) +
          4 * static_cast<std::uint64_t>(std::popcount(fours)) +
          2 * static_cast<std::uint64_t>(std::popcount(twos)) +
          static_cast<std::uint64_t>(std::popcount(ones));
  for (; i < size; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(word(i)));
  }
  return static_cast<std::size_t>(total);
}

std::size_t hs_popcount(std::span<const std::uint64_t> words) {
  return harley_seal_count(words.size(),
                           [&](std::size_t i) { return words[i]; });
}

std::size_t hs_hamming(std::span<const std::uint64_t> a,
                       std::span<const std::uint64_t> b) {
  return harley_seal_count(a.size(),
                           [&](std::size_t i) { return a[i] ^ b[i]; });
}

std::size_t hs_and_popcount(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) {
  return harley_seal_count(a.size(),
                           [&](std::size_t i) { return a[i] & b[i]; });
}

// Bounded variants fold the CSA tree one 16-word block at a time (the
// tree's natural width) so the abort condition can be checked between
// blocks with the running count fully reduced. The per-block fold costs
// 5 popcounts per 16 words instead of the unbounded version's amortised
// ~1, but still well under scalar's 16 — and the whole point is to stop
// streaming words at all once the bound decides the candidate.

BoundedScan hs_hamming_bounded(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b,
                               std::size_t bound) {
  std::size_t count = 0;
  std::size_t w = 0;
  while (w < a.size()) {
    if (count >= bound) {
      return BoundedScan{count, w};
    }
    const std::size_t block = std::min<std::size_t>(a.size() - w, 16);
    count += harley_seal_count(
        block, [&](std::size_t i) { return a[w + i] ^ b[w + i]; });
    w += block;
  }
  return BoundedScan{count, w};
}

BoundedScan hs_and_popcount_capped(std::span<const std::uint64_t> a,
                                   std::span<const std::uint64_t> b,
                                   std::size_t cap) {
  std::size_t count = 0;
  std::size_t w = 0;
  while (w < a.size()) {
    if (count + 64 * (a.size() - w) <= cap) {
      return BoundedScan{count, w};
    }
    const std::size_t block = std::min<std::size_t>(a.size() - w, 16);
    count += harley_seal_count(
        block, [&](std::size_t i) { return a[w + i] & b[w + i]; });
    w += block;
  }
  return BoundedScan{count, w};
}

bool always_available() { return true; }

const KernelBackend kHarleySealBackend{
    .name = "harley-seal",
    .priority = 10,
    .available = always_available,
    .popcount = hs_popcount,
    .hamming = hs_hamming,
    .and_popcount = hs_and_popcount,
    .hamming_bounded = hs_hamming_bounded,
    .and_popcount_capped = hs_and_popcount_capped,
    // Plain XOR is already one op per word; nothing to fold.
    .xor_bind = detail::scalar_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
    // Masked-lane accumulation only pays with real vector units (a
    // branchless -(bit) formulation measured ~2.5x SLOWER than the walk
    // here — the per-lane variable shifts don't auto-vectorise on
    // baseline targets), so the portable backend keeps the walk.
    .accumulate_words = detail::scalar_accumulate_words,
    // The scatter is index arithmetic, not popcounts; nothing to fold.
    .build_planes = detail::scalar_build_planes,
};

}  // namespace

const KernelBackend* harley_seal_backend() { return &kHarleySealBackend; }

}  // namespace seghdc::hdc::simd
