// NEON backend for the aarch64 (Raspberry Pi) target.
//
// vcnt counts bits per byte; blocks of up to 31 vectors accumulate
// those byte counts in a u8 lane accumulator (31 * 8 = 248 < 255, no
// overflow) before one horizontal vaddlvq_u8 fold — one widen per
// block instead of one per vector. Hamming and the cosine plane
// primitive fuse their XOR/AND into the same pass. NEON is baseline on
// aarch64, so no runtime probe or target attribute is needed; on other
// architectures the accessor returns nullptr.
#include "src/hdc/simd/backends_internal.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace seghdc::hdc::simd {

namespace {

/// Popcount of `size` words produced by `vec(i)` (two words per
/// uint8x16_t), blocked to amortise the horizontal fold.
template <typename VecFn>
inline std::uint64_t neon_count(std::size_t vectors, VecFn vec) {
  std::uint64_t total = 0;
  std::size_t v = 0;
  while (v < vectors) {
    const std::size_t block_end = std::min(vectors, v + 31);
    uint8x16_t acc = vdupq_n_u8(0);
    for (; v < block_end; ++v) {
      acc = vaddq_u8(acc, vcntq_u8(vec(v)));
    }
    total += vaddlvq_u8(acc);
  }
  return total;
}

inline uint8x16_t load_u8x16(const std::uint64_t* p) {
  return vreinterpretq_u8_u64(vld1q_u64(p));
}

std::size_t neon_popcount(std::span<const std::uint64_t> words) {
  const std::size_t vectors = words.size() / 2;
  std::uint64_t total = neon_count(
      vectors, [&](std::size_t v) { return load_u8x16(&words[2 * v]); });
  for (std::size_t i = 2 * vectors; i < words.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return static_cast<std::size_t>(total);
}

std::size_t neon_hamming(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b) {
  const std::size_t vectors = a.size() / 2;
  std::uint64_t total = neon_count(vectors, [&](std::size_t v) {
    return veorq_u8(load_u8x16(&a[2 * v]), load_u8x16(&b[2 * v]));
  });
  for (std::size_t i = 2 * vectors; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return static_cast<std::size_t>(total);
}

std::size_t neon_and_popcount(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) {
  const std::size_t vectors = a.size() / 2;
  std::uint64_t total = neon_count(vectors, [&](std::size_t v) {
    return vandq_u8(load_u8x16(&a[2 * v]), load_u8x16(&b[2 * v]));
  });
  for (std::size_t i = 2 * vectors; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

// Bounded variants process four vectors (8 words) per abort check: the
// u8 lane accumulator folds once per block (8 * 8 = 64 byte counts,
// far under the 255 overflow ceiling) so the check is a plain scalar
// compare on the running total.

BoundedScan neon_hamming_bounded(std::span<const std::uint64_t> a,
                                 std::span<const std::uint64_t> b,
                                 std::size_t bound) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 8 <= a.size(); w += 8) {
    if (count >= bound) {
      return BoundedScan{count, w};
    }
    uint8x16_t acc = vdupq_n_u8(0);
    for (std::size_t v = 0; v < 4; ++v) {
      acc = vaddq_u8(acc, vcntq_u8(veorq_u8(load_u8x16(&a[w + 2 * v]),
                                            load_u8x16(&b[w + 2 * v]))));
    }
    count += vaddlvq_u8(acc);
  }
  if (count >= bound) {
    return BoundedScan{count, w};
  }
  for (; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return BoundedScan{count, w};
}

BoundedScan neon_and_popcount_capped(std::span<const std::uint64_t> a,
                                     std::span<const std::uint64_t> b,
                                     std::size_t cap) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 8 <= a.size(); w += 8) {
    if (count + 64 * (a.size() - w) <= cap) {
      return BoundedScan{count, w};
    }
    uint8x16_t acc = vdupq_n_u8(0);
    for (std::size_t v = 0; v < 4; ++v) {
      acc = vaddq_u8(acc, vcntq_u8(vandq_u8(load_u8x16(&a[w + 2 * v]),
                                            load_u8x16(&b[w + 2 * v]))));
    }
    count += vaddlvq_u8(acc);
  }
  if (w < a.size() && count + 64 * (a.size() - w) <= cap) {
    return BoundedScan{count, w};
  }
  for (; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return BoundedScan{count, w};
}

void neon_xor_bind(std::span<std::uint64_t> dst,
                   std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> b) {
  std::size_t i = 0;
  for (; i + 2 <= dst.size(); i += 2) {
    vst1q_u64(&dst[i], veorq_u64(vld1q_u64(&a[i]), vld1q_u64(&b[i])));
  }
  for (; i < dst.size(); ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

/// Masked-lane accumulate, 2 x int64 at a time: the lane selector starts
/// at {1, 2} and slides left 2 bits per pair, so one mask-word broadcast
/// drives all 32 compares of a 64-count block; the pre-add dot rides the
/// same pass in a vector accumulator.
std::int64_t neon_accumulate_words(std::span<std::int64_t> counts,
                                   std::span<const std::uint64_t> words,
                                   std::int64_t weight) {
  int64x2_t dot_acc = vdupq_n_s64(0);
  const int64x2_t weight_vec = vdupq_n_s64(weight);
  const std::size_t full = counts.size() / 64;
  std::size_t w = 0;
  for (; w < full && w < words.size(); ++w) {
    const std::uint64_t bits = words[w];
    if (bits == 0) {
      continue;
    }
    std::int64_t* base = counts.data() + w * 64;
    const uint64x2_t bcast = vdupq_n_u64(bits);
    uint64x2_t select = vcombine_u64(vcreate_u64(1), vcreate_u64(2));
    for (std::size_t g = 0; g < 32; ++g) {
      const int64x2_t mask =
          vreinterpretq_s64_u64(vceqq_u64(vandq_u64(bcast, select), select));
      int64x2_t c = vld1q_s64(base + 2 * g);
      dot_acc = vaddq_s64(dot_acc, vandq_s64(c, mask));
      c = vaddq_s64(c, vandq_s64(weight_vec, mask));
      vst1q_s64(base + 2 * g, c);
      select = vshlq_n_u64(select, 2);
    }
  }
  std::int64_t dot =
      vgetq_lane_s64(dot_acc, 0) + vgetq_lane_s64(dot_acc, 1);
  if (w < words.size()) {
    dot += detail::scalar_accumulate_words(counts.subspan(w * 64),
                                           words.subspan(w), weight);
  }
  return dot;
}

bool always_available() { return true; }

const KernelBackend kNeonBackend{
    .name = "neon",
    .priority = 30,
    .available = always_available,
    .popcount = neon_popcount,
    .hamming = neon_hamming,
    .and_popcount = neon_and_popcount,
    .hamming_bounded = neon_hamming_bounded,
    .and_popcount_capped = neon_and_popcount_capped,
    .xor_bind = neon_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
    .accumulate_words = neon_accumulate_words,
    // The scatter is index arithmetic; vcnt has nothing to add.
    .build_planes = detail::scalar_build_planes,
};

}  // namespace

const KernelBackend* neon_backend() { return &kNeonBackend; }

}  // namespace seghdc::hdc::simd

#else  // non-aarch64 targets: backend compiled out.

namespace seghdc::hdc::simd {

const KernelBackend* neon_backend() { return nullptr; }

}  // namespace seghdc::hdc::simd

#endif
