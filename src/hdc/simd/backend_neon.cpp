// NEON backend for the aarch64 (Raspberry Pi) target.
//
// vcnt counts bits per byte; blocks of up to 31 vectors accumulate
// those byte counts in a u8 lane accumulator (31 * 8 = 248 < 255, no
// overflow) before one horizontal vaddlvq_u8 fold — one widen per
// block instead of one per vector. Hamming and the cosine plane
// primitive fuse their XOR/AND into the same pass. NEON is baseline on
// aarch64, so no runtime probe or target attribute is needed; on other
// architectures the accessor returns nullptr.
#include "src/hdc/simd/backends_internal.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace seghdc::hdc::simd {

namespace {

/// Popcount of `size` words produced by `vec(i)` (two words per
/// uint8x16_t), blocked to amortise the horizontal fold.
template <typename VecFn>
inline std::uint64_t neon_count(std::size_t vectors, VecFn vec) {
  std::uint64_t total = 0;
  std::size_t v = 0;
  while (v < vectors) {
    const std::size_t block_end = std::min(vectors, v + 31);
    uint8x16_t acc = vdupq_n_u8(0);
    for (; v < block_end; ++v) {
      acc = vaddq_u8(acc, vcntq_u8(vec(v)));
    }
    total += vaddlvq_u8(acc);
  }
  return total;
}

inline uint8x16_t load_u8x16(const std::uint64_t* p) {
  return vreinterpretq_u8_u64(vld1q_u64(p));
}

std::size_t neon_popcount(std::span<const std::uint64_t> words) {
  const std::size_t vectors = words.size() / 2;
  std::uint64_t total = neon_count(
      vectors, [&](std::size_t v) { return load_u8x16(&words[2 * v]); });
  for (std::size_t i = 2 * vectors; i < words.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return static_cast<std::size_t>(total);
}

std::size_t neon_hamming(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b) {
  const std::size_t vectors = a.size() / 2;
  std::uint64_t total = neon_count(vectors, [&](std::size_t v) {
    return veorq_u8(load_u8x16(&a[2 * v]), load_u8x16(&b[2 * v]));
  });
  for (std::size_t i = 2 * vectors; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return static_cast<std::size_t>(total);
}

std::size_t neon_and_popcount(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) {
  const std::size_t vectors = a.size() / 2;
  std::uint64_t total = neon_count(vectors, [&](std::size_t v) {
    return vandq_u8(load_u8x16(&a[2 * v]), load_u8x16(&b[2 * v]));
  });
  for (std::size_t i = 2 * vectors; i < a.size(); ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

void neon_xor_bind(std::span<std::uint64_t> dst,
                   std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> b) {
  std::size_t i = 0;
  for (; i + 2 <= dst.size(); i += 2) {
    vst1q_u64(&dst[i], veorq_u64(vld1q_u64(&a[i]), vld1q_u64(&b[i])));
  }
  for (; i < dst.size(); ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

bool always_available() { return true; }

const KernelBackend kNeonBackend{
    .name = "neon",
    .priority = 30,
    .available = always_available,
    .popcount = neon_popcount,
    .hamming = neon_hamming,
    .and_popcount = neon_and_popcount,
    .xor_bind = neon_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
};

}  // namespace

const KernelBackend* neon_backend() { return &kNeonBackend; }

}  // namespace seghdc::hdc::simd

#else  // non-aarch64 targets: backend compiled out.

namespace seghdc::hdc::simd {

const KernelBackend* neon_backend() { return nullptr; }

}  // namespace seghdc::hdc::simd

#endif
