// The scalar reference backend: one std::popcount / XOR per word,
// exactly the pre-subsystem kernel code. Every other backend is tested
// for bit-identical agreement against this one.
#include "src/hdc/simd/backends_internal.hpp"

#include "src/hdc/bitops.hpp"

namespace seghdc::hdc::simd {

namespace detail {

std::int64_t scalar_dot_counts(std::span<const std::int64_t> counts,
                               std::span<const std::uint64_t> words) {
  std::int64_t sum = 0;
  kernels::for_each_set_bit_words(words,
                                  [&](std::size_t i) { sum += counts[i]; });
  return sum;
}

std::int64_t scalar_accumulate_words(std::span<std::int64_t> counts,
                                     std::span<const std::uint64_t> words,
                                     std::int64_t weight) {
  std::int64_t dot = 0;
  kernels::for_each_set_bit_words(words, [&](std::size_t i) {
    dot += counts[i];
    counts[i] += weight;
  });
  return dot;
}

void scalar_build_planes(std::span<const std::int64_t> counts,
                         std::span<std::uint64_t> storage,
                         std::size_t words_per_plane) {
  for (std::size_t i = 0; i < counts.size(); ++i) {
    auto bits = static_cast<std::uint64_t>(counts[i]);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    const std::size_t word = i / 64;
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      storage[b * words_per_plane + word] |= mask;
    }
  }
}

}  // namespace detail

namespace {

bool always_available() { return true; }

const KernelBackend kScalarBackend{
    .name = "scalar",
    .priority = 0,
    .available = always_available,
    .popcount = detail::scalar_popcount,
    .hamming = detail::scalar_hamming,
    .and_popcount = detail::scalar_and_popcount,
    .hamming_bounded = detail::scalar_hamming_bounded,
    .and_popcount_capped = detail::scalar_and_popcount_capped,
    .xor_bind = detail::scalar_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
    .accumulate_words = detail::scalar_accumulate_words,
    .build_planes = detail::scalar_build_planes,
};

}  // namespace

const KernelBackend* scalar_backend() { return &kScalarBackend; }

}  // namespace seghdc::hdc::simd
