// The scalar reference backend: one std::popcount / XOR per word,
// exactly the pre-subsystem kernel code. Every other backend is tested
// for bit-identical agreement against this one.
#include "src/hdc/simd/backends_internal.hpp"

#include "src/hdc/bitops.hpp"

namespace seghdc::hdc::simd {

namespace detail {

std::int64_t scalar_dot_counts(std::span<const std::int64_t> counts,
                               std::span<const std::uint64_t> words) {
  std::int64_t sum = 0;
  kernels::for_each_set_bit_words(words,
                                  [&](std::size_t i) { sum += counts[i]; });
  return sum;
}

}  // namespace detail

namespace {

bool always_available() { return true; }

const KernelBackend kScalarBackend{
    .name = "scalar",
    .priority = 0,
    .available = always_available,
    .popcount = detail::scalar_popcount,
    .hamming = detail::scalar_hamming,
    .and_popcount = detail::scalar_and_popcount,
    .xor_bind = detail::scalar_xor_bind,
    .dot_counts = detail::scalar_dot_counts,
};

}  // namespace

const KernelBackend* scalar_backend() { return &kScalarBackend; }

}  // namespace seghdc::hdc::simd
