// Subsystem-internal glue between the backend TUs and the registry:
// accessor declarations (one per TU — ISA-gated TUs return nullptr when
// compiled out) and the shared scalar kernels that every backend reuses
// for short spans, vector tails, and the gather-style dot_counts.
#ifndef SEGHDC_HDC_SIMD_BACKENDS_INTERNAL_HPP
#define SEGHDC_HDC_SIMD_BACKENDS_INTERNAL_HPP

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/hdc/simd/backend.hpp"

namespace seghdc::hdc::simd {

/// The scalar reference backend; always available.
const KernelBackend* scalar_backend();

/// The portable unrolled Harley-Seal popcount backend; always available.
const KernelBackend* harley_seal_backend();

/// The AVX2 backend, or nullptr when this binary targets a non-x86-64
/// architecture. Registered with a cpuid `available()` probe.
const KernelBackend* avx2_backend();

/// The NEON backend, or nullptr when this binary targets a non-aarch64
/// architecture.
const KernelBackend* neon_backend();

namespace detail {

/// Scalar kernels shared across backends (tail handling + reference).
inline std::size_t scalar_popcount(std::span<const std::uint64_t> words) {
  std::size_t count = 0;
  for (const auto word : words) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

inline std::size_t scalar_hamming(std::span<const std::uint64_t> a,
                                  std::span<const std::uint64_t> b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

inline std::size_t scalar_and_popcount(std::span<const std::uint64_t> a,
                                       std::span<const std::uint64_t> b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

/// Reference bounded Hamming: plain per-word popcounts with the abort
/// condition (running >= bound) checked every 8 words — the smallest
/// granularity any backend uses, and the exactness reference the
/// property suite holds the vector backends to. A scan whose final
/// distance is < bound can never abort (running is non-decreasing), so
/// the BoundedScan contract holds by construction.
inline BoundedScan scalar_hamming_bounded(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b,
                                          std::size_t bound) {
  std::size_t count = 0;
  std::size_t w = 0;
  while (w < a.size()) {
    if (count >= bound) {
      return BoundedScan{count, w};
    }
    const std::size_t block_end = std::min(a.size(), w + 8);
    for (; w < block_end; ++w) {
      count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
    }
  }
  return BoundedScan{count, w};
}

/// Reference capped AND+popcount: aborts once running + 64 * remaining
/// <= cap (the final count provably cannot exceed cap), checked every 8
/// words. A scan whose final count is > cap can never abort, so the
/// BoundedScan contract holds by construction.
inline BoundedScan scalar_and_popcount_capped(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    std::size_t cap) {
  std::size_t count = 0;
  std::size_t w = 0;
  while (w < a.size()) {
    const std::size_t remaining = 64 * (a.size() - w);
    if (count + remaining <= cap) {
      return BoundedScan{count, w};
    }
    const std::size_t block_end = std::min(a.size(), w + 8);
    for (; w < block_end; ++w) {
      count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
  }
  return BoundedScan{count, w};
}

inline void scalar_xor_bind(std::span<std::uint64_t> dst,
                            std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) {
  for (std::size_t w = 0; w < dst.size(); ++w) {
    dst[w] = a[w] ^ b[w];
  }
}

/// Bit-serial count gather (sum of counts at set-bit indices). Shared by
/// every backend's dot_counts slot: the access pattern is a gather, so
/// word-level SIMD does not apply — the bandwidth-bound alternative is
/// the CountPlanes formulation in src/hdc/kernels.hpp.
std::int64_t scalar_dot_counts(std::span<const std::int64_t> counts,
                               std::span<const std::uint64_t> words);

/// Set-bit-walk weighted accumulate — the reference for accumulate_words
/// and the shared tail handler for the vectorised backends (it only
/// touches counts at set-bit indices, so partial trailing blocks stay in
/// bounds under the zero-padding invariant).
std::int64_t scalar_accumulate_words(std::span<std::int64_t> counts,
                                     std::span<const std::uint64_t> words,
                                     std::int64_t weight);

/// Per-count countr_zero scatter — the reference for build_planes and
/// the shared tail handler for partial 64-count blocks.
void scalar_build_planes(std::span<const std::int64_t> counts,
                         std::span<std::uint64_t> storage,
                         std::size_t words_per_plane);

}  // namespace detail

}  // namespace seghdc::hdc::simd

#endif  // SEGHDC_HDC_SIMD_BACKENDS_INTERNAL_HPP
