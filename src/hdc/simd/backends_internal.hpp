// Subsystem-internal glue between the backend TUs and the registry:
// accessor declarations (one per TU — ISA-gated TUs return nullptr when
// compiled out) and the shared scalar kernels that every backend reuses
// for short spans, vector tails, and the gather-style dot_counts.
#ifndef SEGHDC_HDC_SIMD_BACKENDS_INTERNAL_HPP
#define SEGHDC_HDC_SIMD_BACKENDS_INTERNAL_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/hdc/simd/backend.hpp"

namespace seghdc::hdc::simd {

/// The scalar reference backend; always available.
const KernelBackend* scalar_backend();

/// The portable unrolled Harley-Seal popcount backend; always available.
const KernelBackend* harley_seal_backend();

/// The AVX2 backend, or nullptr when this binary targets a non-x86-64
/// architecture. Registered with a cpuid `available()` probe.
const KernelBackend* avx2_backend();

/// The NEON backend, or nullptr when this binary targets a non-aarch64
/// architecture.
const KernelBackend* neon_backend();

namespace detail {

/// Scalar kernels shared across backends (tail handling + reference).
inline std::size_t scalar_popcount(std::span<const std::uint64_t> words) {
  std::size_t count = 0;
  for (const auto word : words) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

inline std::size_t scalar_hamming(std::span<const std::uint64_t> a,
                                  std::span<const std::uint64_t> b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

inline std::size_t scalar_and_popcount(std::span<const std::uint64_t> a,
                                       std::span<const std::uint64_t> b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

inline void scalar_xor_bind(std::span<std::uint64_t> dst,
                            std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) {
  for (std::size_t w = 0; w < dst.size(); ++w) {
    dst[w] = a[w] ^ b[w];
  }
}

/// Bit-serial count gather (sum of counts at set-bit indices). Shared by
/// every backend's dot_counts slot: the access pattern is a gather, so
/// word-level SIMD does not apply — the bandwidth-bound alternative is
/// the CountPlanes formulation in src/hdc/kernels.hpp.
std::int64_t scalar_dot_counts(std::span<const std::int64_t> counts,
                               std::span<const std::uint64_t> words);

/// Set-bit-walk weighted accumulate — the reference for accumulate_words
/// and the shared tail handler for the vectorised backends (it only
/// touches counts at set-bit indices, so partial trailing blocks stay in
/// bounds under the zero-padding invariant).
std::int64_t scalar_accumulate_words(std::span<std::int64_t> counts,
                                     std::span<const std::uint64_t> words,
                                     std::int64_t weight);

/// Per-count countr_zero scatter — the reference for build_planes and
/// the shared tail handler for partial 64-count blocks.
void scalar_build_planes(std::span<const std::int64_t> counts,
                         std::span<std::uint64_t> storage,
                         std::size_t words_per_plane);

}  // namespace detail

}  // namespace seghdc::hdc::simd

#endif  // SEGHDC_HDC_SIMD_BACKENDS_INTERNAL_HPP
