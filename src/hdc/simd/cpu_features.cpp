#include "src/hdc/simd/cpu_features.hpp"

namespace seghdc::hdc::simd {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

bool cpu_has_neon() { return false; }

std::string cpu_feature_string() {
  std::string features = "x86-64 (";
  bool first = true;
  const auto append = [&](bool supported, const char* label) {
    if (supported) {
      if (!first) {
        features += ' ';
      }
      features += label;
      first = false;
    }
  };
  // __builtin_cpu_supports requires literal feature names.
  append(__builtin_cpu_supports("popcnt") != 0, "popcnt");
  append(__builtin_cpu_supports("sse4.2") != 0, "sse4.2");
  append(__builtin_cpu_supports("avx2") != 0, "avx2");
  append(__builtin_cpu_supports("avx512f") != 0, "avx512f");
  if (first) {
    features += "baseline";
  }
  features += ')';
  return features;
}

#elif defined(__aarch64__)

bool cpu_has_avx2() { return false; }

bool cpu_has_neon() { return true; }

std::string cpu_feature_string() { return "aarch64 (neon)"; }

#else

bool cpu_has_avx2() { return false; }

bool cpu_has_neon() { return false; }

std::string cpu_feature_string() { return "generic (no SIMD probes)"; }

#endif

}  // namespace seghdc::hdc::simd
