// Runtime CPU feature probes backing backend `available()` checks and
// the bench report headers. x86 features come from cpuid
// (__builtin_cpu_supports); NEON is architecturally mandatory on
// aarch64, so its probe is compile-time.
#ifndef SEGHDC_HDC_SIMD_CPU_FEATURES_HPP
#define SEGHDC_HDC_SIMD_CPU_FEATURES_HPP

#include <string>

namespace seghdc::hdc::simd {

/// True when the executing CPU supports AVX2 (always false off x86-64).
bool cpu_has_avx2();

/// True on aarch64 (NEON is baseline there), false elsewhere.
bool cpu_has_neon();

/// Human-readable architecture + feature summary for report headers,
/// e.g. "x86-64 (popcnt avx2 avx512f)" or "aarch64 (neon)".
std::string cpu_feature_string();

}  // namespace seghdc::hdc::simd

#endif  // SEGHDC_HDC_SIMD_CPU_FEATURES_HPP
