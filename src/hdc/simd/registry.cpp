// Backend registry + runtime dispatch.
//
// The registered set is assembled here from explicit per-TU accessors
// (no static-initialisation-order tricks): ISA-gated TUs return nullptr
// when compiled out and are simply skipped. Selection resolves lazily on
// the first dispatched kernel call — SEGHDC_KERNEL_BACKEND when set,
// otherwise the highest-priority backend whose runtime probe passes —
// and is cached in an atomic so the hot loops pay one relaxed load per
// kernel call.
#include "src/hdc/simd/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/hdc/simd/backends_internal.hpp"
#include "src/hdc/simd/cpu_features.hpp"

namespace seghdc::hdc::simd {

namespace {

const std::vector<const KernelBackend*>& registry() {
  static const std::vector<const KernelBackend*> backends = [] {
    std::vector<const KernelBackend*> list;
    for (const KernelBackend* backend :
         {scalar_backend(), harley_seal_backend(), avx2_backend(),
          neon_backend()}) {
      if (backend != nullptr) {
        list.push_back(backend);
      }
    }
    return list;
  }();
  return backends;
}

const KernelBackend& auto_select() {
  const KernelBackend* best = scalar_backend();
  for (const KernelBackend* backend : registry()) {
    if (backend->priority > best->priority && backend->available()) {
      best = backend;
    }
  }
  return *best;
}

/// Resolves `name` to a registered, available backend; "auto" runs the
/// priority scan. Throws std::invalid_argument otherwise — a forced
/// backend silently falling back would make the CI backend matrix
/// meaningless. `source` names the override channel for the message.
const KernelBackend& resolve_name(std::string_view name,
                                  const char* source) {
  if (name == "auto") {
    return auto_select();
  }
  const KernelBackend* backend = find_backend(name);
  if (backend == nullptr) {
    throw std::invalid_argument(std::string(source) +
                                " names unknown kernel backend '" +
                                std::string(name) + "'");
  }
  if (!backend->available()) {
    throw std::invalid_argument(std::string(source) + " backend '" +
                                std::string(name) +
                                "' is not available on this CPU (" +
                                cpu_feature_string() + ")");
  }
  return *backend;
}

const KernelBackend& resolve_initial() {
  const char* env = std::getenv("SEGHDC_KERNEL_BACKEND");
  if (env != nullptr && *env != '\0') {
    return resolve_name(env, "SEGHDC_KERNEL_BACKEND");
  }
  return auto_select();
}

std::atomic<const KernelBackend*> g_active{nullptr};

}  // namespace

std::span<const KernelBackend* const> registered_backends() {
  return registry();
}

const KernelBackend* find_backend(std::string_view name) {
  for (const KernelBackend* backend : registry()) {
    if (name == backend->name) {
      return backend;
    }
  }
  return nullptr;
}

const KernelBackend& active_backend() {
  const KernelBackend* backend = g_active.load(std::memory_order_acquire);
  if (backend == nullptr) {
    // A first-use race resolves to the same deterministic answer on
    // every thread, so the last store winning is harmless.
    backend = &resolve_initial();
    g_active.store(backend, std::memory_order_release);
  }
  return *backend;
}

const KernelBackend& force_backend(std::string_view name) {
  const KernelBackend& backend = resolve_name(name, "kernel backend override");
  g_active.store(&backend, std::memory_order_release);
  return backend;
}

void reset_backend_selection() {
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace seghdc::hdc::simd
