#include "src/imaging/color.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::img {

std::uint8_t luma(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  const double value = 0.299 * r + 0.587 * g + 0.114 * b;
  return static_cast<std::uint8_t>(value + 0.5);
}

ImageU8 to_gray(const ImageU8& image) {
  if (image.channels() == 1) {
    return image;
  }
  util::expects(image.channels() == 3, "to_gray supports 1 or 3 channels");
  ImageU8 gray(image.width(), image.height(), 1);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      gray(x, y) = luma(image(x, y, 0), image(x, y, 1), image(x, y, 2));
    }
  }
  return gray;
}

ImageU8 to_rgb(const ImageU8& image) {
  if (image.channels() == 3) {
    return image;
  }
  util::expects(image.channels() == 1, "to_rgb supports 1 or 3 channels");
  ImageU8 rgb(image.width(), image.height(), 3);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const std::uint8_t v = image(x, y);
      rgb(x, y, 0) = v;
      rgb(x, y, 1) = v;
      rgb(x, y, 2) = v;
    }
  }
  return rgb;
}

std::uint8_t pixel_intensity(const ImageU8& image, std::size_t x,
                             std::size_t y) {
  if (image.channels() == 1) {
    return image.at(x, y);
  }
  util::expects(image.channels() == 3,
                "pixel_intensity supports 1 or 3 channels");
  return luma(image.at(x, y, 0), image.at(x, y, 1), image.at(x, y, 2));
}

std::array<std::uint8_t, 3> label_color(std::uint32_t label) {
  // Hand-picked high-contrast palette for the first few labels (all the
  // paper's experiments use k <= 3), then a golden-ratio hue walk.
  static constexpr std::array<std::array<std::uint8_t, 3>, 8> kPalette = {{
      {0, 0, 0},        // background: black
      {255, 255, 255},  // foreground: white
      {230, 60, 60},    // red
      {60, 120, 230},   // blue
      {60, 200, 90},    // green
      {240, 180, 40},   // amber
      {180, 80, 220},   // purple
      {80, 220, 220},   // cyan
  }};
  if (label < kPalette.size()) {
    return kPalette[label];
  }
  // Deterministic pseudo-hue for any further labels.
  const std::uint32_t h = label * 2654435761u;
  return {static_cast<std::uint8_t>(64 + (h & 0x7F)),
          static_cast<std::uint8_t>(64 + ((h >> 8) & 0x7F)),
          static_cast<std::uint8_t>(64 + ((h >> 16) & 0x7F))};
}

ImageU8 colorize_labels(const LabelMap& labels) {
  util::expects(labels.channels() == 1, "colorize_labels expects 1 channel");
  ImageU8 rgb(labels.width(), labels.height(), 3);
  for (std::size_t y = 0; y < labels.height(); ++y) {
    for (std::size_t x = 0; x < labels.width(); ++x) {
      const auto color = label_color(labels(x, y));
      rgb(x, y, 0) = color[0];
      rgb(x, y, 1) = color[1];
      rgb(x, y, 2) = color[2];
    }
  }
  return rgb;
}

ImageU8 labels_to_mask(const LabelMap& labels,
                       std::uint32_t foreground_mask) {
  util::expects(labels.channels() == 1, "labels_to_mask expects 1 channel");
  ImageU8 mask(labels.width(), labels.height(), 1);
  for (std::size_t y = 0; y < labels.height(); ++y) {
    for (std::size_t x = 0; x < labels.width(); ++x) {
      const std::uint32_t label = labels(x, y);
      const bool fg =
          label < 32 && ((foreground_mask >> label) & 1u) != 0;
      mask(x, y) = fg ? 255 : 0;
    }
  }
  return mask;
}

}  // namespace seghdc::img
