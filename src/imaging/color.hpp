// Color conversions and label-map visualisation helpers.
#ifndef SEGHDC_IMAGING_COLOR_HPP
#define SEGHDC_IMAGING_COLOR_HPP

#include <array>
#include <cstdint>

#include "src/imaging/image.hpp"

namespace seghdc::img {

/// Rec. 601 luma of an RGB triple, rounded to nearest.
std::uint8_t luma(std::uint8_t r, std::uint8_t g, std::uint8_t b);

/// 3-channel -> 1-channel luma conversion. 1-channel input is copied.
ImageU8 to_gray(const ImageU8& image);

/// 1-channel -> 3-channel replication. 3-channel input is copied.
ImageU8 to_rgb(const ImageU8& image);

/// Scalar intensity of the pixel at (x, y): the value itself for
/// single-channel images, luma for RGB. Used by the clusterer's
/// "largest color difference" centroid initialisation.
std::uint8_t pixel_intensity(const ImageU8& image, std::size_t x,
                             std::size_t y);

/// A visually distinct color for cluster `label` (stable palette;
/// label 0 is black so binary masks render conventionally).
std::array<std::uint8_t, 3> label_color(std::uint32_t label);

/// Renders a label map as an RGB image using label_color().
ImageU8 colorize_labels(const LabelMap& labels);

/// Renders a label map as a binary mask: pixels whose label is in
/// `foreground_mask` (bit i set = label i is foreground) become 255.
ImageU8 labels_to_mask(const LabelMap& labels, std::uint32_t foreground_mask);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_COLOR_HPP
