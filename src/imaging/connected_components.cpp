#include "src/imaging/connected_components.hpp"

#include <numeric>

#include "src/util/contracts.hpp"

namespace seghdc::img {

namespace {

/// Flat union-find over pixel indices with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra != rb) {
      // Attach the larger root index under the smaller one so the
      // raster-order numbering below stays deterministic.
      if (ra < rb) {
        parent_[rb] = ra;
      } else {
        parent_[ra] = rb;
      }
    }
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ComponentResult connected_components(const ImageU8& mask,
                                     Connectivity connectivity) {
  util::expects(mask.channels() == 1,
                "connected_components expects a 1-channel mask");
  const std::size_t width = mask.width();
  const std::size_t height = mask.height();
  UnionFind uf(width * height);

  const auto is_fg = [&](std::size_t x, std::size_t y) {
    return mask(x, y) != 0;
  };

  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (!is_fg(x, y)) {
        continue;
      }
      const std::size_t index = y * width + x;
      if (x > 0 && is_fg(x - 1, y)) {
        uf.unite(index, index - 1);
      }
      if (y > 0 && is_fg(x, y - 1)) {
        uf.unite(index, index - width);
      }
      if (connectivity == Connectivity::kEight && y > 0) {
        if (x > 0 && is_fg(x - 1, y - 1)) {
          uf.unite(index, index - width - 1);
        }
        if (x + 1 < width && is_fg(x + 1, y - 1)) {
          uf.unite(index, index - width + 1);
        }
      }
    }
  }

  ComponentResult result;
  result.labels = LabelMap(width, height, 1, 0);
  std::vector<std::uint32_t> root_label(width * height, 0);
  std::uint32_t next_label = 0;

  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (!is_fg(x, y)) {
        continue;
      }
      const std::size_t root = uf.find(y * width + x);
      if (root_label[root] == 0) {
        root_label[root] = ++next_label;
        ComponentStats stats;
        stats.label = next_label;
        stats.min_x = stats.max_x = x;
        stats.min_y = stats.max_y = y;
        result.components.push_back(stats);
      }
      const std::uint32_t label = root_label[root];
      result.labels(x, y) = label;
      auto& stats = result.components[label - 1];
      ++stats.area;
      stats.min_x = std::min(stats.min_x, x);
      stats.max_x = std::max(stats.max_x, x);
      stats.min_y = std::min(stats.min_y, y);
      stats.max_y = std::max(stats.max_y, y);
      stats.centroid_x += static_cast<double>(x);
      stats.centroid_y += static_cast<double>(y);
    }
  }
  for (auto& stats : result.components) {
    stats.centroid_x /= static_cast<double>(stats.area);
    stats.centroid_y /= static_cast<double>(stats.area);
  }
  return result;
}

}  // namespace seghdc::img
