// Connected-component labeling of binary masks (union-find). Used by the
// dataset generators for instance statistics and by tests to validate
// synthetic ground truth ("N nuclei in, N components out").
#ifndef SEGHDC_IMAGING_CONNECTED_COMPONENTS_HPP
#define SEGHDC_IMAGING_CONNECTED_COMPONENTS_HPP

#include <cstdint>
#include <vector>

#include "src/imaging/image.hpp"

namespace seghdc::img {

enum class Connectivity { kFour, kEight };

struct ComponentStats {
  std::uint32_t label = 0;    ///< 1-based component label
  std::size_t area = 0;       ///< pixel count
  std::size_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;  ///< bounding box
  double centroid_x = 0.0, centroid_y = 0.0;
};

struct ComponentResult {
  LabelMap labels;  ///< 0 = background, components numbered from 1
  std::vector<ComponentStats> components;  ///< index i = label i+1
};

/// Labels the connected components of non-zero pixels in a 1-channel
/// mask. Deterministic: components are numbered in raster-scan order of
/// their first pixel.
ComponentResult connected_components(
    const ImageU8& mask, Connectivity connectivity = Connectivity::kEight);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_CONNECTED_COMPONENTS_HPP
