#include "src/imaging/draw.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace seghdc::img {

double BlobShape::radial_fraction(double x, double y) const {
  const double dx = x - center_x;
  const double dy = y - center_y;
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);
  // Rotate into the blob frame, normalise by the semi-axes.
  const double u = (dx * cos_a + dy * sin_a) / radius_x;
  const double v = (-dx * sin_a + dy * cos_a) / radius_y;
  const double base = std::sqrt(u * u + v * v);
  if (harmonic_amplitudes.empty()) {
    return base;
  }
  const double theta = std::atan2(v, u);
  double modulation = 1.0;
  for (std::size_t k = 0; k < harmonic_amplitudes.size(); ++k) {
    const double phase =
        k < harmonic_phases.size() ? harmonic_phases[k] : 0.0;
    modulation += harmonic_amplitudes[k] *
                  std::sin(static_cast<double>(k + 2) * theta + phase);
  }
  // Guard against degenerate negative modulation from extreme amplitudes.
  modulation = std::max(0.2, modulation);
  return base / modulation;
}

BlobShape BlobShape::random(double cx, double cy, double radius,
                            double max_eccentricity, double irregularity,
                            util::Rng& rng) {
  util::expects(radius > 0.0, "BlobShape::random radius must be positive");
  util::expects(max_eccentricity >= 0.0 && max_eccentricity < 1.0,
                "BlobShape::random eccentricity must be in [0, 1)");
  BlobShape shape;
  shape.center_x = cx;
  shape.center_y = cy;
  const double ecc = rng.next_double_in(0.0, max_eccentricity);
  shape.radius_x = radius * (1.0 + ecc);
  shape.radius_y = radius * (1.0 - ecc);
  shape.angle = rng.next_double_in(0.0, 2.0 * 3.14159265358979323846);
  if (irregularity > 0.0) {
    const std::size_t harmonics = 3;
    shape.harmonic_amplitudes.resize(harmonics);
    shape.harmonic_phases.resize(harmonics);
    for (std::size_t k = 0; k < harmonics; ++k) {
      // Higher harmonics get smaller amplitudes to keep boundaries smooth.
      shape.harmonic_amplitudes[k] = rng.next_double_in(
          0.0, irregularity / static_cast<double>(k + 1));
      shape.harmonic_phases[k] =
          rng.next_double_in(0.0, 2.0 * 3.14159265358979323846);
    }
  }
  return shape;
}

void fill_blob(ImageU8& image, ImageU8* mask, const BlobShape& shape,
               const ShadeFn& shade) {
  util::expects(static_cast<bool>(shade), "fill_blob requires a shader");
  if (mask != nullptr) {
    util::expects(mask->channels() == 1 && mask->width() == image.width() &&
                      mask->height() == image.height(),
                  "fill_blob mask must be a 1-channel image of equal size");
  }
  // Conservative bounding box: max radius * (1 + total harmonic swing).
  double swing = 1.0;
  for (const double a : shape.harmonic_amplitudes) {
    swing += std::abs(a);
  }
  const double reach = std::max(shape.radius_x, shape.radius_y) * swing + 1.0;
  const auto x_begin = static_cast<std::ptrdiff_t>(
      std::floor(shape.center_x - reach));
  const auto x_end =
      static_cast<std::ptrdiff_t>(std::ceil(shape.center_x + reach));
  const auto y_begin = static_cast<std::ptrdiff_t>(
      std::floor(shape.center_y - reach));
  const auto y_end =
      static_cast<std::ptrdiff_t>(std::ceil(shape.center_y + reach));

  for (std::ptrdiff_t y = std::max<std::ptrdiff_t>(0, y_begin);
       y < std::min<std::ptrdiff_t>(
               static_cast<std::ptrdiff_t>(image.height()), y_end);
       ++y) {
    for (std::ptrdiff_t x = std::max<std::ptrdiff_t>(0, x_begin);
         x < std::min<std::ptrdiff_t>(
                 static_cast<std::ptrdiff_t>(image.width()), x_end);
         ++x) {
      const double fraction = shape.radial_fraction(
          static_cast<double>(x), static_cast<double>(y));
      if (fraction > 1.0) {
        continue;
      }
      const auto ux = static_cast<std::size_t>(x);
      const auto uy = static_cast<std::size_t>(y);
      for (std::size_t c = 0; c < image.channels(); ++c) {
        image(ux, uy, c) = shade(fraction, c, image(ux, uy, c));
      }
      if (mask != nullptr) {
        (*mask)(ux, uy) = 255;
      }
    }
  }
}

ShadeFn flat_shade(std::uint8_t value, double rim) {
  return [value, rim](double fraction, std::size_t, std::uint8_t current) {
    if (rim <= 0.0 || fraction < 1.0 - rim) {
      return value;
    }
    // Linear blend from the blob value to the underlying background
    // across the rim band.
    const double t = (fraction - (1.0 - rim)) / rim;
    const double blended = value + (current - value) * t;
    return static_cast<std::uint8_t>(std::clamp(blended + 0.5, 0.0, 255.0));
  };
}

ShadeFn gradient_shade(std::uint8_t center_value, std::uint8_t edge_value) {
  return [center_value, edge_value](double fraction, std::size_t,
                                    std::uint8_t) {
    const double blended =
        center_value + (edge_value - center_value) * fraction;
    return static_cast<std::uint8_t>(std::clamp(blended + 0.5, 0.0, 255.0));
  };
}

bool overlaps_any(const BlobShape& shape,
                  const std::vector<BlobShape>& existing, double min_gap) {
  const double r1 = std::max(shape.radius_x, shape.radius_y);
  for (const auto& other : existing) {
    const double r2 = std::max(other.radius_x, other.radius_y);
    const double dx = shape.center_x - other.center_x;
    const double dy = shape.center_y - other.center_y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist < r1 + r2 + min_gap) {
      return true;
    }
  }
  return false;
}

}  // namespace seghdc::img
