// Rasterisation of the organic shapes the synthetic datasets are built
// from: rotated ellipses and "blobs" (ellipses with a low-frequency radial
// perturbation that mimics nuclear membrane irregularity).
#ifndef SEGHDC_IMAGING_DRAW_HPP
#define SEGHDC_IMAGING_DRAW_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "src/imaging/image.hpp"
#include "src/util/rng.hpp"

namespace seghdc::img {

/// Geometry of a blob: a rotated ellipse whose radius is modulated by a
/// small sum of angular harmonics, r(theta) *= 1 + sum_k a_k sin(k theta
/// + phi_k). With all amplitudes zero this is an exact ellipse.
struct BlobShape {
  double center_x = 0.0;
  double center_y = 0.0;
  double radius_x = 1.0;   ///< semi-axis along the blob's own x
  double radius_y = 1.0;   ///< semi-axis along the blob's own y
  double angle = 0.0;      ///< rotation of the axes, radians
  std::vector<double> harmonic_amplitudes;  ///< a_k for k = 2, 3, ...
  std::vector<double> harmonic_phases;      ///< phi_k, same length

  /// Signed "radial fraction" of point (x, y): < 1 inside, 1 on the
  /// boundary, > 1 outside. Used both for hit-testing and shading.
  double radial_fraction(double x, double y) const;

  /// Random blob centered at (cx, cy) with mean radius `radius`,
  /// eccentricity up to `max_eccentricity` (0 = circle), and boundary
  /// irregularity `irregularity` (relative amplitude of the harmonics).
  static BlobShape random(double cx, double cy, double radius,
                          double max_eccentricity, double irregularity,
                          util::Rng& rng);
};

/// Per-pixel, per-channel shading callback: receives the radial fraction
/// in [0, 1] (0 = center, 1 = boundary), the channel index, and the
/// current value; returns the new value.
using ShadeFn = std::function<std::uint8_t(
    double radial_fraction, std::size_t channel, std::uint8_t current)>;

/// Rasterises `shape` into `image` (all channels receive the shaded
/// value) and, when `mask` is non-null, sets covered mask pixels to 255.
void fill_blob(ImageU8& image, ImageU8* mask, const BlobShape& shape,
               const ShadeFn& shade);

/// Convenience shading: flat interior `value` with a soft linear rim of
/// relative width `rim` blending toward the existing background.
ShadeFn flat_shade(std::uint8_t value, double rim);

/// Convenience shading: radial gradient from `center_value` to
/// `edge_value` (linear in the radial fraction).
ShadeFn gradient_shade(std::uint8_t center_value, std::uint8_t edge_value);

/// True when `shape`'s bounding circle (mean radius * 1.5) overlaps any
/// of `existing`'s bounding circles closer than `min_gap` pixels.
bool overlaps_any(const BlobShape& shape,
                  const std::vector<BlobShape>& existing, double min_gap);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_DRAW_HPP
