#include "src/imaging/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "src/util/contracts.hpp"

namespace seghdc::img {

namespace {

std::vector<double> gaussian_kernel(double sigma) {
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (auto& v : kernel) {
    v /= sum;
  }
  return kernel;
}

template <typename T>
Image<T> gaussian_blur_impl(const Image<T>& image, double sigma) {
  if (sigma <= 0.0) {
    return image;
  }
  const auto kernel = gaussian_kernel(sigma);
  const int radius = static_cast<int>(kernel.size() / 2);
  Image<double> horizontal(image.width(), image.height(), image.channels());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      for (std::size_t c = 0; c < image.channels(); ++c) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          acc += kernel[static_cast<std::size_t>(k + radius)] *
                 static_cast<double>(
                     image.clamped(static_cast<std::ptrdiff_t>(x) + k,
                                   static_cast<std::ptrdiff_t>(y), c));
        }
        horizontal(x, y, c) = acc;
      }
    }
  }
  Image<T> result(image.width(), image.height(), image.channels());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      for (std::size_t c = 0; c < image.channels(); ++c) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          acc += kernel[static_cast<std::size_t>(k + radius)] *
                 horizontal.clamped(static_cast<std::ptrdiff_t>(x),
                                    static_cast<std::ptrdiff_t>(y) + k, c);
        }
        if constexpr (std::is_same_v<T, std::uint8_t>) {
          result(x, y, c) = static_cast<std::uint8_t>(
              std::clamp(acc + 0.5, 0.0, 255.0));
        } else {
          result(x, y, c) = static_cast<T>(acc);
        }
      }
    }
  }
  return result;
}

}  // namespace

ImageU8 gaussian_blur(const ImageU8& image, double sigma) {
  return gaussian_blur_impl(image, sigma);
}

ImageF32 gaussian_blur(const ImageF32& image, double sigma) {
  return gaussian_blur_impl(image, sigma);
}

ImageU8 box_blur(const ImageU8& image, std::size_t radius) {
  if (radius == 0) {
    return image;
  }
  const auto r = static_cast<std::ptrdiff_t>(radius);
  const double inv = 1.0 / static_cast<double>(2 * radius + 1);
  ImageU8 result(image.width(), image.height(), image.channels());
  Image<double> horizontal(image.width(), image.height(), image.channels());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      for (std::size_t c = 0; c < image.channels(); ++c) {
        double acc = 0.0;
        for (std::ptrdiff_t k = -r; k <= r; ++k) {
          acc += image.clamped(static_cast<std::ptrdiff_t>(x) + k,
                               static_cast<std::ptrdiff_t>(y), c);
        }
        horizontal(x, y, c) = acc * inv;
      }
    }
  }
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      for (std::size_t c = 0; c < image.channels(); ++c) {
        double acc = 0.0;
        for (std::ptrdiff_t k = -r; k <= r; ++k) {
          acc += horizontal.clamped(static_cast<std::ptrdiff_t>(x),
                                    static_cast<std::ptrdiff_t>(y) + k, c);
        }
        result(x, y, c) =
            static_cast<std::uint8_t>(std::clamp(acc * inv + 0.5, 0.0, 255.0));
      }
    }
  }
  return result;
}

std::uint8_t otsu_threshold(const ImageU8& image) {
  util::expects(image.channels() == 1, "otsu_threshold expects 1 channel");
  std::array<std::uint64_t, 256> histogram{};
  for (const auto v : image.pixels()) {
    ++histogram[v];
  }
  const double total = static_cast<double>(image.pixel_count());
  double sum_all = 0.0;
  for (int v = 0; v < 256; ++v) {
    sum_all += v * static_cast<double>(histogram[static_cast<std::size_t>(v)]);
  }
  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_between = -1.0;
  std::uint8_t best_threshold = 0;
  for (int t = 0; t < 256; ++t) {
    weight_bg += static_cast<double>(histogram[static_cast<std::size_t>(t)]);
    if (weight_bg == 0.0) {
      continue;
    }
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0.0) {
      break;
    }
    sum_bg += t * static_cast<double>(histogram[static_cast<std::size_t>(t)]);
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double between =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (between > best_between) {
      best_between = between;
      best_threshold = static_cast<std::uint8_t>(t);
    }
  }
  return best_threshold;
}

ImageU8 threshold(const ImageU8& image, std::uint8_t value) {
  util::expects(image.channels() == 1, "threshold expects 1 channel");
  ImageU8 mask(image.width(), image.height(), 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    mask.pixels()[i] = image.pixels()[i] > value ? 255 : 0;
  }
  return mask;
}

ImageU8 resize_bilinear(const ImageU8& image, std::size_t new_width,
                        std::size_t new_height) {
  util::expects(new_width > 0 && new_height > 0,
                "resize_bilinear target dimensions must be positive");
  ImageU8 result(new_width, new_height, image.channels());
  const double sx =
      static_cast<double>(image.width()) / static_cast<double>(new_width);
  const double sy =
      static_cast<double>(image.height()) / static_cast<double>(new_height);
  for (std::size_t y = 0; y < new_height; ++y) {
    const double fy = (static_cast<double>(y) + 0.5) * sy - 0.5;
    const auto y0 = static_cast<std::ptrdiff_t>(std::floor(fy));
    const double wy = fy - static_cast<double>(y0);
    for (std::size_t x = 0; x < new_width; ++x) {
      const double fx = (static_cast<double>(x) + 0.5) * sx - 0.5;
      const auto x0 = static_cast<std::ptrdiff_t>(std::floor(fx));
      const double wx = fx - static_cast<double>(x0);
      for (std::size_t c = 0; c < image.channels(); ++c) {
        const double v00 = image.clamped(x0, y0, c);
        const double v10 = image.clamped(x0 + 1, y0, c);
        const double v01 = image.clamped(x0, y0 + 1, c);
        const double v11 = image.clamped(x0 + 1, y0 + 1, c);
        const double top = v00 + (v10 - v00) * wx;
        const double bottom = v01 + (v11 - v01) * wx;
        result(x, y, c) = static_cast<std::uint8_t>(
            std::clamp(top + (bottom - top) * wy + 0.5, 0.0, 255.0));
      }
    }
  }
  return result;
}

LabelMap resize_nearest(const LabelMap& labels, std::size_t new_width,
                        std::size_t new_height) {
  util::expects(new_width > 0 && new_height > 0,
                "resize_nearest target dimensions must be positive");
  LabelMap result(new_width, new_height, 1);
  for (std::size_t y = 0; y < new_height; ++y) {
    const std::size_t sy =
        std::min(labels.height() - 1, y * labels.height() / new_height);
    for (std::size_t x = 0; x < new_width; ++x) {
      const std::size_t sx =
          std::min(labels.width() - 1, x * labels.width() / new_width);
      result(x, y) = labels(sx, sy);
    }
  }
  return result;
}

ImageU8 equalize_histogram(const ImageU8& image) {
  util::expects(image.channels() == 1,
                "equalize_histogram expects 1 channel");
  std::array<std::uint64_t, 256> histogram{};
  for (const auto v : image.pixels()) {
    ++histogram[v];
  }
  // CDF-based remap anchored at the first non-empty bin (the standard
  // formulation: cdf_min maps to 0, the max to 255).
  std::array<std::uint64_t, 256> cdf{};
  std::uint64_t running = 0;
  std::uint64_t cdf_min = 0;
  for (std::size_t v = 0; v < 256; ++v) {
    running += histogram[v];
    cdf[v] = running;
    if (cdf_min == 0 && histogram[v] != 0) {
      cdf_min = running;
    }
  }
  const std::uint64_t total = image.pixel_count();
  ImageU8 equalized(image.width(), image.height(), 1);
  if (total == cdf_min) {  // constant image: nothing to spread
    return image;
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    const std::uint64_t c = cdf[image.pixels()[i]];
    equalized.pixels()[i] = static_cast<std::uint8_t>(
        (c - cdf_min) * 255 / (total - cdf_min));
  }
  return equalized;
}

void apply_vignette(ImageU8& image, double edge_gain) {
  util::expects(edge_gain > 0.0 && edge_gain <= 1.0,
                "apply_vignette edge_gain must be in (0, 1]");
  const double cx = static_cast<double>(image.width()) / 2.0;
  const double cy = static_cast<double>(image.height()) / 2.0;
  // Distances measured between pixel centers so the falloff is
  // symmetric across opposite corners.
  const double max_r2 = (cx - 0.5) * (cx - 0.5) + (cy - 0.5) * (cy - 0.5);
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const double dx = static_cast<double>(x) + 0.5 - cx;
      const double dy = static_cast<double>(y) + 0.5 - cy;
      const double falloff = (dx * dx + dy * dy) / max_r2;
      const double gain = 1.0 - (1.0 - edge_gain) * falloff;
      for (std::size_t c = 0; c < image.channels(); ++c) {
        image(x, y, c) = static_cast<std::uint8_t>(
            std::clamp(image(x, y, c) * gain + 0.5, 0.0, 255.0));
      }
    }
  }
}

}  // namespace seghdc::img
