// Image filters used by the synthetic dataset generators (focus blur,
// sensor noise shaping) and by analysis utilities (Otsu thresholding).
#ifndef SEGHDC_IMAGING_FILTERS_HPP
#define SEGHDC_IMAGING_FILTERS_HPP

#include <cstdint>

#include "src/imaging/image.hpp"

namespace seghdc::img {

/// Separable Gaussian blur with standard deviation `sigma` (pixels).
/// sigma <= 0 returns the input unchanged. Border: replicate.
ImageU8 gaussian_blur(const ImageU8& image, double sigma);
ImageF32 gaussian_blur(const ImageF32& image, double sigma);

/// Box blur with half-width `radius` (window = 2*radius+1).
ImageU8 box_blur(const ImageU8& image, std::size_t radius);

/// Otsu's optimal global threshold for a single-channel image. Returns
/// the threshold t in [0, 255]; foreground is conventionally value > t.
std::uint8_t otsu_threshold(const ImageU8& image);

/// Applies a fixed threshold: output 255 where value > threshold else 0.
/// Requires a single-channel image.
ImageU8 threshold(const ImageU8& image, std::uint8_t value);

/// Bilinear resize to (new_width, new_height); channels preserved.
ImageU8 resize_bilinear(const ImageU8& image, std::size_t new_width,
                        std::size_t new_height);

/// Nearest-neighbour resize of a label map (labels must not be blended).
LabelMap resize_nearest(const LabelMap& labels, std::size_t new_width,
                        std::size_t new_height);

/// Multiplies intensity by a radial vignette: 1 at the center falling to
/// `edge_gain` at the corners. Models microscope illumination falloff.
void apply_vignette(ImageU8& image, double edge_gain);

/// Histogram equalization of a single-channel image: remaps intensities
/// through the normalised CDF so the output histogram is ~uniform. A
/// standard preprocessing step for low-contrast microscopy before
/// intensity-driven segmentation.
ImageU8 equalize_histogram(const ImageU8& image);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_FILTERS_HPP
