// Minimal dense image container used across the library: row-major,
// interleaved channels, value type T. No external image dependencies —
// the dataset generators, the SegHDC pipeline, the CNN baseline, and the
// PNM I/O all operate on this type.
#ifndef SEGHDC_IMAGING_IMAGE_HPP
#define SEGHDC_IMAGING_IMAGE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/contracts.hpp"

namespace seghdc::img {

/// Dense W x H image with C interleaved channels, row-major storage:
/// element (x, y, c) lives at index (y * width + x) * channels + c.
template <typename T>
class Image {
 public:
  Image() = default;

  Image(std::size_t width, std::size_t height, std::size_t channels,
        T fill = T{})
      : width_(width),
        height_(height),
        channels_(channels),
        data_(width * height * channels, fill) {
    util::expects(width > 0 && height > 0 && channels > 0,
                  "Image dimensions must be positive");
  }

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t channels() const { return channels_; }
  /// Number of pixels (width * height), independent of channel count.
  std::size_t pixel_count() const { return width_ * height_; }
  /// Number of stored elements (width * height * channels).
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Bounds-checked element access.
  T& at(std::size_t x, std::size_t y, std::size_t c = 0) {
    util::expects(x < width_ && y < height_ && c < channels_,
                  "Image::at coordinates within bounds");
    return data_[(y * width_ + x) * channels_ + c];
  }
  const T& at(std::size_t x, std::size_t y, std::size_t c = 0) const {
    util::expects(x < width_ && y < height_ && c < channels_,
                  "Image::at coordinates within bounds");
    return data_[(y * width_ + x) * channels_ + c];
  }

  /// Unchecked element access for hot loops.
  T& operator()(std::size_t x, std::size_t y, std::size_t c = 0) {
    return data_[(y * width_ + x) * channels_ + c];
  }
  const T& operator()(std::size_t x, std::size_t y, std::size_t c = 0) const {
    return data_[(y * width_ + x) * channels_ + c];
  }

  /// Clamped read: out-of-range coordinates are clamped to the border
  /// (replicate padding) — used by the separable filters.
  const T& clamped(std::ptrdiff_t x, std::ptrdiff_t y,
                   std::size_t c = 0) const {
    const auto cx = x < 0 ? 0
                    : x >= static_cast<std::ptrdiff_t>(width_)
                        ? width_ - 1
                        : static_cast<std::size_t>(x);
    const auto cy = y < 0 ? 0
                    : y >= static_cast<std::ptrdiff_t>(height_)
                        ? height_ - 1
                        : static_cast<std::size_t>(y);
    return (*this)(cx, cy, c);
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  std::span<T> pixels() { return data_; }
  std::span<const T> pixels() const { return data_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool same_shape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

  bool operator==(const Image& other) const = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::size_t channels_ = 0;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageF32 = Image<float>;
/// Cluster/instance label per pixel; always single-channel.
using LabelMap = Image<std::uint32_t>;

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_IMAGE_HPP
