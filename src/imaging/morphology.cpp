#include "src/imaging/morphology.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::img {

namespace {

enum class Op { kErode, kDilate };

ImageU8 morph3x3(const ImageU8& mask, Op op) {
  util::expects(mask.channels() == 1, "morphology expects a 1-channel mask");
  ImageU8 result(mask.width(), mask.height(), 1);
  const auto h = static_cast<std::ptrdiff_t>(mask.height());
  const auto w = static_cast<std::ptrdiff_t>(mask.width());
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      bool all = true;
      bool any = false;
      for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
        for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
          const std::ptrdiff_t nx = x + dx;
          const std::ptrdiff_t ny = y + dy;
          const bool fg = nx >= 0 && nx < w && ny >= 0 && ny < h &&
                          mask(static_cast<std::size_t>(nx),
                               static_cast<std::size_t>(ny)) != 0;
          all = all && fg;
          any = any || fg;
        }
      }
      const bool out = op == Op::kErode ? all : any;
      result(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) =
          out ? 255 : 0;
    }
  }
  return result;
}

}  // namespace

ImageU8 erode3x3(const ImageU8& mask) { return morph3x3(mask, Op::kErode); }

ImageU8 dilate3x3(const ImageU8& mask) { return morph3x3(mask, Op::kDilate); }

ImageU8 open3x3(const ImageU8& mask) { return dilate3x3(erode3x3(mask)); }

ImageU8 close3x3(const ImageU8& mask) { return erode3x3(dilate3x3(mask)); }

}  // namespace seghdc::img
