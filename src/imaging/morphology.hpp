// Binary morphology (3x3 structuring element): erosion, dilation, and the
// derived opening/closing. Used for mask cleanup in examples and tests.
#ifndef SEGHDC_IMAGING_MORPHOLOGY_HPP
#define SEGHDC_IMAGING_MORPHOLOGY_HPP

#include "src/imaging/image.hpp"

namespace seghdc::img {

/// 3x3 erosion of a binary (0/255) mask; border treated as background.
ImageU8 erode3x3(const ImageU8& mask);

/// 3x3 dilation of a binary (0/255) mask.
ImageU8 dilate3x3(const ImageU8& mask);

/// erode then dilate: removes speckle smaller than the element.
ImageU8 open3x3(const ImageU8& mask);

/// dilate then erode: fills pinholes smaller than the element.
ImageU8 close3x3(const ImageU8& mask);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_MORPHOLOGY_HPP
