#include "src/imaging/noise.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/contracts.hpp"

namespace seghdc::img {

void add_gaussian_noise(ImageU8& image, double sigma, util::Rng& rng) {
  util::expects(sigma >= 0.0, "add_gaussian_noise sigma must be >= 0");
  if (sigma == 0.0) {
    return;
  }
  for (auto& value : image.pixels()) {
    const double noisy = value + sigma * rng.next_gaussian();
    value = static_cast<std::uint8_t>(std::clamp(noisy + 0.5, 0.0, 255.0));
  }
}

void add_shot_noise(ImageU8& image, double scale, util::Rng& rng) {
  util::expects(scale >= 0.0, "add_shot_noise scale must be >= 0");
  if (scale == 0.0) {
    return;
  }
  for (auto& value : image.pixels()) {
    const double sigma = scale * std::sqrt(static_cast<double>(value));
    const double noisy = value + sigma * rng.next_gaussian();
    value = static_cast<std::uint8_t>(std::clamp(noisy + 0.5, 0.0, 255.0));
  }
}

namespace {

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

/// One octave of value noise: bilinear interpolation of a coarse random
/// lattice with smoothstep easing.
void add_octave(ImageF32& out, std::size_t period, double amplitude,
                util::Rng& rng) {
  const std::size_t grid_w = out.width() / period + 2;
  const std::size_t grid_h = out.height() / period + 2;
  std::vector<double> lattice(grid_w * grid_h);
  for (auto& v : lattice) {
    v = rng.next_double();
  }
  const auto lattice_at = [&](std::size_t gx, std::size_t gy) {
    return lattice[gy * grid_w + gx];
  };
  for (std::size_t y = 0; y < out.height(); ++y) {
    const std::size_t gy = y / period;
    const double ty = smoothstep(
        static_cast<double>(y % period) / static_cast<double>(period));
    for (std::size_t x = 0; x < out.width(); ++x) {
      const std::size_t gx = x / period;
      const double tx = smoothstep(
          static_cast<double>(x % period) / static_cast<double>(period));
      const double v00 = lattice_at(gx, gy);
      const double v10 = lattice_at(gx + 1, gy);
      const double v01 = lattice_at(gx, gy + 1);
      const double v11 = lattice_at(gx + 1, gy + 1);
      const double top = v00 + (v10 - v00) * tx;
      const double bottom = v01 + (v11 - v01) * tx;
      out(x, y) += static_cast<float>(amplitude * (top + (bottom - top) * ty));
    }
  }
}

}  // namespace

ImageF32 value_noise(std::size_t width, std::size_t height,
                     std::size_t base_period, std::size_t octaves,
                     util::Rng& rng) {
  util::expects(base_period >= 2, "value_noise base_period must be >= 2");
  util::expects(octaves >= 1, "value_noise needs at least one octave");
  ImageF32 out(width, height, 1, 0.0F);
  double amplitude = 1.0;
  double total_amplitude = 0.0;
  std::size_t period = base_period;
  for (std::size_t o = 0; o < octaves && period >= 2; ++o) {
    add_octave(out, period, amplitude, rng);
    total_amplitude += amplitude;
    amplitude *= 0.5;
    period /= 2;
  }
  for (auto& v : out.pixels()) {
    v = static_cast<float>(v / total_amplitude);
  }
  return out;
}

}  // namespace seghdc::img
