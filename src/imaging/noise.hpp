// Stochastic texture/noise generators for the synthetic datasets:
// additive sensor noise, signal-dependent (Poisson-like) shot noise, and
// multi-octave value noise for tissue/stroma textures.
#ifndef SEGHDC_IMAGING_NOISE_HPP
#define SEGHDC_IMAGING_NOISE_HPP

#include "src/imaging/image.hpp"
#include "src/util/rng.hpp"

namespace seghdc::img {

/// Adds i.i.d. Gaussian noise with standard deviation `sigma` to every
/// element, clamping to [0, 255].
void add_gaussian_noise(ImageU8& image, double sigma, util::Rng& rng);

/// Adds signal-dependent noise with per-element standard deviation
/// `scale * sqrt(value)` — the variance structure of photon shot noise
/// that dominates fluorescence microscopy.
void add_shot_noise(ImageU8& image, double scale, util::Rng& rng);

/// Multi-octave value noise in [0, 1]: smooth random texture with feature
/// size ~`base_period` pixels, each further octave halving the period and
/// the amplitude (persistence 0.5). Deterministic given `rng` state.
ImageF32 value_noise(std::size_t width, std::size_t height,
                     std::size_t base_period, std::size_t octaves,
                     util::Rng& rng);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_NOISE_HPP
