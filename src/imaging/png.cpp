#include "src/imaging/png.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/imaging/pnm.hpp"

namespace seghdc::img {

namespace {

// ---------------------------------------------------------------------
// Checksums. CRC-32 (ISO 3309, reflected 0xEDB88320) guards every chunk;
// Adler-32 guards the zlib payload. Both are required by the format, and
// both are VERIFIED on read — a bit-rotted dataset file fails loudly,
// mirroring the PNM loader's hardening.

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t crc = 0) {
  const auto& table = crc_table();
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t adler32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t a = 1;
  std::uint32_t b = 0;
  std::size_t i = 0;
  while (i < size) {
    // 5552 is the classic largest block before either sum can overflow.
    const std::size_t chunk = std::min<std::size_t>(size - i, 5552);
    for (std::size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= 65521u;
    b %= 65521u;
    i += chunk;
  }
  return (b << 16) | a;
}

// ---------------------------------------------------------------------
// DEFLATE decode (RFC 1951) — the canonical-Huffman walk is the "puff"
// formulation: per-length symbol counts plus a sorted symbol table, one
// bit consumed per step. Slow-path simple, which is fine for dataset
// I/O; the segmentation kernels are the hot path, not the loader.

[[noreturn]] void corrupt(const std::string& detail) {
  throw std::runtime_error("read_png: corrupt deflate stream (" + detail +
                           ")");
}

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t bits(std::size_t count) {
    while (filled_ < count) {
      if (pos_ >= size_) {
        corrupt("unexpected end");
      }
      buffer_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const auto value = static_cast<std::uint32_t>(
        buffer_ & ((std::uint64_t{1} << count) - 1));
    buffer_ >>= count;
    filled_ -= count;
    return value;
  }

  /// Drops buffered bits to the next byte boundary (stored blocks).
  void align() {
    const std::size_t drop = filled_ % 8;
    buffer_ >>= drop;
    filled_ -= drop;
  }

  /// Reads `count` whole bytes (must be byte-aligned by construction:
  /// the buffer only ever holds whole bytes after align()).
  void bytes(std::uint8_t* out, std::size_t count) {
    while (count > 0 && filled_ > 0) {
      *out++ = static_cast<std::uint8_t>(buffer_ & 0xFF);
      buffer_ >>= 8;
      filled_ -= 8;
      --count;
    }
    if (count > size_ - pos_) {
      corrupt("unexpected end");
    }
    std::memcpy(out, data_ + pos_, count);
    pos_ += count;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t buffer_ = 0;
  std::size_t filled_ = 0;
};

/// Canonical Huffman decoder over up-to-15-bit codes.
struct Huffman {
  std::array<std::uint16_t, 16> counts{};  ///< codes per bit length
  std::vector<std::uint16_t> symbols;      ///< symbols, canonical order

  void build(const std::uint8_t* lengths, std::size_t n) {
    counts.fill(0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[lengths[i]];
    }
    if (counts[0] == n) {
      corrupt("empty Huffman code");
    }
    // Over-subscription check (incomplete codes are tolerated like zlib
    // does for the single-distance-code corner, but too many codes of a
    // length can never decode unambiguously).
    int left = 1;
    for (std::size_t len = 1; len < 16; ++len) {
      left <<= 1;
      left -= counts[len];
      if (left < 0) {
        corrupt("over-subscribed Huffman code");
      }
    }
    std::array<std::uint16_t, 16> offsets{};
    for (std::size_t len = 1; len < 15; ++len) {
      offsets[len + 1] =
          static_cast<std::uint16_t>(offsets[len] + counts[len]);
    }
    symbols.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (lengths[i] != 0) {
        symbols[offsets[lengths[i]]++] = static_cast<std::uint16_t>(i);
      }
    }
  }

  std::uint16_t decode(BitReader& in) const {
    std::uint32_t code = 0;
    std::uint32_t first = 0;
    std::uint32_t index = 0;
    for (std::size_t len = 1; len < 16; ++len) {
      code |= in.bits(1);
      const std::uint32_t count = counts[len];
      if (code - first < count) {
        return symbols[index + (code - first)];
      }
      index += count;
      first = (first + count) << 1;
      code <<= 1;
    }
    corrupt("invalid Huffman code");
  }
};

constexpr std::array<std::uint16_t, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<std::uint16_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

void inflate_block(BitReader& in, const Huffman& litlen, const Huffman& dist,
                   std::vector<std::uint8_t>& out, std::size_t max_out) {
  for (;;) {
    const std::uint16_t symbol = litlen.decode(in);
    if (symbol < 256) {
      if (out.size() >= max_out) {
        corrupt("output larger than declared image");
      }
      out.push_back(static_cast<std::uint8_t>(symbol));
      continue;
    }
    if (symbol == 256) {
      return;  // end of block
    }
    if (symbol > 285) {
      corrupt("bad length symbol");
    }
    const std::size_t length =
        kLengthBase[symbol - 257] + in.bits(kLengthExtra[symbol - 257]);
    const std::uint16_t dsym = dist.decode(in);
    if (dsym > 29) {
      corrupt("bad distance symbol");
    }
    const std::size_t distance = kDistBase[dsym] + in.bits(kDistExtra[dsym]);
    if (distance > out.size()) {
      corrupt("distance past window start");
    }
    if (out.size() + length > max_out) {
      corrupt("output larger than declared image");
    }
    // Byte-by-byte on purpose: overlapping matches (distance < length,
    // the run idiom) must re-read freshly written bytes.
    std::size_t from = out.size() - distance;
    for (std::size_t i = 0; i < length; ++i) {
      out.push_back(out[from + i]);
    }
  }
}

/// Full RFC 1950/1951 decode of `size` zlib bytes; the caller knows the
/// exact decompressed size (PNG filtered-scanline layout) and both a
/// shortfall and an excess are hard errors.
std::vector<std::uint8_t> zlib_inflate(const std::uint8_t* data,
                                       std::size_t size,
                                       std::size_t expected_size) {
  if (size < 6) {
    corrupt("zlib stream too short");
  }
  const std::uint8_t cmf = data[0];
  const std::uint8_t flg = data[1];
  if ((cmf & 0x0F) != 8) {
    corrupt("not deflate");
  }
  if (((static_cast<unsigned>(cmf) << 8) + flg) % 31 != 0) {
    corrupt("bad zlib header check");
  }
  if ((flg & 0x20) != 0) {
    corrupt("preset dictionary");
  }

  BitReader in(data + 2, size - 2 - 4);
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);

  bool final_block = false;
  while (!final_block) {
    final_block = in.bits(1) != 0;
    const std::uint32_t type = in.bits(2);
    if (type == 0) {  // stored
      in.align();
      std::uint8_t header[4];
      in.bytes(header, 4);
      const std::size_t len = header[0] | (header[1] << 8);
      const std::size_t nlen = header[2] | (header[3] << 8);
      if ((len ^ 0xFFFF) != nlen) {
        corrupt("stored block length check");
      }
      if (out.size() + len > expected_size) {
        corrupt("output larger than declared image");
      }
      const std::size_t start = out.size();
      out.resize(start + len);
      in.bytes(out.data() + start, len);
    } else if (type == 1 || type == 2) {
      Huffman litlen;
      Huffman dist;
      if (type == 1) {  // fixed tables (RFC 1951 §3.2.6)
        std::array<std::uint8_t, 288> ll{};
        for (std::size_t i = 0; i < 288; ++i) {
          ll[i] = i < 144 ? 8 : i < 256 ? 9 : i < 280 ? 7 : 8;
        }
        std::array<std::uint8_t, 30> dd{};
        dd.fill(5);
        litlen.build(ll.data(), ll.size());
        dist.build(dd.data(), dd.size());
      } else {  // dynamic tables
        const std::size_t hlit = in.bits(5) + 257;
        const std::size_t hdist = in.bits(5) + 1;
        const std::size_t hclen = in.bits(4) + 4;
        if (hlit > 286 || hdist > 30) {
          corrupt("bad dynamic table counts");
        }
        static constexpr std::array<std::uint8_t, 19> kClOrder = {
            16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1,
            15};
        std::array<std::uint8_t, 19> cl_lengths{};
        for (std::size_t i = 0; i < hclen; ++i) {
          cl_lengths[kClOrder[i]] = static_cast<std::uint8_t>(in.bits(3));
        }
        Huffman cl;
        cl.build(cl_lengths.data(), cl_lengths.size());

        std::vector<std::uint8_t> lengths(hlit + hdist, 0);
        std::size_t i = 0;
        while (i < lengths.size()) {
          const std::uint16_t symbol = cl.decode(in);
          if (symbol < 16) {
            lengths[i++] = static_cast<std::uint8_t>(symbol);
          } else if (symbol == 16) {
            if (i == 0) {
              corrupt("repeat with no previous length");
            }
            const std::uint8_t prev = lengths[i - 1];
            std::size_t repeat = 3 + in.bits(2);
            while (repeat-- > 0 && i < lengths.size()) {
              lengths[i++] = prev;
            }
          } else {
            std::size_t repeat =
                symbol == 17 ? 3 + in.bits(3) : 11 + in.bits(7);
            while (repeat-- > 0 && i < lengths.size()) {
              lengths[i++] = 0;
            }
          }
        }
        litlen.build(lengths.data(), hlit);
        dist.build(lengths.data() + hlit, hdist);
      }
      inflate_block(in, litlen, dist, out, expected_size);
    } else {
      corrupt("reserved block type");
    }
  }

  if (out.size() != expected_size) {
    throw std::runtime_error("read_png: truncated pixel data");
  }
  const std::uint32_t stored_adler =
      (static_cast<std::uint32_t>(data[size - 4]) << 24) |
      (static_cast<std::uint32_t>(data[size - 3]) << 16) |
      (static_cast<std::uint32_t>(data[size - 2]) << 8) |
      static_cast<std::uint32_t>(data[size - 1]);
  if (adler32(out.data(), out.size()) != stored_adler) {
    throw std::runtime_error("read_png: zlib checksum mismatch");
  }
  return out;
}

// ---------------------------------------------------------------------
// DEFLATE encode: one fixed-Huffman block with greedy distance-1 run
// matching. Masks, label maps, and flat synthetic backgrounds are long
// byte runs, which this captures at (8 + ~5+5)/258 bits per byte; noisy
// photographic rows fall back to plain literals (≈ 1.01x the raw size,
// still a standard stream every decoder accepts).

class BitWriter {
 public:
  void bits(std::uint32_t value, std::size_t count) {
    buffer_ |= static_cast<std::uint64_t>(value) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(buffer_ & 0xFF));
      buffer_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Huffman codes are transmitted MSB-first inside the LSB-first bit
  /// stream, so they go out bit-reversed.
  void code(std::uint32_t value, std::size_t count) {
    std::uint32_t reversed = 0;
    for (std::size_t i = 0; i < count; ++i) {
      reversed = (reversed << 1) | ((value >> i) & 1u);
    }
    bits(reversed, count);
  }

  std::vector<std::uint8_t> finish() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(buffer_ & 0xFF));
      buffer_ = 0;
      filled_ = 0;
    }
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t buffer_ = 0;
  std::size_t filled_ = 0;
};

void put_fixed_literal(BitWriter& out, std::uint8_t byte) {
  if (byte < 144) {
    out.code(0x30u + byte, 8);
  } else {
    out.code(0x190u + (byte - 144u), 9);
  }
}

void put_fixed_length(BitWriter& out, std::size_t length) {
  // Find the length symbol whose [base, base + 2^extra) covers `length`.
  std::size_t s = 0;
  while (s + 1 < kLengthBase.size() && kLengthBase[s + 1] <= length) {
    ++s;
  }
  const std::size_t symbol = 257 + s;
  if (symbol < 280) {
    out.code(static_cast<std::uint32_t>(symbol - 256), 7);
  } else {
    out.code(static_cast<std::uint32_t>(0xC0 + (symbol - 280)), 8);
  }
  out.bits(static_cast<std::uint32_t>(length - kLengthBase[s]),
           kLengthExtra[s]);
}

std::vector<std::uint8_t> zlib_deflate_fixed(
    const std::vector<std::uint8_t>& data) {
  BitWriter out;
  out.bits(0x78, 8);  // CMF: deflate, 32k window
  out.bits(0x01, 8);  // FLG: check bits, no dict, fastest
  out.bits(1, 1);     // BFINAL
  out.bits(1, 2);     // BTYPE = fixed Huffman

  std::size_t i = 0;
  while (i < data.size()) {
    if (i > 0) {
      std::size_t run = 0;
      const std::uint8_t prev = data[i - 1];
      while (run < 258 && i + run < data.size() && data[i + run] == prev) {
        ++run;
      }
      if (run >= 3) {
        put_fixed_length(out, run);
        out.code(0, 5);  // distance symbol 0 = distance 1
        i += run;
        continue;
      }
    }
    put_fixed_literal(out, data[i]);
    ++i;
  }
  out.code(0, 7);  // end of block (symbol 256)

  auto bytes = out.finish();
  const std::uint32_t adler = adler32(data.data(), data.size());
  bytes.push_back(static_cast<std::uint8_t>(adler >> 24));
  bytes.push_back(static_cast<std::uint8_t>(adler >> 16));
  bytes.push_back(static_cast<std::uint8_t>(adler >> 8));
  bytes.push_back(static_cast<std::uint8_t>(adler));
  return bytes;
}

// ---------------------------------------------------------------------
// PNG container.

constexpr std::array<std::uint8_t, 8> kPngSignature = {137, 80, 78, 71,
                                                       13,  10, 26, 10};

void put_be32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

void append_chunk(std::vector<std::uint8_t>& out, const char* type,
                  const std::vector<std::uint8_t>& data) {
  put_be32(out, static_cast<std::uint32_t>(data.size()));
  const std::size_t type_at = out.size();
  out.insert(out.end(), type, type + 4);
  out.insert(out.end(), data.begin(), data.end());
  const std::uint32_t crc = crc32(out.data() + type_at, 4 + data.size());
  put_be32(out, crc);
}

std::uint32_t read_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint8_t paeth(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
  const int p = int{a} + int{b} - int{c};
  const int pa = std::abs(p - int{a});
  const int pb = std::abs(p - int{b});
  const int pc = std::abs(p - int{c});
  if (pa <= pb && pa <= pc) {
    return a;
  }
  return pb <= pc ? b : c;
}

}  // namespace

void write_png(const ImageU8& image, const std::string& path) {
  if (image.channels() != 1 && image.channels() != 3) {
    throw std::invalid_argument("write_png supports 1 or 3 channels");
  }
  const std::size_t stride = image.width() * image.channels();

  // Filter 0 (None) on every scanline: the run-matching deflate below
  // already collapses the flat regions these images are made of.
  std::vector<std::uint8_t> filtered;
  filtered.reserve(image.height() * (stride + 1));
  for (std::size_t y = 0; y < image.height(); ++y) {
    filtered.push_back(0);
    const std::uint8_t* row = image.data() + y * stride;
    filtered.insert(filtered.end(), row, row + stride);
  }

  std::vector<std::uint8_t> file(kPngSignature.begin(), kPngSignature.end());
  std::vector<std::uint8_t> ihdr;
  put_be32(ihdr, static_cast<std::uint32_t>(image.width()));
  put_be32(ihdr, static_cast<std::uint32_t>(image.height()));
  ihdr.push_back(8);                                   // bit depth
  ihdr.push_back(image.channels() == 1 ? 0 : 2);       // color type
  ihdr.push_back(0);                                   // compression
  ihdr.push_back(0);                                   // filter method
  ihdr.push_back(0);                                   // no interlace
  append_chunk(file, "IHDR", ihdr);
  append_chunk(file, "IDAT", zlib_deflate_fixed(filtered));
  append_chunk(file, "IEND", {});

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_png: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  if (!out) {
    throw std::runtime_error("write_png: short write to " + path);
  }
}

ImageU8 read_png(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_png: cannot open " + path);
  }
  std::vector<std::uint8_t> file(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  if (file.size() < kPngSignature.size() ||
      !std::equal(kPngSignature.begin(), kPngSignature.end(), file.begin())) {
    throw std::runtime_error("read_png: not a PNG file (bad signature)");
  }

  // --- Chunk walk: IHDR first, IDAT concatenated, IEND terminates.
  // Every CRC is verified; unknown ancillary chunks are skipped, unknown
  // critical chunks are hard errors (we could not render the image the
  // author intended).
  std::size_t pos = kPngSignature.size();
  bool saw_ihdr = false;
  bool saw_iend = false;
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t src_channels = 0;
  std::vector<std::uint8_t> idat;

  while (!saw_iend) {
    if (file.size() - pos < 12) {
      throw std::runtime_error("read_png: truncated chunk");
    }
    const std::size_t length = read_be32(file.data() + pos);
    if (length > file.size() - pos - 12) {
      throw std::runtime_error("read_png: truncated chunk");
    }
    const char* type = reinterpret_cast<const char*>(file.data() + pos + 4);
    const std::uint8_t* data = file.data() + pos + 8;
    const std::uint32_t stored_crc = read_be32(data + length);
    if (crc32(file.data() + pos + 4, 4 + length) != stored_crc) {
      throw std::runtime_error("read_png: chunk CRC mismatch in '" +
                               std::string(type, 4) + "'");
    }

    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (saw_ihdr || length != 13) {
        throw std::runtime_error("read_png: corrupt IHDR");
      }
      saw_ihdr = true;
      width = read_be32(data);
      height = read_be32(data + 4);
      const std::uint8_t bit_depth = data[8];
      const std::uint8_t color_type = data[9];
      const std::uint8_t interlace = data[12];
      if (width == 0 || height == 0) {
        throw std::runtime_error("read_png: zero image dimensions");
      }
      if (bit_depth != 8) {
        throw std::runtime_error("read_png: unsupported bit depth " +
                                 std::to_string(bit_depth) +
                                 " (8-bit only)");
      }
      switch (color_type) {
        case 0: src_channels = 1; break;  // gray
        case 2: src_channels = 3; break;  // RGB
        case 4: src_channels = 2; break;  // gray + alpha
        case 6: src_channels = 4; break;  // RGBA
        case 3:
          throw std::runtime_error(
              "read_png: unsupported color type 3 (palette)");
        default:
          throw std::runtime_error("read_png: unsupported color type " +
                                   std::to_string(color_type));
      }
      if (data[10] != 0 || data[11] != 0) {
        throw std::runtime_error("read_png: corrupt IHDR");
      }
      if (interlace != 0) {
        throw std::runtime_error(
            "read_png: interlaced (Adam7) PNG is not supported");
      }
      // Same allocation guard as read_pnm: a wrapped product must never
      // size a buffer, and absurd-but-unwrapped headers fail honestly.
      constexpr std::size_t kMaxBytes = std::size_t{1} << 31;  // 2 GiB
      constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
      if (height > kMax / width ||
          width * height > kMax / (src_channels + 1)) {
        throw std::runtime_error("read_png: image dimensions " +
                                 std::to_string(width) + "x" +
                                 std::to_string(height) +
                                 " overflow size_t");
      }
      if (width * height * src_channels > kMaxBytes) {
        throw std::runtime_error(
            "read_png: image " + std::to_string(width) + "x" +
            std::to_string(height) + "x" + std::to_string(src_channels) +
            " exceeds the 2 GiB loader limit");
      }
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      if (!saw_ihdr) {
        throw std::runtime_error("read_png: IDAT before IHDR");
      }
      idat.insert(idat.end(), data, data + length);
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      saw_iend = true;
    } else if ((type[0] & 0x20) == 0) {  // critical chunk we cannot honor
      throw std::runtime_error("read_png: unsupported critical chunk '" +
                               std::string(type, 4) + "'");
    }
    pos += 12 + length;
  }
  if (!saw_ihdr) {
    throw std::runtime_error("read_png: corrupt IHDR");
  }
  if (idat.empty()) {
    throw std::runtime_error("read_png: missing IDAT");
  }

  // --- Decompress to filtered scanlines, then unfilter in place.
  const std::size_t stride = width * src_channels;
  const auto filtered =
      zlib_inflate(idat.data(), idat.size(), height * (stride + 1));

  std::vector<std::uint8_t> raw(height * stride);
  const std::size_t bpp = src_channels;
  for (std::size_t y = 0; y < height; ++y) {
    const std::uint8_t filter = filtered[y * (stride + 1)];
    const std::uint8_t* src = filtered.data() + y * (stride + 1) + 1;
    std::uint8_t* dst = raw.data() + y * stride;
    const std::uint8_t* up = y > 0 ? dst - stride : nullptr;
    switch (filter) {
      case 0:  // None
        std::memcpy(dst, src, stride);
        break;
      case 1:  // Sub
        for (std::size_t i = 0; i < stride; ++i) {
          dst[i] = static_cast<std::uint8_t>(
              src[i] + (i >= bpp ? dst[i - bpp] : 0));
        }
        break;
      case 2:  // Up
        for (std::size_t i = 0; i < stride; ++i) {
          dst[i] =
              static_cast<std::uint8_t>(src[i] + (up != nullptr ? up[i] : 0));
        }
        break;
      case 3:  // Average
        for (std::size_t i = 0; i < stride; ++i) {
          const unsigned left = i >= bpp ? dst[i - bpp] : 0;
          const unsigned above = up != nullptr ? up[i] : 0;
          dst[i] = static_cast<std::uint8_t>(src[i] + ((left + above) >> 1));
        }
        break;
      case 4:  // Paeth
        for (std::size_t i = 0; i < stride; ++i) {
          const std::uint8_t left = i >= bpp ? dst[i - bpp] : 0;
          const std::uint8_t above = up != nullptr ? up[i] : 0;
          const std::uint8_t corner =
              (up != nullptr && i >= bpp) ? up[i - bpp] : 0;
          dst[i] =
              static_cast<std::uint8_t>(src[i] + paeth(left, above, corner));
        }
        break;
      default:
        throw std::runtime_error("read_png: bad filter type " +
                                 std::to_string(filter));
    }
  }

  // --- Alpha is dropped on load: the pipeline consumes 1- or 3-channel
  // images, and microscopy alpha is either absent or fully opaque.
  const std::size_t out_channels = src_channels >= 3 ? 3 : 1;
  ImageU8 image(width, height, out_channels);
  if (out_channels == src_channels) {
    std::memcpy(image.data(), raw.data(), raw.size());
  } else {
    const std::uint8_t* src = raw.data();
    std::uint8_t* dst = image.data();
    for (std::size_t p = 0; p < width * height; ++p) {
      for (std::size_t c = 0; c < out_channels; ++c) {
        dst[c] = src[c];
      }
      src += src_channels;
      dst += out_channels;
    }
  }
  return image;
}

bool is_png_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::array<char, 8> head{};
  in.read(head.data(), head.size());
  return in.gcount() == 8 &&
         std::equal(kPngSignature.begin(), kPngSignature.end(),
                    reinterpret_cast<const std::uint8_t*>(head.data()));
}

ImageU8 read_image(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_image: cannot open " + path);
  }
  std::array<char, 2> head{};
  in.read(head.data(), head.size());
  in.close();
  if (is_png_file(path)) {
    return read_png(path);
  }
  if (head[0] == 'P' && head[1] >= '2' && head[1] <= '6') {
    return read_pnm(path);
  }
  throw std::runtime_error(
      "read_image: " + path +
      " is neither PNG nor PNM (unrecognised magic bytes)");
}

void write_image(const ImageU8& image, const std::string& path) {
  const auto dot = path.find_last_of('.');
  const std::string ext =
      dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "png") {
    write_png(image, path);
  } else if (ext == "pgm" || ext == "ppm" || ext == "pnm") {
    write_pnm(image, path);
  } else {
    throw std::invalid_argument(
        "write_image: unsupported extension '" + ext +
        "' in " + path + " (use .png, .pgm, .ppm or .pnm)");
  }
}

}  // namespace seghdc::img
