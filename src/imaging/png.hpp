// PNG image I/O with zero external dependencies (stb-style: the whole
// codec, including the DEFLATE sides, lives in png.cpp). This is what
// lets the dataset loaders, the eval pipeline, and the examples operate
// on real-world files instead of PNM only.
//
// Scope (deliberately the useful-for-microscopy subset):
//   - read: 8-bit depth, color types gray (0), RGB (2), gray+alpha (4)
//     and RGBA (6); alpha is dropped on load (the pipeline consumes 1-
//     or 3-channel images). All three DEFLATE block types (stored,
//     fixed-Huffman, dynamic-Huffman) and all five scanline filters are
//     decoded, so files from ImageMagick/libpng/Pillow load unchanged.
//     Palette (3), 16-bit depth and Adam7 interlace are rejected with
//     honest hard errors, mirroring the PNM loader's no-silent-fallback
//     convention — as are truncated files, CRC/Adler mismatches, and
//     headers past the shared 2 GiB allocation guard.
//   - write: 8-bit gray (1 channel) or RGB (3 channels), filter 0
//     scanlines compressed with a fixed-Huffman DEFLATE encoder using
//     run matching (masks and synthetic frames shrink well; the output
//     is a fully standard PNG every external tool opens).
#ifndef SEGHDC_IMAGING_PNG_HPP
#define SEGHDC_IMAGING_PNG_HPP

#include <string>

#include "src/imaging/image.hpp"

namespace seghdc::img {

/// Writes a 1-channel (gray) or 3-channel (RGB) 8-bit image as PNG.
/// Throws std::invalid_argument for other channel counts,
/// std::runtime_error on I/O failure.
void write_png(const ImageU8& image, const std::string& path);

/// Reads a PNG file (see scope above). Returns a 1-channel image for
/// gray / gray+alpha sources and a 3-channel image for RGB / RGBA.
/// Throws std::runtime_error on malformed, unsupported, or truncated
/// input — never returns a partially decoded image.
ImageU8 read_png(const std::string& path);

/// True when the file starts with the 8-byte PNG signature (reads the
/// file's first bytes; false for unreadable or short files).
bool is_png_file(const std::string& path);

/// Reads an image by content sniffing: PNG signature -> read_png,
/// PNM magic (P2/P3/P5/P6) -> read_pnm, anything else is a hard
/// std::runtime_error naming the path.
ImageU8 read_image(const std::string& path);

/// Writes by extension: ".png" -> write_png, ".pgm"/".ppm"/".pnm" ->
/// write_pnm; any other extension is a hard std::invalid_argument.
void write_image(const ImageU8& image, const std::string& path);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_PNG_HPP
