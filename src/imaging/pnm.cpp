#include "src/imaging/pnm.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/util/contracts.hpp"

namespace seghdc::img {

namespace {

void write_binary(const ImageU8& image, const std::string& path,
                  const char* magic) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_pnm: cannot open " + path);
  }
  out << magic << '\n'
      << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) {
    throw std::runtime_error("write_pnm: short write to " + path);
  }
}

/// Reads the next whitespace/comment-delimited token. A `#` starts a
/// comment running to end of line and acts as a token DELIMITER, like
/// netpbm's own parser: "2#note\n55" is the tokens "2" then "55", never
/// the joined "255". Comments are only recognised here, i.e. between
/// header tokens — a binary raster starts immediately after the single
/// whitespace byte terminating the maxval token, so a 0x23 ('#') there
/// is pixel data, never a comment (pinned by test).
std::string next_token(std::istream& in) {
  std::string token;
  for (;;) {
    const int ch = in.get();
    if (ch == EOF) {
      break;
    }
    if (ch == '#') {  // comment to end of line, delimits any open token
      std::string skip;
      std::getline(in, skip);
      if (!token.empty()) {
        break;
      }
      continue;
    }
    if (std::isspace(ch) != 0) {
      if (!token.empty()) {
        break;
      }
      continue;
    }
    token.push_back(static_cast<char>(ch));
  }
  return token;
}

/// Strict non-negative integer parse, matching the no-silent-fallback
/// convention of util::Cli::parse_size_list: every character must be a
/// digit (std::stoull would accept "64x" as 64 and "-1" as a wrapped
/// huge value) and overflow is a hard error, so a malformed header
/// fails with an honest message instead of a misleading downstream one.
std::size_t next_size(std::istream& in, const char* what) {
  const std::string token = next_token(in);
  if (token.empty()) {
    throw std::runtime_error(std::string("read_pnm: missing ") + what);
  }
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      throw std::runtime_error(std::string("read_pnm: bad ") + what + " '" +
                               token + "' (digits only)");
    }
    const auto digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) {
      throw std::runtime_error(std::string("read_pnm: bad ") + what + " '" +
                               token + "' (overflows size_t)");
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

void write_pgm(const ImageU8& image, const std::string& path) {
  util::expects(image.channels() == 1, "write_pgm requires 1 channel");
  write_binary(image, path, "P5");
}

void write_ppm(const ImageU8& image, const std::string& path) {
  util::expects(image.channels() == 3, "write_ppm requires 3 channels");
  write_binary(image, path, "P6");
}

void write_pnm(const ImageU8& image, const std::string& path) {
  if (image.channels() == 1) {
    write_pgm(image, path);
  } else if (image.channels() == 3) {
    write_ppm(image, path);
  } else {
    throw std::invalid_argument("write_pnm supports 1 or 3 channels");
  }
}

ImageU8 read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_pnm: cannot open " + path);
  }
  const std::string magic = next_token(in);
  std::size_t channels = 0;
  bool ascii = false;
  if (magic == "P2") {
    channels = 1;
    ascii = true;
  } else if (magic == "P3") {
    channels = 3;
    ascii = true;
  } else if (magic == "P5") {
    channels = 1;
  } else if (magic == "P6") {
    channels = 3;
  } else {
    throw std::runtime_error("read_pnm: unsupported magic '" + magic + "'");
  }

  const std::size_t width = next_size(in, "width");
  const std::size_t height = next_size(in, "height");
  const std::size_t maxval = next_size(in, "maxval");
  if (width == 0 || height == 0) {
    throw std::runtime_error("read_pnm: zero image dimensions");
  }
  if (maxval == 0 || maxval > 255) {
    throw std::runtime_error("read_pnm: unsupported maxval " +
                             std::to_string(maxval));
  }
  // Allocation guard: width * height * channels must not wrap (a wrapped
  // product would allocate a tiny buffer and then index past it), and an
  // absurd-but-unwrapped header must fail with an honest message instead
  // of whatever std::bad_alloc the allocator feels like throwing.
  constexpr std::size_t kMaxBytes = std::size_t{1} << 31;  // 2 GiB
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  if (height > kMax / width || width * height > kMax / channels) {
    throw std::runtime_error("read_pnm: image dimensions " +
                             std::to_string(width) + "x" +
                             std::to_string(height) + " overflow size_t");
  }
  if (width * height * channels > kMaxBytes) {
    throw std::runtime_error(
        "read_pnm: image " + std::to_string(width) + "x" +
        std::to_string(height) + "x" + std::to_string(channels) +
        " exceeds the 2 GiB loader limit");
  }

  ImageU8 image(width, height, channels);
  if (ascii) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      const std::size_t value = next_size(in, "pixel value");
      if (value > maxval) {
        throw std::runtime_error("read_pnm: pixel value exceeds maxval");
      }
      image.pixels()[i] = static_cast<std::uint8_t>(value);
    }
  } else {
    in.read(reinterpret_cast<char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
    if (in.gcount() != static_cast<std::streamsize>(image.size())) {
      throw std::runtime_error("read_pnm: truncated pixel data in " + path);
    }
  }
  return image;
}

}  // namespace seghdc::img
