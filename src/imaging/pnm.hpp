// PGM / PPM (netpbm) image I/O. The benchmark harness writes every
// qualitative figure (paper Fig. 6 / Fig. 8) as PGM or PPM so results can
// be inspected with any image viewer without adding codec dependencies.
#ifndef SEGHDC_IMAGING_PNM_HPP
#define SEGHDC_IMAGING_PNM_HPP

#include <string>

#include "src/imaging/image.hpp"

namespace seghdc::img {

/// Writes a single-channel 8-bit image as binary PGM (P5).
/// Throws std::invalid_argument for multi-channel input,
/// std::runtime_error on I/O failure.
void write_pgm(const ImageU8& image, const std::string& path);

/// Writes a 3-channel 8-bit image as binary PPM (P6).
/// Throws std::invalid_argument unless channels == 3.
void write_ppm(const ImageU8& image, const std::string& path);

/// Writes 1-channel input as PGM, 3-channel as PPM.
void write_pnm(const ImageU8& image, const std::string& path);

/// Reads a PGM/PPM file in any of the P2/P3/P5/P6 variants with
/// maxval <= 255. Comments (#...) are handled. Throws std::runtime_error
/// on malformed input.
ImageU8 read_pnm(const std::string& path);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_PNM_HPP
