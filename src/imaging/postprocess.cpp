#include "src/imaging/postprocess.hpp"

#include "src/imaging/connected_components.hpp"
#include "src/imaging/morphology.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::img {

ImageU8 remove_small_components(const ImageU8& mask, std::size_t min_area) {
  util::expects(mask.channels() == 1,
                "remove_small_components expects a 1-channel mask");
  const auto result = connected_components(mask);
  ImageU8 cleaned(mask.width(), mask.height(), 1, 0);
  for (std::size_t y = 0; y < mask.height(); ++y) {
    for (std::size_t x = 0; x < mask.width(); ++x) {
      const std::uint32_t label = result.labels(x, y);
      if (label != 0 &&
          result.components[label - 1].area >= min_area) {
        cleaned(x, y) = 255;
      }
    }
  }
  return cleaned;
}

ImageU8 fill_holes(const ImageU8& mask) {
  util::expects(mask.channels() == 1, "fill_holes expects a 1-channel mask");
  // Label the BACKGROUND; any background component that never touches
  // the border is a hole.
  ImageU8 inverted(mask.width(), mask.height(), 1, 0);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    inverted.pixels()[i] = mask.pixels()[i] == 0 ? 255 : 0;
  }
  const auto background =
      connected_components(inverted, Connectivity::kFour);
  std::vector<bool> touches_border(background.components.size() + 1, false);
  for (const auto& component : background.components) {
    touches_border[component.label] =
        component.min_x == 0 || component.min_y == 0 ||
        component.max_x == mask.width() - 1 ||
        component.max_y == mask.height() - 1;
  }
  ImageU8 filled = mask;
  for (std::size_t y = 0; y < mask.height(); ++y) {
    for (std::size_t x = 0; x < mask.width(); ++x) {
      const std::uint32_t label = background.labels(x, y);
      if (label != 0 && !touches_border[label]) {
        filled(x, y) = 255;
      }
    }
  }
  return filled;
}

ImageU8 largest_component(const ImageU8& mask) {
  util::expects(mask.channels() == 1,
                "largest_component expects a 1-channel mask");
  const auto result = connected_components(mask);
  if (result.components.empty()) {
    return ImageU8(mask.width(), mask.height(), 1, 0);
  }
  std::uint32_t best_label = 1;
  std::size_t best_area = 0;
  for (const auto& component : result.components) {
    if (component.area > best_area) {
      best_area = component.area;
      best_label = component.label;
    }
  }
  ImageU8 kept(mask.width(), mask.height(), 1, 0);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (result.labels.pixels()[i] == best_label) {
      kept.pixels()[i] = 255;
    }
  }
  return kept;
}

ImageU8 clean_mask(const ImageU8& mask, std::size_t min_area) {
  // Holes first: opening a body that still has pinholes erodes it from
  // the inside out.
  return remove_small_components(open3x3(fill_holes(mask)), min_area);
}

}  // namespace seghdc::img
