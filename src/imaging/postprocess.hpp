// Mask post-processing utilities for downstream consumers of the
// segmentation output: speckle removal, hole filling, component
// filtering. SegHDC's raw cluster map is already spatially coherent
// (the beta-block position encoding sees to that), but real deployments
// — cell counting, confluence estimation — want clean instance masks.
#ifndef SEGHDC_IMAGING_POSTPROCESS_HPP
#define SEGHDC_IMAGING_POSTPROCESS_HPP

#include <cstdint>

#include "src/imaging/image.hpp"

namespace seghdc::img {

/// Removes connected components smaller than `min_area` pixels from a
/// binary (0/255) mask.
ImageU8 remove_small_components(const ImageU8& mask, std::size_t min_area);

/// Fills background holes: background regions not connected to the
/// image border become foreground (a nucleus with a dark center scores
/// as one solid object).
ImageU8 fill_holes(const ImageU8& mask);

/// Keeps only the largest connected component (empty mask stays empty).
ImageU8 largest_component(const ImageU8& mask);

/// The standard cleanup chain: hole filling, 3x3 opening (speckle),
/// then small-component removal.
ImageU8 clean_mask(const ImageU8& mask, std::size_t min_area);

}  // namespace seghdc::img

#endif  // SEGHDC_IMAGING_POSTPROCESS_HPP
