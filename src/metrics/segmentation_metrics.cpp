#include "src/metrics/segmentation_metrics.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "src/imaging/color.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::metrics {

double ConfusionCounts::iou() const {
  const std::uint64_t denom = true_positive + false_positive + false_negative;
  if (denom == 0) {
    // No foreground anywhere: predicted and truth agree vacuously.
    return 1.0;
  }
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionCounts::dice() const {
  const std::uint64_t denom =
      2 * true_positive + false_positive + false_negative;
  if (denom == 0) {
    return 1.0;
  }
  return 2.0 * static_cast<double>(true_positive) /
         static_cast<double>(denom);
}

double ConfusionCounts::pixel_accuracy() const {
  const std::uint64_t total =
      true_positive + false_positive + false_negative + true_negative;
  if (total == 0) {
    return 1.0;
  }
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(total);
}

double ConfusionCounts::precision() const {
  const std::uint64_t denom = true_positive + false_positive;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double ConfusionCounts::recall() const {
  const std::uint64_t denom = true_positive + false_negative;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

ConfusionCounts confusion(const img::ImageU8& predicted,
                          const img::ImageU8& truth) {
  util::expects(predicted.channels() == 1 && truth.channels() == 1,
                "confusion expects 1-channel masks");
  util::expects(predicted.width() == truth.width() &&
                    predicted.height() == truth.height(),
                "confusion expects equal-size masks");
  ConfusionCounts counts;
  const auto pred = predicted.pixels();
  const auto gt = truth.pixels();
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const bool p = pred[i] != 0;
    const bool t = gt[i] != 0;
    if (p && t) {
      ++counts.true_positive;
    } else if (p && !t) {
      ++counts.false_positive;
    } else if (!p && t) {
      ++counts.false_negative;
    } else {
      ++counts.true_negative;
    }
  }
  return counts;
}

double binary_iou(const img::ImageU8& predicted, const img::ImageU8& truth) {
  return confusion(predicted, truth).iou();
}

MatchedIou best_foreground_iou(const img::LabelMap& labels,
                               std::size_t clusters,
                               const img::ImageU8& truth) {
  util::expects(clusters >= 2 && clusters <= 16,
                "best_foreground_iou supports 2..16 clusters");
  util::expects(labels.channels() == 1 && truth.channels() == 1,
                "best_foreground_iou expects 1-channel inputs");
  util::expects(labels.width() == truth.width() &&
                    labels.height() == truth.height(),
                "best_foreground_iou expects equal-size inputs");

  // Per-cluster foreground/background pixel counts; a single pass
  // suffices to score every assignment without re-scanning the image.
  std::vector<std::uint64_t> cluster_fg(clusters, 0);
  std::vector<std::uint64_t> cluster_bg(clusters, 0);
  const auto label_pixels = labels.pixels();
  const auto truth_pixels = truth.pixels();
  for (std::size_t i = 0; i < label_pixels.size(); ++i) {
    const std::uint32_t label = label_pixels[i];
    util::expects(label < clusters,
                  "label map contains a label >= cluster count");
    if (truth_pixels[i] != 0) {
      ++cluster_fg[label];
    } else {
      ++cluster_bg[label];
    }
  }

  MatchedIou best;
  best.iou = -1.0;
  std::uint64_t total_fg = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    total_fg += cluster_fg[c];
  }

  // Every subset of clusters (including empty and full: an all-background
  // or all-foreground prediction is still a valid matching) is scored in
  // O(clusters) from the counts.
  const std::uint32_t subsets = 1u << clusters;
  for (std::uint32_t subset = 0; subset < subsets; ++subset) {
    std::uint64_t tp = 0;
    std::uint64_t fp = 0;
    for (std::size_t c = 0; c < clusters; ++c) {
      if ((subset >> c) & 1u) {
        tp += cluster_fg[c];
        fp += cluster_bg[c];
      }
    }
    const std::uint64_t fn = total_fg - tp;
    const std::uint64_t denom = tp + fp + fn;
    const double iou = denom == 0
                           ? 1.0
                           : static_cast<double>(tp) /
                                 static_cast<double>(denom);
    if (iou > best.iou) {
      best.iou = iou;
      best.foreground_mask = subset;
    }
  }

  best.mask = img::labels_to_mask(labels, best.foreground_mask);
  return best;
}

MatchedIou best_foreground_iou_any(const img::LabelMap& labels,
                                   const img::ImageU8& truth) {
  util::expects(labels.channels() == 1 && truth.channels() == 1,
                "best_foreground_iou_any expects 1-channel inputs");
  util::expects(labels.width() == truth.width() &&
                    labels.height() == truth.height(),
                "best_foreground_iou_any expects equal-size inputs");

  std::uint32_t max_label = 0;
  for (const auto v : labels.pixels()) {
    max_label = std::max(max_label, v);
  }
  const std::size_t label_count = static_cast<std::size_t>(max_label) + 1;
  if (label_count <= 16) {
    return best_foreground_iou(labels, std::max<std::size_t>(label_count, 2),
                               truth);
  }

  // Greedy over per-label confusion counts: sort labels by
  // foreground-purity and grow the foreground set while IoU improves.
  std::vector<std::uint64_t> label_fg(label_count, 0);
  std::vector<std::uint64_t> label_bg(label_count, 0);
  const auto label_pixels = labels.pixels();
  const auto truth_pixels = truth.pixels();
  std::uint64_t total_fg = 0;
  for (std::size_t i = 0; i < label_pixels.size(); ++i) {
    if (truth_pixels[i] != 0) {
      ++label_fg[label_pixels[i]];
      ++total_fg;
    } else {
      ++label_bg[label_pixels[i]];
    }
  }
  std::vector<std::size_t> order(label_count);
  for (std::size_t i = 0; i < label_count; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double purity_a =
        static_cast<double>(label_fg[a]) /
        std::max<double>(1.0, static_cast<double>(label_fg[a] + label_bg[a]));
    const double purity_b =
        static_cast<double>(label_fg[b]) /
        std::max<double>(1.0, static_cast<double>(label_fg[b] + label_bg[b]));
    return purity_a > purity_b;
  });

  MatchedIou best;
  best.iou = 0.0;
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::vector<bool> in_fg(label_count, false);
  std::vector<bool> best_fg(label_count, false);
  for (const std::size_t label : order) {
    tp += label_fg[label];
    fp += label_bg[label];
    in_fg[label] = true;
    const std::uint64_t fn = total_fg - tp;
    const std::uint64_t denom = tp + fp + fn;
    const double iou =
        denom == 0 ? 1.0
                   : static_cast<double>(tp) / static_cast<double>(denom);
    if (iou > best.iou) {
      best.iou = iou;
      best_fg = in_fg;
    }
  }

  best.mask = img::ImageU8(labels.width(), labels.height(), 1, 0);
  for (std::size_t i = 0; i < label_pixels.size(); ++i) {
    if (best_fg[label_pixels[i]]) {
      best.mask.pixels()[i] = 255;
    }
  }
  best.foreground_mask = 0;  // not representable for > 32 labels
  return best;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

std::uint64_t label_map_hash(const img::LabelMap& labels,
                             std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const auto label : labels.pixels()) {
    hash ^= static_cast<std::uint64_t>(label);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace seghdc::metrics
