// Segmentation quality metrics. The paper's headline metric is binary
// Intersection-over-Union between the predicted segmentation map and the
// ground-truth mask (Section IV-A). Because unsupervised methods emit
// arbitrary cluster indices, each cluster must first be matched to
// foreground or background; `best_foreground_iou` performs the optimal
// matching, which is the standard protocol for unsupervised segmentation
// (and the only one that makes both SegHDC's and the CNN baseline's
// outputs comparable).
#ifndef SEGHDC_METRICS_SEGMENTATION_METRICS_HPP
#define SEGHDC_METRICS_SEGMENTATION_METRICS_HPP

#include <cstdint>
#include <vector>

#include "src/imaging/image.hpp"

namespace seghdc::metrics {

/// Pixel-level binary confusion counts between a predicted mask and a
/// ground-truth mask (non-zero = foreground in both).
struct ConfusionCounts {
  std::uint64_t true_positive = 0;
  std::uint64_t false_positive = 0;
  std::uint64_t false_negative = 0;
  std::uint64_t true_negative = 0;

  double iou() const;
  double dice() const;
  double pixel_accuracy() const;
  double precision() const;
  double recall() const;
};

/// Confusion counts of `predicted` vs `truth`; both 1-channel, equal size.
ConfusionCounts confusion(const img::ImageU8& predicted,
                          const img::ImageU8& truth);

/// Binary IoU of `predicted` vs `truth` (non-zero = foreground).
double binary_iou(const img::ImageU8& predicted, const img::ImageU8& truth);

/// Result of the optimal cluster -> {foreground, background} matching.
struct MatchedIou {
  double iou = 0.0;
  /// Bit i set = cluster label i was assigned to foreground.
  std::uint32_t foreground_mask = 0;
  /// The predicted binary mask under the best assignment (255 = fg).
  img::ImageU8 mask;
};

/// Evaluates a `clusters`-way label map against a binary ground truth by
/// trying every non-trivial assignment of clusters to foreground and
/// returning the best binary IoU. `clusters` must be in [2, 16] (the
/// paper uses 2 or 3).
MatchedIou best_foreground_iou(const img::LabelMap& labels,
                               std::size_t clusters,
                               const img::ImageU8& truth);

/// Like best_foreground_iou but for label maps with an arbitrary number
/// of labels (the CNN baseline can emit up to its channel count). For a
/// single-foreground IoU the optimal assignment is computed greedily per
/// label over the exact confusion counts, which is optimal for <= 16
/// labels (exhaustive) and a tight approximation beyond.
MatchedIou best_foreground_iou_any(const img::LabelMap& labels,
                                   const img::ImageU8& truth);

/// Mean of per-image IoU scores (the aggregation used in paper Table I).
double mean(const std::vector<double>& values);

/// FNV-1a over the raw label values, row-major — a byte-order
/// independent fingerprint of a segmentation. The golden regression
/// tests and bench_throughput's cross-thread-count equality check all
/// share this one definition. Chain batches by passing the previous
/// hash as `seed`.
std::uint64_t label_map_hash(const img::LabelMap& labels,
                             std::uint64_t seed = 14695981039346656037ULL);

}  // namespace seghdc::metrics

#endif  // SEGHDC_METRICS_SEGMENTATION_METRICS_HPP
