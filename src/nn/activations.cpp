#include "src/nn/activations.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::nn {

Tensor ReLU::forward(const Tensor& input) {
  channels_ = input.channels();
  height_ = input.height();
  width_ = input.width();
  mask_.assign(input.size(), false);
  Tensor output(channels_, height_, width_);
  const auto in = input.values();
  auto out = output.values();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] > 0.0F) {
      out[i] = in[i];
      mask_[i] = true;
    }
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) const {
  util::expects(grad_output.channels() == channels_ &&
                    grad_output.height() == height_ &&
                    grad_output.width() == width_,
                "ReLU::backward requires a prior forward of the same shape");
  Tensor grad_input(channels_, height_, width_);
  const auto dout = grad_output.values();
  auto din = grad_input.values();
  for (std::size_t i = 0; i < dout.size(); ++i) {
    din[i] = mask_[i] ? dout[i] : 0.0F;
  }
  return grad_input;
}

}  // namespace seghdc::nn
