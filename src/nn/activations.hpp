// ReLU activation with saved mask for backward.
#ifndef SEGHDC_NN_ACTIVATIONS_HPP
#define SEGHDC_NN_ACTIVATIONS_HPP

#include <vector>

#include "src/nn/tensor.hpp"

namespace seghdc::nn {

class ReLU {
 public:
  Tensor forward(const Tensor& input);
  Tensor backward(const Tensor& grad_output) const;

 private:
  std::vector<bool> mask_;  ///< true where input > 0
  std::size_t channels_ = 0, height_ = 0, width_ = 0;
};

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_ACTIVATIONS_HPP
