#include "src/nn/batchnorm.hpp"

#include <cmath>

#include "src/util/contracts.hpp"

namespace seghdc::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, double eps)
    : channels_(channels), eps_(eps) {
  util::expects(channels > 0, "BatchNorm2d needs at least one channel");
  util::expects(eps > 0.0, "BatchNorm2d eps must be positive");
  gamma_.assign(channels, 1.0F);
  beta_.assign(channels, 0.0F);
  gamma_grad_.assign(channels, 0.0F);
  beta_grad_.assign(channels, 0.0F);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  util::expects(input.channels() == channels_,
                "BatchNorm2d::forward channel mismatch");
  const std::size_t hw = input.plane();
  util::expects(hw > 1, "BatchNorm2d needs more than one spatial element");

  Tensor output(input.channels(), input.height(), input.width());
  normalized_ = Tensor(input.channels(), input.height(), input.width());
  inv_std_.assign(channels_, 0.0);

  for (std::size_t c = 0; c < channels_; ++c) {
    const float* in_plane = input.data() + c * hw;
    double mean = 0.0;
    for (std::size_t i = 0; i < hw; ++i) {
      mean += in_plane[i];
    }
    mean /= static_cast<double>(hw);
    double var = 0.0;
    for (std::size_t i = 0; i < hw; ++i) {
      const double d = in_plane[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(hw);  // biased, as in training-mode BN
    const double inv_std = 1.0 / std::sqrt(var + eps_);
    inv_std_[c] = inv_std;

    float* norm_plane = normalized_.data() + c * hw;
    float* out_plane = output.data() + c * hw;
    const float g = gamma_[c];
    const float b = beta_[c];
    for (std::size_t i = 0; i < hw; ++i) {
      const float xhat =
          static_cast<float>((in_plane[i] - mean) * inv_std);
      norm_plane[i] = xhat;
      out_plane[i] = g * xhat + b;
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  util::expects(grad_output.channels() == channels_,
                "BatchNorm2d::backward channel mismatch");
  util::expects(grad_output.same_shape(normalized_),
                "BatchNorm2d::backward requires a prior forward of the "
                "same shape");
  const std::size_t hw = grad_output.plane();
  Tensor grad_input(grad_output.channels(), grad_output.height(),
                    grad_output.width());

  for (std::size_t c = 0; c < channels_; ++c) {
    const float* dout = grad_output.data() + c * hw;
    const float* xhat = normalized_.data() + c * hw;
    float* din = grad_input.data() + c * hw;

    double sum_dout = 0.0;
    double sum_dout_xhat = 0.0;
    for (std::size_t i = 0; i < hw; ++i) {
      sum_dout += dout[i];
      sum_dout_xhat += static_cast<double>(dout[i]) * xhat[i];
    }
    gamma_grad_[c] += static_cast<float>(sum_dout_xhat);
    beta_grad_[c] += static_cast<float>(sum_dout);

    const double scale =
        static_cast<double>(gamma_[c]) * inv_std_[c] /
        static_cast<double>(hw);
    for (std::size_t i = 0; i < hw; ++i) {
      din[i] = static_cast<float>(
          scale * (static_cast<double>(hw) * dout[i] - sum_dout -
                   static_cast<double>(xhat[i]) * sum_dout_xhat));
    }
  }
  return grad_input;
}

void BatchNorm2d::zero_grad() {
  gamma_grad_.assign(channels_, 0.0F);
  beta_grad_.assign(channels_, 0.0F);
}

}  // namespace seghdc::nn
