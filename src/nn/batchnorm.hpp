// 2-D batch normalisation over the spatial plane (batch size 1, as in
// the per-image training loop of the CNN baseline). Training mode only:
// the baseline never runs inference with frozen statistics.
#ifndef SEGHDC_NN_BATCHNORM_HPP
#define SEGHDC_NN_BATCHNORM_HPP

#include <cstddef>
#include <vector>

#include "src/nn/tensor.hpp"

namespace seghdc::nn {

class BatchNorm2d {
 public:
  explicit BatchNorm2d(std::size_t channels, double eps = 1e-5);

  std::size_t channels() const { return channels_; }

  /// Normalises each channel over its H*W plane; stores the normalised
  /// activations and inverse stddev for backward.
  Tensor forward(const Tensor& input);

  /// Standard batch-norm backward; accumulates gamma/beta gradients and
  /// returns the input gradient.
  Tensor backward(const Tensor& grad_output);

  std::span<float> gamma() { return gamma_; }
  std::span<const float> gamma() const { return gamma_; }
  std::span<float> beta() { return beta_; }
  std::span<const float> beta() const { return beta_; }
  std::span<float> gamma_grad() { return gamma_grad_; }
  std::span<float> beta_grad() { return beta_grad_; }

  void zero_grad();

 private:
  std::size_t channels_;
  double eps_;
  std::vector<float> gamma_;
  std::vector<float> beta_;
  std::vector<float> gamma_grad_;
  std::vector<float> beta_grad_;
  // Saved forward state.
  Tensor normalized_;
  std::vector<double> inv_std_;
};

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_BATCHNORM_HPP
