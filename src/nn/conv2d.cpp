#include "src/nn/conv2d.hpp"

#include <cmath>

#include "src/nn/gemm.hpp"
#include "src/util/contracts.hpp"

namespace seghdc::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(kernel / 2) {
  util::expects(in_channels > 0 && out_channels > 0,
                "Conv2d channel counts must be positive");
  util::expects(kernel % 2 == 1, "Conv2d kernel must be odd");
  const std::size_t fan_in = in_channels * kernel * kernel;
  weights_.resize(out_channels * fan_in);
  weight_grad_.assign(weights_.size(), 0.0F);
  bias_.assign(out_channels, 0.0F);
  bias_grad_.assign(out_channels, 0.0F);
  // He-uniform: U(-b, b) with b = sqrt(6 / fan_in).
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (auto& w : weights_) {
    w = static_cast<float>(rng.next_double_in(-bound, bound));
  }
}

void Conv2d::im2col(const Tensor& input) {
  const std::size_t h = input.height();
  const std::size_t w = input.width();
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  cols_.assign(patch * h * w, 0.0F);
  // Row r of cols_ = (c, ky, kx) patch coordinate; column = output pixel.
  std::size_t row = 0;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++row) {
        float* out_row = cols_.data() + row * h * w;
        const std::ptrdiff_t dy =
            static_cast<std::ptrdiff_t>(ky) - static_cast<std::ptrdiff_t>(pad_);
        const std::ptrdiff_t dx =
            static_cast<std::ptrdiff_t>(kx) - static_cast<std::ptrdiff_t>(pad_);
        for (std::size_t y = 0; y < h; ++y) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + dy;
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(h)) {
            continue;  // stays zero (padding)
          }
          for (std::size_t x = 0; x < w; ++x) {
            const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) + dx;
            if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(w)) {
              continue;
            }
            out_row[y * w + x] = input(c, static_cast<std::size_t>(sy),
                                       static_cast<std::size_t>(sx));
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  util::expects(input.channels() == in_channels_,
                "Conv2d::forward input channel mismatch");
  last_height_ = input.height();
  last_width_ = input.width();
  im2col(input);

  const std::size_t hw = input.plane();
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  Tensor output(out_channels_, input.height(), input.width());
  // out[outC x HW] = W[outC x patch] * cols[patch x HW]
  gemm_nn(out_channels_, hw, patch, weights_.data(), cols_.data(),
          output.data(), /*accumulate=*/false);
  for (std::size_t c = 0; c < out_channels_; ++c) {
    float* plane = output.data() + c * hw;
    const float b = bias_[c];
    for (std::size_t i = 0; i < hw; ++i) {
      plane[i] += b;
    }
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  util::expects(grad_output.channels() == out_channels_ &&
                    grad_output.height() == last_height_ &&
                    grad_output.width() == last_width_,
                "Conv2d::backward gradient shape mismatch");
  util::expects(!cols_.empty(), "Conv2d::backward requires a prior forward");

  const std::size_t hw = last_height_ * last_width_;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;

  // dW[outC x patch] += dOut[outC x HW] * cols^T (cols is [patch x HW]).
  gemm_nt(out_channels_, patch, hw, grad_output.data(), cols_.data(),
          weight_grad_.data(), /*accumulate=*/true);
  // db[c] += sum of dOut plane c.
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float* plane = grad_output.data() + c * hw;
    float sum = 0.0F;
    for (std::size_t i = 0; i < hw; ++i) {
      sum += plane[i];
    }
    bias_grad_[c] += sum;
  }

  // dcols[patch x HW] = W^T[patch x outC] * dOut[outC x HW].
  std::vector<float> dcols(patch * hw);
  gemm_tn(patch, hw, out_channels_, weights_.data(), grad_output.data(),
          dcols.data(), /*accumulate=*/false);

  // col2im: scatter-add the patch gradients back to input pixels.
  Tensor grad_input(in_channels_, last_height_, last_width_, 0.0F);
  std::size_t row = 0;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++row) {
        const float* grad_row = dcols.data() + row * hw;
        const std::ptrdiff_t dy =
            static_cast<std::ptrdiff_t>(ky) - static_cast<std::ptrdiff_t>(pad_);
        const std::ptrdiff_t dx =
            static_cast<std::ptrdiff_t>(kx) - static_cast<std::ptrdiff_t>(pad_);
        for (std::size_t y = 0; y < last_height_; ++y) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + dy;
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(last_height_)) {
            continue;
          }
          for (std::size_t x = 0; x < last_width_; ++x) {
            const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) + dx;
            if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(last_width_)) {
              continue;
            }
            grad_input(c, static_cast<std::size_t>(sy),
                       static_cast<std::size_t>(sx)) +=
                grad_row[y * last_width_ + x];
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2d::zero_grad() {
  weight_grad_.assign(weight_grad_.size(), 0.0F);
  bias_grad_.assign(bias_grad_.size(), 0.0F);
}

std::uint64_t Conv2d::forward_macs(std::size_t in_channels,
                                   std::size_t out_channels,
                                   std::size_t kernel, std::size_t height,
                                   std::size_t width) {
  return static_cast<std::uint64_t>(height) * width * in_channels *
         out_channels * kernel * kernel;
}

std::uint64_t Conv2d::im2col_bytes(std::size_t in_channels,
                                   std::size_t kernel, std::size_t height,
                                   std::size_t width) {
  return static_cast<std::uint64_t>(height) * width * in_channels * kernel *
         kernel * sizeof(float);
}

}  // namespace seghdc::nn
