// 2-D convolution layer (stride 1, zero "same" padding) with explicit
// forward/backward, implemented as im2col + GEMM — the same structure
// PyTorch's CPU path uses, which matters because the device memory model
// charges the baseline for exactly this im2col workspace (DESIGN.md §2,
// device module).
#ifndef SEGHDC_NN_CONV2D_HPP
#define SEGHDC_NN_CONV2D_HPP

#include <cstddef>
#include <vector>

#include "src/nn/tensor.hpp"
#include "src/util/rng.hpp"

namespace seghdc::nn {

class Conv2d {
 public:
  /// Kernel must be odd (1, 3, 5, ...); padding = kernel/2 keeps the
  /// spatial size. Weights: He-uniform init; bias: zero.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, util::Rng& rng);

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }

  /// Forward pass; stores the im2col matrix of `input` for backward.
  Tensor forward(const Tensor& input);

  /// Backward pass for the most recent forward; accumulates weight/bias
  /// gradients and returns the input gradient.
  Tensor backward(const Tensor& grad_output);

  std::span<float> weights() { return weights_; }
  std::span<const float> weights() const { return weights_; }
  std::span<float> bias() { return bias_; }
  std::span<const float> bias() const { return bias_; }
  std::span<float> weight_grad() { return weight_grad_; }
  std::span<float> bias_grad() { return bias_grad_; }

  void zero_grad();

  /// MACs of one forward pass over an H x W input (used by the device
  /// latency model; backward costs ~2x forward).
  static std::uint64_t forward_macs(std::size_t in_channels,
                                    std::size_t out_channels,
                                    std::size_t kernel, std::size_t height,
                                    std::size_t width);

  /// Bytes of the im2col workspace for an H x W input (device memory
  /// model).
  static std::uint64_t im2col_bytes(std::size_t in_channels,
                                    std::size_t kernel, std::size_t height,
                                    std::size_t width);

 private:
  void im2col(const Tensor& input);

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t pad_;
  std::vector<float> weights_;      ///< [outC][inC*k*k] row-major
  std::vector<float> bias_;         ///< [outC]
  std::vector<float> weight_grad_;  ///< same shape as weights_
  std::vector<float> bias_grad_;    ///< [outC]
  // Saved forward state.
  std::vector<float> cols_;  ///< [inC*k*k][H*W]
  std::size_t last_height_ = 0;
  std::size_t last_width_ = 0;
};

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_CONV2D_HPP
