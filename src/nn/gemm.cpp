#include "src/nn/gemm.hpp"

#include <cstring>

#include "src/util/parallel.hpp"

namespace seghdc::nn {

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  util::parallel_for(
      0, m,
      [&](std::size_t i) {
        float* c_row = c + i * n;
        if (!accumulate) {
          std::memset(c_row, 0, n * sizeof(float));
        }
        const float* a_row = a + i * k;
        for (std::size_t p = 0; p < k; ++p) {
          const float a_ip = a_row[p];
          if (a_ip == 0.0F) {
            continue;
          }
          const float* b_row = b + p * n;
          for (std::size_t j = 0; j < n; ++j) {
            c_row[j] += a_ip * b_row[j];
          }
        }
      },
      /*grain=*/1);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  util::parallel_for(
      0, m,
      [&](std::size_t i) {
        float* c_row = c + i * n;
        const float* a_row = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
          const float* b_row = b + j * k;
          float sum = 0.0F;
          for (std::size_t p = 0; p < k; ++p) {
            sum += a_row[p] * b_row[p];
          }
          if (accumulate) {
            c_row[j] += sum;
          } else {
            c_row[j] = sum;
          }
        }
      },
      /*grain=*/1);
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  util::parallel_for(
      0, m,
      [&](std::size_t i) {
        float* c_row = c + i * n;
        if (!accumulate) {
          std::memset(c_row, 0, n * sizeof(float));
        }
        for (std::size_t p = 0; p < k; ++p) {
          const float a_pi = a[p * m + i];
          if (a_pi == 0.0F) {
            continue;
          }
          const float* b_row = b + p * n;
          for (std::size_t j = 0; j < n; ++j) {
            c_row[j] += a_pi * b_row[j];
          }
        }
      },
      /*grain=*/1);
}

}  // namespace seghdc::nn
