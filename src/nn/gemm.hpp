// Row-major single-precision matrix multiply kernels backing the conv
// layers (im2col + GEMM). Parallelised over output rows; inner loops are
// written i-k-j so the compiler can vectorise the unit-stride j axis.
#ifndef SEGHDC_NN_GEMM_HPP
#define SEGHDC_NN_GEMM_HPP

#include <cstddef>

namespace seghdc::nn {

/// C[M x N] (+)= A[M x K] * B[K x N]. When `accumulate` is false C is
/// overwritten. All matrices row-major, no aliasing allowed.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate);

/// C[M x N] (+)= A[M x K] * B^T where B is [N x K] row-major.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate);

/// C[M x N] (+)= A^T * B where A is [K x M] row-major and B is [K x N].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate);

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_GEMM_HPP
