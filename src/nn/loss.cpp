#include "src/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/contracts.hpp"

namespace seghdc::nn {

std::vector<std::uint32_t> argmax_labels(const Tensor& logits) {
  const std::size_t hw = logits.plane();
  const std::size_t q = logits.channels();
  std::vector<std::uint32_t> labels(hw, 0);
  for (std::size_t i = 0; i < hw; ++i) {
    float best = logits.data()[i];
    std::uint32_t best_c = 0;
    for (std::size_t c = 1; c < q; ++c) {
      const float v = logits.data()[c * hw + i];
      if (v > best) {
        best = v;
        best_c = static_cast<std::uint32_t>(c);
      }
    }
    labels[i] = best_c;
  }
  return labels;
}

std::size_t distinct_labels(const std::vector<std::uint32_t>& labels) {
  std::unordered_set<std::uint32_t> seen(labels.begin(), labels.end());
  return seen.size();
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint32_t>& targets) {
  const std::size_t hw = logits.plane();
  const std::size_t q = logits.channels();
  util::expects(targets.size() == hw,
                "softmax_cross_entropy needs one target per pixel");

  LossResult result;
  result.grad = Tensor(logits.channels(), logits.height(), logits.width());
  double total = 0.0;
  const double inv_n = 1.0 / static_cast<double>(hw);

  std::vector<double> probs(q);
  for (std::size_t i = 0; i < hw; ++i) {
    // Numerically stable softmax over the channel axis.
    double max_logit = logits.data()[i];
    for (std::size_t c = 1; c < q; ++c) {
      max_logit = std::max(max_logit,
                           static_cast<double>(logits.data()[c * hw + i]));
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < q; ++c) {
      probs[c] = std::exp(logits.data()[c * hw + i] - max_logit);
      denom += probs[c];
    }
    const std::uint32_t target = targets[i];
    util::expects(target < q, "softmax_cross_entropy target within range");
    total += -(std::log(probs[target] / denom));
    for (std::size_t c = 0; c < q; ++c) {
      const double p = probs[c] / denom;
      const double indicator = c == target ? 1.0 : 0.0;
      result.grad.data()[c * hw + i] =
          static_cast<float>((p - indicator) * inv_n);
    }
  }
  result.loss = total * inv_n;
  return result;
}

LossResult continuity_loss(const Tensor& response) {
  const std::size_t h = response.height();
  const std::size_t w = response.width();
  const std::size_t q = response.channels();
  util::expects(h >= 2 && w >= 2,
                "continuity_loss needs at least a 2x2 response map");

  LossResult result;
  result.grad = Tensor(q, h, w);
  double total_y = 0.0;
  double total_x = 0.0;
  const double count_y = static_cast<double>(q * (h - 1) * w);
  const double count_x = static_cast<double>(q * h * (w - 1));

  for (std::size_t c = 0; c < q; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        if (y + 1 < h) {
          const double diff = static_cast<double>(response(c, y + 1, x)) -
                              response(c, y, x);
          total_y += std::abs(diff);
          // L1 subgradient: sign(diff)/count into (y+1) and the negation
          // into (y); sign(0) = 0.
          const auto sign =
              static_cast<float>((diff > 0.0) - (diff < 0.0));
          result.grad(c, y + 1, x) += sign / static_cast<float>(count_y);
          result.grad(c, y, x) -= sign / static_cast<float>(count_y);
        }
        if (x + 1 < w) {
          const double diff = static_cast<double>(response(c, y, x + 1)) -
                              response(c, y, x);
          total_x += std::abs(diff);
          const auto sign =
              static_cast<float>((diff > 0.0) - (diff < 0.0));
          result.grad(c, y, x + 1) += sign / static_cast<float>(count_x);
          result.grad(c, y, x) -= sign / static_cast<float>(count_x);
        }
      }
    }
  }
  result.loss = total_y / count_y + total_x / count_x;
  return result;
}

}  // namespace seghdc::nn
