// Losses of the CNN baseline (Kim et al., TIP 2020):
//  * softmax cross-entropy between the response map and its own argmax
//    pseudo-labels (the "feature similarity" term), and
//  * the spatial continuity term: L1 norm of vertical and horizontal
//    first differences of the response map.
#ifndef SEGHDC_NN_LOSS_HPP
#define SEGHDC_NN_LOSS_HPP

#include <cstdint>
#include <vector>

#include "src/nn/tensor.hpp"

namespace seghdc::nn {

struct LossResult {
  double loss = 0.0;
  Tensor grad;  ///< d(loss)/d(logits), same shape as the input
};

/// Per-pixel argmax over channels of `logits` — the pseudo-label target
/// of the baseline's self-training loop.
std::vector<std::uint32_t> argmax_labels(const Tensor& logits);

/// Number of distinct labels in `labels` (early-stopping criterion).
std::size_t distinct_labels(const std::vector<std::uint32_t>& labels);

/// Mean softmax cross-entropy of `logits` against per-pixel integer
/// `targets` (values < logits.channels()); gradient included.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint32_t>& targets);

/// Spatial continuity loss: mean |r(c,y+1,x) - r(c,y,x)| +
/// mean |r(c,y,x+1) - r(c,y,x)| over the response map, with L1
/// subgradients. Matches the reference implementation's L1Loss against
/// zero targets on the vertical/horizontal difference maps.
LossResult continuity_loss(const Tensor& response);

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_LOSS_HPP
