#include "src/nn/optimizer.hpp"

#include "src/util/contracts.hpp"

namespace seghdc::nn {

SgdMomentum::SgdMomentum(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  util::expects(learning_rate > 0.0, "SgdMomentum lr must be positive");
  util::expects(momentum >= 0.0 && momentum < 1.0,
                "SgdMomentum momentum must be in [0, 1)");
}

std::size_t SgdMomentum::add_parameters(std::span<float> params,
                                        std::span<float> grads) {
  util::expects(params.size() == grads.size(),
                "SgdMomentum parameter/gradient size mismatch");
  slots_.push_back(Slot{params, grads,
                        std::vector<float>(params.size(), 0.0F)});
  return slots_.size() - 1;
}

void SgdMomentum::step() {
  const auto lr = static_cast<float>(learning_rate_);
  const auto mu = static_cast<float>(momentum_);
  for (auto& slot : slots_) {
    for (std::size_t i = 0; i < slot.params.size(); ++i) {
      slot.velocity[i] = mu * slot.velocity[i] + slot.grads[i];
      slot.params[i] -= lr * slot.velocity[i];
    }
  }
}

}  // namespace seghdc::nn
