// SGD with momentum, PyTorch convention (the reference baseline trains
// with torch.optim.SGD(lr=0.1, momentum=0.9)):
//   v <- momentum * v + grad;  param <- param - lr * v
#ifndef SEGHDC_NN_OPTIMIZER_HPP
#define SEGHDC_NN_OPTIMIZER_HPP

#include <span>
#include <vector>

namespace seghdc::nn {

class SgdMomentum {
 public:
  SgdMomentum(double learning_rate, double momentum);

  /// Registers a parameter/gradient pair; returns its slot id. The spans
  /// must remain valid for the optimizer's lifetime.
  std::size_t add_parameters(std::span<float> params,
                             std::span<float> grads);

  /// One update step over every registered parameter.
  void step();

  double learning_rate() const { return learning_rate_; }
  double momentum() const { return momentum_; }

 private:
  struct Slot {
    std::span<float> params;
    std::span<float> grads;
    std::vector<float> velocity;
  };

  double learning_rate_;
  double momentum_;
  std::vector<Slot> slots_;
};

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_OPTIMIZER_HPP
