// Tensor is header-only; this translation unit anchors the library and
// hosts shape helpers that do not belong in the header.
#include "src/nn/tensor.hpp"

namespace seghdc::nn {}  // namespace seghdc::nn
