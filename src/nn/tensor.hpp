// Minimal CHW float tensor for the CNN baseline. The paper's baseline
// (Kim et al., TIP 2020) trains per image with batch size 1, so a
// 3-axis channels/height/width tensor is all the runtime needs — kept
// deliberately small and fully testable instead of binding libtorch.
#ifndef SEGHDC_NN_TENSOR_HPP
#define SEGHDC_NN_TENSOR_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/contracts.hpp"

namespace seghdc::nn {

/// Dense CHW float tensor: element (c, y, x) at index (c*H + y)*W + x.
class Tensor {
 public:
  Tensor() = default;

  Tensor(std::size_t channels, std::size_t height, std::size_t width,
         float fill = 0.0F)
      : channels_(channels),
        height_(height),
        width_(width),
        data_(channels * height * width, fill) {
    util::expects(channels > 0 && height > 0 && width > 0,
                  "Tensor dimensions must be positive");
  }

  std::size_t channels() const { return channels_; }
  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }
  std::size_t size() const { return data_.size(); }
  std::size_t plane() const { return height_ * width_; }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t c, std::size_t y, std::size_t x) {
    util::expects(c < channels_ && y < height_ && x < width_,
                  "Tensor::at coordinates within bounds");
    return data_[(c * height_ + y) * width_ + x];
  }
  const float& at(std::size_t c, std::size_t y, std::size_t x) const {
    util::expects(c < channels_ && y < height_ && x < width_,
                  "Tensor::at coordinates within bounds");
    return data_[(c * height_ + y) * width_ + x];
  }

  float& operator()(std::size_t c, std::size_t y, std::size_t x) {
    return data_[(c * height_ + y) * width_ + x];
  }
  const float& operator()(std::size_t c, std::size_t y, std::size_t x) const {
    return data_[(c * height_ + y) * width_ + x];
  }

  void fill(float value) { data_.assign(data_.size(), value); }
  void zero() { fill(0.0F); }

  bool same_shape(const Tensor& other) const {
    return channels_ == other.channels_ && height_ == other.height_ &&
           width_ == other.width_;
  }

  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

 private:
  std::size_t channels_ = 0;
  std::size_t height_ = 0;
  std::size_t width_ = 0;
  std::vector<float> data_;
};

}  // namespace seghdc::nn

#endif  // SEGHDC_NN_TENSOR_HPP
