#include "src/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/util/contracts.hpp"
#include "src/util/logging.hpp"

namespace seghdc::obs {

double percentile_nearest_rank(std::span<const double> sorted, double q) {
  util::expects(!sorted.empty(),
                "percentile_nearest_rank needs at least one sample");
  util::expects(q > 0.0 && q <= 100.0,
                "percentile_nearest_rank needs q in (0, 100]");
  const double exact_rank =
      q / 100.0 * static_cast<double>(sorted.size());
  // Nearest rank = ceil(exact), floored at 1 so q -> 0+ still indexes
  // the smallest sample; clamp against rounding at q = 100.
  const std::size_t rank = std::min<std::size_t>(
      sorted.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(exact_rank - 1e-9))));
  return sorted[rank - 1];
}

LatencyRecorder::LatencyRecorder(std::size_t window_capacity)
    : window_capacity_(window_capacity) {
  util::expects(window_capacity >= 1,
                "LatencyRecorder window_capacity must be >= 1");
  window_.reserve(std::min<std::size_t>(window_capacity, 1024));
}

void LatencyRecorder::record(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_count_;
  total_seconds_ += seconds;
  if (window_.size() < window_capacity_) {
    window_.push_back(seconds);
  } else {
    window_[next_slot_] = seconds;
  }
  next_slot_ = (next_slot_ + 1) % window_capacity_;
}

LatencyPercentiles LatencyRecorder::snapshot() const {
  std::vector<double> sorted;
  LatencyPercentiles result;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (total_count_ == 0) {
      return result;
    }
    sorted = window_;
    result.count = total_count_;
    result.window_count = window_.size();
    result.mean_seconds = total_seconds_ / static_cast<double>(total_count_);
  }
  std::sort(sorted.begin(), sorted.end());
  result.min_seconds = sorted.front();
  result.max_seconds = sorted.back();
  result.p50_seconds = percentile_nearest_rank(sorted, 50.0);
  result.p95_seconds = percentile_nearest_rank(sorted, 95.0);
  result.p99_seconds = percentile_nearest_rank(sorted, 99.0);
  return result;
}

Histogram::Histogram(std::size_t window_capacity) : window_(window_capacity) {}

double Histogram::bucket_upper_bound(std::size_t index) {
  return 1e-6 * static_cast<double>(std::uint64_t{1} << index);
}

void Histogram::record(double seconds) {
  window_.record(seconds);
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double>::fetch_add is C++20 but not universally lowered;
  // a CAS loop is portable and this is not a per-pixel path.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + seconds,
                                     std::memory_order_relaxed)) {
  }
  std::size_t bucket = kBucketCount;  // +Inf
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (seconds <= bucket_upper_bound(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::array<std::uint64_t, Histogram::kBucketCount + 1>
Histogram::cumulative_buckets() const {
  std::array<std::uint64_t, kBucketCount + 1> cumulative{};
  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= kBucketCount; ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

MetricsRegistry::Entry& MetricsRegistry::get_or_create(
    Kind kind, const std::string& name, const std::string& help,
    const std::string& labels, std::size_t window_capacity) {
  util::expects(!name.empty(), "MetricsRegistry metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      if (entry->kind != kind) {
        throw std::invalid_argument("MetricsRegistry metric '" + name +
                                    "' already registered as a different kind");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(window_capacity);
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  return *get_or_create(Kind::kCounter, name, help, labels, 0).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  return *get_or_create(Kind::kGauge, name, help, labels, 0).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels,
                                      std::size_t window_capacity) {
  return *get_or_create(Kind::kHistogram, name, help, labels, window_capacity)
              .histogram;
}

namespace {

std::string labeled(const std::string& name, const std::string& labels) {
  if (labels.empty()) {
    return name;
  }
  return name + "{" + labels + "}";
}

std::string with_extra_label(const std::string& name,
                             const std::string& labels,
                             const std::string& extra) {
  if (labels.empty()) {
    return name + "{" + extra + "}";
  }
  return name + "{" + labels + "," + extra + "}";
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::render() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::string last_header;
  for (const auto& entry : entries_) {
    // One HELP/TYPE header per metric name; labeled series of the same
    // name (e.g. per-tenant counters) share it, matching the exposition
    // format's grouping rule for consecutive entries.
    if (entry->name != last_header) {
      if (!entry->help.empty()) {
        out << "# HELP " << entry->name << " " << entry->help << "\n";
      }
      out << "# TYPE " << entry->name << " ";
      switch (entry->kind) {
        case Kind::kCounter:
          out << "counter";
          break;
        case Kind::kGauge:
          out << "gauge";
          break;
        case Kind::kHistogram:
          out << "histogram";
          break;
      }
      out << "\n";
      last_header = entry->name;
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out << labeled(entry->name, entry->labels) << " "
            << entry->counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << labeled(entry->name, entry->labels) << " "
            << entry->gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        const auto cumulative = entry->histogram->cumulative_buckets();
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          out << with_extra_label(
                     entry->name + "_bucket", entry->labels,
                     "le=\"" + format_double(Histogram::bucket_upper_bound(i)) +
                         "\"")
              << " " << cumulative[i] << "\n";
        }
        out << with_extra_label(entry->name + "_bucket", entry->labels,
                                "le=\"+Inf\"")
            << " " << cumulative[Histogram::kBucketCount] << "\n";
        out << labeled(entry->name + "_sum", entry->labels) << " "
            << format_double(entry->histogram->sum()) << "\n";
        out << labeled(entry->name + "_count", entry->labels) << " "
            << entry->histogram->count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::render_dashboard() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "metrics:";
  for (const auto& entry : entries_) {
    out << " " << labeled(entry->name, entry->labels) << "=";
    switch (entry->kind) {
      case Kind::kCounter:
        out << entry->counter->value();
        break;
      case Kind::kGauge:
        out << entry->gauge->value();
        break;
      case Kind::kHistogram: {
        const LatencyPercentiles p = entry->histogram->percentiles();
        out << "[n=" << p.count << " p50=" << format_double(p.p50_seconds * 1e3)
            << "ms p99=" << format_double(p.p99_seconds * 1e3) << "ms]";
        break;
      }
    }
  }
  return out.str();
}

struct Dashboard::Impl {
  const MetricsRegistry& registry;
  double interval_seconds;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;

  Impl(const MetricsRegistry& reg, double interval)
      : registry(reg), interval_seconds(interval) {
    thread = std::thread([this] { loop(); });
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      const auto interval = std::chrono::duration<double>(interval_seconds);
      if (cv.wait_for(lock, interval, [this] { return stop; })) {
        return;
      }
      lock.unlock();
      util::log(util::LogLevel::kInfo, registry.render_dashboard());
      lock.lock();
    }
  }
};

Dashboard::Dashboard(const MetricsRegistry& registry,
                     double interval_seconds) {
  util::expects(interval_seconds > 0.0,
                "Dashboard interval_seconds must be > 0");
  impl_ = std::make_unique<Impl>(registry, interval_seconds);
}

Dashboard::~Dashboard() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
}

}  // namespace seghdc::obs
