// MetricsRegistry: named counters, gauges, and histograms for the
// serving stack, with Prometheus-text rendering and a periodic stderr
// dashboard. The serving layers (SegHdcServer, SegHdcFleet) register
// their counters here and read snapshots back out, so ServerStats /
// FleetStats are views over the registry, not parallel bookkeeping.
//
//   obs::MetricsRegistry metrics;
//   obs::Counter& served = metrics.counter("seghdc_served_total");
//   served.add();
//   std::cout << metrics.render();   // Prometheus text exposition
//
// Handles are plain atomics returned by reference (stable for the
// registry's lifetime), so the hot-path cost of a registered counter is
// exactly one relaxed fetch_add — identical to the raw atomic members
// they replaced. Like the tracer, metrics are observational only: they
// never influence scheduling or results.
//
// LatencyPercentiles / LatencyRecorder / percentile_nearest_rank moved
// here from src/serve/stats.hpp (serve re-exports them): sliding-window
// percentile math is generic observability, and obs::Histogram builds
// on the recorder for its window percentiles.
#ifndef SEGHDC_OBS_METRICS_HPP
#define SEGHDC_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace seghdc::obs {

/// Latency percentiles over a set of samples, in seconds. All zero when
/// no sample was recorded.
///
/// Two sample counts on purpose: `count` is every sample ever recorded
/// (what `mean_seconds` covers), `window_count` is how many of them are
/// still in the sliding window (what min/max/p50/p95/p99 cover). They
/// are equal until the recorder's window wraps; after that, reading the
/// percentiles as if they covered `count` samples overstates their
/// support — display code must cite `window_count` next to percentiles.
struct LatencyPercentiles {
  std::uint64_t count = 0;         ///< lifetime samples (mean covers these)
  std::uint64_t window_count = 0;  ///< samples behind min/max/percentiles
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Nearest-rank percentile: the ceil(q/100 * n)-th smallest sample
/// (1-indexed), the classical definition — p100 is the maximum, p50 of
/// {1..100} is 50. `sorted` must be ascending and non-empty; `q` in
/// (0, 100].
double percentile_nearest_rank(std::span<const double> sorted, double q);

/// Thread-safe latency accumulator. Percentiles and min/max are computed
/// over a sliding window of the most recent `window_capacity` samples
/// (bounded memory under sustained traffic); count and mean cover every
/// sample ever recorded. All methods are safe to call concurrently.
class LatencyRecorder {
 public:
  /// `window_capacity` must be >= 1; the default keeps the last 64k
  /// request latencies, plenty for p99 stability.
  explicit LatencyRecorder(std::size_t window_capacity = 65536);

  /// Records one request latency (seconds, >= 0).
  void record(double seconds);

  /// Snapshot of the current percentiles (sorts a copy of the window;
  /// O(window log window), intended for dashboards and tests, not per
  /// request).
  LatencyPercentiles snapshot() const;

 private:
  const std::size_t window_capacity_;
  mutable std::mutex mutex_;
  std::vector<double> window_;  ///< ring buffer, size <= window_capacity_
  std::size_t next_slot_ = 0;   ///< ring write cursor
  std::uint64_t total_count_ = 0;
  double total_seconds_ = 0.0;
};

/// Monotonic counter. add() is one relaxed fetch_add — safe and cheap
/// from any thread, exactly like the raw atomics it replaces.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, in-flight requests).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Seconds-valued distribution: power-of-two exponential buckets for
/// the Prometheus exposition plus a LatencyRecorder window for the
/// p50/p95/p99 snapshots ServerStats reports. record() is one mutex'd
/// ring append plus one relaxed bucket increment.
class Histogram {
 public:
  /// Bucket upper bounds: 1us * 2^i for i in [0, kBucketCount), i.e.
  /// 1us .. ~33.5s, plus the implicit +Inf bucket.
  static constexpr std::size_t kBucketCount = 26;

  explicit Histogram(std::size_t window_capacity = 65536);

  void record(double seconds);

  /// Sliding-window percentile snapshot (see LatencyRecorder).
  LatencyPercentiles percentiles() const { return window_.snapshot(); }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  static double bucket_upper_bound(std::size_t index);

  /// Cumulative (Prometheus-style) per-bucket counts, +Inf last.
  std::array<std::uint64_t, kBucketCount + 1> cumulative_buckets() const;

 private:
  LatencyRecorder window_;
  std::array<std::atomic<std::uint64_t>, kBucketCount + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry with get-or-create handles and Prometheus-text
/// rendering. Handle references stay valid for the registry's lifetime;
/// re-requesting a (name, labels) pair returns the SAME handle, and
/// requesting an existing pair as a different metric kind throws
/// std::invalid_argument. `labels` is a pre-rendered Prometheus label
/// body without braces, e.g. `tenant="nuclei"`.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       const std::string& labels = "",
                       std::size_t window_capacity = 65536);

  /// Prometheus text exposition: # HELP / # TYPE headers (once per
  /// metric name) followed by the samples, in registration order.
  /// Histograms render cumulative _bucket{le=...} series plus _sum and
  /// _count.
  std::string render() const;

  /// One compact human line per metric — the periodic stderr dashboard
  /// body (histograms show count and window p50/p99 in milliseconds).
  std::string render_dashboard() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& get_or_create(Kind kind, const std::string& name,
                       const std::string& help, const std::string& labels,
                       std::size_t window_capacity);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

/// Periodic stderr dashboard: a background thread that logs
/// `registry.render_dashboard()` through util::log every
/// `interval_seconds` until destruction. Purely informational — uses
/// the (thread-safe) logger, never touches the pipeline.
class Dashboard {
 public:
  Dashboard(const MetricsRegistry& registry, double interval_seconds);
  ~Dashboard();

  Dashboard(const Dashboard&) = delete;
  Dashboard& operator=(const Dashboard&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace seghdc::obs

#endif  // SEGHDC_OBS_METRICS_HPP
