#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace seghdc::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // The registry holds shared_ptrs so a worker thread's events outlive
  // the thread (a drained server's spans must still export); the
  // thread_local copy keeps lookups O(1) after the first record.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    fresh->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::record(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  // Own-thread mutex: uncontended except while collect()/clear() walk
  // the registry, so the common case is one cheap lock per span.
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  ++buffer.recorded;
  if (buffer.ring.size() < kRingCapacity) {
    buffer.ring.push_back(event);
    buffer.ring.back().tid = buffer.tid;
    return;
  }
  buffer.ring[buffer.next_slot] = event;
  buffer.ring[buffer.next_slot].tid = buffer.tid;
  buffer.next_slot = (buffer.next_slot + 1) % kRingCapacity;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->ring.clear();
    buffer->next_slot = 0;
    buffer->recorded = 0;
  }
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> lock(buffer->mutex);
      events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t dropped = 0;
  const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    if (buffer->recorded > buffer->ring.size()) {
      dropped += buffer->recorded - buffer->ring.size();
    }
  }
  return dropped;
}

void emit_complete(const char* name, const char* cat, double seconds,
                   const char* arg_key, std::uint64_t arg_value) {
  if (!trace_enabled()) {
    return;
  }
  Tracer& tracer = Tracer::instance();
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.dur_ns = seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
  const std::uint64_t now = tracer.now_ns();
  event.start_ns = now > event.dur_ns ? now - event.dur_ns : 0;
  event.arg1_key = arg_key;
  event.arg1_value = arg_value;
  tracer.record(event);
}

void apply_trace_config(bool force_on) {
  if (force_on) {
    Tracer::instance().set_enabled(true);
    return;
  }
  const char* env = std::getenv("SEGHDC_TRACE");
  if (env == nullptr || *env == '\0') {
    return;
  }
  if (std::strcmp(env, "1") == 0) {
    Tracer::instance().set_enabled(true);
    return;
  }
  if (std::strcmp(env, "0") == 0) {
    return;  // explicit off: leave any TraceSession-enabled state alone
  }
  // Malformed overrides are hard errors, like SEGHDC_TILE_ROWS: a trace
  // run that silently recorded nothing would be worse than no run.
  throw std::invalid_argument(
      std::string("SEGHDC_TRACE must be '0' or '1', got '") + env + "'");
}

TraceSession::TraceSession() : prior_enabled_(trace_enabled()) {
  Tracer::instance().clear();
  Tracer::instance().set_enabled(true);
}

TraceSession::~TraceSession() {
  Tracer::instance().set_enabled(prior_enabled_);
}

std::vector<TraceEvent> TraceSession::events() const {
  return Tracer::instance().collect();
}

void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events,
                      std::uint64_t dropped) {
  // Names/categories/keys are compile-time literals by contract
  // (TraceEvent docs), so no JSON escaping pass is needed; ts and dur
  // are microseconds, the unit chrome://tracing expects.
  out << "{\"traceEvents\":[";
  char buffer[64];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"name\":\"" << event.name << "\",\"cat\":\""
        << (event.cat != nullptr ? event.cat : "seghdc")
        << "\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(event.start_ns) / 1e3);
    out << buffer << ",\"dur\":";
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(event.dur_ns) / 1e3);
    out << buffer << ",\"pid\":1,\"tid\":" << event.tid;
    if (event.arg1_key != nullptr) {
      out << ",\"args\":{\"" << event.arg1_key << "\":" << event.arg1_value;
      if (event.arg2_key != nullptr) {
        out << ",\"" << event.arg2_key << "\":" << event.arg2_value;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\""
      << dropped << "\"}}\n";
}

void TraceSession::write_json(std::ostream& out) const {
  write_trace_json(out, Tracer::instance().collect(),
                   Tracer::instance().dropped());
}

void TraceSession::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceSession::write_json: cannot open '" + path +
                             "'");
  }
  write_json(out);
}

}  // namespace seghdc::obs
