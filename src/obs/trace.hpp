// Lock-cheap span tracer: the "where did this one request spend its
// time?" layer of the serving stack. RAII SpanScopes record complete
// events (name, category, start, duration, up to two integer args) into
// per-thread ring buffers; a TraceSession turns the tracer on, collects
// every buffer, and exports Chrome-trace/Perfetto JSON that loads
// directly into chrome://tracing or https://ui.perfetto.dev.
//
//   obs::TraceSession session;          // enables tracing, clears buffers
//   server.submit(image).get();         // spans record themselves
//   session.write_json("trace.json");   // Perfetto-loadable
//
// Design rules:
//   - NEVER load-bearing: spans observe the pipeline, they cannot steer
//     it. No RNG, no ordering side effects, no allocation on the hot
//     path once a thread's ring is warm — the golden label hashes are
//     bit-identical with tracing on and off.
//   - Near-zero overhead when off: a disabled SpanScope is one relaxed
//     atomic load in the constructor and one branch in the destructor.
//   - Lock-cheap when on: each thread appends to its own ring buffer
//     under its own (uncontended) mutex; the global registry mutex is
//     taken once per thread, at first use. Full rings overwrite the
//     oldest events and count the overflow as `dropped`.
//
// Enabling: `SegHdcConfig::trace` forces the process-wide tracer on
// when a session is constructed; otherwise the SEGHDC_TRACE environment
// variable ("1" = on, "0"/unset = leave off, anything else is a hard
// std::invalid_argument like the other env knobs) is consulted. Tests
// and tools use TraceSession, which enables on construction and
// restores the prior state on destruction.
#ifndef SEGHDC_OBS_TRACE_HPP
#define SEGHDC_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace seghdc::obs {

/// One completed span. `name`, `cat`, and the arg keys must be string
/// literals (or otherwise outlive the tracer): events store the
/// pointers, never copies, so recording stays allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t start_ns = 0;  ///< since the tracer's process epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< small per-thread id (registration order)
  const char* arg1_key = nullptr;
  std::uint64_t arg1_value = 0;
  const char* arg2_key = nullptr;
  std::uint64_t arg2_value = 0;
};

namespace detail {
/// The process-wide on/off switch, inline so the hot check compiles to
/// one relaxed load with no function call.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

/// True when spans are being recorded. The ONLY thing hot paths check.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide trace collector. One instance; threads register a ring
/// buffer on first record and keep it for their lifetime (buffers
/// survive thread exit so a drained server's worker spans still export).
class Tracer {
 public:
  /// Events kept per thread; older events are overwritten (and counted
  /// as dropped) once a thread's ring is full.
  static constexpr std::size_t kRingCapacity = 65536;

  static Tracer& instance();

  void set_enabled(bool on);

  /// Drops every recorded event (thread registrations and ids persist).
  void clear();

  /// Snapshot of every thread's events, globally sorted by start time.
  /// Intended for quiesced pipelines (server drained); safe — but
  /// momentarily blocking recorders — while spans are still active.
  std::vector<TraceEvent> collect() const;

  /// Events lost to ring overwrites since the last clear().
  std::uint64_t dropped() const;

  /// Nanoseconds since the tracer's epoch (steady clock).
  std::uint64_t now_ns() const;

  /// Appends one completed event to the calling thread's ring.
  void record(const TraceEvent& event);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> ring;  ///< size <= kRingCapacity
    std::size_t next_slot = 0;     ///< ring write cursor once full
    std::uint64_t recorded = 0;    ///< lifetime records (for dropped math)
    std::uint32_t tid = 0;
  };

  Tracer();
  ThreadBuffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) as one complete event
/// when tracing is enabled at construction; a no-op otherwise. Name,
/// category, and arg keys must be string literals (see TraceEvent).
class SpanScope {
 public:
  SpanScope(const char* name, const char* cat) {
    if (trace_enabled()) {
      active_ = true;
      event_.name = name;
      event_.cat = cat;
      event_.start_ns = Tracer::instance().now_ns();
    }
  }

  SpanScope(const char* name, const char* cat, const char* arg_key,
            std::uint64_t arg_value)
      : SpanScope(name, cat) {
    if (active_) {
      event_.arg1_key = arg_key;
      event_.arg1_value = arg_value;
    }
  }

  /// Attaches an integer arg (first free of the two slots; further args
  /// are silently ignored). Callable any time before destruction, so a
  /// span can record a decision it learned mid-scope.
  void arg(const char* key, std::uint64_t value) {
    if (!active_) {
      return;
    }
    if (event_.arg1_key == nullptr) {
      event_.arg1_key = key;
      event_.arg1_value = value;
    } else if (event_.arg2_key == nullptr) {
      event_.arg2_key = key;
      event_.arg2_value = value;
    }
  }

  ~SpanScope() {
    if (active_) {
      Tracer& tracer = Tracer::instance();
      event_.dur_ns = tracer.now_ns() - event_.start_ns;
      tracer.record(event_);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceEvent event_;
  bool active_ = false;
};

/// Records a span that ENDED now and lasted `seconds` — for durations
/// measured by an existing stopwatch rather than a scope (e.g. queue
/// wait, whose start happened on the submitting thread). No-op when
/// tracing is off.
void emit_complete(const char* name, const char* cat, double seconds,
                   const char* arg_key, std::uint64_t arg_value);

/// Config/env wiring for the process-wide tracer, called whenever a
/// SegHdcSession is constructed. `force_on` (SegHdcConfig::trace) turns
/// tracing on unconditionally; otherwise SEGHDC_TRACE is read: "1"
/// enables, "0"/unset/empty leaves the current state alone, and any
/// other value throws std::invalid_argument (malformed observability
/// overrides must not silently no-op, same contract as SEGHDC_TILE_ROWS
/// and SEGHDC_KERNEL_BACKEND).
void apply_trace_config(bool force_on);

/// RAII capture window: enables tracing and clears old events on
/// construction, restores the prior enabled state on destruction.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Everything recorded since construction, sorted by start time.
  std::vector<TraceEvent> events() const;

  /// Chrome-trace JSON ({"traceEvents":[...]}, "X" complete events, ts
  /// and dur in microseconds) — loads in chrome://tracing and Perfetto.
  void write_json(std::ostream& out) const;
  /// Same, to a file; throws std::runtime_error when the file cannot be
  /// opened.
  void write_json(const std::string& path) const;

 private:
  bool prior_enabled_;
};

/// The JSON serializer behind TraceSession::write_json, exposed so
/// tests can render a hand-built event list.
void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events,
                      std::uint64_t dropped);

}  // namespace seghdc::obs

#endif  // SEGHDC_OBS_TRACE_HPP
