#include "src/serve/fleet.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace seghdc::serve {

namespace {

FleetOptions validate_options(FleetOptions options) {
  if (options.latency_window == 0) {
    throw std::invalid_argument("FleetOptions.latency_window must be >= 1");
  }
  return options;
}

}  // namespace

std::string SegHdcFleet::Tenant::label_for(const std::string& name) {
  std::string value;
  value.reserve(name.size());
  for (const char c : name) {
    if (c == '\\' || c == '"') {
      value.push_back('\\');
    }
    value.push_back(c);
  }
  return "tenant=\"" + value + "\"";
}

SegHdcFleet::Tenant::Tenant(std::string tenant_name,
                            const TenantOptions& tenant_options)
    : name(std::move(tenant_name)),
      options(tenant_options),
      pending(tenant_options.max_queued),
      in_flight(tenant_options.max_in_flight),
      accepted(gate_metrics.counter(
          "seghdc_fleet_accepted_total",
          "Requests accepted into the tenant's pending queue",
          label_for(name))),
      rejected(gate_metrics.counter(
          "seghdc_fleet_rejected_total",
          "Requests refused by the tenant's kReject admission",
          label_for(name))),
      dispatched(gate_metrics.counter(
          "seghdc_fleet_dispatched_total",
          "Requests forwarded to the tenant's server", label_for(name))),
      cancelled_at_gate(gate_metrics.counter(
          "seghdc_fleet_cancelled_at_gate_total",
          "Pending requests failed by retire(kCancel) before dispatch",
          label_for(name))) {}

SegHdcFleet::SegHdcFleet(const FleetOptions& options)
    : options_(validate_options(options)),
      total_in_flight_(options_.max_in_flight_total),
      latency_(metrics_.histogram(
          "seghdc_fleet_latency_seconds",
          "Admission-to-done latency across all tenants", "",
          options_.latency_window)) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SegHdcFleet::~SegHdcFleet() { shutdown(ShutdownMode::kDrain); }

void SegHdcFleet::add_tenant(const std::string& name,
                             const core::SegHdcConfig& config,
                             const TenantOptions& options) {
  if (name.empty()) {
    throw std::invalid_argument("SegHdcFleet tenant name must be non-empty");
  }
  if (options.weight == 0) {
    throw std::invalid_argument("TenantOptions.weight must be >= 1");
  }
  ServerOptions server_options;
  // The fleet's pending queue + gates ARE the admission policy; the
  // tenant server's own queue stays unbounded so the dispatcher (which
  // holds the fleet lock while forwarding) can never block on it.
  server_options.queue_capacity = 0;
  server_options.backpressure = BackpressurePolicy::kBlock;
  server_options.encode_workers = options.encode_workers;
  server_options.cluster_workers = options.cluster_workers;
  server_options.pool = options_.pool;
  server_options.latency_window = options.latency_window;

  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    throw ShutdownError("SegHdcFleet is shut down");
  }
  for (const auto& tenant : tenants_) {
    if (tenant->name == name) {
      throw DuplicateTenantError(name);
    }
  }
  auto tenant = std::make_shared<Tenant>(name, options);
  // Construct the server last: a config the session rejects
  // (std::invalid_argument) must leave the fleet without the tenant.
  tenant->server = std::make_unique<SegHdcServer>(config, server_options);
  tenants_.push_back(std::move(tenant));
}

std::shared_ptr<SegHdcFleet::Tenant> SegHdcFleet::find_tenant(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tenant : tenants_) {
    if (tenant->name == name) {
      return tenant;
    }
  }
  throw UnknownTenantError(name);
}

bool SegHdcFleet::has_tenant(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tenant : tenants_) {
    if (tenant->name == name) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SegHdcFleet::tenant_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    names.push_back(tenant->name);
  }
  return names;
}

std::future<core::SegmentationResult> SegHdcFleet::submit(
    const std::string& tenant_name, img::ImageU8 image) {
  std::shared_ptr<Tenant> tenant = find_tenant(tenant_name);
  if (tenant->retiring.load(std::memory_order_acquire)) {
    throw ShutdownError("SegHdcFleet tenant '" + tenant_name +
                        "' is retired");
  }
  PendingRequest request;
  request.image = std::move(image);
  // Retrieve the future before the request leaves our hands; the
  // stopwatch (default-constructed, already running) starts the latency
  // clock here, so time spent blocked at a full pending queue counts —
  // matching what the solo server's submit() measures.
  std::future<core::SegmentationResult> future = request.promise.get_future();
  if (tenant->options.admission == BackpressurePolicy::kReject) {
    switch (tenant->pending.try_push(request)) {
      case util::QueuePush::kOk:
        break;
      case util::QueuePush::kFull:
        tenant->rejected.add();
        throw RejectedError("SegHdcFleet tenant '" + tenant_name +
                            "' admission queue full");
      case util::QueuePush::kClosed:
        throw ShutdownError("SegHdcFleet tenant '" + tenant_name +
                            "' is retired");
    }
  } else if (!tenant->pending.push(request)) {
    // push() blocks outside the fleet lock, so a submitter parked at a
    // full queue never stalls the dispatcher; false means the queue
    // closed under a concurrent retire.
    throw ShutdownError("SegHdcFleet tenant '" + tenant_name +
                        "' is retired");
  }
  tenant->accepted.add();
  notify_progress();
  return future;
}

bool SegHdcFleet::dispatch_one_locked() {
  const std::size_t count = tenants_.size();
  if (count == 0) {
    return false;
  }
  for (std::size_t offset = 0; offset < count; ++offset) {
    const std::size_t index = (rotation_cursor_ + offset) % count;
    const std::shared_ptr<Tenant>& tenant = tenants_[index];
    // Weighted round-robin: a tenant gets up to `weight` dispatches per
    // turn, then the cursor moves on so the next tenant with work is
    // first in line — no tenant can monopolise freed slots.
    std::size_t dispatched_now = 0;
    while (dispatched_now < tenant->options.weight) {
      if (!tenant->in_flight.try_acquire()) {
        break;  // tenant at its own in-flight cap
      }
      if (!total_in_flight_.try_acquire()) {
        // Fleet-wide cap reached: nothing anywhere can dispatch until a
        // completion frees a slot. Give back the tenant slot and park.
        tenant->in_flight.release();
        if (dispatched_now > 0) {
          rotation_cursor_ = (index + 1) % count;
        }
        return dispatched_now > 0;
      }
      std::optional<PendingRequest> request = tenant->pending.try_pop();
      if (!request) {
        tenant->in_flight.release();
        total_in_flight_.release();
        break;  // nothing pending for this tenant
      }
      tenant->dispatched.add();
      // on_done fires exactly once per request — success, stage failure,
      // and server-side cancellation alike — so the quota slots always
      // come back and the dispatcher (plus any retire waiter) wakes.
      std::shared_ptr<Tenant> owner = tenant;
      util::Stopwatch accepted = request->accepted;
      tenant->server->submit(
          std::move(request->image), std::move(request->promise),
          [this, owner, accepted] {
            latency_.record(accepted.seconds());
            owner->in_flight.release();
            total_in_flight_.release();
            notify_progress();
          },
          accepted);
      ++dispatched_now;
    }
    if (dispatched_now > 0) {
      rotation_cursor_ = (index + 1) % count;
      // A retire(kDrain) waiter watches this tenant's pending count.
      progress_.notify_all();
      return true;
    }
  }
  return false;
}

void SegHdcFleet::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    while (dispatch_one_locked()) {
    }
    if (stopping_ && tenants_.empty()) {
      return;
    }
    progress_.wait(lock);
  }
}

void SegHdcFleet::notify_progress() {
  // Lock-then-unlock fence: a release that lands between the
  // dispatcher's "nothing dispatchable" scan and its wait must not be
  // lost, so the notify is ordered after the dispatcher reaches the
  // wait (or after it re-acquires and rescans).
  { const std::lock_guard<std::mutex> lock(mutex_); }
  progress_.notify_all();
}

void SegHdcFleet::retire_tenant(const std::string& name, ShutdownMode mode) {
  std::shared_ptr<Tenant> tenant;
  std::vector<PendingRequest> dropped;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (const auto& candidate : tenants_) {
      if (candidate->name == name) {
        tenant = candidate;
        break;
      }
    }
    if (!tenant) {
      throw UnknownTenantError(name);
    }
    if (tenant->retiring.exchange(true, std::memory_order_acq_rel)) {
      // Lost the race with a concurrent retire: wait for the winner to
      // delist the tenant, then join the server stop below.
      progress_.wait(lock, [&] {
        return std::find(tenants_.begin(), tenants_.end(), tenant) ==
               tenants_.end();
      });
    } else if (mode == ShutdownMode::kDrain) {
      // Close admission, then let the dispatcher forward everything the
      // tenant already accepted — other tenants keep being served in
      // the same rotation throughout.
      tenant->pending.close();
      progress_.notify_all();
      progress_.wait(lock, [&] { return tenant->pending.size() == 0; });
      tenants_.erase(std::find(tenants_.begin(), tenants_.end(), tenant));
      progress_.notify_all();
    } else {
      // Cancel: delist first so the dispatcher stops forwarding, then
      // take back everything still at the gate.
      tenants_.erase(std::find(tenants_.begin(), tenants_.end(), tenant));
      dropped = tenant->pending.close_and_drain();
      progress_.notify_all();
    }
  }
  for (auto& request : dropped) {
    tenant->cancelled_at_gate.add();
    request.promise.set_exception(std::make_exception_ptr(CancelledError()));
  }
  // Outside the fleet lock: draining/cancelling the tenant's server can
  // take as long as its in-flight work, and the dispatcher must keep
  // serving the other tenants meanwhile.
  tenant->server->shutdown(mode);
  notify_progress();
}

void SegHdcFleet::shutdown(ShutdownMode mode) {
  for (;;) {
    std::string name;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;  // no new tenants from here on
      if (tenants_.empty()) {
        break;
      }
      name = tenants_.front()->name;
    }
    try {
      retire_tenant(name, mode);
    } catch (const UnknownTenantError&) {
      // A concurrent retire beat us to this tenant; move on.
    }
  }
  const std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (dispatcher_joined_) {
    return;
  }
  notify_progress();
  dispatcher_.join();
  dispatcher_joined_ = true;
}

TenantStats SegHdcFleet::tenant_stats_unlocked(const Tenant& tenant) const {
  TenantStats stats;
  stats.name = tenant.name;
  stats.retiring = tenant.retiring.load(std::memory_order_acquire);
  stats.accepted = tenant.accepted.value();
  stats.rejected = tenant.rejected.value();
  stats.dispatched = tenant.dispatched.value();
  stats.cancelled_at_gate = tenant.cancelled_at_gate.value();
  stats.pending = tenant.pending.size();
  stats.in_flight = tenant.in_flight.in_use();
  stats.server = tenant.server->stats();
  return stats;
}

TenantStats SegHdcFleet::tenant_stats(const std::string& name) const {
  const std::shared_ptr<Tenant> tenant = find_tenant(name);
  return tenant_stats_unlocked(*tenant);
}

FleetStats SegHdcFleet::stats() const {
  FleetStats stats;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats.tenants.reserve(tenants_.size());
    for (const auto& tenant : tenants_) {
      stats.tenants.push_back(tenant_stats_unlocked(*tenant));
    }
  }
  for (const TenantStats& tenant : stats.tenants) {
    stats.accepted += tenant.accepted;
    stats.rejected += tenant.rejected;
    stats.dispatched += tenant.dispatched;
    stats.completed += tenant.server.completed;
    stats.failed += tenant.server.failed;
    stats.cancelled += tenant.cancelled_at_gate + tenant.server.cancelled;
    stats.pending += tenant.pending;
  }
  stats.in_flight = total_in_flight_.in_use();
  stats.uptime_seconds = uptime_.seconds();
  stats.throughput_images_per_sec =
      stats.uptime_seconds > 0.0
          ? static_cast<double>(stats.completed) / stats.uptime_seconds
          : 0.0;
  stats.latency = latency_.percentiles();
  return stats;
}

}  // namespace seghdc::serve
