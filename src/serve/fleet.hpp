// SegHdcFleet: the multi-tenant layer over SegHdcServer — many configs
// (per-dataset, per-K, per-dimension) served concurrently to many
// clients from one process, the service shape the ROADMAP's
// million-user north star needs where one server is one camera.
//
//   serve::SegHdcFleet fleet({.pool = &pool, .max_in_flight_total = 8});
//   fleet.add_tenant("nuclei", nuclei_config, {.max_queued = 64});
//   fleet.add_tenant("pathology", pathology_config, {.max_queued = 16});
//   auto f = fleet.submit("nuclei", image);   // == solo-server result
//   fleet.retire_tenant("pathology");         // others keep serving
//
// Architecture (one request flows left to right):
//
//   submit ──> [per-tenant pending queue] ──> fair-share ──> tenant's
//     │          (max_queued, kBlock/        dispatcher      SegHdcServer
//     │           kReject admission)            │            (shared pool)
//     future <──────────────────────────────────┴── promise + quota release
//
// Every tenant is an independent (SegHdcConfig, SegHdcServer) pair; all
// tenant servers fan their intra-stage work onto ONE shared
// util::ThreadPool, so the fleet's footprint is bounded by the pool, not
// by tenant count. Admission is per tenant — a pending-queue cap
// (max_queued, block or reject) plus an in-flight cap (max_in_flight) —
// and a single dispatcher thread forwards pending requests to tenant
// servers in weighted round-robin order, so under contention (the
// fleet-wide max_in_flight_total, or saturated tenant caps) every tenant
// with work gets its fair share of dispatch slots instead of
// first-flooder-wins.
//
// Guarantees:
//   - Determinism: every delivered result is bit-identical to a solo
//     `SegHdcServer(config)` (and therefore to `SegHdc(config).segment`)
//     for that tenant's config — at every tenant mix, quota setting,
//     interleaving, pool size, and retire schedule. Multi-tenancy
//     changes who waits, never what anyone gets.
//   - Isolation: one tenant's flood cannot starve another (fair-share
//     dispatch), and one tenant's retire never stalls or perturbs the
//     others' in-flight work.
//   - Hot add/retire: add_tenant and retire_tenant are safe while the
//     fleet is under load. Retire kDrain completes everything the tenant
//     accepted; kCancel fails its still-pending requests with
//     CancelledError. The destructor drains every tenant.
#ifndef SEGHDC_SERVE_FLEET_HPP
#define SEGHDC_SERVE_FLEET_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/core/config.hpp"
#include "src/imaging/image.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/server.hpp"
#include "src/serve/stats.hpp"
#include "src/util/admission_gate.hpp"
#include "src/util/bounded_queue.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::serve {

/// Thrown by submit/retire/tenant_stats for a name no live tenant has.
class UnknownTenantError : public std::invalid_argument {
 public:
  explicit UnknownTenantError(const std::string& name)
      : std::invalid_argument("SegHdcFleet has no tenant named '" + name +
                              "'") {}
};

/// Thrown by add_tenant when the name is already taken (including by a
/// tenant that is still draining out of a retire).
class DuplicateTenantError : public std::invalid_argument {
 public:
  explicit DuplicateTenantError(const std::string& name)
      : std::invalid_argument("SegHdcFleet already has a tenant named '" +
                              name + "'") {}
};

/// Per-tenant knobs: the admission quota, the fair-share weight, and the
/// tenant server's stage shape. None of them affect result content, only
/// who waits when.
struct TenantOptions {
  /// Pending-queue capacity at the fleet gate; 0 = unbounded. A full
  /// queue blocks or rejects the submitter per `admission`.
  std::size_t max_queued = 0;
  /// Cap on requests dispatched to this tenant's server and not yet
  /// completed; 0 = unbounded. Enforced by the dispatcher (requests
  /// above the cap wait in the pending queue), never by blocking the
  /// submitter.
  std::size_t max_in_flight = 0;
  /// What a full pending queue does to the next submitter.
  BackpressurePolicy admission = BackpressurePolicy::kBlock;
  /// Fair-share weight: how many requests this tenant may dispatch per
  /// round-robin turn (>= 1). Double weight, double share under
  /// contention.
  std::size_t weight = 1;
  /// Stage threads of the tenant's server (see ServerOptions).
  std::size_t encode_workers = 1;
  std::size_t cluster_workers = 1;
  /// Sliding-window size of the tenant server's latency recorder.
  std::size_t latency_window = 65536;
};

/// Fleet-wide knobs.
struct FleetOptions {
  /// Pool every tenant's intra-stage work fans out on. nullptr = the
  /// process-wide shared pool. One pool for the whole fleet is the
  /// point: tenant count scales admission state, not thread count.
  util::ThreadPool* pool = nullptr;
  /// Fleet-wide cap on dispatched-not-completed requests across all
  /// tenants; 0 = unbounded. This is the contention knob fair-share
  /// arbitrates: when the fleet is at the cap, freed slots go to
  /// tenants in round-robin order, not to whoever floods fastest.
  std::size_t max_in_flight_total = 0;
  /// Sliding-window size of the fleet-wide latency recorder.
  std::size_t latency_window = 65536;
};

/// One tenant's snapshot: fleet-gate counters plus the tenant server's
/// own ServerStats. `server.latency` measures fleet-admission-to-done
/// (the clock starts when the fleet accepts the request, so pending-
/// queue wait is included — what the tenant's client experiences).
struct TenantStats {
  std::string name;
  bool retiring = false;           ///< retire in progress (still draining)
  std::uint64_t accepted = 0;      ///< accepted into the pending queue
  std::uint64_t rejected = 0;      ///< refused by the kReject admission
  std::uint64_t dispatched = 0;    ///< forwarded to the tenant server
  std::uint64_t cancelled_at_gate = 0;  ///< failed by retire(kCancel)
                                        ///< before ever dispatching
  std::size_t pending = 0;         ///< waiting at the fleet gate now
  std::size_t in_flight = 0;       ///< dispatched, not yet completed
  ServerStats server;              ///< the tenant server's counters/latency
};

/// Fleet snapshot: per-tenant stats plus the rollup across live tenants
/// (a retired tenant's counters leave the rollup with it). The fleet
/// `latency` recorder spans every tenant's completions, admission-to-
/// done; per-tenant distributions are in tenants[i].server.latency.
struct FleetStats {
  std::vector<TenantStats> tenants;  ///< registration order
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;  ///< at the gate + in tenant servers
  std::size_t pending = 0;
  std::size_t in_flight = 0;
  double uptime_seconds = 0.0;
  /// completed / uptime across all tenants — sustained, not windowed.
  double throughput_images_per_sec = 0.0;
  LatencyPercentiles latency;
};

class SegHdcFleet {
 public:
  /// Starts the dispatcher; the fleet accepts add_tenant immediately.
  explicit SegHdcFleet(const FleetOptions& options = {});

  /// Retires every tenant (kDrain) and stops the dispatcher.
  ~SegHdcFleet();

  SegHdcFleet(const SegHdcFleet&) = delete;
  SegHdcFleet& operator=(const SegHdcFleet&) = delete;

  const FleetOptions& options() const { return options_; }

  /// Registers a tenant and starts its server (stage threads spin up
  /// here). Validates the config and options (std::invalid_argument,
  /// DuplicateTenantError). Safe under load; existing tenants are not
  /// disturbed.
  void add_tenant(const std::string& name, const core::SegHdcConfig& config,
                  const TenantOptions& options = {});

  /// Retires a tenant: new submits for the name fail immediately;
  /// kDrain dispatches and completes everything already accepted,
  /// kCancel fails still-pending requests with CancelledError and lets
  /// dispatched work finish per the server's cancel semantics. Blocks
  /// until the tenant's server has stopped. Other tenants keep serving
  /// throughout — their results are untouched (bit-identical to a run
  /// without the retire).
  void retire_tenant(const std::string& name,
                     ShutdownMode mode = ShutdownMode::kDrain);

  bool has_tenant(const std::string& name) const;

  /// Live tenant names, registration order (retiring ones included
  /// until their drain finishes).
  std::vector<std::string> tenant_names() const;

  /// Enqueues one image for `tenant`. The future delivers exactly what
  /// a solo SegHdcServer with the tenant's config would deliver, or the
  /// failure (stage exception, CancelledError under retire(kCancel)).
  /// Blocks or throws RejectedError on a full pending queue per the
  /// tenant's admission policy; UnknownTenantError for names the fleet
  /// does not serve; ShutdownError once the tenant's retire has begun.
  std::future<core::SegmentationResult> submit(const std::string& tenant,
                                               img::ImageU8 image);

  /// Retires every tenant with `mode`, then stops the dispatcher.
  /// Idempotent and thread-safe.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Counter + latency snapshot across the fleet. Safe from any thread
  /// at any time.
  FleetStats stats() const;

  /// One tenant's snapshot (UnknownTenantError when absent).
  TenantStats tenant_stats(const std::string& name) const;

  /// The fleet-wide metric registry (the admission-to-done latency
  /// histogram spanning every tenant). Per-tenant gate counters live in
  /// each tenant's own registry (rendered with a `tenant="..."` label)
  /// and leave the fleet with the tenant; per-server metrics are at
  /// tenant_server.metrics().
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// A request admitted at the fleet gate, waiting for dispatch. The
  /// stopwatch starts at admission, so latency covers gate wait.
  struct PendingRequest {
    img::ImageU8 image;
    std::promise<core::SegmentationResult> promise;
    util::Stopwatch accepted;
  };

  struct Tenant {
    std::string name;
    TenantOptions options;
    util::BoundedQueue<PendingRequest> pending;
    util::AdmissionGate in_flight;
    std::unique_ptr<SegHdcServer> server;
    /// Fleet-gate counters live in a registry OWNED BY THE TENANT, not
    /// the fleet's: a retired tenant takes its counters with it, so a
    /// later add_tenant under the same name starts from zero instead of
    /// resurrecting stale values through the registry's get-or-create.
    obs::MetricsRegistry gate_metrics;
    obs::Counter& accepted;
    obs::Counter& rejected;
    obs::Counter& dispatched;
    obs::Counter& cancelled_at_gate;
    std::atomic<bool> retiring{false};

    Tenant(std::string tenant_name, const TenantOptions& tenant_options);
    /// `tenant="<name>"` with backslash and quote escaped, so arbitrary
    /// tenant names render as valid Prometheus label values.
    static std::string label_for(const std::string& name);
  };

  std::shared_ptr<Tenant> find_tenant(const std::string& name) const;
  TenantStats tenant_stats_unlocked(const Tenant& tenant) const;

  /// Dispatches one pending request in fair-share rotation order.
  /// Returns false when nothing is dispatchable (all quotas saturated
  /// or nothing pending). Caller holds mutex_.
  bool dispatch_one_locked();
  void dispatch_loop();
  /// Slot freed / request completed: fence on mutex_ then wake the
  /// dispatcher and any retire waiter.
  void notify_progress();

  FleetOptions options_;
  util::Stopwatch uptime_;
  util::AdmissionGate total_in_flight_;
  /// Fleet-wide registry; `latency_` is its admission-to-done histogram
  /// (every tenant's completions, gate wait included).
  obs::MetricsRegistry metrics_;
  obs::Histogram& latency_;

  mutable std::mutex mutex_;  ///< guards tenants_, rotation, stopping_
  std::condition_variable progress_;
  std::vector<std::shared_ptr<Tenant>> tenants_;  ///< registration order
  std::size_t rotation_cursor_ = 0;
  bool stopping_ = false;

  std::mutex shutdown_mutex_;  ///< one thread performs the final join
  bool dispatcher_joined_ = false;
  std::thread dispatcher_;
};

}  // namespace seghdc::serve

#endif  // SEGHDC_SERVE_FLEET_HPP
