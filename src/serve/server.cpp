#include "src/serve/server.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "src/obs/trace.hpp"

namespace seghdc::serve {

namespace {

ServerOptions validate_options(ServerOptions options) {
  if (options.encode_workers == 0) {
    throw std::invalid_argument("ServerOptions.encode_workers must be >= 1");
  }
  if (options.cluster_workers == 0) {
    throw std::invalid_argument("ServerOptions.cluster_workers must be >= 1");
  }
  if (options.latency_window == 0) {
    throw std::invalid_argument("ServerOptions.latency_window must be >= 1");
  }
  return options;
}

}  // namespace

/// Shared state of one temporal stream. Two locks with disjoint jobs:
/// `submit_mutex` makes (assign seq, push to the submit queue) atomic,
/// so queue order always equals seq order — which is what guarantees a
/// frame's predecessor is already popped (FIFO) and therefore in flight
/// whenever the frame waits for its turn, i.e. the turn wait can never
/// deadlock. `run_mutex` + `run_cv` implement the turn itself:
/// `next_run_seq` advances exactly once per frame — success, stage
/// failure, and cancellation alike.
struct SegHdcServer::StreamHandle::StreamShared {
  core::SegHdcSession::Stream stream;
  std::mutex submit_mutex;
  std::uint64_t next_submit_seq = 0;
  std::mutex run_mutex;
  std::condition_variable run_cv;
  std::uint64_t next_run_seq = 0;
};

SegHdcServer::StreamHandle SegHdcServer::open_stream() {
  StreamHandle handle;
  handle.impl_ = std::make_shared<StreamHandle::StreamShared>();
  return handle;
}

SegHdcServer::SegHdcServer(const core::SegHdcConfig& config,
                           const ServerOptions& options)
    : session_(config, core::SegHdcSession::Options{options.pool}),
      options_(validate_options(options)),
      submit_queue_(options_.queue_capacity),
      // Two encoded images of headroom per cluster worker: enough to keep
      // the stage busy, small enough that a slow cluster stage promptly
      // backpressures the encode stage instead of buffering the batch.
      encoded_queue_(std::max<std::size_t>(1, options_.cluster_workers * 2)),
      latency_(metrics_.histogram(
          "seghdc_request_latency_seconds",
          "Submit-to-completion wall latency of completed requests", "",
          options_.latency_window)),
      encode_stage_seconds_(metrics_.histogram(
          "seghdc_stage_encode_seconds",
          "Encode-stage compute time per request", "",
          options_.latency_window)),
      cluster_stage_seconds_(metrics_.histogram(
          "seghdc_stage_cluster_seconds",
          "Cluster+finalize stage compute time per request", "",
          options_.latency_window)),
      submitted_(metrics_.counter("seghdc_requests_submitted_total",
                                  "Requests accepted into the submit queue")),
      completed_(metrics_.counter("seghdc_requests_completed_total",
                                  "Results delivered (future or sink set)")),
      rejected_(metrics_.counter("seghdc_requests_rejected_total",
                                 "Requests refused by kReject backpressure")),
      cancelled_(metrics_.counter("seghdc_requests_cancelled_total",
                                  "Requests failed by shutdown(kCancel)")),
      failed_(metrics_.counter("seghdc_requests_failed_total",
                               "Requests whose stage threw")),
      queue_depth_(metrics_.gauge("seghdc_queue_depth",
                                  "Requests waiting in the submit queue")),
      in_flight_(metrics_.gauge(
          "seghdc_in_flight",
          "Requests popped by a stage and not yet completed")),
      stream_frames_(metrics_.counter("seghdc_stream_frames_total",
                                      "Stream frames completed")),
      stream_warm_frames_(metrics_.counter(
          "seghdc_stream_warm_frames_total",
          "Stream frames seeded from previous-frame centroids")),
      stream_replayed_frames_(metrics_.counter(
          "seghdc_stream_replayed_frames_total",
          "Byte-identical stream frames replayed from cache")),
      stream_tiles_reused_(metrics_.counter(
          "seghdc_stream_tiles_reused_total",
          "Row bands served from the stream band cache")),
      stream_tiles_encoded_(metrics_.counter(
          "seghdc_stream_tiles_encoded_total",
          "Row bands re-encoded on stream frames")),
      stream_kmeans_iterations_(metrics_.counter(
          "seghdc_stream_kmeans_iterations_total",
          "K-Means iterations actually run on stream frames")),
      assign_distance_evals_(metrics_.counter(
          "seghdc_assign_distance_evals_total",
          "Distances actually evaluated (assignment + margin passes)")),
      assign_candidates_pruned_(metrics_.counter(
          "seghdc_assign_candidates_pruned_total",
          "K-Means assignment candidates skipped by exact pruning")) {
  encode_threads_.reserve(options_.encode_workers);
  cluster_threads_.reserve(options_.cluster_workers);
  live_encoders_.store(options_.encode_workers, std::memory_order_relaxed);
  for (std::size_t i = 0; i < options_.encode_workers; ++i) {
    encode_threads_.emplace_back([this] { encode_loop(); });
  }
  for (std::size_t i = 0; i < options_.cluster_workers; ++i) {
    cluster_threads_.emplace_back([this] { cluster_loop(); });
  }
}

SegHdcServer::~SegHdcServer() { shutdown(ShutdownMode::kDrain); }

std::future<core::SegmentationResult> SegHdcServer::submit(
    img::ImageU8 image) {
  Completion completion;
  completion.use_promise = true;
  return enqueue(std::move(image), std::move(completion));
}

void SegHdcServer::submit(img::ImageU8 image,
                          std::promise<core::SegmentationResult> promise,
                          std::function<void()> on_done,
                          util::Stopwatch accepted) {
  Completion completion;
  completion.use_promise = true;
  completion.promise = std::move(promise);
  completion.on_done = std::move(on_done);
  completion.future_taken = true;
  completion.accepted = accepted;
  enqueue(std::move(image), std::move(completion));
}

void SegHdcServer::submit(
    img::ImageU8 image,
    std::function<void(core::SegmentationResult&&)> sink) {
  if (!sink) {
    throw std::invalid_argument("SegHdcServer::submit sink must be callable");
  }
  Completion completion;
  completion.use_promise = false;
  completion.sink = std::move(sink);
  enqueue(std::move(image), std::move(completion));
}

std::future<core::StreamFrameResult> SegHdcServer::submit(
    StreamHandle& stream, img::ImageU8 frame) {
  if (!stream.impl_) {
    throw std::invalid_argument(
        "SegHdcServer::submit stream handle is empty (use open_stream)");
  }
  const std::shared_ptr<StreamHandle::StreamShared> shared = stream.impl_;
  // Seq assignment and queue push are atomic together, so queue FIFO
  // order equals seq order for every stream (see StreamShared). The seq
  // counter only advances on a successful push: a rejected frame leaves
  // no gap in the turn sequence.
  const std::lock_guard<std::mutex> lock(shared->submit_mutex);
  Request request;
  request.image = std::move(frame);
  request.stream.emplace();
  request.stream->stream = shared;
  request.stream->seq = shared->next_submit_seq;
  request.stream->trace_id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const obs::SpanScope span("submit", "serve", "req",
                            request.stream->trace_id);
  std::future<core::StreamFrameResult> future =
      request.stream->promise.get_future();
  if (options_.backpressure == BackpressurePolicy::kReject) {
    switch (submit_queue_.try_push(request)) {
      case util::QueuePush::kOk:
        break;
      case util::QueuePush::kFull:
        rejected_.add();
        throw RejectedError();
      case util::QueuePush::kClosed:
        throw ShutdownError();
    }
  } else if (!submit_queue_.push(request)) {
    throw ShutdownError();
  }
  ++shared->next_submit_seq;
  submitted_.add();
  queue_depth_.set(static_cast<std::int64_t>(submit_queue_.size()));
  return future;
}

std::future<core::SegmentationResult> SegHdcServer::enqueue(
    img::ImageU8&& image, Completion&& completion) {
  std::future<core::SegmentationResult> future;
  if (completion.use_promise && !completion.future_taken) {
    future = completion.promise.get_future();
  }
  completion.trace_id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const obs::SpanScope span("submit", "serve", "req", completion.trace_id);
  Request request{std::move(image), std::move(completion)};
  if (options_.backpressure == BackpressurePolicy::kReject) {
    switch (submit_queue_.try_push(request)) {
      case util::QueuePush::kOk:
        break;
      case util::QueuePush::kFull:
        rejected_.add();
        throw RejectedError();
      case util::QueuePush::kClosed:
        throw ShutdownError();
    }
  } else if (!submit_queue_.push(request)) {
    throw ShutdownError();
  }
  submitted_.add();
  queue_depth_.set(static_cast<std::int64_t>(submit_queue_.size()));
  return future;
}

void SegHdcServer::deliver(Completion&& completion,
                           core::SegmentationResult&& result) {
  // Record before signalling: a caller woken by future.get() must see
  // its own request in the counters and the latency window. The fleet's
  // on_done hook keeps books too (its latency recorder, quota slots) —
  // same rule, so it fires before the promise as well.
  latency_.record(completion.accepted.seconds());
  completed_.add();
  assign_distance_evals_.add(result.ops.distance_evals);
  assign_candidates_pruned_.add(result.ops.candidates_pruned);
  if (completion.on_done) {
    completion.on_done();
  }
  if (completion.use_promise) {
    completion.promise.set_value(std::move(result));
  } else {
    // Serialised like the segment_many sink, so a user callback shared
    // across requests needs no locking of its own. A throwing sink is a
    // contract violation (sinks are success-only, documented noexcept-
    // in-spirit); contain it here so it cannot double-count the request
    // as failed or kill the stage thread.
    try {
      const std::lock_guard<std::mutex> lock(sink_mutex_);
      completion.sink(std::move(result));
    } catch (...) {
    }
  }
}

void SegHdcServer::fail(Completion&& completion, std::exception_ptr error,
                        obs::Counter& counter) {
  counter.add();
  // Callback sinks are success-only by contract; a failed or cancelled
  // sink request is dropped. The fleet's on_done hook fires on every
  // outcome, though — quota slots must come back even for failures —
  // and before the promise, so a caller unblocked by the exception
  // already finds the books settled.
  if (completion.on_done) {
    completion.on_done();
  }
  if (completion.use_promise) {
    completion.promise.set_exception(std::move(error));
  }
}

void SegHdcServer::encode_loop() {
  core::SegHdcSession::Scratch scratch;  // warm arena, one per worker
  for (;;) {
    std::optional<Request> request = submit_queue_.pop();
    if (!request) {
      break;  // closed and drained
    }
    queue_depth_.set(static_cast<std::int64_t>(submit_queue_.size()));
    in_flight_.add();
    if (request->stream.has_value()) {
      // Stream frames are stage-fused here: the next frame's encode
      // depends on this frame's clustering (band caches AND centroids),
      // so splitting the stages buys no overlap within a stream. Other
      // streams and batch requests overlap with it on other workers.
      process_stream_frame(std::move(*request));
      in_flight_.sub();
      continue;
    }
    // Queue wait, reconstructed from the admission stopwatch: the span
    // ends at the pop, so it covers submit -> this worker (including
    // any fleet-gate wait upstream of this server).
    obs::emit_complete("queue_wait", "serve",
                       request->completion.accepted.seconds(), "req",
                       request->completion.trace_id);
    EncodedJob job;
    job.completion = std::move(request->completion);
    bool encoded_ok = true;
    const util::Stopwatch encode_watch;
    try {
      const obs::SpanScope span("encode", "serve", "req",
                                job.completion.trace_id);
      job.encoded = session_.encode(request->image, scratch);
      job.encode_seconds = encode_watch.seconds();
      encode_stage_seconds_.record(job.encode_seconds);
    } catch (...) {
      encoded_ok = false;
      fail(std::move(job.completion), std::current_exception(), failed_);
      in_flight_.sub();
    }
    if (!encoded_ok) {
      continue;
    }
    request.reset();  // free the image before the hand-off blocks
    if (!encoded_queue_.push(job)) {
      // Only possible if the encoded queue was force-closed, which the
      // normal shutdown path never does while an encoder is live.
      // CancelledError to match the cancelled_ counter it pairs with.
      fail(std::move(job.completion),
           std::make_exception_ptr(CancelledError()), cancelled_);
      in_flight_.sub();
    }
  }
  // Last encoder out closes the stage hand-off so the cluster workers
  // drain what is left and exit.
  if (live_encoders_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    encoded_queue_.close();
  }
}

void SegHdcServer::process_stream_frame(Request&& request) {
  StreamJob job = std::move(*request.stream);
  const std::shared_ptr<StreamHandle::StreamShared> shared = job.stream;
  // Wait for this frame's turn. The predecessor is guaranteed to be in
  // flight already (queue FIFO + atomic seq/push), so this wait always
  // terminates. The lock is held across segment_stream: the only other
  // contenders are same-stream successors, which must wait for this
  // frame anyway (cv waits release the mutex).
  std::unique_lock<std::mutex> lock(shared->run_mutex);
  shared->run_cv.wait(lock,
                      [&] { return shared->next_run_seq == job.seq; });
  // The turn wait doubles as queue wait for stream frames: both end the
  // moment the frame may actually run.
  obs::emit_complete("queue_wait", "serve", job.accepted.seconds(), "req",
                     job.trace_id);
  try {
    core::StreamFrameResult frame;
    {
      const obs::SpanScope span("stream_frame", "serve", "req",
                                job.trace_id);
      frame = session_.segment_stream(request.image, shared->stream);
    }
    ++shared->next_run_seq;
    lock.unlock();
    shared->run_cv.notify_all();
    // Counters before the promise, like deliver(): a caller woken by
    // future.get() sees its own frame in the stats.
    latency_.record(job.accepted.seconds());
    encode_stage_seconds_.record(frame.result.timings.encode_seconds);
    cluster_stage_seconds_.record(frame.result.timings.cluster_seconds);
    completed_.add();
    stream_frames_.add();
    if (frame.stats.warm) {
      stream_warm_frames_.add();
    }
    if (frame.stats.replayed) {
      stream_replayed_frames_.add();
    }
    stream_tiles_reused_.add(frame.stats.tiles_reused);
    stream_tiles_encoded_.add(frame.stats.tiles_encoded);
    stream_kmeans_iterations_.add(frame.stats.kmeans_iterations);
    assign_distance_evals_.add(frame.result.ops.distance_evals);
    assign_candidates_pruned_.add(frame.result.ops.candidates_pruned);
    job.promise.set_value(std::move(frame));
  } catch (...) {
    // The turn advances on failure too — a dead frame must not wedge
    // its successors (they warm-start from the last completed frame).
    ++shared->next_run_seq;
    lock.unlock();
    shared->run_cv.notify_all();
    failed_.add();
    job.promise.set_exception(std::current_exception());
  }
}

void SegHdcServer::cancel_stream_frame(StreamJob&& job) {
  const std::shared_ptr<StreamHandle::StreamShared> shared = job.stream;
  {
    // Release the turn in order: predecessors are either in flight
    // (they advance the turn themselves) or earlier in the cancelled
    // batch (shutdown processes it in FIFO order), so this wait always
    // terminates.
    std::unique_lock<std::mutex> lock(shared->run_mutex);
    shared->run_cv.wait(lock,
                        [&] { return shared->next_run_seq == job.seq; });
    ++shared->next_run_seq;
  }
  shared->run_cv.notify_all();
  cancelled_.add();
  job.promise.set_exception(std::make_exception_ptr(CancelledError()));
}

void SegHdcServer::cluster_loop() {
  for (;;) {
    std::optional<EncodedJob> job = encoded_queue_.pop();
    if (!job) {
      break;  // closed and drained
    }
    try {
      const util::Stopwatch cluster_watch;
      core::SegmentationResult result;
      {
        const obs::SpanScope span("cluster_finalize", "serve", "req",
                                  job->completion.trace_id);
        result = session_.cluster_and_finalize(std::move(job->encoded));
      }
      cluster_stage_seconds_.record(cluster_watch.seconds());
      // Stage-true timings: the encode stage measured itself, finalize
      // set total_seconds to its whole stage (K-Means + label map +
      // margins); their sum is pipeline compute, not queue wait (the
      // latency recorder tracks submit-to-done separately).
      result.timings.encode_seconds = job->encode_seconds;
      result.timings.total_seconds += job->encode_seconds;
      deliver(std::move(job->completion), std::move(result));
    } catch (...) {
      fail(std::move(job->completion), std::current_exception(), failed_);
    }
    in_flight_.sub();
  }
}

void SegHdcServer::shutdown(ShutdownMode mode) {
  const std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (threads_joined_) {
    return;
  }
  if (mode == ShutdownMode::kCancel) {
    std::vector<Request> dropped = submit_queue_.close_and_drain();
    for (auto& request : dropped) {
      if (request.stream.has_value()) {
        cancel_stream_frame(std::move(*request.stream));
        continue;
      }
      fail(std::move(request.completion),
           std::make_exception_ptr(CancelledError()), cancelled_);
    }
  } else {
    submit_queue_.close();
  }
  for (auto& thread : encode_threads_) {
    thread.join();
  }
  for (auto& thread : cluster_threads_) {
    thread.join();
  }
  threads_joined_ = true;
}

ServerStats SegHdcServer::stats() const {
  // A view assembled from the metrics registry: every field below is
  // also visible (with history) through metrics().render().
  ServerStats stats;
  stats.submitted = submitted_.value();
  stats.completed = completed_.value();
  stats.rejected = rejected_.value();
  stats.cancelled = cancelled_.value();
  stats.failed = failed_.value();
  stats.queued = submit_queue_.size();
  stats.in_flight = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, in_flight_.value()));
  stats.uptime_seconds = uptime_.seconds();
  stats.throughput_images_per_sec =
      stats.uptime_seconds > 0.0
          ? static_cast<double>(stats.completed) / stats.uptime_seconds
          : 0.0;
  stats.latency = latency_.percentiles();
  stats.stream.frames = stream_frames_.value();
  stats.stream.warm_frames = stream_warm_frames_.value();
  stats.stream.replayed_frames = stream_replayed_frames_.value();
  stats.stream.tiles_reused = stream_tiles_reused_.value();
  stats.stream.tiles_encoded = stream_tiles_encoded_.value();
  stats.stream.kmeans_iterations = stream_kmeans_iterations_.value();
  return stats;
}

}  // namespace seghdc::serve
