// SegHdcServer: the asynchronous, pipelined serving layer on top of
// SegHdcSession — the request-level shape the ROADMAP's "heavy traffic"
// north star needs, where `segment_many` is the batch/barrier shape.
//
//   serve::SegHdcServer server(config, {.queue_capacity = 64});
//   std::future<core::SegmentationResult> f = server.submit(image);
//   ...                                   // submit more, do other work
//   const auto result = f.get();          // == SegHdc(config).segment(image)
//   const auto stats = server.stats();    // p50/p95/p99, images/sec
//
// Architecture (one request flows left to right):
//
//   submit ──> [bounded MPMC queue] ──> encode stage ──> [encoded queue]
//                (backpressure)          workers             (bounded)
//                                                      ──> cluster stage ──> future /
//                                                           workers           sink
//
// The two stages run on dedicated threads, so the encode of one image
// overlaps the clustering of another; inside a stage the session fans
// the per-image work (tiled encode bands, K-Means assignment/update)
// out onto the configured util::ThreadPool. Each encode worker owns a
// reusable SegHdcSession::Scratch arena, so sustained traffic stops
// re-deriving position/color HVs exactly like `segment_many` workers do.
//
// Guarantees:
//   - Determinism: every delivered result is bit-identical to
//     `SegHdc(config).segment(image)` — at every queue capacity, worker
//     count, pool size, and backpressure policy. Scheduling changes
//     completion order, never content.
//   - Backpressure: a full submit queue either blocks the submitter
//     (kBlock, the default) or fails fast (kReject -> RejectedError).
//   - Shutdown: kDrain completes everything accepted; kCancel fails
//     still-queued requests with CancelledError and completes only what
//     a stage already picked up. The destructor drains.
#ifndef SEGHDC_SERVE_SERVER_HPP
#define SEGHDC_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/session.hpp"
#include "src/imaging/image.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/stats.hpp"
#include "src/util/bounded_queue.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace seghdc::serve {

/// What a full submit queue does to the next submitter.
enum class BackpressurePolicy {
  kBlock,   ///< submit() blocks until a slot frees (default)
  kReject,  ///< submit() throws RejectedError immediately
};

/// How shutdown treats requests still waiting in the submit queue.
enum class ShutdownMode {
  kDrain,   ///< finish everything accepted, then stop (default, ~dtor)
  kCancel,  ///< fail queued requests with CancelledError; finish in-flight
};

/// Thrown by submit() when the queue is full under kReject. The request
/// was NOT accepted: no future exists and no counter besides `rejected`
/// moves. Also thrown (with a tenant-naming message) by the fleet layer
/// when a tenant's admission quota refuses a request.
class RejectedError : public std::runtime_error {
 public:
  RejectedError() : std::runtime_error("SegHdcServer queue full") {}
  explicit RejectedError(const std::string& what) : std::runtime_error(what) {}
};

/// Delivered through the future of a request that shutdown(kCancel)
/// removed from the queue before any stage picked it up.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("SegHdcServer request cancelled") {}
};

/// Thrown by submit() after shutdown has begun — also by the fleet layer
/// (with a tenant-naming message) for submits racing a tenant's retire.
class ShutdownError : public std::runtime_error {
 public:
  ShutdownError() : std::runtime_error("SegHdcServer is shut down") {}
  explicit ShutdownError(const std::string& what) : std::runtime_error(what) {}
};

/// Server construction knobs. The queue/backpressure pair is the
/// admission policy; the worker counts shape the pipeline; none of them
/// affect result content, only latency and throughput.
struct ServerOptions {
  /// Submit-queue capacity; 0 = unbounded (kBlock never blocks and
  /// kReject never rejects).
  std::size_t queue_capacity = 0;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Dedicated encode-stage threads (>= 1). Each owns a warm
  /// SegHdcSession::Scratch arena.
  std::size_t encode_workers = 1;
  /// Dedicated cluster/finalize-stage threads (>= 1).
  std::size_t cluster_workers = 1;
  /// Pool for the intra-stage data parallelism (tiled encode bands,
  /// K-Means). nullptr = the process-wide shared pool.
  util::ThreadPool* pool = nullptr;
  /// Sliding-window size of the latency recorder (see LatencyRecorder).
  std::size_t latency_window = 65536;
};

class SegHdcServer {
 public:
  /// Validates the config and options (std::invalid_argument on bad
  /// values) and starts the stage threads; the server accepts requests
  /// as soon as the constructor returns.
  explicit SegHdcServer(const core::SegHdcConfig& config,
                        const ServerOptions& options = {});

  /// Drains: blocks until every accepted request has completed, then
  /// stops the stage threads.
  ~SegHdcServer();

  SegHdcServer(const SegHdcServer&) = delete;
  SegHdcServer& operator=(const SegHdcServer&) = delete;

  const core::SegHdcConfig& config() const { return session_.config(); }
  const ServerOptions& options() const { return options_; }

  /// Enqueues one image; the future delivers the segmentation (bit-
  /// identical to the synchronous path) or the stage's exception (e.g.
  /// std::invalid_argument for an unsupported image, CancelledError
  /// under shutdown(kCancel)). The image is owned by the server until
  /// completion; pass by value and move when the caller's copy is not
  /// needed. Thread-safe; blocks or throws RejectedError on a full
  /// queue per the backpressure policy, throws ShutdownError once
  /// shutdown has begun.
  std::future<core::SegmentationResult> submit(img::ImageU8 image);

  /// Fleet hook: like the future form, but the caller supplies the
  /// promise (whose future it already handed out when it admitted the
  /// request), an `on_done` callback, and the admission stopwatch. The
  /// promise receives the result or the failure exactly as the future
  /// form's would; `on_done` is invoked exactly once per request — on
  /// success, stage failure, and cancellation alike — so an admission
  /// layer (serve::SegHdcFleet) can release quota slots and reschedule.
  /// It fires immediately BEFORE the promise is fulfilled, mirroring
  /// the counter rule: by the time any future.get() returns, the
  /// admission layer's books already include the request. It runs on
  /// stage threads (or the shutdown thread for cancelled requests):
  /// keep it short and never let it throw.
  /// `accepted` starts the latency clock, so a request that waited in a
  /// fleet queue before reaching this server is measured from fleet
  /// admission, not from this call.
  void submit(img::ImageU8 image,
              std::promise<core::SegmentationResult> promise,
              std::function<void()> on_done, util::Stopwatch accepted);

  /// Callback form: `sink` is invoked exactly once with the result when
  /// the request completes successfully; it is dropped (never invoked)
  /// if the request is cancelled or a stage throws — use the future form
  /// when failures must be observed. Sink invocations are serialised
  /// across requests but run on cluster-stage threads; keep them short
  /// or the pipeline stalls. Sinks must not throw: an exception escaping
  /// the sink is swallowed by the server (the request still counts as
  /// completed).
  void submit(img::ImageU8 image,
              std::function<void(core::SegmentationResult&&)> sink);

  /// A temporal stream registered with this server (see open_stream).
  /// Cheap handle over shared state: copying it refers to the SAME
  /// stream; destroying every copy while frames are in flight is safe
  /// (in-flight frames keep the state alive). Thread-safe to submit
  /// through from multiple threads — the server orders frames by
  /// submission and processes them strictly in that order.
  class StreamHandle {
   public:
    StreamHandle() = default;

   private:
    friend class SegHdcServer;
    struct StreamShared;
    std::shared_ptr<StreamShared> impl_;
  };

  /// Registers a new temporal stream (camera feed, video). Frames
  /// submitted through the returned handle ride the warm-start path
  /// (`SegHdcSession::segment_stream`): previous-frame centroid seeding,
  /// unchanged-band reuse, byte-identical replay. Streams are
  /// independent — open one per camera; batch `submit` traffic on the
  /// same server is unaffected.
  StreamHandle open_stream();

  /// Enqueues the next frame of `stream`. Frames of one stream are
  /// processed strictly in submission order (frame N+1 warm-starts from
  /// frame N by definition), so one stream never pipelines against
  /// itself; different streams and batch requests interleave freely
  /// across the encode workers. The future delivers the segmentation
  /// plus the per-frame StreamFrameStats, or the failure (stage
  /// exception / CancelledError under shutdown(kCancel) — either way
  /// the stream stays usable and later frames still run, warm-starting
  /// from the last frame that completed). Backpressure and shutdown
  /// behave exactly like the batch `submit`.
  std::future<core::StreamFrameResult> submit(StreamHandle& stream,
                                              img::ImageU8 frame);

  /// Stops the server. kDrain completes every accepted request first;
  /// kCancel fails still-queued requests with CancelledError and lets
  /// requests a stage already picked up finish. Blocks until the stage
  /// threads have exited. Idempotent and thread-safe; the first caller's
  /// mode wins, later calls just wait for the stop to finish.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Counter + latency snapshot (see ServerStats) — a view assembled
  /// from the metrics registry. Safe to call from any thread at any
  /// time, including after shutdown.
  ServerStats stats() const;

  /// The server's metric registry (request counters, queue-depth and
  /// in-flight gauges, latency + per-stage histograms). render() gives
  /// the Prometheus text exposition; handles obtained from it stay
  /// valid for the server's lifetime. Mutable access is deliberate:
  /// callers may register their own metrics next to the server's.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The underlying session — read-only access for diagnostics
  /// (encoder_states_built, tile_rows_override).
  const core::SegHdcSession& session() const { return session_; }

 private:
  /// How a finished request reports back: exactly one of `promise`
  /// (future form) or `sink` (callback form) is armed. `on_done`, when
  /// set, fires after either outcome path (the fleet's quota-release
  /// hook).
  struct Completion {
    std::promise<core::SegmentationResult> promise;
    std::function<void(core::SegmentationResult&&)> sink;
    std::function<void()> on_done;
    bool use_promise = true;
    /// The fleet hook hands over a promise whose future the fleet
    /// already retrieved at admission; enqueue must not get_future again.
    bool future_taken = false;
    util::Stopwatch accepted;  ///< starts the submit-to-done latency clock
    std::uint64_t trace_id = 0;  ///< per-request id threaded through spans
  };
  /// A stream frame in flight: which stream, its turn number, and its
  /// own promise (stream results carry StreamFrameStats, so they do not
  /// reuse Completion's SegmentationResult promise).
  struct StreamJob {
    std::shared_ptr<StreamHandle::StreamShared> stream;
    std::uint64_t seq = 0;
    std::promise<core::StreamFrameResult> promise;
    util::Stopwatch accepted;
    std::uint64_t trace_id = 0;
  };
  struct Request {
    img::ImageU8 image;
    Completion completion;
    /// Set for stream frames; they are stage-fused on the encode worker
    /// (frame N+1's encode depends on frame N's clustering, so there is
    /// nothing to pipeline within a stream).
    std::optional<StreamJob> stream;
  };
  struct EncodedJob {
    core::EncodedImage encoded;
    double encode_seconds = 0.0;
    Completion completion;
  };

  std::future<core::SegmentationResult> enqueue(img::ImageU8&& image,
                                                Completion&& completion);
  void encode_loop();
  void cluster_loop();
  /// Runs one stream frame end to end on the calling encode worker:
  /// waits for the frame's turn, segments, advances the turn, delivers.
  void process_stream_frame(Request&& request);
  /// Releases a cancelled (never-run) stream frame's turn in order and
  /// fails its promise with CancelledError.
  void cancel_stream_frame(StreamJob&& job);
  void deliver(Completion&& completion, core::SegmentationResult&& result);
  void fail(Completion&& completion, std::exception_ptr error,
            obs::Counter& counter);

  core::SegHdcSession session_;
  ServerOptions options_;
  util::Stopwatch uptime_;
  util::BoundedQueue<Request> submit_queue_;
  /// Stage hand-off; bounded so a slow cluster stage backpressures the
  /// encode stage (and through it the submit queue) instead of piling
  /// encoded images up in memory.
  util::BoundedQueue<EncodedJob> encoded_queue_;
  std::vector<std::thread> encode_threads_;
  std::vector<std::thread> cluster_threads_;
  std::atomic<std::size_t> live_encoders_{0};

  /// The single source of truth for every server counter: ServerStats
  /// is assembled from these handles, and metrics().render() exposes
  /// the same values as Prometheus text. The handles are registry-owned
  /// atomics, so the hot-path cost equals the raw atomic members they
  /// replaced. Declared after options_ (the latency window) and
  /// initialized in the constructor's init list.
  obs::MetricsRegistry metrics_;
  obs::Histogram& latency_;
  obs::Histogram& encode_stage_seconds_;
  obs::Histogram& cluster_stage_seconds_;
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& rejected_;
  obs::Counter& cancelled_;
  obs::Counter& failed_;
  obs::Gauge& queue_depth_;
  obs::Gauge& in_flight_;
  // Stream-path breakdown (see StreamServingStats); stream frames also
  // move the request counters above.
  obs::Counter& stream_frames_;
  obs::Counter& stream_warm_frames_;
  obs::Counter& stream_replayed_frames_;
  obs::Counter& stream_tiles_reused_;
  obs::Counter& stream_tiles_encoded_;
  obs::Counter& stream_kmeans_iterations_;
  // Assignment-work breakdown from each result's OpCounts: evaluated
  // distances vs candidates skipped by the pruned assignment (zero
  // unless the session runs with pruning; see core::AssignMode).
  obs::Counter& assign_distance_evals_;
  obs::Counter& assign_candidates_pruned_;
  /// Per-request trace ids (span correlation only, no semantics).
  std::atomic<std::uint64_t> next_trace_id_{0};

  std::mutex sink_mutex_;      ///< serialises callback-sink invocations
  std::mutex shutdown_mutex_;  ///< one thread performs the join
  bool threads_joined_ = false;
};

}  // namespace seghdc::serve

#endif  // SEGHDC_SERVE_SERVER_HPP
