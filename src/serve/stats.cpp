#include "src/serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace seghdc::serve {

double percentile_nearest_rank(std::span<const double> sorted, double q) {
  util::expects(!sorted.empty(),
                "percentile_nearest_rank needs at least one sample");
  util::expects(q > 0.0 && q <= 100.0,
                "percentile_nearest_rank needs q in (0, 100]");
  const double exact_rank =
      q / 100.0 * static_cast<double>(sorted.size());
  // Nearest rank = ceil(exact), floored at 1 so q -> 0+ still indexes
  // the smallest sample; clamp against rounding at q = 100.
  const std::size_t rank = std::min<std::size_t>(
      sorted.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(exact_rank - 1e-9))));
  return sorted[rank - 1];
}

LatencyRecorder::LatencyRecorder(std::size_t window_capacity)
    : window_capacity_(window_capacity) {
  util::expects(window_capacity >= 1,
                "LatencyRecorder window_capacity must be >= 1");
  window_.reserve(std::min<std::size_t>(window_capacity, 1024));
}

void LatencyRecorder::record(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_count_;
  total_seconds_ += seconds;
  if (window_.size() < window_capacity_) {
    window_.push_back(seconds);
  } else {
    window_[next_slot_] = seconds;
  }
  next_slot_ = (next_slot_ + 1) % window_capacity_;
}

LatencyPercentiles LatencyRecorder::snapshot() const {
  std::vector<double> sorted;
  LatencyPercentiles result;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (total_count_ == 0) {
      return result;
    }
    sorted = window_;
    result.count = total_count_;
    result.window_count = window_.size();
    result.mean_seconds = total_seconds_ / static_cast<double>(total_count_);
  }
  std::sort(sorted.begin(), sorted.end());
  result.min_seconds = sorted.front();
  result.max_seconds = sorted.back();
  result.p50_seconds = percentile_nearest_rank(sorted, 50.0);
  result.p95_seconds = percentile_nearest_rank(sorted, 95.0);
  result.p99_seconds = percentile_nearest_rank(sorted, 99.0);
  return result;
}

}  // namespace seghdc::serve
