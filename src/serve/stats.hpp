// Serving stats snapshots: the ServerStats view SegHdcServer exposes
// over its obs::MetricsRegistry. The percentile machinery
// (LatencyPercentiles, LatencyRecorder, percentile_nearest_rank) lives
// in src/obs/metrics.hpp now — sliding-window percentile math is
// generic observability, shared with obs::Histogram — and is re-exported
// here under the historical serve:: names.
#ifndef SEGHDC_SERVE_STATS_HPP
#define SEGHDC_SERVE_STATS_HPP

#include <cstddef>
#include <cstdint>

#include "src/obs/metrics.hpp"

namespace seghdc::serve {

using LatencyPercentiles = obs::LatencyPercentiles;
using LatencyRecorder = obs::LatencyRecorder;
using obs::percentile_nearest_rank;

/// Aggregate counters for the temporal stream path (see
/// SegHdcServer::open_stream): how much work the warm-start machinery
/// actually saved, summed over every stream frame this server served.
/// Stream frames ALSO count in the ServerStats request counters and the
/// latency window — these totals break down what kind of frames they
/// were, they do not add a separate population.
struct StreamServingStats {
  std::uint64_t frames = 0;           ///< stream frames completed
  std::uint64_t warm_frames = 0;      ///< seeded from previous centroids
  std::uint64_t replayed_frames = 0;  ///< byte-identical, result replayed
  std::uint64_t tiles_reused = 0;     ///< row bands served from cache
  std::uint64_t tiles_encoded = 0;    ///< row bands re-encoded
  std::uint64_t kmeans_iterations = 0;  ///< iterations actually run
};

/// Snapshot of a SegHdcServer's counters and latency distribution — a
/// view assembled from the server's obs::MetricsRegistry handles.
/// Counters increase monotonically over the server's lifetime; once the
/// pipeline is idle, `submitted == completed + failed + cancelled` (a
/// rejected request was never accepted, so `rejected` counts separately).
/// Mid-flight snapshots read each counter atomically but not the set of
/// them together, so transient sums may be off by in-transit requests.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< requests accepted into the queue
  std::uint64_t completed = 0;  ///< results delivered (future/sink set)
  std::uint64_t rejected = 0;   ///< refused by the kReject backpressure
  std::uint64_t cancelled = 0;  ///< failed by shutdown(kCancel)
  std::uint64_t failed = 0;     ///< stage threw (bad image, OOM, ...)
  std::size_t queued = 0;       ///< waiting in the submit queue right now
  std::size_t in_flight = 0;    ///< popped by a stage, not yet completed
  double uptime_seconds = 0.0;  ///< since server construction
  /// completed / uptime — the sustained rate since construction, not a
  /// windowed instantaneous rate.
  double throughput_images_per_sec = 0.0;
  /// Submit-to-completion wall latency of completed requests.
  LatencyPercentiles latency;
  /// Temporal stream-path breakdown (all zero when no stream was used).
  StreamServingStats stream;
};

}  // namespace seghdc::serve

#endif  // SEGHDC_SERVE_STATS_HPP
