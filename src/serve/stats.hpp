// Serving observability: per-request latency recording and the
// ServerStats snapshot SegHdcServer exposes. Kept separate from the
// server so the percentile math is testable against known sequences
// without spinning up a pipeline.
#ifndef SEGHDC_SERVE_STATS_HPP
#define SEGHDC_SERVE_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace seghdc::serve {

/// Latency percentiles over a set of samples, in seconds. All zero when
/// no sample was recorded.
///
/// Two sample counts on purpose: `count` is every sample ever recorded
/// (what `mean_seconds` covers), `window_count` is how many of them are
/// still in the sliding window (what min/max/p50/p95/p99 cover). They
/// are equal until the recorder's window wraps; after that, reading the
/// percentiles as if they covered `count` samples overstates their
/// support — display code must cite `window_count` next to percentiles.
struct LatencyPercentiles {
  std::uint64_t count = 0;         ///< lifetime samples (mean covers these)
  std::uint64_t window_count = 0;  ///< samples behind min/max/percentiles
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Nearest-rank percentile: the ceil(q/100 * n)-th smallest sample
/// (1-indexed), the classical definition — p100 is the maximum, p50 of
/// {1..100} is 50. `sorted` must be ascending and non-empty; `q` in
/// (0, 100].
double percentile_nearest_rank(std::span<const double> sorted, double q);

/// Thread-safe latency accumulator. Percentiles and min/max are computed
/// over a sliding window of the most recent `window_capacity` samples
/// (bounded memory under sustained traffic); count and mean cover every
/// sample ever recorded. All methods are safe to call concurrently.
class LatencyRecorder {
 public:
  /// `window_capacity` must be >= 1; the default keeps the last 64k
  /// request latencies, plenty for p99 stability.
  explicit LatencyRecorder(std::size_t window_capacity = 65536);

  /// Records one request latency (seconds, >= 0).
  void record(double seconds);

  /// Snapshot of the current percentiles (sorts a copy of the window;
  /// O(window log window), intended for dashboards and tests, not per
  /// request).
  LatencyPercentiles snapshot() const;

 private:
  const std::size_t window_capacity_;
  mutable std::mutex mutex_;
  std::vector<double> window_;  ///< ring buffer, size <= window_capacity_
  std::size_t next_slot_ = 0;   ///< ring write cursor
  std::uint64_t total_count_ = 0;
  double total_seconds_ = 0.0;
};

/// Aggregate counters for the temporal stream path (see
/// SegHdcServer::open_stream): how much work the warm-start machinery
/// actually saved, summed over every stream frame this server served.
/// Stream frames ALSO count in the ServerStats request counters and the
/// latency window — these totals break down what kind of frames they
/// were, they do not add a separate population.
struct StreamServingStats {
  std::uint64_t frames = 0;           ///< stream frames completed
  std::uint64_t warm_frames = 0;      ///< seeded from previous centroids
  std::uint64_t replayed_frames = 0;  ///< byte-identical, result replayed
  std::uint64_t tiles_reused = 0;     ///< row bands served from cache
  std::uint64_t tiles_encoded = 0;    ///< row bands re-encoded
  std::uint64_t kmeans_iterations = 0;  ///< iterations actually run
};

/// Snapshot of a SegHdcServer's counters and latency distribution.
/// Counters increase monotonically over the server's lifetime; once the
/// pipeline is idle, `submitted == completed + failed + cancelled` (a
/// rejected request was never accepted, so `rejected` counts separately).
/// Mid-flight snapshots read each counter atomically but not the set of
/// them together, so transient sums may be off by in-transit requests.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< requests accepted into the queue
  std::uint64_t completed = 0;  ///< results delivered (future/sink set)
  std::uint64_t rejected = 0;   ///< refused by the kReject backpressure
  std::uint64_t cancelled = 0;  ///< failed by shutdown(kCancel)
  std::uint64_t failed = 0;     ///< stage threw (bad image, OOM, ...)
  std::size_t queued = 0;       ///< waiting in the submit queue right now
  std::size_t in_flight = 0;    ///< popped by a stage, not yet completed
  double uptime_seconds = 0.0;  ///< since server construction
  /// completed / uptime — the sustained rate since construction, not a
  /// windowed instantaneous rate.
  double throughput_images_per_sec = 0.0;
  /// Submit-to-completion wall latency of completed requests.
  LatencyPercentiles latency;
  /// Temporal stream-path breakdown (all zero when no stream was used).
  StreamServingStats stream;
};

}  // namespace seghdc::serve

#endif  // SEGHDC_SERVE_STATS_HPP
