// Counting admission gate — the quota primitive under the multi-tenant
// fleet layer (src/serve/fleet.*), sibling of BoundedQueue. A BoundedQueue
// caps how many values *wait*; an AdmissionGate caps how many units are
// *in flight*: acquire a slot before dispatching work, release it when the
// work completes, and the gate refuses (or blocks) dispatch past the
// limit. The fleet pairs one gate per tenant (max_in_flight) with a
// BoundedQueue per tenant (max_queued) to form the full admission quota.
//
// Thread-safety: every member is safe to call concurrently from any
// thread. Like BoundedQueue, when several acquirers block on a full gate
// the order they resume in is unspecified.
#ifndef SEGHDC_UTIL_ADMISSION_GATE_HPP
#define SEGHDC_UTIL_ADMISSION_GATE_HPP

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "src/util/contracts.hpp"

namespace seghdc::util {

/// Counting gate over concurrent in-flight units. `limit` 0 means
/// unlimited (acquires always succeed immediately); the gate still
/// counts, so `in_use()` stays meaningful for stats.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t limit = 0) : limit_(limit) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// 0 = unlimited.
  std::size_t limit() const { return limit_; }

  /// Slots currently held (a snapshot; racy by nature).
  std::size_t in_use() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return in_use_;
  }

  /// Non-blocking: takes a slot when one is free and the gate is open.
  /// The dispatcher-side primitive — a fair-share scheduler must never
  /// park on one tenant's full gate while another tenant has work.
  bool try_acquire() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || !has_slot()) {
      return false;
    }
    ++in_use_;
    return true;
  }

  /// Blocks until a slot frees, then takes it. Returns false when the
  /// gate is or becomes closed while waiting — the shutdown path for
  /// blocked acquirers.
  bool acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    freed_.wait(lock, [this] { return closed_ || has_slot(); });
    if (closed_) {
      return false;
    }
    ++in_use_;
    return true;
  }

  /// Returns a slot taken by a successful acquire. Releasing more than
  /// was acquired is a contract violation (std::logic_error).
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ensures(in_use_ > 0, "AdmissionGate::release without acquire");
      --in_use_;
    }
    freed_.notify_one();
  }

  /// Closes the gate: subsequent and blocked acquires fail. Held slots
  /// stay valid and must still be released. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    freed_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  bool has_slot() const { return limit_ == 0 || in_use_ < limit_; }

  const std::size_t limit_;
  mutable std::mutex mutex_;
  std::condition_variable freed_;  ///< signalled when a slot is released
  std::size_t in_use_ = 0;
  bool closed_ = false;
};

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_ADMISSION_GATE_HPP
