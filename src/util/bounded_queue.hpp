// Bounded MPMC FIFO queue — the backpressure primitive under the
// serving layer (src/serve/). Multiple producers push, multiple
// consumers pop; a full queue blocks producers (or reports kFull so the
// caller can reject), an empty queue blocks consumers, and close()
// starts a clean drain: pops keep succeeding until the queue is empty,
// then return nullopt forever.
//
// Thread-safety: every member is safe to call concurrently from any
// thread. Ordering: values pop in push order (FIFO); when several
// producers block on a full queue, the order they resume in is
// unspecified, like any condition-variable wait.
#ifndef SEGHDC_UTIL_BOUNDED_QUEUE_HPP
#define SEGHDC_UTIL_BOUNDED_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace seghdc::util {

/// Outcome of a non-blocking push attempt.
enum class QueuePush {
  kOk,      ///< value enqueued
  kFull,    ///< bounded queue at capacity (value returned to caller)
  kClosed,  ///< queue closed; no further pushes will ever succeed
};

/// Bounded multi-producer multi-consumer FIFO. `capacity` 0 means
/// unbounded (pushes never block or report kFull). T needs to be
/// movable; values are moved in and out, never copied.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// 0 = unbounded.
  std::size_t capacity() const { return capacity_; }

  /// Current element count (a snapshot; racy by nature).
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Blocks while the queue is full, then enqueues. Returns false when
  /// the queue is or becomes closed while waiting — the shutdown path
  /// for blocked producers. `value` is moved from only on success, so a
  /// failed push leaves it in the caller's hands (e.g. to fail its
  /// completion).
  bool push(T& value) {
    std::unique_lock<std::mutex> lock(mutex_);
    space_.wait(lock, [this] { return closed_ || has_space(); });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(value));
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Non-blocking push: kFull leaves `value` untouched in the caller's
  /// hands (it is only moved from on kOk), which is what a
  /// reject-with-error policy needs to report the failure upstream.
  QueuePush try_push(T& value) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return QueuePush::kClosed;
      }
      if (!has_space()) {
        return QueuePush::kFull;
      }
      items_.push_back(std::move(value));
    }
    ready_.notify_one();
    return QueuePush::kOk;
  }

  /// Non-blocking pop: dequeues the oldest value when one is there,
  /// nullopt when the queue is empty (closed or not). The fair-share
  /// dispatcher's primitive — a scheduler scanning many queues must
  /// never park on an empty one while another has work.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) {
        return std::nullopt;
      }
      value = std::move(items_.front());
      items_.pop_front();
    }
    space_.notify_one();
    return value;
  }

  /// Blocks while the queue is empty, then dequeues the oldest value.
  /// Returns nullopt once the queue is closed AND drained — the
  /// consumer-loop termination signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return value;
  }

  /// Closes the queue: subsequent pushes fail, blocked producers wake
  /// with false, and consumers drain the remaining values before seeing
  /// nullopt. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Closes the queue and removes everything still enqueued, returning
  /// it in FIFO order — the cancel path: the caller owns the unprocessed
  /// values (e.g. to fail their completions). Consumers see nullopt on
  /// their next pop.
  std::vector<T> close_and_drain() {
    std::vector<T> drained;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      drained.reserve(items_.size());
      for (auto& item : items_) {
        drained.push_back(std::move(item));
      }
      items_.clear();
    }
    ready_.notify_all();
    space_.notify_all();
    return drained;
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  bool has_space() const {
    return capacity_ == 0 || items_.size() < capacity_;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< signalled when a value arrives
  std::condition_variable space_;  ///< signalled when a slot frees up
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_BOUNDED_QUEUE_HPP
