#include "src/util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace seghdc::util {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Cli::get_flag(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  const std::string value = lower(it->second);
  if (value.empty() || value == "1" || value == "true" || value == "yes" ||
      value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("--" + name + " expects a boolean, got '" +
                              it->second + "'");
}

void Cli::reject_unknown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : options_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown option --" + name);
    }
  }
}

std::vector<std::size_t> Cli::parse_size_list(const std::string& spec,
                                              bool allow_zero) {
  std::vector<std::size_t> values;
  std::size_t value = 0;
  bool in_number = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      in_number = true;
    } else {
      if (in_number && (allow_zero || value > 0)) {
        values.push_back(value);
      }
      value = 0;
      in_number = false;
    }
  }
  if (in_number && (allow_zero || value > 0)) {
    values.push_back(value);
  }
  return values;
}

}  // namespace seghdc::util
