#include "src/util/cli.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace seghdc::util {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  bool options_ended = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--" && !options_ended) {
      // End-of-options sentinel: everything after it is positional, so
      // file names starting with "--" stay representable.
      options_ended = true;
      continue;
    }
    if (options_ended || arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  if (it->second.empty()) {
    // A bare `--name` read through a value getter is almost always a
    // swallowed value: `--name --other ...` parses as two flags.
    throw std::invalid_argument(
        "--" + name + " expects an integer value but none was given "
        "(a following --option? use --" + name + "=value)");
  }
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  if (it->second.empty()) {
    throw std::invalid_argument(
        "--" + name + " expects a numeric value but none was given "
        "(a following --option? use --" + name + "=value)");
  }
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Cli::get_flag(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  const std::string value = lower(it->second);
  if (value.empty() || value == "1" || value == "true" || value == "yes" ||
      value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("--" + name + " expects a boolean, got '" +
                              it->second + "'");
}

void Cli::reject_unknown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : options_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown option --" + name);
    }
  }
}

std::vector<std::size_t> Cli::parse_size_list(const std::string& spec,
                                              bool allow_zero) {
  // Malformed tokens and overflow are hard errors, matching the
  // no-silent-fallback convention of the forced knobs
  // (SEGHDC_KERNEL_BACKEND, SEGHDC_TILE_ROWS): a sweep list that
  // quietly dropped "x" from "4,x,8" would run a different sweep than
  // the one the caller asked for.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> values;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = begin;
    while (end < spec.size() && spec[end] != ',' && spec[end] != ' ' &&
           spec[end] != '\t') {
      ++end;
    }
    if (end > begin) {
      const std::string token = spec.substr(begin, end - begin);
      std::size_t value = 0;
      for (const char c : token) {
        if (c < '0' || c > '9') {
          throw std::invalid_argument("size list '" + spec +
                                      "' contains malformed token '" +
                                      token + "' (digits only)");
        }
        const auto digit = static_cast<std::size_t>(c - '0');
        if (value > (kMax - digit) / 10) {
          throw std::invalid_argument("size list '" + spec +
                                      "' token '" + token +
                                      "' overflows size_t");
        }
        value = value * 10 + digit;
      }
      if (value == 0 && !allow_zero) {
        throw std::invalid_argument("size list '" + spec +
                                    "' contains '0' where zero is not "
                                    "a legal value");
      }
      values.push_back(value);
    }
    begin = end + 1;
  }
  return values;
}

}  // namespace seghdc::util
