// Minimal command-line option parser shared by the bench harness and the
// examples. Supports `--name value`, `--name=value`, and boolean flags.
#ifndef SEGHDC_UTIL_CLI_HPP
#define SEGHDC_UTIL_CLI_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seghdc::util {

/// Parsed command line. Unknown options are collected rather than rejected
/// so a caller can forward them; call `reject_unknown()` to enforce strict
/// parsing. A bare `--` ends option parsing: every later token is
/// positional, even ones starting with `--`.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--name` was present (with or without a value).
  bool has(const std::string& name) const;

  /// String value of `--name`, or `fallback` if absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer value of `--name`, or `fallback` if absent. Throws
  /// std::invalid_argument when present but not parseable — including
  /// when present with an empty value (`--name --other` parses as two
  /// flags, so the swallowed value is a hard error here, not a silent
  /// fallback).
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Floating-point value of `--name`, or `fallback` if absent. Same
  /// empty-value hard error as get_int.
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flag: present without value, or with value in
  /// {1,true,yes,on} / {0,false,no,off}.
  bool get_flag(const std::string& name, bool fallback = false) const;

  /// Positional arguments (everything not starting with `--`).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Throws std::invalid_argument when any parsed option is not in
  /// `known` — call after all get() calls with the full option list.
  void reject_unknown(const std::vector<std::string>& known) const;

  /// Parses a comma/space/tab-separated size list ("1,2,4"). Zeros are
  /// legal when `allow_zero` (e.g. tile-rows/queue lists use 0 to mean
  /// auto/unbounded) and a hard error otherwise (thread lists). Shared
  /// by the bench sweep flags. Malformed tokens ("4,x,8") and values
  /// overflowing size_t throw std::invalid_argument — a sweep must run
  /// exactly the list it was given, never a silently filtered one.
  static std::vector<std::size_t> parse_size_list(const std::string& spec,
                                                  bool allow_zero = true);

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_CLI_HPP
