// Contract checking helpers in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw rather than abort so that
// library users (and tests) can observe and recover from misuse.
#ifndef SEGHDC_UTIL_CONTRACTS_HPP
#define SEGHDC_UTIL_CONTRACTS_HPP

#include <stdexcept>
#include <string>

namespace seghdc::util {

/// Precondition check: throws std::invalid_argument when `condition` is false.
/// `what` should name the violated requirement from the caller's perspective.
/// Takes const char* so the passing path costs one branch — no message
/// string is materialised unless the check fires (these run in per-bit
/// and per-row hot loops).
inline void expects(bool condition, const char* what) {
  if (!condition) {
    throw std::invalid_argument(std::string("precondition violated: ") +
                                what);
  }
}

/// Postcondition / internal-invariant check: throws std::logic_error.
/// A failure indicates a bug inside this library, not caller misuse.
inline void ensures(bool condition, const char* what) {
  if (!condition) {
    throw std::logic_error(std::string("invariant violated: ") + what);
  }
}

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_CONTRACTS_HPP
