// Contract checking helpers in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw rather than abort so that
// library users (and tests) can observe and recover from misuse.
#ifndef SEGHDC_UTIL_CONTRACTS_HPP
#define SEGHDC_UTIL_CONTRACTS_HPP

#include <stdexcept>
#include <string>

namespace seghdc::util {

/// Precondition check: throws std::invalid_argument when `condition` is false.
/// `what` should name the violated requirement from the caller's perspective.
inline void expects(bool condition, const std::string& what) {
  if (!condition) {
    throw std::invalid_argument("precondition violated: " + what);
  }
}

/// Postcondition / internal-invariant check: throws std::logic_error.
/// A failure indicates a bug inside this library, not caller misuse.
inline void ensures(bool condition, const std::string& what) {
  if (!condition) {
    throw std::logic_error("invariant violated: " + what);
  }
}

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_CONTRACTS_HPP
