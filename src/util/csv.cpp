#include "src/util/csv.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "src/util/contracts.hpp"

namespace seghdc::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  expects(!header.empty(), "CsvWriter header must not be empty");
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  expects(fields.size() == columns_,
          "CsvWriter row width must match header width");
  write_row(fields);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& raw) {
  const bool needs_quotes =
      raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return raw;
  }
  std::string quoted = "\"";
  for (const char ch : raw) {
    if (ch == '"') {
      quoted += "\"\"";
    } else {
      quoted += ch;
    }
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::field(double value) {
  std::ostringstream os;
  os.precision(10);
  os << value;
  return os.str();
}

std::string CsvWriter::field(long long value) { return std::to_string(value); }

std::string CsvWriter::field(unsigned long long value) {
  return std::to_string(value);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("ensure_directory: cannot create " + path +
                             ": " + ec.message());
  }
}

}  // namespace seghdc::util
