// Tiny CSV writer used by the benchmark harness to persist every table /
// figure series next to the textual report (one file per experiment).
#ifndef SEGHDC_UTIL_CSV_HPP
#define SEGHDC_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace seghdc::util {

/// Streams rows to a CSV file. Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (parent directory must exist) and writes the
  /// header row. Throws std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row. The number of fields should match the header;
  /// this is checked and enforced.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with full precision.
  static std::string field(double value);
  static std::string field(long long value);
  static std::string field(unsigned long long value);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& fields);
  static std::string escape(const std::string& raw);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// Creates `path` (and missing parents) as a directory; no-op when it
/// already exists. Throws std::runtime_error on failure.
void ensure_directory(const std::string& path);

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_CSV_HPP
