#include "src/util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace seghdc::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Compose off-lock, then emit the line as ONE stream write under the
  // mutex: concurrent loggers can interleave whole lines but never the
  // characters within one (stream operator chains are not atomic even
  // under a lock held by only one of the writers).
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

}  // namespace seghdc::util
