// Small leveled logger for the bench harness and examples. Writes to
// stderr; the level is a process-wide setting (informational tooling only,
// never load-bearing for library behaviour).
#ifndef SEGHDC_UTIL_LOGGING_HPP
#define SEGHDC_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace seghdc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` at `level` with a "[level] " prefix when enabled.
void log(LogLevel level, const std::string& message);

/// Stream-style helper: Logger(LogLevel::kInfo) << "x=" << x;
/// The message is emitted when the Logger goes out of scope.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() { log(level_, stream_.str()); }

  template <typename T>
  Logger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline Logger log_debug() { return Logger(LogLevel::kDebug); }
inline Logger log_info() { return Logger(LogLevel::kInfo); }
inline Logger log_warn() { return Logger(LogLevel::kWarn); }
inline Logger log_error() { return Logger(LogLevel::kError); }

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_LOGGING_HPP
