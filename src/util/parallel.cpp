#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace seghdc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn n-1 workers.
  workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) {
    return;
  }
  const std::size_t count = end - begin;
  const std::size_t threads = thread_count();
  const std::size_t min_grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = std::min(
      (count + min_grain - 1) / min_grain, std::max<std::size_t>(threads, 1));
  if (chunks <= 1 || workers_.empty() || SerialScope::active()) {
    for (std::size_t i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t step = std::max(min_grain, count / (chunks * 4) + 1);

  auto drain = [&] {
    for (;;) {
      const std::size_t chunk_begin =
          next.fetch_add(step, std::memory_order_relaxed);
      if (chunk_begin >= end) {
        return;
      }
      const std::size_t chunk_end = std::min(end, chunk_begin + step);
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          body(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  // Per-invocation completion counter: every helper task decrements it
  // when its drain returns, so this call only waits on its own work even
  // when other parallel_for invocations share the queue.
  const std::size_t helpers = std::min(chunks - 1, workers_.size());
  std::atomic<std::size_t> pending{helpers};
  auto helper = [&] {
    drain();
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Take the lock before notifying so the waiter cannot check the
      // counter and then sleep through this notification.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  };
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push_back(Task{helper});
    }
  }
  wake_.notify_all();

  drain();  // calling thread participates

  // Help-wait: helper tasks that no worker has picked up yet (all workers
  // busy, e.g. inside an enclosing parallel_for) are executed right here,
  // which is what makes nested loops deadlock-free.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (pending.load(std::memory_order_acquire) != 0) {
      if (!queue_.empty()) {
        Task task = std::move(queue_.back());
        queue_.pop_back();
        lock.unlock();
        task.fn();
        lock.lock();
        continue;
      }
      done_.wait(lock, [&] {
        return pending.load(std::memory_order_acquire) == 0 ||
               !queue_.empty();
      });
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::shared().parallel_for(begin, end, body, grain);
}

}  // namespace seghdc::util
