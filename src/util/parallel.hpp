// Process-wide thread pool with a simple parallel_for. Used by the K-Means
// assignment step and the conv GEMM, where per-item work is independent.
#ifndef SEGHDC_UTIL_PARALLEL_HPP
#define SEGHDC_UTIL_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seghdc::util {

/// Fixed-size worker pool. Construct once, submit blocking parallel loops.
/// All exceptions thrown by the body are captured and the first one is
/// rethrown on the calling thread after the loop completes.
class ThreadPool {
 public:
  /// `threads` = 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all chunks are
  /// done. `grain` caps the minimum chunk size to bound scheduling
  /// overhead for cheap bodies.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Shared pool sized to the hardware; created on first use.
  static ThreadPool& shared();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Convenience: parallel_for on the shared pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_PARALLEL_HPP
