// Process-wide thread pool with a simple parallel_for. Used by the K-Means
// assignment/update steps, the SegHDC encoder bind pass, the conv GEMM,
// and SegHdcSession::segment_many, where per-item work is independent.
//
// Nesting: a parallel_for body may itself call parallel_for (on the same
// pool or the shared one). A caller waiting for its own chunks to finish
// helps execute queued tasks instead of blocking, so nested loops cannot
// deadlock the pool; at worst they run on the calling thread.
#ifndef SEGHDC_UTIL_PARALLEL_HPP
#define SEGHDC_UTIL_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seghdc::util {

/// RAII guard: while one is alive on the current thread, every
/// parallel_for issued from that thread runs inline (sequentially)
/// instead of fanning out. Used by coarse-grained parallelism (e.g. one
/// image per worker in SegHdcSession::segment_many) to stop the
/// fine-grained loops underneath from oversubscribing the pool. Results
/// are unchanged — parallel_for callers must already be
/// schedule-independent.
class SerialScope {
 public:
  SerialScope() { ++depth(); }
  ~SerialScope() { --depth(); }

  SerialScope(const SerialScope&) = delete;
  SerialScope& operator=(const SerialScope&) = delete;

  static bool active() { return depth() > 0; }

 private:
  static int& depth() {
    thread_local int count = 0;
    return count;
  }
};

/// Fixed-size worker pool. Construct once, submit blocking parallel loops.
/// All exceptions thrown by the body are captured and the first one is
/// rethrown on the calling thread after the loop completes.
class ThreadPool {
 public:
  /// `threads` = 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all chunks are
  /// done. `grain` caps the minimum chunk size to bound scheduling
  /// overhead for cheap bodies.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Shared pool sized to the hardware; created on first use.
  static ThreadPool& shared();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  bool stopping_ = false;
};

/// Convenience: parallel_for on the shared pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_PARALLEL_HPP
