#include "src/util/rng.hpp"

#include <cmath>

#include "src/util/contracts.hpp"

namespace seghdc::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  expects(bound > 0, "Rng::next_below bound must be positive");
  // Lemire's method: multiply-shift with rejection of the biased band.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "Rng::next_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  expects(lo <= hi, "Rng::next_double_in requires lo <= hi");
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool() { return ((*this)() >> 63) != 0; }

double Rng::next_gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = next_double_in(-1.0, 1.0);
    v = next_double_in(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

Rng Rng::split() {
  // Mix two fresh outputs so child streams do not share state trajectories.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

}  // namespace seghdc::util
