// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component (HV generation, dataset synthesis, K-Means
// reseeding, CNN weight init) draws from an explicitly seeded Rng so that
// every table and figure in the benchmark harness is reproducible
// bit-for-bit. The generator is xoshiro256**, seeded via SplitMix64 —
// small, fast, and with far better statistical behaviour than
// std::minstd_rand while avoiding the platform-dependence of
// std::default_random_engine.
#ifndef SEGHDC_UTIL_RNG_HPP
#define SEGHDC_UTIL_RNG_HPP

#include <array>
#include <cstdint>
#include <limits>

namespace seghdc::util {

/// xoshiro256** deterministic PRNG.
///
/// Satisfies the std UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions, but the helpers below cover the
/// library's needs without distribution-object overhead.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64 (the scheme the
  /// xoshiro authors recommend: never seed the raw state directly).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (no modulo bias).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// Fair coin flip.
  bool next_bool();

  /// Standard normal variate (Marsaglia polar method).
  double next_gaussian();

  /// Derives an independent child generator; used to hand each dataset
  /// sample / worker its own stream without correlating draws.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_RNG_HPP
