// Wall-clock stopwatch used by the pipeline instrumentation and benches.
#ifndef SEGHDC_UTIL_STOPWATCH_HPP
#define SEGHDC_UTIL_STOPWATCH_HPP

#include <chrono>

namespace seghdc::util {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seghdc::util

#endif  // SEGHDC_UTIL_STOPWATCH_HPP
