// Tests for the integer accumulator (HDC bundling / K-Means centroids).
#include <gtest/gtest.h>

#include <cmath>

#include "src/hdc/accumulator.hpp"
#include "src/util/rng.hpp"

namespace {

using seghdc::hdc::Accumulator;
using seghdc::hdc::HyperVector;
using seghdc::util::Rng;

TEST(Accumulator, StartsEmpty) {
  const Accumulator acc(64);
  EXPECT_EQ(acc.dim(), 64u);
  EXPECT_EQ(acc.total_weight(), 0u);
  EXPECT_DOUBLE_EQ(acc.norm(), 0.0);
}

TEST(Accumulator, AddCountsSetBits) {
  Accumulator acc(8);
  HyperVector hv(8);
  hv.set(1, true);
  hv.set(5, true);
  acc.add(hv);
  EXPECT_EQ(acc.at(1), 1);
  EXPECT_EQ(acc.at(5), 1);
  EXPECT_EQ(acc.at(0), 0);
  EXPECT_EQ(acc.total_weight(), 1u);
  acc.add(hv, 3);
  EXPECT_EQ(acc.at(1), 4);
  EXPECT_EQ(acc.total_weight(), 4u);
}

TEST(Accumulator, WeightedAddEqualsRepeatedAdds) {
  Rng rng(1);
  const auto a = HyperVector::random(256, rng);
  const auto b = HyperVector::random(256, rng);

  Accumulator weighted(256);
  weighted.add(a, 5);
  weighted.add(b, 2);

  Accumulator repeated(256);
  for (int i = 0; i < 5; ++i) {
    repeated.add(a);
  }
  for (int i = 0; i < 2; ++i) {
    repeated.add(b);
  }

  EXPECT_EQ(weighted.total_weight(), repeated.total_weight());
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(weighted.at(i), repeated.at(i)) << "component " << i;
  }
  EXPECT_DOUBLE_EQ(weighted.norm(), repeated.norm());
}

TEST(Accumulator, DotMatchesManualSum) {
  Rng rng(2);
  Accumulator acc(128);
  for (int i = 0; i < 7; ++i) {
    acc.add(HyperVector::random(128, rng));
  }
  const auto probe = HyperVector::random(128, rng);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < 128; ++i) {
    if (probe.get(i)) {
      expected += acc.at(i);
    }
  }
  EXPECT_EQ(acc.dot(probe), expected);
}

TEST(Accumulator, IncrementalNormMatchesRecomputed) {
  Rng rng(3);
  Accumulator acc(200);
  for (int i = 0; i < 10; ++i) {
    acc.add(HyperVector::random(200, rng),
            static_cast<std::uint32_t>(1 + i % 3));
  }
  double sum_squares = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    sum_squares += static_cast<double>(acc.at(i)) * acc.at(i);
  }
  EXPECT_NEAR(acc.norm(), std::sqrt(sum_squares), 1e-9);
}

TEST(Accumulator, CosineDistanceOfMemberIsSmall) {
  Rng rng(4);
  const auto member = HyperVector::random(2000, rng);
  Accumulator acc(2000);
  acc.add(member, 10);
  // A pure multiple of the member points in the same direction.
  EXPECT_NEAR(acc.cosine_distance(member), 0.0, 1e-9);
}

TEST(Accumulator, CosineDistanceOfRandomIsNearHalfMass) {
  // A random binary HV against a sum of many random HVs: expectation of
  // the cosine is sqrt(density) with density 0.5 -> distance ~0.29.
  Rng rng(5);
  Accumulator acc(4000);
  for (int i = 0; i < 50; ++i) {
    acc.add(HyperVector::random(4000, rng));
  }
  const auto probe = HyperVector::random(4000, rng);
  const double distance = acc.cosine_distance(probe);
  EXPECT_GT(distance, 0.2);
  EXPECT_LT(distance, 0.4);
}

TEST(Accumulator, CosineDistanceEmptyIsOne) {
  const Accumulator acc(64);
  HyperVector probe(64);
  probe.set(1, true);
  EXPECT_DOUBLE_EQ(acc.cosine_distance(probe), 1.0);

  Accumulator nonempty(64);
  nonempty.add(probe);
  const HyperVector zero(64);
  EXPECT_DOUBLE_EQ(nonempty.cosine_distance(zero), 1.0);
}

TEST(Accumulator, ClearResetsEverything) {
  Rng rng(6);
  Accumulator acc(100);
  acc.add(HyperVector::random(100, rng), 4);
  acc.clear();
  EXPECT_EQ(acc.total_weight(), 0u);
  EXPECT_DOUBLE_EQ(acc.norm(), 0.0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(acc.at(i), 0);
  }
}

TEST(Accumulator, MajorityRule) {
  HyperVector a(4);
  a.set(0, true);
  a.set(1, true);
  HyperVector b(4);
  b.set(1, true);
  b.set(2, true);
  HyperVector c(4);
  c.set(1, true);

  Accumulator acc(4);
  acc.add(a);
  acc.add(b);
  acc.add(c);
  // counts: [1, 3, 1, 0], weight 3 -> majority needs count*2 > 3.
  const auto majority = acc.to_majority();
  EXPECT_FALSE(majority.get(0));
  EXPECT_TRUE(majority.get(1));
  EXPECT_FALSE(majority.get(2));
  EXPECT_FALSE(majority.get(3));
}

TEST(Accumulator, MajorityTieResolvesToZero) {
  HyperVector a(2);
  a.set(0, true);
  HyperVector b(2);
  b.set(1, true);
  Accumulator acc(2);
  acc.add(a);
  acc.add(b);
  // Both bits have count 1 of weight 2: exactly half -> 0.
  const auto majority = acc.to_majority();
  EXPECT_FALSE(majority.get(0));
  EXPECT_FALSE(majority.get(1));
}

TEST(Accumulator, DimensionMismatchThrows) {
  Accumulator acc(10);
  const HyperVector wrong(11);
  EXPECT_THROW(acc.add(wrong), std::invalid_argument);
  EXPECT_THROW(acc.dot(wrong), std::invalid_argument);
  EXPECT_THROW(acc.cosine_distance(wrong), std::invalid_argument);
  EXPECT_THROW(acc.at(10), std::invalid_argument);
}

TEST(Accumulator, MergeEqualsSequentialAdds) {
  // merge() is the reduction step of the parallel K-Means update: two
  // partials merged must equal the one accumulator that saw every add,
  // including the incrementally-maintained norm.
  Rng rng(21);
  const std::size_t dim = 384;
  Accumulator all(dim);
  Accumulator left(dim);
  Accumulator right(dim);
  for (std::uint32_t i = 0; i < 24; ++i) {
    const auto hv = HyperVector::random(dim, rng);
    const std::uint32_t weight = 1 + i % 7;
    all.add(hv, weight);
    (i % 2 == 0 ? left : right).add(hv, weight);
  }
  left.merge(right);
  EXPECT_EQ(left.total_weight(), all.total_weight());
  for (std::size_t i = 0; i < dim; ++i) {
    ASSERT_EQ(left.at(i), all.at(i)) << "component " << i;
  }
  EXPECT_DOUBLE_EQ(left.norm(), all.norm());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Rng rng(22);
  Accumulator acc(128);
  acc.add(HyperVector::random(128, rng), 3);
  const double norm_before = acc.norm();
  const Accumulator empty(128);
  acc.merge(empty);
  EXPECT_DOUBLE_EQ(acc.norm(), norm_before);
  EXPECT_EQ(acc.total_weight(), 3u);
}

TEST(Accumulator, MergeDimensionMismatchThrows) {
  Accumulator a(10);
  const Accumulator b(11);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Accumulator, HyperVectorAddForwardsThroughPackedOverload) {
  // Both overloads are one implementation (the HyperVector form
  // forwards its packed words), so their outputs — counts, weight, and
  // the incrementally-maintained norm — must be identical.
  Rng rng(23);
  const std::size_t dim = 300;  // non-multiple of 64: padding in play
  Accumulator via_hv(dim);
  Accumulator via_span(dim);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto hv = HyperVector::random(dim, rng);
    via_hv.add(hv, 1 + i % 5);
    via_span.add(hv.words(), 1 + i % 5);
  }
  EXPECT_EQ(via_hv.total_weight(), via_span.total_weight());
  EXPECT_DOUBLE_EQ(via_hv.norm(), via_span.norm());
  for (std::size_t i = 0; i < dim; ++i) {
    ASSERT_EQ(via_hv.at(i), via_span.at(i)) << "component " << i;
  }
}

}  // namespace
