// Tests for ReLU, argmax pseudo-labels, softmax cross-entropy, and the
// spatial continuity loss of the CNN baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activations.hpp"
#include "src/nn/loss.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::nn;
using seghdc::util::Rng;

Tensor random_tensor(std::size_t c, std::size_t h, std::size_t w,
                     Rng& rng) {
  Tensor t(c, h, w);
  for (auto& v : t.values()) {
    v = static_cast<float>(rng.next_double_in(-2.0, 2.0));
  }
  return t;
}

TEST(ReLUTest, ForwardClampsNegatives) {
  Tensor input(1, 1, 4);
  input(0, 0, 0) = -1.0F;
  input(0, 0, 1) = 0.0F;
  input(0, 0, 2) = 2.5F;
  input(0, 0, 3) = -0.1F;
  ReLU relu;
  const auto output = relu.forward(input);
  EXPECT_EQ(output(0, 0, 0), 0.0F);
  EXPECT_EQ(output(0, 0, 1), 0.0F);
  EXPECT_EQ(output(0, 0, 2), 2.5F);
  EXPECT_EQ(output(0, 0, 3), 0.0F);
}

TEST(ReLUTest, BackwardMasksGradient) {
  Tensor input(1, 1, 3);
  input(0, 0, 0) = -1.0F;
  input(0, 0, 1) = 3.0F;
  input(0, 0, 2) = 0.0F;
  ReLU relu;
  (void)relu.forward(input);
  Tensor grad(1, 1, 3, 1.0F);
  const auto grad_input = relu.backward(grad);
  EXPECT_EQ(grad_input(0, 0, 0), 0.0F);
  EXPECT_EQ(grad_input(0, 0, 1), 1.0F);
  EXPECT_EQ(grad_input(0, 0, 2), 0.0F);  // relu'(0) = 0
}

TEST(ReLUTest, BackwardShapeChecked) {
  ReLU relu;
  Tensor input(1, 2, 2);
  (void)relu.forward(input);
  const Tensor wrong(1, 3, 2);
  EXPECT_THROW(relu.backward(wrong), std::invalid_argument);
}

TEST(ArgmaxLabels, PicksMaxChannelPerPixel) {
  Tensor logits(3, 1, 2);
  // Pixel 0: channel 2 wins; pixel 1: channel 0 wins.
  logits(0, 0, 0) = 0.1F;
  logits(1, 0, 0) = 0.5F;
  logits(2, 0, 0) = 2.0F;
  logits(0, 0, 1) = 3.0F;
  logits(1, 0, 1) = 0.0F;
  logits(2, 0, 1) = -1.0F;
  const auto labels = argmax_labels(logits);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 2u);
  EXPECT_EQ(labels[1], 0u);
}

TEST(ArgmaxLabels, TieGoesToLowerChannel) {
  Tensor logits(2, 1, 1);
  logits(0, 0, 0) = 1.0F;
  logits(1, 0, 0) = 1.0F;
  EXPECT_EQ(argmax_labels(logits)[0], 0u);
}

TEST(DistinctLabels, CountsUnique) {
  EXPECT_EQ(distinct_labels({0, 1, 1, 2, 0}), 3u);
  EXPECT_EQ(distinct_labels({5, 5, 5}), 1u);
  EXPECT_EQ(distinct_labels({}), 0u);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogQ) {
  const Tensor logits(4, 2, 2, 0.0F);
  const std::vector<std::uint32_t> targets(4, 0);
  const auto result = softmax_cross_entropy(logits, targets);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionLowLoss) {
  Tensor logits(2, 1, 1);
  logits(0, 0, 0) = 10.0F;
  logits(1, 0, 0) = -10.0F;
  const auto result = softmax_cross_entropy(logits, {0});
  EXPECT_LT(result.loss, 1e-6);
  const auto wrong = softmax_cross_entropy(logits, {1});
  EXPECT_GT(wrong.loss, 10.0);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerPixel) {
  Rng rng(1);
  const auto logits = random_tensor(3, 2, 2, rng);
  const auto targets = argmax_labels(logits);
  const auto result = softmax_cross_entropy(logits, targets);
  const std::size_t hw = logits.plane();
  for (std::size_t i = 0; i < hw; ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += result.grad.data()[c * hw + i];
    }
    EXPECT_NEAR(sum, 0.0, 1e-6) << "pixel " << i;
  }
}

TEST(SoftmaxCrossEntropy, NumericalGradientCheck) {
  Rng rng(2);
  auto logits = random_tensor(3, 2, 3, rng);
  const std::vector<std::uint32_t> targets{0, 2, 1, 1, 0, 2};
  const auto analytic = softmax_cross_entropy(logits, targets);
  const double h = 1e-3;
  for (const std::size_t i : {0u, 4u, 9u, 17u}) {
    const float saved = logits.values()[i];
    logits.values()[i] = saved + static_cast<float>(h);
    const double plus = softmax_cross_entropy(logits, targets).loss;
    logits.values()[i] = saved - static_cast<float>(h);
    const double minus = softmax_cross_entropy(logits, targets).loss;
    logits.values()[i] = saved;
    EXPECT_NEAR(analytic.grad.values()[i], (plus - minus) / (2.0 * h),
                1e-3)
        << "logit " << i;
  }
}

TEST(SoftmaxCrossEntropy, ValidatesTargets) {
  const Tensor logits(2, 1, 2, 0.0F);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}),
               std::invalid_argument);  // wrong count
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 5}),
               std::invalid_argument);  // out of range
}

TEST(ContinuityLoss, FlatResponseHasZeroLoss) {
  const Tensor response(2, 3, 3, 1.5F);
  const auto result = continuity_loss(response);
  EXPECT_NEAR(result.loss, 0.0, 1e-9);
  for (const auto v : result.grad.values()) {
    EXPECT_EQ(v, 0.0F);
  }
}

TEST(ContinuityLoss, StepEdgeCosts) {
  // A vertical step: |dx| = 1 along one column transition per row.
  Tensor response(1, 2, 4, 0.0F);
  for (std::size_t y = 0; y < 2; ++y) {
    response(0, y, 2) = 1.0F;
    response(0, y, 3) = 1.0F;
  }
  const auto result = continuity_loss(response);
  // Horizontal diffs: per row, |0,0->0|=0, |0->1|=1, |1->1|=0 -> 2 of 6
  // nonzero; vertical diffs all zero.
  EXPECT_NEAR(result.loss, 2.0 / 6.0, 1e-9);
}

TEST(ContinuityLoss, NumericalGradientCheck) {
  Rng rng(3);
  auto response = random_tensor(2, 3, 3, rng);
  const auto analytic = continuity_loss(response);
  const double h = 1e-4;
  for (const std::size_t i : {0u, 5u, 10u, 17u}) {
    const float saved = response.values()[i];
    response.values()[i] = saved + static_cast<float>(h);
    const double plus = continuity_loss(response).loss;
    response.values()[i] = saved - static_cast<float>(h);
    const double minus = continuity_loss(response).loss;
    response.values()[i] = saved;
    // L1 subgradient: valid where no diff crosses zero in [x-h, x+h].
    EXPECT_NEAR(analytic.grad.values()[i], (plus - minus) / (2.0 * h),
                0.35)
        << "element " << i;
  }
}

TEST(ContinuityLoss, RequiresMinimumSize) {
  const Tensor tiny(1, 1, 5);
  EXPECT_THROW(continuity_loss(tiny), std::invalid_argument);
}

}  // namespace
