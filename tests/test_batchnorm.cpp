// Tests for BatchNorm2d: normalisation semantics and gradient checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/batchnorm.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::nn;
using seghdc::util::Rng;

Tensor random_tensor(std::size_t c, std::size_t h, std::size_t w,
                     Rng& rng) {
  Tensor t(c, h, w);
  for (auto& v : t.values()) {
    v = static_cast<float>(rng.next_double_in(-2.0, 2.0));
  }
  return t;
}

TEST(BatchNorm, OutputHasZeroMeanUnitVariancePerChannel) {
  Rng rng(1);
  BatchNorm2d bn(3);
  const auto input = random_tensor(3, 8, 8, rng);
  const auto output = bn.forward(input);
  const std::size_t hw = input.plane();
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < hw; ++i) {
      mean += output.data()[c * hw + i];
    }
    mean /= static_cast<double>(hw);
    for (std::size_t i = 0; i < hw; ++i) {
      const double d = output.data()[c * hw + i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(hw);
    EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << c;
    EXPECT_NEAR(var, 1.0, 1e-2) << "channel " << c;
  }
}

TEST(BatchNorm, GammaBetaAffectOutput) {
  Rng rng(2);
  BatchNorm2d bn(1);
  bn.gamma()[0] = 3.0F;
  bn.beta()[0] = -1.0F;
  const auto input = random_tensor(1, 6, 6, rng);
  const auto output = bn.forward(input);
  const std::size_t hw = input.plane();
  double mean = 0.0;
  for (std::size_t i = 0; i < hw; ++i) {
    mean += output.data()[i];
  }
  mean /= static_cast<double>(hw);
  EXPECT_NEAR(mean, -1.0, 1e-4);  // beta shifts the mean
  double var = 0.0;
  for (std::size_t i = 0; i < hw; ++i) {
    var += (output.data()[i] - mean) * (output.data()[i] - mean);
  }
  var /= static_cast<double>(hw);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);  // gamma scales the stddev
}

TEST(BatchNorm, ConstantChannelMapsToBeta) {
  BatchNorm2d bn(1);
  bn.beta()[0] = 0.5F;
  const Tensor input(1, 4, 4, 7.0F);
  const auto output = bn.forward(input);
  for (const auto v : output.values()) {
    EXPECT_NEAR(v, 0.5F, 1e-3);  // zero variance -> xhat ~ 0 -> beta
  }
}

TEST(BatchNorm, GradientCheck) {
  Rng rng(3);
  BatchNorm2d bn(2);
  bn.gamma()[0] = 1.3F;
  bn.gamma()[1] = 0.7F;
  bn.beta()[0] = 0.2F;
  auto input = random_tensor(2, 4, 4, rng);
  const auto probe = random_tensor(2, 4, 4, rng);

  const auto loss_of = [&](const Tensor& x) {
    BatchNorm2d fresh(2);
    fresh.gamma()[0] = 1.3F;
    fresh.gamma()[1] = 0.7F;
    fresh.beta()[0] = 0.2F;
    const auto out = fresh.forward(x);
    double loss = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      loss += static_cast<double>(out.values()[i]) * probe.values()[i];
    }
    return loss;
  };

  (void)bn.forward(input);
  bn.zero_grad();
  const auto grad_input = bn.backward(probe);

  const double h = 1e-3;
  for (const std::size_t xi : {0u, 3u, 16u, 31u}) {
    const float saved = input.values()[xi];
    input.values()[xi] = saved + static_cast<float>(h);
    const double plus = loss_of(input);
    input.values()[xi] = saved - static_cast<float>(h);
    const double minus = loss_of(input);
    input.values()[xi] = saved;
    EXPECT_NEAR(grad_input.values()[xi], (plus - minus) / (2.0 * h), 5e-2)
        << "input " << xi;
  }
}

TEST(BatchNorm, GammaBetaGradients) {
  Rng rng(4);
  BatchNorm2d bn(1);
  const auto input = random_tensor(1, 5, 5, rng);
  const auto probe = random_tensor(1, 5, 5, rng);
  const auto normalized = bn.forward(input);
  bn.zero_grad();
  (void)bn.backward(probe);

  // d(loss)/d(gamma) = sum(probe * xhat); with fresh gamma=1, beta=0 the
  // forward output IS xhat.
  double expected_gamma_grad = 0.0;
  double expected_beta_grad = 0.0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    expected_gamma_grad +=
        static_cast<double>(probe.values()[i]) * normalized.values()[i];
    expected_beta_grad += probe.values()[i];
  }
  EXPECT_NEAR(bn.gamma_grad()[0], expected_gamma_grad, 1e-2);
  EXPECT_NEAR(bn.beta_grad()[0], expected_beta_grad, 1e-2);
}

TEST(BatchNorm, ValidatesArguments) {
  EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
  EXPECT_THROW(BatchNorm2d(4, 0.0), std::invalid_argument);
  BatchNorm2d bn(2);
  const Tensor wrong(3, 4, 4);
  EXPECT_THROW(bn.forward(wrong), std::invalid_argument);
  const Tensor grad(2, 4, 4);
  EXPECT_THROW(bn.backward(grad), std::invalid_argument);  // no forward
}

}  // namespace
