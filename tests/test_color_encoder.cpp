// Property tests for the color encoder (paper Section III-②, Fig. 4):
// per-channel Manhattan ladders, concatenation additivity, gamma
// weighting, and the RColor random-codebook ablation.
#include <gtest/gtest.h>

#include <array>

#include "src/core/color_encoder.hpp"
#include "src/hdc/distances.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

ColorEncoder make(std::size_t dim, std::size_t channels,
                  ColorEncoding encoding = ColorEncoding::kLevelLadder,
                  std::size_t gamma = 1, std::uint64_t seed = 21) {
  util::Rng rng(seed);
  return ColorEncoder(ColorEncoderConfig{.dim = dim,
                                         .channels = channels,
                                         .encoding = encoding,
                                         .gamma = gamma},
                      rng);
}

TEST(ColorEncoder, SingleChannelLadderUnits) {
  // d = 2048: uc = 8, so hamming(v_a, v_b) = 8 * |a-b| exactly.
  const auto encoder = make(2048, 1);
  const std::size_t uc = 2048 / 256;
  EXPECT_EQ(hdc::hamming_distance(encoder.channel_hv(0, 0),
                                  encoder.channel_hv(0, 1)),
            uc);
  EXPECT_EQ(hdc::hamming_distance(encoder.channel_hv(0, 10),
                                  encoder.channel_hv(0, 110)),
            100 * uc);
  EXPECT_EQ(hdc::hamming_distance(encoder.channel_hv(0, 0),
                                  encoder.channel_hv(0, 255)),
            255 * uc);
}

TEST(ColorEncoder, DistanceProportionalToValueDifference) {
  const auto encoder = make(2048, 1);
  // Strict monotonicity in |a-b| for a fixed anchor.
  std::size_t previous = 0;
  for (const std::uint8_t value : {1, 4, 16, 64, 255}) {
    const auto d = hdc::hamming_distance(encoder.channel_hv(0, 0),
                                         encoder.channel_hv(0, value));
    EXPECT_GT(d, previous);
    previous = d;
  }
}

TEST(ColorEncoder, ChannelDimsSumToTotal) {
  for (const std::size_t dim : {800u, 2000u, 10000u, 999u}) {
    const auto encoder = make(dim, 3);
    EXPECT_EQ(encoder.channel_dim(0) + encoder.channel_dim(1) +
                  encoder.channel_dim(2),
              dim)
        << "dim " << dim;
    EXPECT_EQ(encoder.encode(std::array<std::uint8_t, 3>{1, 2, 3}).dim(),
              dim);
  }
}

TEST(ColorEncoder, ThreeChannelDistanceIsSumOfChannelDistances) {
  // The Fig. 4 property: concatenation preserves per-channel Manhattan
  // distances additively (RGB L1 distance).
  const auto encoder = make(3072, 3);  // 1024/channel, uc = 4
  const std::array<std::uint8_t, 3> a{10, 200, 47};
  const std::array<std::uint8_t, 3> b{60, 180, 47};
  std::size_t expected = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    expected += hdc::hamming_distance(encoder.channel_hv(c, a[c]),
                                      encoder.channel_hv(c, b[c]));
  }
  EXPECT_EQ(hdc::hamming_distance(encoder.encode(a), encoder.encode(b)),
            expected);
  EXPECT_GT(expected, 0u);
}

TEST(ColorEncoder, PaperExampleLayout) {
  // Paper Fig. 4: for color [255, i, 0] the first d/3 bits come from the
  // R ladder at 255, the middle from G at i, the rest from B at 0.
  const auto encoder = make(768, 3);
  const std::array<std::uint8_t, 3> color{255, 100, 0};
  const auto hv = encoder.encode(color);
  const auto r = encoder.channel_hv(0, 255);
  const auto g = encoder.channel_hv(1, 100);
  const auto b = encoder.channel_hv(2, 0);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(hv.get(i), r.get(i));
    EXPECT_EQ(hv.get(256 + i), g.get(i));
    EXPECT_EQ(hv.get(512 + i), b.get(i));
  }
}

TEST(ColorEncoder, SmallDimensionStillMonotone) {
  // d = 800 RGB -> 266 dims/channel, uc floors to 0; the fractional
  // ladder must still order distances by |a-b|.
  const auto encoder = make(800, 3);
  EXPECT_GT(encoder.channel_span(0), 0u);
  const auto d_small = hdc::hamming_distance(encoder.channel_hv(0, 0),
                                             encoder.channel_hv(0, 8));
  const auto d_big = hdc::hamming_distance(encoder.channel_hv(0, 0),
                                           encoder.channel_hv(0, 200));
  EXPECT_LT(d_small, d_big);
  EXPECT_GT(d_big, 100u);
}

TEST(ColorEncoder, GammaScalesColorDistance) {
  // gamma widens flip runs: distances scale ~linearly in gamma until the
  // channel saturates (Fig. 5 weighting).
  const auto g1 = make(4096, 1, ColorEncoding::kLevelLadder, 1);
  const auto g2 = make(4096, 1, ColorEncoding::kLevelLadder, 2);
  const auto d1 = hdc::hamming_distance(g1.channel_hv(0, 0),
                                        g1.channel_hv(0, 50));
  const auto d2 = hdc::hamming_distance(g2.channel_hv(0, 0),
                                        g2.channel_hv(0, 50));
  EXPECT_NEAR(static_cast<double>(d2) / static_cast<double>(d1), 2.0, 0.1);
}

TEST(ColorEncoder, GammaClampsAtChannelDimension) {
  // Extreme gamma cannot exceed the channel's capacity.
  const auto encoder = make(512, 1, ColorEncoding::kLevelLadder, 1000);
  EXPECT_LE(encoder.channel_span(0), 512u);
  EXPECT_EQ(hdc::hamming_distance(encoder.channel_hv(0, 0),
                                  encoder.channel_hv(0, 255)),
            encoder.channel_span(0));
}

TEST(ColorEncoder, RandomCodebookHasNoStructure) {
  // RColor ablation: neighbouring values are as far apart as distant
  // ones (~0.5 normalized).
  const auto encoder = make(8192, 1, ColorEncoding::kRandom);
  const auto near = hdc::normalized_hamming(encoder.channel_hv(0, 100),
                                            encoder.channel_hv(0, 101));
  const auto far = hdc::normalized_hamming(encoder.channel_hv(0, 0),
                                           encoder.channel_hv(0, 255));
  EXPECT_NEAR(near, 0.5, 0.05);
  EXPECT_NEAR(far, 0.5, 0.05);
}

TEST(ColorEncoder, DeterministicGivenSeed) {
  const auto a = make(1024, 3, ColorEncoding::kLevelLadder, 1, 7);
  const auto b = make(1024, 3, ColorEncoding::kLevelLadder, 1, 7);
  const std::array<std::uint8_t, 3> color{9, 99, 199};
  EXPECT_EQ(a.encode(color), b.encode(color));
}

TEST(ColorEncoder, ValidatesConfig) {
  util::Rng rng(1);
  EXPECT_THROW(
      ColorEncoder(ColorEncoderConfig{.dim = 1024, .channels = 2}, rng),
      std::invalid_argument);
  EXPECT_THROW(
      ColorEncoder(ColorEncoderConfig{.dim = 4, .channels = 3}, rng),
      std::invalid_argument);
  EXPECT_THROW(
      ColorEncoder(ColorEncoderConfig{.dim = 1024, .channels = 1,
                                      .gamma = 0},
                   rng),
      std::invalid_argument);
}

TEST(ColorEncoder, EncodeValidatesValueCount) {
  const auto encoder = make(1024, 3);
  const std::array<std::uint8_t, 2> wrong{1, 2};
  EXPECT_THROW(encoder.encode(wrong), std::invalid_argument);
}

}  // namespace
