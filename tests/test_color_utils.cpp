// Tests for color conversions and label-map rendering.
#include <gtest/gtest.h>

#include "src/imaging/color.hpp"

namespace {

using namespace seghdc::img;

TEST(Luma, KnownValues) {
  EXPECT_EQ(luma(0, 0, 0), 0);
  EXPECT_EQ(luma(255, 255, 255), 255);
  // Rec. 601: 0.299 R + 0.587 G + 0.114 B.
  EXPECT_EQ(luma(255, 0, 0), 76);
  EXPECT_EQ(luma(0, 255, 0), 150);
  EXPECT_EQ(luma(0, 0, 255), 29);
}

TEST(Luma, GreenDominates) {
  EXPECT_GT(luma(0, 200, 0), luma(200, 0, 0));
  EXPECT_GT(luma(200, 0, 0), luma(0, 0, 200));
}

TEST(ToGray, ConvertsRgbViaLuma) {
  ImageU8 rgb(2, 1, 3);
  rgb(0, 0, 0) = 255;  // red pixel
  rgb(1, 0, 1) = 255;  // green pixel
  const auto gray = to_gray(rgb);
  ASSERT_EQ(gray.channels(), 1u);
  EXPECT_EQ(gray(0, 0), 76);
  EXPECT_EQ(gray(1, 0), 150);
}

TEST(ToGray, GrayPassesThrough) {
  const ImageU8 gray(3, 3, 1, 99);
  EXPECT_EQ(to_gray(gray), gray);
}

TEST(ToRgb, ReplicatesChannels) {
  ImageU8 gray(2, 1, 1);
  gray(0, 0) = 10;
  gray(1, 0) = 200;
  const auto rgb = to_rgb(gray);
  ASSERT_EQ(rgb.channels(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(rgb(0, 0, c), 10);
    EXPECT_EQ(rgb(1, 0, c), 200);
  }
}

TEST(ToRgb, RgbPassesThrough) {
  const ImageU8 rgb(2, 2, 3, 44);
  EXPECT_EQ(to_rgb(rgb), rgb);
}

TEST(PixelIntensity, MatchesChannelSemantics) {
  ImageU8 gray(1, 1, 1, 123);
  EXPECT_EQ(pixel_intensity(gray, 0, 0), 123);
  ImageU8 rgb(1, 1, 3);
  rgb(0, 0, 0) = 255;
  EXPECT_EQ(pixel_intensity(rgb, 0, 0), 76);
}

TEST(LabelColor, ConventionalFirstTwo) {
  EXPECT_EQ(label_color(0), (std::array<std::uint8_t, 3>{0, 0, 0}));
  EXPECT_EQ(label_color(1),
            (std::array<std::uint8_t, 3>{255, 255, 255}));
}

TEST(LabelColor, DistinctForSmallLabels) {
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = a + 1; b < 8; ++b) {
      EXPECT_NE(label_color(a), label_color(b)) << a << " vs " << b;
    }
  }
}

TEST(LabelColor, DeterministicForLargeLabels) {
  EXPECT_EQ(label_color(1000), label_color(1000));
}

TEST(ColorizeLabels, RendersPalette) {
  seghdc::img::LabelMap labels(2, 1, 1);
  labels(0, 0) = 0;
  labels(1, 0) = 1;
  const auto rgb = colorize_labels(labels);
  EXPECT_EQ(rgb(0, 0, 0), 0);
  EXPECT_EQ(rgb(1, 0, 0), 255);
}

TEST(LabelsToMask, SelectsForegroundBits) {
  seghdc::img::LabelMap labels(4, 1, 1);
  labels(0, 0) = 0;
  labels(1, 0) = 1;
  labels(2, 0) = 2;
  labels(3, 0) = 3;
  // Foreground = labels 1 and 3 (mask 0b1010).
  const auto mask = labels_to_mask(labels, 0b1010u);
  EXPECT_EQ(mask(0, 0), 0);
  EXPECT_EQ(mask(1, 0), 255);
  EXPECT_EQ(mask(2, 0), 0);
  EXPECT_EQ(mask(3, 0), 255);
}

TEST(LabelsToMask, EmptyAndFullSelections) {
  seghdc::img::LabelMap labels(2, 1, 1);
  labels(1, 0) = 1;
  const auto none = labels_to_mask(labels, 0);
  EXPECT_EQ(none(0, 0), 0);
  EXPECT_EQ(none(1, 0), 0);
  const auto all = labels_to_mask(labels, 0b11u);
  EXPECT_EQ(all(0, 0), 255);
  EXPECT_EQ(all(1, 0), 255);
}

}  // namespace
