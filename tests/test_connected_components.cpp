// Tests for union-find connected-component labeling.
#include <gtest/gtest.h>

#include "src/imaging/connected_components.hpp"

namespace {

using namespace seghdc::img;

ImageU8 mask_from(const std::vector<std::string>& rows) {
  ImageU8 mask(rows[0].size(), rows.size(), 1, 0);
  for (std::size_t y = 0; y < rows.size(); ++y) {
    for (std::size_t x = 0; x < rows[y].size(); ++x) {
      mask.at(x, y) = rows[y][x] == '#' ? 255 : 0;
    }
  }
  return mask;
}

TEST(ConnectedComponents, EmptyMaskHasNoComponents) {
  const ImageU8 mask(5, 5, 1, 0);
  const auto result = connected_components(mask);
  EXPECT_TRUE(result.components.empty());
  for (const auto v : result.labels.pixels()) {
    EXPECT_EQ(v, 0u);
  }
}

TEST(ConnectedComponents, SingleBlob) {
  const auto mask = mask_from({
      ".....",
      ".###.",
      ".###.",
      ".....",
  });
  const auto result = connected_components(mask);
  ASSERT_EQ(result.components.size(), 1u);
  EXPECT_EQ(result.components[0].area, 6u);
  EXPECT_EQ(result.components[0].min_x, 1u);
  EXPECT_EQ(result.components[0].max_x, 3u);
  EXPECT_EQ(result.components[0].min_y, 1u);
  EXPECT_EQ(result.components[0].max_y, 2u);
  EXPECT_NEAR(result.components[0].centroid_x, 2.0, 1e-9);
  EXPECT_NEAR(result.components[0].centroid_y, 1.5, 1e-9);
}

TEST(ConnectedComponents, TwoSeparateBlobs) {
  const auto mask = mask_from({
      "##..#",
      "##..#",
      ".....",
  });
  const auto result = connected_components(mask);
  ASSERT_EQ(result.components.size(), 2u);
  // Raster order: the left blob is labelled 1.
  EXPECT_EQ(result.labels.at(0, 0), 1u);
  EXPECT_EQ(result.labels.at(4, 0), 2u);
  EXPECT_EQ(result.components[0].area, 4u);
  EXPECT_EQ(result.components[1].area, 2u);
}

TEST(ConnectedComponents, DiagonalJoinedOnlyUnderEightConnectivity) {
  const auto mask = mask_from({
      "#.",
      ".#",
  });
  const auto eight = connected_components(mask, Connectivity::kEight);
  EXPECT_EQ(eight.components.size(), 1u);
  const auto four = connected_components(mask, Connectivity::kFour);
  EXPECT_EQ(four.components.size(), 2u);
}

TEST(ConnectedComponents, AntiDiagonalJoinedUnderEight) {
  const auto mask = mask_from({
      ".#",
      "#.",
  });
  EXPECT_EQ(connected_components(mask, Connectivity::kEight)
                .components.size(), 1u);
  EXPECT_EQ(connected_components(mask, Connectivity::kFour)
                .components.size(), 2u);
}

TEST(ConnectedComponents, UShapeIsOneComponent) {
  const auto mask = mask_from({
      "#.#",
      "#.#",
      "###",
  });
  const auto result = connected_components(mask);
  ASSERT_EQ(result.components.size(), 1u);
  EXPECT_EQ(result.components[0].area, 7u);
}

TEST(ConnectedComponents, LabelsAreDense) {
  const auto mask = mask_from({
      "#.#.#",
      ".....",
      "#.#.#",
  });
  const auto result = connected_components(mask, Connectivity::kFour);
  EXPECT_EQ(result.components.size(), 6u);
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    EXPECT_EQ(result.components[i].label, i + 1);
    EXPECT_EQ(result.components[i].area, 1u);
  }
}

TEST(ConnectedComponents, FullMaskSingleComponent) {
  const ImageU8 mask(7, 4, 1, 255);
  const auto result = connected_components(mask);
  ASSERT_EQ(result.components.size(), 1u);
  EXPECT_EQ(result.components[0].area, 28u);
}

TEST(ConnectedComponents, MultiChannelThrows) {
  const ImageU8 rgb(3, 3, 3);
  EXPECT_THROW(connected_components(rgb), std::invalid_argument);
}

}  // namespace
