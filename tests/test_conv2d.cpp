// Tests for the conv layer: exact forward semantics on hand-checkable
// kernels plus full numerical gradient checks — the correctness bedrock
// of the CNN baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/conv2d.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::nn;
using seghdc::util::Rng;

Tensor random_tensor(std::size_t c, std::size_t h, std::size_t w,
                     Rng& rng) {
  Tensor t(c, h, w);
  for (auto& v : t.values()) {
    v = static_cast<float>(rng.next_double_in(-1.0, 1.0));
  }
  return t;
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, rng);
  // Kernel = delta at the center.
  for (auto& w : conv.weights()) {
    w = 0.0F;
  }
  conv.weights()[4] = 1.0F;  // center of the 3x3
  conv.bias()[0] = 0.0F;

  const auto input = random_tensor(1, 5, 6, rng);
  const auto output = conv.forward(input);
  ASSERT_TRUE(output.same_shape(input));
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(output.values()[i], input.values()[i], 1e-6);
  }
}

TEST(Conv2d, ShiftKernelShiftsWithZeroPadding) {
  Rng rng(2);
  Conv2d conv(1, 1, 3, rng);
  for (auto& w : conv.weights()) {
    w = 0.0F;
  }
  // Weight at (ky=0, kx=1) means output(y,x) = input(y-1, x).
  conv.weights()[1] = 1.0F;
  conv.bias()[0] = 0.0F;

  Tensor input(1, 3, 3, 0.0F);
  input(0, 0, 1) = 5.0F;
  const auto output = conv.forward(input);
  EXPECT_NEAR(output(0, 1, 1), 5.0F, 1e-6);
  // Top row sees zero padding.
  EXPECT_NEAR(output(0, 0, 0), 0.0F, 1e-6);
}

TEST(Conv2d, BiasIsAddedPerChannel) {
  Rng rng(3);
  Conv2d conv(1, 2, 1, rng);
  for (auto& w : conv.weights()) {
    w = 0.0F;
  }
  conv.bias()[0] = 1.5F;
  conv.bias()[1] = -2.0F;
  const Tensor input(1, 2, 2, 0.0F);
  const auto output = conv.forward(input);
  EXPECT_NEAR(output(0, 0, 0), 1.5F, 1e-6);
  EXPECT_NEAR(output(1, 1, 1), -2.0F, 1e-6);
}

TEST(Conv2d, OneByOneConvIsChannelMix) {
  Rng rng(4);
  Conv2d conv(2, 1, 1, rng);
  conv.weights()[0] = 2.0F;
  conv.weights()[1] = 3.0F;
  conv.bias()[0] = 0.0F;
  Tensor input(2, 1, 2, 0.0F);
  input(0, 0, 0) = 1.0F;
  input(1, 0, 0) = 10.0F;
  input(0, 0, 1) = 2.0F;
  input(1, 0, 1) = 20.0F;
  const auto output = conv.forward(input);
  EXPECT_NEAR(output(0, 0, 0), 32.0F, 1e-5);
  EXPECT_NEAR(output(0, 0, 1), 64.0F, 1e-5);
}

/// Numerical gradient check: perturb each parameter/input element and
/// compare (loss(p+h) - loss(p-h)) / 2h with the analytic gradient,
/// where loss = sum(output * probe) for a fixed random probe.
class ConvGradientCheck : public ::testing::Test {
 protected:
  static double loss_of(Conv2d& conv, const Tensor& input,
                        const Tensor& probe) {
    const auto output = conv.forward(input);
    double loss = 0.0;
    for (std::size_t i = 0; i < output.size(); ++i) {
      loss += static_cast<double>(output.values()[i]) * probe.values()[i];
    }
    return loss;
  }
};

TEST_F(ConvGradientCheck, WeightsAndBias) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, rng);
  const auto input = random_tensor(2, 4, 5, rng);
  const auto probe = random_tensor(3, 4, 5, rng);

  // Analytic gradients.
  (void)conv.forward(input);
  conv.zero_grad();
  (void)conv.backward(probe);

  const double h = 1e-3;
  for (const std::size_t wi : {0u, 7u, 23u, 53u}) {
    const float saved = conv.weights()[wi];
    conv.weights()[wi] = saved + static_cast<float>(h);
    const double plus = loss_of(conv, input, probe);
    conv.weights()[wi] = saved - static_cast<float>(h);
    const double minus = loss_of(conv, input, probe);
    conv.weights()[wi] = saved;
    const double numerical = (plus - minus) / (2.0 * h);
    EXPECT_NEAR(conv.weight_grad()[wi], numerical, 5e-2)
        << "weight " << wi;
  }
  for (std::size_t bi = 0; bi < 3; ++bi) {
    const float saved = conv.bias()[bi];
    conv.bias()[bi] = saved + static_cast<float>(h);
    const double plus = loss_of(conv, input, probe);
    conv.bias()[bi] = saved - static_cast<float>(h);
    const double minus = loss_of(conv, input, probe);
    conv.bias()[bi] = saved;
    const double numerical = (plus - minus) / (2.0 * h);
    EXPECT_NEAR(conv.bias_grad()[bi], numerical, 5e-2) << "bias " << bi;
  }
}

TEST_F(ConvGradientCheck, InputGradient) {
  Rng rng(6);
  Conv2d conv(2, 2, 3, rng);
  auto input = random_tensor(2, 4, 4, rng);
  const auto probe = random_tensor(2, 4, 4, rng);

  (void)conv.forward(input);
  conv.zero_grad();
  const auto grad_input = conv.backward(probe);

  const double h = 1e-3;
  for (const std::size_t xi : {0u, 5u, 17u, 31u}) {
    const float saved = input.values()[xi];
    input.values()[xi] = saved + static_cast<float>(h);
    const double plus = loss_of(conv, input, probe);
    input.values()[xi] = saved - static_cast<float>(h);
    const double minus = loss_of(conv, input, probe);
    input.values()[xi] = saved;
    const double numerical = (plus - minus) / (2.0 * h);
    EXPECT_NEAR(grad_input.values()[xi], numerical, 5e-2)
        << "input " << xi;
  }
}

TEST(Conv2d, BackwardAccumulatesAcrossCalls) {
  Rng rng(7);
  Conv2d conv(1, 1, 3, rng);
  const auto input = random_tensor(1, 3, 3, rng);
  const auto probe = random_tensor(1, 3, 3, rng);
  (void)conv.forward(input);
  conv.zero_grad();
  (void)conv.backward(probe);
  const float once = conv.weight_grad()[0];
  (void)conv.backward(probe);
  EXPECT_NEAR(conv.weight_grad()[0], 2.0F * once, 1e-5);
  conv.zero_grad();
  EXPECT_EQ(conv.weight_grad()[0], 0.0F);
}

TEST(Conv2d, ValidatesArguments) {
  Rng rng(8);
  EXPECT_THROW(Conv2d(0, 1, 3, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 0, 3, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 2, rng), std::invalid_argument);

  Conv2d conv(2, 1, 3, rng);
  const Tensor wrong(3, 4, 4);
  EXPECT_THROW(conv.forward(wrong), std::invalid_argument);
  const Tensor grad(1, 4, 4);
  EXPECT_THROW(conv.backward(grad), std::invalid_argument);  // no forward
}

TEST(Conv2d, CostFormulas) {
  EXPECT_EQ(Conv2d::forward_macs(3, 100, 3, 256, 320),
            256ULL * 320 * 3 * 100 * 9);
  EXPECT_EQ(Conv2d::im2col_bytes(100, 3, 520, 696),
            520ULL * 696 * 100 * 9 * 4);
}

}  // namespace
