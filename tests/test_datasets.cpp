// Tests for the three synthetic dataset generators: determinism,
// profile consistency, ground-truth/image agreement, and the statistical
// properties each suite is supposed to exercise.
#include <gtest/gtest.h>

#include "src/datasets/bbbc005.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/datasets/monuseg.hpp"
#include "src/imaging/color.hpp"
#include "src/imaging/connected_components.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::data;

// Small geometries keep the suite fast; the generators scale freely.
Bbbc005Config small_bbbc() {
  Bbbc005Config config;
  config.width = 174;
  config.height = 130;
  config.min_cells = 4;
  config.max_cells = 10;
  config.min_radius = 7.0;
  config.max_radius = 12.0;
  return config;
}

Dsb2018Config small_dsb() {
  Dsb2018Config config;
  config.width = 160;
  config.height = 128;
  config.min_nuclei = 4;
  config.max_nuclei = 10;
  return config;
}

MonusegConfig small_monuseg() {
  MonusegConfig config;
  config.width = 128;
  config.height = 128;
  config.min_nuclei = 20;
  config.max_nuclei = 40;
  return config;
}

template <typename Generator>
void expect_deterministic(const Generator& generator) {
  const auto a = generator.generate(3);
  const auto b = generator.generate(3);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.mask, b.mask);
  EXPECT_EQ(a.instance_count, b.instance_count);
  const auto other = generator.generate(4);
  EXPECT_NE(a.image, other.image);
}

TEST(Bbbc005, ProfileMatchesPaperSettings) {
  const Bbbc005Generator generator;
  EXPECT_EQ(generator.profile().name, "BBBC005");
  EXPECT_EQ(generator.profile().width, 696u);
  EXPECT_EQ(generator.profile().height, 520u);
  EXPECT_EQ(generator.profile().channels, 1u);
  EXPECT_EQ(generator.profile().suggested_clusters, 2u);
  EXPECT_EQ(generator.profile().suggested_beta, 21u);
}

TEST(Bbbc005, Deterministic) {
  expect_deterministic(Bbbc005Generator(small_bbbc()));
}

TEST(Bbbc005, ForegroundBrighterThanBackground) {
  const Bbbc005Generator generator(small_bbbc());
  const auto sample = generator.generate(0);
  double fg_sum = 0.0, bg_sum = 0.0;
  std::size_t fg_n = 0, bg_n = 0;
  for (std::size_t i = 0; i < sample.mask.size(); ++i) {
    if (sample.mask.pixels()[i] != 0) {
      fg_sum += sample.image.pixels()[i];
      ++fg_n;
    } else {
      bg_sum += sample.image.pixels()[i];
      ++bg_n;
    }
  }
  ASSERT_GT(fg_n, 0u);
  ASSERT_GT(bg_n, 0u);
  EXPECT_GT(fg_sum / fg_n, bg_sum / bg_n + 50.0);
}

TEST(Bbbc005, InstanceCountMatchesComponents) {
  const Bbbc005Generator generator(small_bbbc());
  const auto sample = generator.generate(1);
  const auto components = img::connected_components(sample.mask);
  // Cells are placed non-overlapping, so components == instances.
  EXPECT_EQ(components.components.size(), sample.instance_count);
  EXPECT_GE(sample.instance_count, small_bbbc().min_cells);
  EXPECT_LE(sample.instance_count, small_bbbc().max_cells);
}

TEST(Bbbc005, BlurSweepRepeatsWithPeriod) {
  // Samples i and i + blur_steps share the blur level but nothing else.
  Bbbc005Config config = small_bbbc();
  config.blur_steps = 3;
  const Bbbc005Generator generator(config);
  EXPECT_NE(generator.generate(0).image, generator.generate(3).image);
}

TEST(Bbbc005, ValidatesConfig) {
  Bbbc005Config config;
  config.min_cells = 10;
  config.max_cells = 5;
  EXPECT_THROW(Bbbc005Generator{config}, std::invalid_argument);
  Bbbc005Config tiny;
  tiny.width = 8;
  EXPECT_THROW(Bbbc005Generator{tiny}, std::invalid_argument);
}

TEST(Dsb2018, ProfileMatchesPaperSettings) {
  const Dsb2018Generator generator;
  EXPECT_EQ(generator.profile().name, "DSB2018");
  EXPECT_EQ(generator.profile().width, 320u);
  EXPECT_EQ(generator.profile().height, 256u);
  EXPECT_EQ(generator.profile().channels, 3u);
  EXPECT_EQ(generator.profile().suggested_clusters, 2u);
  EXPECT_EQ(generator.profile().suggested_beta, 26u);
}

TEST(Dsb2018, Deterministic) {
  expect_deterministic(Dsb2018Generator(small_dsb()));
}

TEST(Dsb2018, ProducesBothModalitiesAcrossSamples) {
  Dsb2018Config config = small_dsb();
  config.brightfield_fraction = 0.5;
  const Dsb2018Generator generator(config);
  std::size_t dark_background = 0;
  std::size_t light_background = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const auto sample = generator.generate(i);
    // Background level from the mask complement.
    double bg_sum = 0.0;
    std::size_t bg_n = 0;
    const auto gray = img::to_gray(sample.image);
    for (std::size_t p = 0; p < gray.size(); ++p) {
      if (sample.mask.pixels()[p] == 0) {
        bg_sum += gray.pixels()[p];
        ++bg_n;
      }
    }
    const double bg = bg_sum / static_cast<double>(bg_n);
    if (bg < 100.0) {
      ++dark_background;
    } else {
      ++light_background;
    }
  }
  EXPECT_GT(dark_background, 0u);
  EXPECT_GT(light_background, 0u);
}

TEST(Dsb2018, MaskAgreesWithInstances) {
  const Dsb2018Generator generator(small_dsb());
  const auto sample = generator.generate(2);
  EXPECT_GE(sample.instance_count, small_dsb().min_nuclei);
  std::size_t fg = 0;
  for (const auto v : sample.mask.pixels()) {
    fg += v != 0 ? 1 : 0;
  }
  EXPECT_GT(fg, 0u);
  EXPECT_LT(fg, sample.mask.pixel_count() / 2);
}

TEST(Dsb2018, ValidatesConfig) {
  Dsb2018Config config;
  config.brightfield_fraction = 1.5;
  EXPECT_THROW(Dsb2018Generator{config}, std::invalid_argument);
}

TEST(Monuseg, ProfileMatchesPaperSettings) {
  const MonusegGenerator generator;
  EXPECT_EQ(generator.profile().name, "MoNuSeg");
  EXPECT_EQ(generator.profile().channels, 3u);
  EXPECT_EQ(generator.profile().suggested_clusters, 3u);  // k=3 in paper
  EXPECT_EQ(generator.profile().suggested_beta, 26u);
}

TEST(Monuseg, Deterministic) {
  expect_deterministic(MonusegGenerator(small_monuseg()));
}

TEST(Monuseg, ManySmallNuclei) {
  const MonusegGenerator generator(small_monuseg());
  const auto sample = generator.generate(0);
  EXPECT_GE(sample.instance_count, 20u);
  const auto components = img::connected_components(sample.mask);
  // Nuclei may touch (components <= instances) but most stay separate.
  EXPECT_GE(components.components.size(), sample.instance_count / 2);
  // Median component is small (crowded tiny nuclei).
  std::size_t total_area = 0;
  for (const auto& c : components.components) {
    total_area += c.area;
  }
  const double mean_area = static_cast<double>(total_area) /
                           static_cast<double>(components.components.size());
  EXPECT_LT(mean_area, 400.0);
}

TEST(Monuseg, NucleiDarkerThanStroma) {
  const MonusegGenerator generator(small_monuseg());
  const auto sample = generator.generate(1);
  const auto gray = img::to_gray(sample.image);
  double fg_sum = 0.0, bg_sum = 0.0;
  std::size_t fg_n = 0, bg_n = 0;
  for (std::size_t i = 0; i < gray.size(); ++i) {
    if (sample.mask.pixels()[i] != 0) {
      fg_sum += gray.pixels()[i];
      ++fg_n;
    } else {
      bg_sum += gray.pixels()[i];
      ++bg_n;
    }
  }
  EXPECT_LT(fg_sum / fg_n, bg_sum / bg_n - 20.0);
}

TEST(Monuseg, HnePalette) {
  // H&E: red channel should dominate blue-green on stroma (pink).
  const MonusegGenerator generator(small_monuseg());
  const auto sample = generator.generate(2);
  double r = 0.0, g = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < sample.image.height(); ++y) {
    for (std::size_t x = 0; x < sample.image.width(); ++x) {
      if (sample.mask.at(x, y) == 0) {
        r += sample.image.at(x, y, 0);
        g += sample.image.at(x, y, 1);
        ++n;
      }
    }
  }
  EXPECT_GT(r / n, g / n + 10.0);
}

TEST(Datasets, IdsEncodeIndex) {
  EXPECT_EQ(Bbbc005Generator(small_bbbc()).generate(7).id, "bbbc005_7");
  EXPECT_EQ(Dsb2018Generator(small_dsb()).generate(7).id, "dsb2018_7");
  EXPECT_EQ(MonusegGenerator(small_monuseg()).generate(7).id, "monuseg_7");
}

}  // namespace
