// Tests for the three synthetic dataset generators: determinism,
// profile consistency, ground-truth/image agreement, and the statistical
// properties each suite is supposed to exercise — plus the on-disk
// loader round trip (generate -> export_dataset -> DiskDataset) that
// makes loader -> eval -> mIoU runnable hermetically in CI.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/datasets/bbbc005.hpp"
#include "src/datasets/disk.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/datasets/monuseg.hpp"
#include "src/eval/suite.hpp"
#include "src/imaging/color.hpp"
#include "src/imaging/connected_components.hpp"
#include "src/imaging/pnm.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::data;

// Small geometries keep the suite fast; the generators scale freely.
Bbbc005Config small_bbbc() {
  Bbbc005Config config;
  config.width = 174;
  config.height = 130;
  config.min_cells = 4;
  config.max_cells = 10;
  config.min_radius = 7.0;
  config.max_radius = 12.0;
  return config;
}

Dsb2018Config small_dsb() {
  Dsb2018Config config;
  config.width = 160;
  config.height = 128;
  config.min_nuclei = 4;
  config.max_nuclei = 10;
  return config;
}

MonusegConfig small_monuseg() {
  MonusegConfig config;
  config.width = 128;
  config.height = 128;
  config.min_nuclei = 20;
  config.max_nuclei = 40;
  return config;
}

template <typename Generator>
void expect_deterministic(const Generator& generator) {
  const auto a = generator.generate(3);
  const auto b = generator.generate(3);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.mask, b.mask);
  EXPECT_EQ(a.instance_count, b.instance_count);
  const auto other = generator.generate(4);
  EXPECT_NE(a.image, other.image);
}

TEST(Bbbc005, ProfileMatchesPaperSettings) {
  const Bbbc005Generator generator;
  EXPECT_EQ(generator.profile().name, "BBBC005");
  EXPECT_EQ(generator.profile().width, 696u);
  EXPECT_EQ(generator.profile().height, 520u);
  EXPECT_EQ(generator.profile().channels, 1u);
  EXPECT_EQ(generator.profile().suggested_clusters, 2u);
  EXPECT_EQ(generator.profile().suggested_beta, 21u);
}

TEST(Bbbc005, Deterministic) {
  expect_deterministic(Bbbc005Generator(small_bbbc()));
}

TEST(Bbbc005, ForegroundBrighterThanBackground) {
  const Bbbc005Generator generator(small_bbbc());
  const auto sample = generator.generate(0);
  double fg_sum = 0.0, bg_sum = 0.0;
  std::size_t fg_n = 0, bg_n = 0;
  for (std::size_t i = 0; i < sample.mask.size(); ++i) {
    if (sample.mask.pixels()[i] != 0) {
      fg_sum += sample.image.pixels()[i];
      ++fg_n;
    } else {
      bg_sum += sample.image.pixels()[i];
      ++bg_n;
    }
  }
  ASSERT_GT(fg_n, 0u);
  ASSERT_GT(bg_n, 0u);
  EXPECT_GT(fg_sum / fg_n, bg_sum / bg_n + 50.0);
}

TEST(Bbbc005, InstanceCountMatchesComponents) {
  const Bbbc005Generator generator(small_bbbc());
  const auto sample = generator.generate(1);
  const auto components = img::connected_components(sample.mask);
  // Cells are placed non-overlapping, so components == instances.
  EXPECT_EQ(components.components.size(), sample.instance_count);
  EXPECT_GE(sample.instance_count, small_bbbc().min_cells);
  EXPECT_LE(sample.instance_count, small_bbbc().max_cells);
}

TEST(Bbbc005, BlurSweepRepeatsWithPeriod) {
  // Samples i and i + blur_steps share the blur level but nothing else.
  Bbbc005Config config = small_bbbc();
  config.blur_steps = 3;
  const Bbbc005Generator generator(config);
  EXPECT_NE(generator.generate(0).image, generator.generate(3).image);
}

TEST(Bbbc005, ValidatesConfig) {
  Bbbc005Config config;
  config.min_cells = 10;
  config.max_cells = 5;
  EXPECT_THROW(Bbbc005Generator{config}, std::invalid_argument);
  Bbbc005Config tiny;
  tiny.width = 8;
  EXPECT_THROW(Bbbc005Generator{tiny}, std::invalid_argument);
}

TEST(Dsb2018, ProfileMatchesPaperSettings) {
  const Dsb2018Generator generator;
  EXPECT_EQ(generator.profile().name, "DSB2018");
  EXPECT_EQ(generator.profile().width, 320u);
  EXPECT_EQ(generator.profile().height, 256u);
  EXPECT_EQ(generator.profile().channels, 3u);
  EXPECT_EQ(generator.profile().suggested_clusters, 2u);
  EXPECT_EQ(generator.profile().suggested_beta, 26u);
}

TEST(Dsb2018, Deterministic) {
  expect_deterministic(Dsb2018Generator(small_dsb()));
}

TEST(Dsb2018, ProducesBothModalitiesAcrossSamples) {
  Dsb2018Config config = small_dsb();
  config.brightfield_fraction = 0.5;
  const Dsb2018Generator generator(config);
  std::size_t dark_background = 0;
  std::size_t light_background = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const auto sample = generator.generate(i);
    // Background level from the mask complement.
    double bg_sum = 0.0;
    std::size_t bg_n = 0;
    const auto gray = img::to_gray(sample.image);
    for (std::size_t p = 0; p < gray.size(); ++p) {
      if (sample.mask.pixels()[p] == 0) {
        bg_sum += gray.pixels()[p];
        ++bg_n;
      }
    }
    const double bg = bg_sum / static_cast<double>(bg_n);
    if (bg < 100.0) {
      ++dark_background;
    } else {
      ++light_background;
    }
  }
  EXPECT_GT(dark_background, 0u);
  EXPECT_GT(light_background, 0u);
}

TEST(Dsb2018, MaskAgreesWithInstances) {
  const Dsb2018Generator generator(small_dsb());
  const auto sample = generator.generate(2);
  EXPECT_GE(sample.instance_count, small_dsb().min_nuclei);
  std::size_t fg = 0;
  for (const auto v : sample.mask.pixels()) {
    fg += v != 0 ? 1 : 0;
  }
  EXPECT_GT(fg, 0u);
  EXPECT_LT(fg, sample.mask.pixel_count() / 2);
}

TEST(Dsb2018, ValidatesConfig) {
  Dsb2018Config config;
  config.brightfield_fraction = 1.5;
  EXPECT_THROW(Dsb2018Generator{config}, std::invalid_argument);
}

TEST(Monuseg, ProfileMatchesPaperSettings) {
  const MonusegGenerator generator;
  EXPECT_EQ(generator.profile().name, "MoNuSeg");
  EXPECT_EQ(generator.profile().channels, 3u);
  EXPECT_EQ(generator.profile().suggested_clusters, 3u);  // k=3 in paper
  EXPECT_EQ(generator.profile().suggested_beta, 26u);
}

TEST(Monuseg, Deterministic) {
  expect_deterministic(MonusegGenerator(small_monuseg()));
}

TEST(Monuseg, ManySmallNuclei) {
  const MonusegGenerator generator(small_monuseg());
  const auto sample = generator.generate(0);
  EXPECT_GE(sample.instance_count, 20u);
  const auto components = img::connected_components(sample.mask);
  // Nuclei may touch (components <= instances) but most stay separate.
  EXPECT_GE(components.components.size(), sample.instance_count / 2);
  // Median component is small (crowded tiny nuclei).
  std::size_t total_area = 0;
  for (const auto& c : components.components) {
    total_area += c.area;
  }
  const double mean_area = static_cast<double>(total_area) /
                           static_cast<double>(components.components.size());
  EXPECT_LT(mean_area, 400.0);
}

TEST(Monuseg, NucleiDarkerThanStroma) {
  const MonusegGenerator generator(small_monuseg());
  const auto sample = generator.generate(1);
  const auto gray = img::to_gray(sample.image);
  double fg_sum = 0.0, bg_sum = 0.0;
  std::size_t fg_n = 0, bg_n = 0;
  for (std::size_t i = 0; i < gray.size(); ++i) {
    if (sample.mask.pixels()[i] != 0) {
      fg_sum += gray.pixels()[i];
      ++fg_n;
    } else {
      bg_sum += gray.pixels()[i];
      ++bg_n;
    }
  }
  EXPECT_LT(fg_sum / fg_n, bg_sum / bg_n - 20.0);
}

TEST(Monuseg, HnePalette) {
  // H&E: red channel should dominate blue-green on stroma (pink).
  const MonusegGenerator generator(small_monuseg());
  const auto sample = generator.generate(2);
  double r = 0.0, g = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < sample.image.height(); ++y) {
    for (std::size_t x = 0; x < sample.image.width(); ++x) {
      if (sample.mask.at(x, y) == 0) {
        r += sample.image.at(x, y, 0);
        g += sample.image.at(x, y, 1);
        ++n;
      }
    }
  }
  EXPECT_GT(r / n, g / n + 10.0);
}

TEST(Datasets, IdsEncodeIndex) {
  EXPECT_EQ(Bbbc005Generator(small_bbbc()).generate(7).id, "bbbc005_7");
  EXPECT_EQ(Dsb2018Generator(small_dsb()).generate(7).id, "dsb2018_7");
  EXPECT_EQ(MonusegGenerator(small_monuseg()).generate(7).id, "monuseg_7");
}

// ---------------------------------------------------------------------
// On-disk mini-datasets: export_dataset -> DiskDataset round trip.
// ---------------------------------------------------------------------

class DiskCleanup : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& dir : dirs_) {
      std::filesystem::remove_all(dir);
    }
  }
  std::string track(const std::string& name) {
    const auto dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }
  std::vector<std::string> dirs_;
};

template <typename Generator>
void expect_disk_round_trip(const Generator& generator,
                            const std::string& dir,
                            const std::string& format,
                            std::size_t count) {
  ASSERT_EQ(export_dataset(generator, count, dir, format), count);
  const DiskDataset disk(dir);
  ASSERT_EQ(disk.size(), count);

  // profile.txt carries the full profile through the round trip.
  EXPECT_EQ(disk.profile().name, generator.profile().name);
  EXPECT_EQ(disk.profile().width, generator.profile().width);
  EXPECT_EQ(disk.profile().height, generator.profile().height);
  EXPECT_EQ(disk.profile().channels, generator.profile().channels);
  EXPECT_EQ(disk.profile().suggested_clusters,
            generator.profile().suggested_clusters);
  EXPECT_EQ(disk.profile().suggested_beta,
            generator.profile().suggested_beta);

  for (std::size_t i = 0; i < count; ++i) {
    const auto expected = generator.generate(i);
    const auto loaded = disk.generate(i);
    EXPECT_EQ(loaded.id, expected.id) << format << " sample " << i;
    EXPECT_EQ(loaded.image, expected.image) << format << " sample " << i;
    EXPECT_EQ(loaded.mask, expected.mask) << format << " sample " << i;
    // The loader recovers instances by component labeling; generators
    // may place touching objects, so compare against the same labeling.
    EXPECT_EQ(loaded.instance_count,
              img::connected_components(expected.mask).components.size())
        << format << " sample " << i;
  }
}

TEST_F(DiskCleanup, PngRoundTripAllGenerators) {
  expect_disk_round_trip(Bbbc005Generator(small_bbbc()),
                         track("seghdc_disk_bbbc"), "png", 3);
  expect_disk_round_trip(Dsb2018Generator(small_dsb()),
                         track("seghdc_disk_dsb"), "png", 4);
  expect_disk_round_trip(MonusegGenerator(small_monuseg()),
                         track("seghdc_disk_monuseg"), "png", 3);
}

TEST_F(DiskCleanup, PnmRoundTrip) {
  expect_disk_round_trip(Dsb2018Generator(small_dsb()),
                         track("seghdc_disk_dsb_pnm"), "pnm", 3);
}

TEST_F(DiskCleanup, LoaderFeedsEvalHermetically) {
  // The CI shape end to end: synthesise a mini corpus, write it out as
  // PNG, reload through the real loader, and sweep it with the eval
  // pipeline — files -> DiskDataset -> evaluate_seghdc -> mIoU.
  const Dsb2018Generator generator(small_dsb());
  const auto dir = track("seghdc_disk_eval");
  export_dataset(generator, 3, dir, "png");
  const DiskDataset disk(dir);

  core::SegHdcConfig config;
  config.dim = 256;
  config.iterations = 2;
  config.beta = disk.profile().suggested_beta;
  config.clusters = disk.profile().suggested_clusters;
  eval::EvalOptions options;
  options.path = eval::EvalPath::kServer;
  const auto suite = eval::evaluate_seghdc(disk, disk.size(), config,
                                           options);
  ASSERT_EQ(suite.records.size(), 3u);
  EXPECT_EQ(suite.dataset, "DSB2018");
  EXPECT_NE(suite.labels_hash, 0u);
  EXPECT_GT(suite.mean_iou(), 0.0);
  EXPECT_LE(suite.mean_iou(), 1.0);
  for (const auto& record : suite.records) {
    EXPECT_GT(record.instances, 0u);
  }
}

TEST_F(DiskCleanup, RejectsOrphanFilesAndEmptyDirectories) {
  const auto empty = track("seghdc_disk_empty");
  std::filesystem::create_directories(empty);
  try {
    DiskDataset dataset(empty);
    FAIL() << "expected an empty directory to be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what())
                  .find("no <id>_image/<id>_mask pairs"),
              std::string::npos)
        << "actual message: " << error.what();
  }

  const auto orphan_mask = track("seghdc_disk_orphan_mask");
  export_dataset(Dsb2018Generator(small_dsb()), 1, orphan_mask, "png");
  std::filesystem::remove(orphan_mask + "/dsb2018_0_image.png");
  try {
    DiskDataset dataset(orphan_mask);
    FAIL() << "expected an orphan mask to be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("mask without image"),
              std::string::npos)
        << "actual message: " << error.what();
  }

  const auto orphan_image = track("seghdc_disk_orphan_image");
  export_dataset(Dsb2018Generator(small_dsb()), 1, orphan_image, "png");
  std::filesystem::remove(orphan_image + "/dsb2018_0_mask.png");
  try {
    DiskDataset dataset(orphan_image);
    FAIL() << "expected an orphan image to be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("image without mask"),
              std::string::npos)
        << "actual message: " << error.what();
  }

  EXPECT_THROW(DiskDataset(track("seghdc_disk_missing")),
               std::runtime_error);
}

TEST_F(DiskCleanup, RejectsBadProfileLineAndOutOfRangeIndex) {
  const auto dir = track("seghdc_disk_badprofile");
  export_dataset(Dsb2018Generator(small_dsb()), 1, dir, "png");
  {
    const DiskDataset disk(dir);
    EXPECT_THROW(disk.generate(1), std::out_of_range);
  }
  {
    std::ofstream out(dir + "/profile.txt");
    out << "width\n";  // key with no value
  }
  try {
    DiskDataset dataset(dir);
    FAIL() << "expected a bad profile line to be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("bad profile line"),
              std::string::npos)
        << "actual message: " << error.what();
  }
}

TEST_F(DiskCleanup, MixedContainerFormatsLoadTogether) {
  // PNG image next to a PNM mask (and vice versa) is a supported
  // layout: the loader sniffs content, not extensions.
  const Dsb2018Generator generator(small_dsb());
  const auto dir = track("seghdc_disk_mixed");
  export_dataset(generator, 2, dir, "png");
  const auto sample = generator.generate(0);
  std::filesystem::remove(dir + "/dsb2018_0_mask.png");
  img::write_pnm(sample.mask, dir + "/dsb2018_0_mask.pgm");

  const DiskDataset disk(dir);
  ASSERT_EQ(disk.size(), 2u);
  const auto loaded = disk.generate(0);
  EXPECT_EQ(loaded.image, sample.image);
  EXPECT_EQ(loaded.mask, sample.mask);
}

}  // namespace
