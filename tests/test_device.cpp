// Tests for the Raspberry Pi device model: the calibrated latency
// projections must land on the paper's Table II numbers, and the memory
// model must reproduce the 520x696 OOM while passing the 256x320 case.
#include <gtest/gtest.h>

#include "src/device/device_spec.hpp"
#include "src/device/latency_model.hpp"
#include "src/device/memory_model.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::device;

TEST(DeviceSpec, RaspberryPiBasics) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  EXPECT_EQ(pi.cores, 4u);
  EXPECT_DOUBLE_EQ(pi.frequency_hz, 1.5e9);
  EXPECT_EQ(pi.mem_total_bytes, 4ULL * 1024 * 1024 * 1024);
  EXPECT_LT(pi.mem_available_bytes, pi.mem_total_bytes);
  EXPECT_GT(pi.cnn_macs_per_second, 0.0);
}

TEST(LatencyModel, ReproducesTable2SegHdcDsbRow) {
  // DSB2018 image: 256x320, d=800, 3 iterations, k=2 -> paper: 35.8 s.
  const auto pi = DeviceSpec::raspberry_pi_4b();
  const double seconds = project_seghdc_latency(
      pi, SegHdcWorkload{.pixels = 256 * 320, .dim = 800,
                         .clusters = 2, .iterations = 3});
  EXPECT_NEAR(seconds, 35.8, 0.5);
}

TEST(LatencyModel, ReproducesTable2SegHdcBbbcRow) {
  // BBBC005 image: 520x696, d=2000, 3 iterations -> paper: 178.31 s.
  const auto pi = DeviceSpec::raspberry_pi_4b();
  const double seconds = project_seghdc_latency(
      pi, SegHdcWorkload{.pixels = 520 * 696, .dim = 2000,
                         .clusters = 2, .iterations = 3});
  EXPECT_NEAR(seconds, 178.31, 2.0);
}

TEST(LatencyModel, ReproducesTable2BaselineRow) {
  // Reference baseline (100 ch, 1000 iters) on 256x320x3 -> 11453 s.
  const auto pi = DeviceSpec::raspberry_pi_4b();
  baseline::KimConfig config;
  const double seconds = project_kim_latency(
      pi, KimWorkload{.config = config, .channels = 3, .height = 256,
                      .width = 320, .iterations = 1000});
  EXPECT_NEAR(seconds, 11453.0, 60.0);
}

TEST(LatencyModel, SpeedupMatchesPaper) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  baseline::KimConfig config;
  const double bl = project_kim_latency(
      pi, KimWorkload{.config = config, .channels = 3, .height = 256,
                      .width = 320, .iterations = 1000});
  const double hdc = project_seghdc_latency(
      pi, SegHdcWorkload{.pixels = 256 * 320, .dim = 800,
                         .clusters = 2, .iterations = 3});
  EXPECT_NEAR(bl / hdc, 319.9, 5.0);  // paper: 319.9x
}

TEST(LatencyModel, Fig7aShape) {
  // d = 10000: ~linear in iterations, in the paper's 20 s -> 300 s band.
  const auto pi = DeviceSpec::raspberry_pi_4b();
  const auto at = [&](std::size_t iters) {
    return project_seghdc_latency(
        pi, SegHdcWorkload{.pixels = 256 * 320, .dim = 10000,
                           .clusters = 2, .iterations = iters});
  };
  EXPECT_GT(at(1), 10.0);
  EXPECT_LT(at(1), 40.0);
  EXPECT_GT(at(10), 200.0);
  EXPECT_LT(at(10), 400.0);
  // Linearity.
  EXPECT_NEAR(at(10) / at(5), 2.0, 1e-9);
}

TEST(LatencyModel, Fig7bNearFlatInDimension) {
  // d 200 -> 1000 at 10 iterations: latency grows by far less than the
  // 5x dimension factor (paper: ~90 s -> ~110 s).
  const auto pi = DeviceSpec::raspberry_pi_4b();
  const auto at = [&](std::size_t dim) {
    return project_seghdc_latency(
        pi, SegHdcWorkload{.pixels = 256 * 320, .dim = dim,
                           .clusters = 2, .iterations = 10});
  };
  EXPECT_GT(at(200), 80.0);
  EXPECT_LT(at(1000), 140.0);
  EXPECT_LT(at(1000) / at(200), 1.3);
}

TEST(LatencyModel, ClustersScaleLatency) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  const SegHdcWorkload k2{.pixels = 1000, .dim = 500, .clusters = 2,
                          .iterations = 5};
  SegHdcWorkload k3 = k2;
  k3.clusters = 3;
  EXPECT_NEAR(project_seghdc_latency(pi, k3) /
                  project_seghdc_latency(pi, k2),
              1.5, 1e-9);
}

TEST(EnergyModel, SegHdcEnergyIsWattsTimesSeconds) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  const SegHdcWorkload workload{.pixels = 256 * 320, .dim = 800,
                                .clusters = 2, .iterations = 3};
  const double seconds = project_seghdc_latency(pi, workload);
  EXPECT_NEAR(project_seghdc_energy(pi, workload),
              pi.hdc_active_watts * seconds, 1e-9);
}

TEST(EnergyModel, SegHdcOrdersOfMagnitudeBelowBaseline) {
  // The paper's energy-efficiency claim in joule terms: >100x less
  // energy per DSB image.
  const auto pi = DeviceSpec::raspberry_pi_4b();
  baseline::KimConfig config;
  const double kim_joules = project_kim_energy(
      pi, KimWorkload{.config = config, .channels = 3, .height = 256,
                      .width = 320, .iterations = 1000});
  const double hdc_joules = project_seghdc_energy(
      pi, SegHdcWorkload{.pixels = 256 * 320, .dim = 800,
                         .clusters = 2, .iterations = 3});
  EXPECT_GT(kim_joules / hdc_joules, 100.0);
}

TEST(LatencyModel, ValidatesWorkloads) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  EXPECT_THROW(project_seghdc_latency(pi, SegHdcWorkload{}),
               std::invalid_argument);
  EXPECT_THROW(project_kim_latency(pi, KimWorkload{}),
               std::invalid_argument);
}

TEST(MemoryModel, BaselineOomsAt520x696) {
  // Paper Table II: the CNN baseline cannot process the BBBC005 image
  // on the 4 GB Pi.
  const auto pi = DeviceSpec::raspberry_pi_4b();
  baseline::KimConfig config;  // reference: 100 channels
  const auto estimate = estimate_kim_memory(config, 1, 520, 696);
  EXPECT_FALSE(estimate.fits(pi));
  EXPECT_GT(estimate.peak_bytes(), pi.mem_available_bytes);
}

TEST(MemoryModel, BaselineFitsAt256x320) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  baseline::KimConfig config;
  const auto estimate = estimate_kim_memory(config, 3, 256, 320);
  EXPECT_TRUE(estimate.fits(pi));
}

TEST(MemoryModel, SegHdcFitsBothTable2Images) {
  const auto pi = DeviceSpec::raspberry_pi_4b();
  core::SegHdcConfig dsb;
  dsb.dim = 800;
  dsb.beta = 26;
  EXPECT_TRUE(estimate_seghdc_memory(dsb, 256, 320).fits(pi));
  core::SegHdcConfig bbbc;
  bbbc.dim = 2000;
  bbbc.beta = 21;
  EXPECT_TRUE(estimate_seghdc_memory(bbbc, 520, 696).fits(pi));
}

TEST(MemoryModel, KimMemoryGrowsWithImageAndChannels) {
  baseline::KimConfig small;
  small.feature_channels = 16;
  baseline::KimConfig big;
  big.feature_channels = 64;
  EXPECT_LT(estimate_kim_memory(small, 3, 128, 128).peak_bytes(),
            estimate_kim_memory(big, 3, 128, 128).peak_bytes());
  EXPECT_LT(estimate_kim_memory(big, 3, 128, 128).peak_bytes(),
            estimate_kim_memory(big, 3, 512, 512).peak_bytes());
}

TEST(MemoryModel, BreakdownIsConsistent) {
  baseline::KimConfig config;
  const auto estimate = estimate_kim_memory(config, 3, 256, 320);
  EXPECT_GT(estimate.parameter_bytes, 0u);
  EXPECT_GT(estimate.activation_bytes, 0u);
  EXPECT_GT(estimate.workspace_bytes, 0u);
  EXPECT_GE(estimate.overhead_factor, 1.0);
  EXPECT_GE(estimate.peak_bytes(),
            estimate.parameter_bytes + estimate.activation_bytes +
                estimate.workspace_bytes);
}

TEST(MemoryModel, ImageSizeValidation) {
  baseline::KimConfig config;
  EXPECT_THROW(estimate_kim_memory(config, 3, 0, 10),
               std::invalid_argument);
  core::SegHdcConfig seghdc_config;
  EXPECT_THROW(estimate_seghdc_memory(seghdc_config, 10, 0),
               std::invalid_argument);
}

}  // namespace
