// Tests for the distance functions (paper Eq. 1 and Eq. 7).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "src/hdc/distances.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::hdc;
using seghdc::util::Rng;

TEST(Distances, HammingSymmetricAndZeroOnSelf) {
  Rng rng(1);
  const auto a = HyperVector::random(400, rng);
  const auto b = HyperVector::random(400, rng);
  EXPECT_EQ(hamming_distance(a, a), 0u);
  EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
}

TEST(Distances, HammingTriangleInequality) {
  Rng rng(2);
  const auto a = HyperVector::random(512, rng);
  const auto b = HyperVector::random(512, rng);
  const auto c = HyperVector::random(512, rng);
  EXPECT_LE(hamming_distance(a, c),
            hamming_distance(a, b) + hamming_distance(b, c));
}

TEST(Distances, NormalizedHammingRange) {
  Rng rng(3);
  const auto a = HyperVector::random(256, rng);
  auto b = a;
  EXPECT_DOUBLE_EQ(normalized_hamming(a, b), 0.0);
  b.flip_range(0, 256);
  EXPECT_DOUBLE_EQ(normalized_hamming(a, b), 1.0);
}

TEST(Distances, CosineBinaryIdenticalIsZero) {
  Rng rng(4);
  const auto a = HyperVector::random(512, rng);
  EXPECT_NEAR(cosine_distance(a, a), 0.0, 1e-12);
}

TEST(Distances, CosineBinaryDisjointIsOne) {
  HyperVector a(8);
  HyperVector b(8);
  a.set(0, true);
  a.set(1, true);
  b.set(4, true);
  b.set(5, true);
  EXPECT_NEAR(cosine_distance(a, b), 1.0, 1e-12);
}

TEST(Distances, CosineBinaryKnownOverlap) {
  // a = {0,1}, b = {1,2}: dot = 1, norms = sqrt(2) ->
  // distance = 1 - 1/2 = 0.5.
  HyperVector a(8);
  HyperVector b(8);
  a.set(0, true);
  a.set(1, true);
  b.set(1, true);
  b.set(2, true);
  EXPECT_NEAR(cosine_distance(a, b), 0.5, 1e-12);
}

TEST(Distances, CosineZeroVectorConvention) {
  const HyperVector zero(16);
  HyperVector one(16);
  one.set(3, true);
  EXPECT_DOUBLE_EQ(cosine_distance(zero, one), 1.0);
  EXPECT_DOUBLE_EQ(cosine_distance(one, zero), 1.0);
}

TEST(Distances, CosineAgainstAccumulatorMatchesEq7) {
  // Eq. 7 spelled out on a tiny example: z = [2,1,0,1], y = {0,2}.
  Accumulator z(4);
  HyperVector h1(4), h2(4);
  h1.set(0, true);
  h1.set(1, true);
  h2.set(0, true);
  h2.set(3, true);
  z.add(h1);
  z.add(h2);
  HyperVector y(4);
  y.set(0, true);
  y.set(2, true);
  // dot = 2, |y| = sqrt(2), |z| = sqrt(4+1+0+1) = sqrt(6).
  const double expected = 1.0 - 2.0 / (std::sqrt(2.0) * std::sqrt(6.0));
  EXPECT_NEAR(cosine_distance(z, y), expected, 1e-12);
}

TEST(Distances, ManhattanVectors) {
  const std::array<std::int64_t, 3> p{1, -2, 10};
  const std::array<std::int64_t, 3> q{4, 2, 10};
  EXPECT_EQ(manhattan_distance(p, q), 7u);
  EXPECT_EQ(manhattan_distance(p, p), 0u);
}

TEST(Distances, ManhattanLengthMismatchThrows) {
  const std::array<std::int64_t, 2> p{0, 0};
  const std::array<std::int64_t, 3> q{0, 0, 0};
  EXPECT_THROW(manhattan_distance(p, q), std::invalid_argument);
}

TEST(Distances, Manhattan2dMatchesEq2) {
  // Paper Eq. 2: equal sums of coordinate offsets give equal distances.
  const auto d1 = manhattan_distance_2d(0, 0, 1, 3);
  const auto d2 = manhattan_distance_2d(0, 0, 2, 2);
  const auto d3 = manhattan_distance_2d(0, 0, 4, 0);
  EXPECT_EQ(d1, 4u);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d2, d3);
  EXPECT_EQ(manhattan_distance_2d(-2, -3, 2, 3), 10u);
}

}  // namespace
