// Degenerate and extreme image geometries through the full pipeline:
// single-row/column images, tiny images, extreme aspect ratios, and
// blocks larger than the image. A released library must not fall over
// at the boundaries of its domain.
#include <gtest/gtest.h>

#include "src/core/seghdc.hpp"
#include "src/datasets/bbbc005.hpp"

namespace {

using namespace seghdc;

core::SegHdcConfig tiny_config() {
  core::SegHdcConfig config;
  config.dim = 256;
  config.beta = 2;
  config.iterations = 3;
  return config;
}

TEST(EdgeGeometry, SingleRowImage) {
  img::ImageU8 image(32, 1, 1, 10);
  for (std::size_t x = 16; x < 32; ++x) {
    image(x, 0) = 240;
  }
  const auto result = core::SegHdc(tiny_config()).segment(image);
  ASSERT_EQ(result.labels.height(), 1u);
  // The two halves separate.
  EXPECT_NE(result.labels(0, 0), result.labels(31, 0));
  EXPECT_EQ(result.labels(0, 0), result.labels(8, 0));
}

TEST(EdgeGeometry, SingleColumnImage) {
  img::ImageU8 image(1, 32, 1, 10);
  for (std::size_t y = 16; y < 32; ++y) {
    image(0, y) = 240;
  }
  const auto result = core::SegHdc(tiny_config()).segment(image);
  EXPECT_NE(result.labels(0, 0), result.labels(0, 31));
}

TEST(EdgeGeometry, TwoPixelImage) {
  img::ImageU8 image(2, 1, 1);
  image(0, 0) = 0;
  image(1, 0) = 255;
  const auto result = core::SegHdc(tiny_config()).segment(image);
  EXPECT_NE(result.labels(0, 0), result.labels(1, 0));
}

TEST(EdgeGeometry, BlockLargerThanImage) {
  // beta = 64 over a 16x16 image: a single position block; clustering
  // falls back to pure color separation.
  img::ImageU8 image(16, 16, 1, 20);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 16; ++x) {
      image(x, y) = 230;
    }
  }
  auto config = tiny_config();
  config.beta = 64;
  const auto result = core::SegHdc(config).segment(image);
  EXPECT_NE(result.labels(0, 0), result.labels(0, 15));
  EXPECT_EQ(result.labels(0, 0), result.labels(15, 0));
}

TEST(EdgeGeometry, ExtremeAspectRatio) {
  img::ImageU8 image(128, 2, 3, 15);
  for (std::size_t x = 64; x < 128; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      image(x, y, 0) = 200;
      image(x, y, 1) = 210;
      image(x, y, 2) = 190;
    }
  }
  const auto result = core::SegHdc(tiny_config()).segment(image);
  EXPECT_NE(result.labels(0, 0), result.labels(127, 1));
}

TEST(EdgeGeometry, FlatImageStillTerminates) {
  // No color difference at all: seeds fall back to distinct indices and
  // the pipeline must terminate with a valid (if arbitrary) labeling.
  const img::ImageU8 image(24, 24, 1, 128);
  const auto result = core::SegHdc(tiny_config()).segment(image);
  EXPECT_EQ(result.labels.pixel_count(), 576u);
  std::uint64_t total = 0;
  for (const auto count : result.cluster_pixel_counts) {
    total += count;
  }
  EXPECT_EQ(total, 576u);
}

TEST(EdgeGeometry, MoreClustersThanColors) {
  // k = 4 on a two-tone image: empty-cluster reseeding must keep the
  // run alive and all labels valid.
  img::ImageU8 image(20, 20, 1, 10);
  for (std::size_t y = 5; y < 15; ++y) {
    for (std::size_t x = 5; x < 15; ++x) {
      image(x, y) = 250;
    }
  }
  auto config = tiny_config();
  config.clusters = 4;
  const auto result = core::SegHdc(config).segment(image);
  for (const auto label : result.labels.pixels()) {
    EXPECT_LT(label, 4u);
  }
}

TEST(EdgeGeometry, LargeImageSmallDim) {
  // A full-size BBBC005 frame with a small dimension exercises the
  // one-bit flip-unit clamp at real geometry.
  data::Bbbc005Config data_config;
  data_config.width = 696;
  data_config.height = 520;
  const data::Bbbc005Generator dataset(data_config);
  const auto sample = dataset.generate(0);
  auto config = tiny_config();
  config.dim = 800;
  config.beta = 21;
  config.iterations = 2;
  config.color_quantization_shift = 3;
  const auto result = core::SegHdc(config).segment(sample.image);
  EXPECT_EQ(result.labels.width(), 696u);
  EXPECT_EQ(result.labels.height(), 520u);
}

}  // namespace
