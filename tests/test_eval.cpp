// Tests for the suite-evaluation API.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "src/datasets/bbbc005.hpp"
#include "src/eval/suite.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::eval;

data::Bbbc005Generator small_dataset() {
  data::Bbbc005Config config;
  config.width = 120;
  config.height = 90;
  config.min_cells = 3;
  config.max_cells = 6;
  config.min_radius = 7.0;
  config.max_radius = 11.0;
  return data::Bbbc005Generator(config);
}

/// A cheating "oracle" method that returns the ground truth as labels.
Method oracle_method() {
  return [](const data::Sample& sample) {
    img::LabelMap labels(sample.mask.width(), sample.mask.height(), 1, 0);
    for (std::size_t i = 0; i < sample.mask.size(); ++i) {
      labels.pixels()[i] = sample.mask.pixels()[i] != 0 ? 1 : 0;
    }
    return labels;
  };
}

/// A useless method assigning everything to one label.
Method constant_method() {
  return [](const data::Sample& sample) {
    return img::LabelMap(sample.mask.width(), sample.mask.height(), 1, 0);
  };
}

TEST(EvaluateSuite, OracleScoresPerfectIou) {
  const auto dataset = small_dataset();
  const auto result = evaluate_suite(dataset, 3, "oracle", oracle_method());
  EXPECT_EQ(result.dataset, "BBBC005");
  EXPECT_EQ(result.method, "oracle");
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_DOUBLE_EQ(result.mean_iou(), 1.0);
  EXPECT_DOUBLE_EQ(result.min_iou(), 1.0);
  EXPECT_DOUBLE_EQ(result.stddev_iou(), 0.0);
}

TEST(EvaluateSuite, ConstantMethodScoresLow) {
  const auto dataset = small_dataset();
  const auto result =
      evaluate_suite(dataset, 3, "constant", constant_method());
  // All-one-label: the matcher picks the better polarity, which for
  // sparse foreground is "all background" -> IoU 0 against non-empty GT.
  EXPECT_LT(result.mean_iou(), 0.3);
}

TEST(EvaluateSuite, AggregatesMatchRecords) {
  const auto dataset = small_dataset();
  auto method = oracle_method();
  auto result = evaluate_suite(dataset, 4, "oracle", method);
  // Hand-patch records to known values and check the statistics.
  result.records[0].iou = 0.2;
  result.records[1].iou = 0.4;
  result.records[2].iou = 0.6;
  result.records[3].iou = 0.8;
  EXPECT_NEAR(result.mean_iou(), 0.5, 1e-12);
  EXPECT_NEAR(result.min_iou(), 0.2, 1e-12);
  EXPECT_NEAR(result.max_iou(), 0.8, 1e-12);
  EXPECT_NEAR(result.stddev_iou(), std::sqrt(0.2 / 3.0), 1e-9);
}

TEST(EvaluateSuite, RecordsTimings) {
  const auto dataset = small_dataset();
  const auto result = evaluate_suite(dataset, 2, "oracle", oracle_method());
  EXPECT_GE(result.total_seconds(), 0.0);
  EXPECT_NEAR(result.mean_seconds() * 2.0, result.total_seconds(), 1e-9);
}

TEST(EvaluateSuite, ValidatesArguments) {
  const auto dataset = small_dataset();
  EXPECT_THROW(evaluate_suite(dataset, 0, "x", oracle_method()),
               std::invalid_argument);
  EXPECT_THROW(evaluate_suite(dataset, 1, "x", Method{}),
               std::invalid_argument);
  // Wrong-size label maps are rejected.
  const auto bad = [](const data::Sample&) {
    return img::LabelMap(2, 2, 1, 0);
  };
  EXPECT_THROW(evaluate_suite(dataset, 1, "bad", bad),
               std::invalid_argument);
}

TEST(EvaluateSuite, SegHdcFactoryBeatsConstant) {
  const auto dataset = small_dataset();
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 8;
  config.iterations = 4;
  config.color_quantization_shift = 3;
  const auto seghdc_result =
      evaluate_suite(dataset, 2, "SegHDC", seghdc_method(config));
  const auto constant_result =
      evaluate_suite(dataset, 2, "constant", constant_method());
  EXPECT_GT(seghdc_result.mean_iou(), constant_result.mean_iou() + 0.4);
}

TEST(EvaluateSuite, OtsuFactoryRunsOnSuite) {
  const auto dataset = small_dataset();
  const auto result = evaluate_suite(dataset, 2, "Otsu", otsu_method());
  // Clean-ish fluorescent images: global threshold does reasonably.
  EXPECT_GT(result.mean_iou(), 0.4);
}

TEST(EvaluateSuite, KimFactoryRunsTiny) {
  const auto dataset = small_dataset();
  baseline::KimConfig config;
  config.feature_channels = 6;
  config.max_iterations = 5;
  const auto result =
      evaluate_suite(dataset, 1, "BL", kim_method(config, 2));
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_GE(result.records[0].iou, 0.0);
  EXPECT_LE(result.records[0].iou, 1.0);
}

TEST(WriteSuiteCsv, EmitsPerImageAndMeanRows) {
  const auto dataset = small_dataset();
  const auto result = evaluate_suite(dataset, 2, "oracle", oracle_method());
  const auto path =
      (std::filesystem::temp_directory_path() / "seghdc_suite.csv")
          .string();
  write_suite_csv(result, path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 1u + 2u + 1u);  // header + 2 images + mean
  std::filesystem::remove(path);
}

}  // namespace
