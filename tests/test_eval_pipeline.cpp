// Tier-1 gate for the dataset-scale eval pipeline (eval::evaluate_seghdc):
//
//   - Path identity: one_shot, batch and server execution produce
//     bit-identical per-image label hashes, IoU and suite fingerprints
//     at every pool size {1, 2, 4}, under both K-Means assignment
//     modes, at wave sizes that force multiple batches — the invariant
//     that makes serving-path accuracy numbers trustworthy.
//   - Golden pins: the eval fingerprint over the exact golden batch of
//     test_session.cpp reproduces 13206585988845182882, and an extended
//     5-card suite pins its own golden eval hash.
//   - Serving reality: evaluation through an EXTERNAL server stays
//     identical while temporal streams are active on the same server,
//     a capacity-1 queue (forced backpressure) changes nothing, and a
//     config-mismatched server is a hard error.
//   - Measured op accounting: in pruned assignment mode every record
//     satisfies distance_evals + candidates_pruned ==
//     unique_points * clusters * iterations_run (no blanket formulas).
//
// The base seed honours SEGHDC_TEST_SEED like test_session.cpp; the
// golden-pin tests use the fixed seed 42 on purpose. The locally built
// server honours SEGHDC_TEST_QUEUE_CAP through EvalOptions like any
// other server construction.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/session.hpp"
#include "src/datasets/dataset.hpp"
#include "src/eval/suite.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/serve/server.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace seghdc;

std::uint64_t test_seed() {
  const char* env = std::getenv("SEGHDC_TEST_SEED");
  if (env == nullptr || *env == '\0') {
    return 42;
  }
  return std::strtoull(env, nullptr, 10);
}

std::size_t test_queue_capacity() {
  const char* env = std::getenv("SEGHDC_TEST_QUEUE_CAP");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (*env < '0' || *env > '9' || *end != '\0') {
    throw std::invalid_argument(
        std::string("SEGHDC_TEST_QUEUE_CAP must be a non-negative "
                    "integer, got '") +
        env + "'");
  }
  return static_cast<std::size_t>(value);
}

// Same synthetic cards as test_session.cpp so the golden constant is
// shared verbatim between the session tests and the eval pipeline.
img::ImageU8 make_gray_card(std::size_t size, std::uint8_t bg,
                            std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 make_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

/// Centered-rectangle ground truth: enough structure for
/// best_foreground_iou_any to score meaningfully; the mask does not
/// influence labels (and therefore never influences the hashes).
img::ImageU8 center_mask(std::size_t width, std::size_t height) {
  img::ImageU8 mask(width, height, 1, 0);
  for (std::size_t y = height / 4; y < 3 * height / 4; ++y) {
    for (std::size_t x = width / 4; x < 3 * width / 4; ++x) {
      mask(x, y) = 255;
    }
  }
  return mask;
}

/// In-memory dataset over a fixed list of cards — the hermetic suite
/// the pipeline sweeps.
class CardDataset final : public data::DatasetGenerator {
 public:
  explicit CardDataset(std::vector<img::ImageU8> images)
      : images_(std::move(images)) {
    profile_.name = "cards";
    profile_.width = images_.front().width();
    profile_.height = images_.front().height();
    profile_.channels = images_.front().channels();
    profile_.suggested_clusters = 2;
    profile_.suggested_beta = 4;
  }

  const data::DatasetProfile& profile() const override { return profile_; }
  std::size_t size() const { return images_.size(); }

  data::Sample generate(std::size_t index) const override {
    const auto& image = images_.at(index);
    data::Sample sample;
    sample.id = "card_" + std::to_string(index);
    sample.image = image;
    sample.mask = center_mask(image.width(), image.height());
    sample.instance_count = 1;
    return sample;
  }

 private:
  std::vector<img::ImageU8> images_;
  data::DatasetProfile profile_;
};

/// The exact golden batch of test_session.cpp, in the exact order.
CardDataset golden_dataset() {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));
  return CardDataset(std::move(images));
}

/// Golden batch plus two more cards: the eval pipeline's own suite.
CardDataset extended_dataset() {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));
  images.push_back(make_gray_card(28, 60, 160));
  images.push_back(make_rgb_card(30, 24));
  return CardDataset(std::move(images));
}

core::SegHdcConfig golden_config() {
  core::SegHdcConfig config;  // fixed seed on purpose (not env-driven)
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  return config;
}

core::SegHdcConfig base_config() {
  auto config = golden_config();
  config.seed = test_seed();
  return config;
}

void expect_suites_identical(const eval::SuiteResult& actual,
                             const eval::SuiteResult& reference,
                             const std::string& what) {
  ASSERT_EQ(actual.records.size(), reference.records.size()) << what;
  EXPECT_EQ(actual.labels_hash, reference.labels_hash) << what;
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    EXPECT_EQ(actual.records[i].label_hash, reference.records[i].label_hash)
        << what << ", image " << i;
    EXPECT_EQ(actual.records[i].iou, reference.records[i].iou)
        << what << ", image " << i;
    EXPECT_EQ(actual.records[i].id, reference.records[i].id)
        << what << ", image " << i;
  }
  EXPECT_EQ(actual.mean_iou(), reference.mean_iou()) << what;
}

// ---------------------------------------------------------------------
// Golden pins.
// ---------------------------------------------------------------------

// DO NOT casually update these constants. The suite fingerprint chains
// metrics::label_map_hash over the per-image label maps in sample
// order, seeded with the FNV-1a offset basis — the same computation the
// golden-batch tests in test_session.cpp pin, so the first constant is
// shared with them verbatim. Rerecord only after confirming an intended
// pipeline change (and update test_session.cpp in the same commit).
constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;
constexpr std::uint64_t kGoldenEvalHash = 256417817128784446ULL;

TEST(EvalPipeline, GoldenBatchHashReproducedThroughEveryPath) {
  const auto dataset = golden_dataset();
  const auto config = golden_config();
  util::ThreadPool pool(3);
  for (const auto path : {eval::EvalPath::kOneShot, eval::EvalPath::kBatch,
                          eval::EvalPath::kServer}) {
    eval::EvalOptions options;
    options.path = path;
    options.pool = &pool;
    options.server_options.queue_capacity = test_queue_capacity();
    const auto suite =
        eval::evaluate_seghdc(dataset, dataset.size(), config, options);
    EXPECT_EQ(suite.labels_hash, kGoldenBatchHash)
        << "eval fingerprint drifted on path " << eval::eval_path_name(path);
    EXPECT_EQ(suite.path, eval::eval_path_name(path));
  }
}

TEST(EvalPipeline, ExtendedSuitePinsItsOwnGoldenHash) {
  const auto dataset = extended_dataset();
  eval::EvalOptions options;
  options.path = eval::EvalPath::kBatch;
  const auto suite =
      eval::evaluate_seghdc(dataset, dataset.size(), golden_config(),
                            options);
  EXPECT_EQ(suite.labels_hash, kGoldenEvalHash)
      << "extended eval fingerprint drifted";
  // The per-record hashes must compose into the suite fingerprint the
  // documented way: a chain over the same label maps. Spot-check that
  // no record hash is the unset 0 sentinel.
  for (const auto& record : suite.records) {
    EXPECT_NE(record.label_hash, 0u);
  }
}

// ---------------------------------------------------------------------
// Path x pool x assign-mode identity.
// ---------------------------------------------------------------------

TEST(EvalPipeline, PathsPoolsAndAssignModesAreBitIdentical) {
  const auto dataset = extended_dataset();
  auto config = base_config();

  // Reference: sequential one-shot, pool of 1, exhaustive assignment.
  eval::SuiteResult reference;
  {
    util::ThreadPool pool(1);
    eval::EvalOptions options;
    options.path = eval::EvalPath::kOneShot;
    options.pool = &pool;
    config.assign_mode = core::AssignMode::kExhaustive;
    reference =
        eval::evaluate_seghdc(dataset, dataset.size(), config, options);
  }
  ASSERT_EQ(reference.records.size(), dataset.size());
  ASSERT_NE(reference.labels_hash, 0u);

  for (const auto assign_mode :
       {core::AssignMode::kExhaustive, core::AssignMode::kPruned}) {
    config.assign_mode = assign_mode;
    for (const std::size_t pool_size : {1, 2, 4}) {
      util::ThreadPool pool(pool_size);
      for (const auto path :
           {eval::EvalPath::kOneShot, eval::EvalPath::kBatch,
            eval::EvalPath::kServer}) {
        eval::EvalOptions options;
        options.path = path;
        options.pool = &pool;
        options.batch_size = 2;  // 5 images -> 3 waves on batch/server
        options.server_options.queue_capacity = test_queue_capacity();
        const auto suite =
            eval::evaluate_seghdc(dataset, dataset.size(), config, options);
        expect_suites_identical(
            suite, reference,
            std::string(eval::eval_path_name(path)) + ", pool " +
                std::to_string(pool_size) + ", " +
                (assign_mode == core::AssignMode::kPruned ? "pruned"
                                                          : "exhaustive"));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Serving reality: external servers, live streams, forced backpressure.
// ---------------------------------------------------------------------

TEST(EvalPipeline, ExternalServerWithActiveStreamsStaysIdentical) {
  const auto dataset = extended_dataset();
  const auto config = base_config();

  eval::SuiteResult reference;
  {
    eval::EvalOptions options;
    options.path = eval::EvalPath::kBatch;
    reference =
        eval::evaluate_seghdc(dataset, dataset.size(), config, options);
  }

  util::ThreadPool pool(4);
  serve::ServerOptions server_options;
  server_options.queue_capacity = test_queue_capacity();
  server_options.encode_workers = 2;
  server_options.cluster_workers = 2;
  server_options.pool = &pool;
  serve::SegHdcServer server(config, server_options);

  // Keep a temporal stream busy on the same server while the eval sweep
  // runs: shared-traffic evaluation must not perturb batch requests.
  auto stream = server.open_stream();
  std::vector<std::future<core::StreamFrameResult>> frames;
  frames.push_back(server.submit(stream, make_gray_card(24, 40, 210)));
  frames.push_back(server.submit(stream, make_gray_card(24, 42, 212)));

  eval::EvalOptions options;
  options.path = eval::EvalPath::kServer;
  options.server = &server;
  const auto suite =
      eval::evaluate_seghdc(dataset, dataset.size(), config, options);

  frames.push_back(server.submit(stream, make_gray_card(24, 44, 214)));
  for (auto& frame : frames) {
    EXPECT_GT(frame.get().result.labels.pixel_count(), 0u);
  }
  expect_suites_identical(suite, reference, "external server with streams");
}

TEST(EvalPipeline, CapacityOneQueueChangesNothing) {
  // Forced backpressure: every enqueue blocks until the pipeline
  // drains. Throughput suffers; content must not.
  const auto dataset = golden_dataset();
  const auto config = golden_config();
  eval::EvalOptions options;
  options.path = eval::EvalPath::kServer;
  options.batch_size = 2;
  options.server_options.queue_capacity = 1;
  const auto suite =
      eval::evaluate_seghdc(dataset, dataset.size(), config, options);
  EXPECT_EQ(suite.labels_hash, kGoldenBatchHash);
}

TEST(EvalPipeline, MismatchedExternalServerIsAHardError) {
  const auto dataset = golden_dataset();
  const auto config = golden_config();
  auto other = config;
  other.dim = 256;  // different semantics: labels not comparable
  serve::SegHdcServer server(other, {});
  eval::EvalOptions options;
  options.path = eval::EvalPath::kServer;
  options.server = &server;
  try {
    eval::evaluate_seghdc(dataset, dataset.size(), config, options);
    FAIL() << "expected a config-mismatch error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what())
                  .find("external server config does not match"),
              std::string::npos)
        << "actual message: " << error.what();
  }
}

// ---------------------------------------------------------------------
// Measured op accounting.
// ---------------------------------------------------------------------

TEST(EvalPipeline, PrunedModeOpsSatisfyConservation) {
  // Records must carry MEASURED counts: in pruned assignment mode every
  // candidate is either distance-evaluated or pruned, so the two sides
  // of the ledger reconcile exactly. A blanket points*clusters*iters
  // formula would double-count prunes and fail this.
  const auto dataset = extended_dataset();
  auto config = base_config();
  config.assign_mode = core::AssignMode::kPruned;
  ASSERT_FALSE(config.compute_margins);

  for (const auto path : {eval::EvalPath::kOneShot, eval::EvalPath::kBatch,
                          eval::EvalPath::kServer}) {
    eval::EvalOptions options;
    options.path = path;
    options.server_options.queue_capacity = test_queue_capacity();
    const auto suite =
        eval::evaluate_seghdc(dataset, dataset.size(), config, options);
    core::OpCounts manual_total;
    for (const auto& record : suite.records) {
      EXPECT_GT(record.ops.distance_evals, 0u);
      EXPECT_GT(record.unique_points, 0u);
      EXPECT_GT(record.iterations_run, 0u);
      EXPECT_EQ(record.ops.distance_evals + record.ops.candidates_pruned,
                record.unique_points * config.clusters *
                    record.iterations_run)
          << "op ledger does not reconcile for " << record.id << " on "
          << eval::eval_path_name(path);
      manual_total.distance_evals += record.ops.distance_evals;
      manual_total.candidates_pruned += record.ops.candidates_pruned;
    }
    const auto total = suite.total_ops();
    EXPECT_EQ(total.distance_evals, manual_total.distance_evals);
    EXPECT_EQ(total.candidates_pruned, manual_total.candidates_pruned);
  }
}

// ---------------------------------------------------------------------
// Knob plumbing.
// ---------------------------------------------------------------------

TEST(EvalPipeline, ParseEvalPathRoundTripsAndRejectsJunk) {
  EXPECT_EQ(eval::parse_eval_path("one_shot"), eval::EvalPath::kOneShot);
  EXPECT_EQ(eval::parse_eval_path("batch"), eval::EvalPath::kBatch);
  EXPECT_EQ(eval::parse_eval_path("server"), eval::EvalPath::kServer);
  for (const auto path : {eval::EvalPath::kOneShot, eval::EvalPath::kBatch,
                          eval::EvalPath::kServer}) {
    EXPECT_EQ(eval::parse_eval_path(eval::eval_path_name(path)), path);
  }
  try {
    eval::parse_eval_path("warp");
    FAIL() << "expected parse_eval_path to reject junk";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "parse_eval_path: unknown eval path 'warp' (use one_shot, "
                 "batch or server)");
  }
}

TEST(EvalPipeline, WaveSizeZeroMeansWholeSuiteAndRecordsAreComplete) {
  const auto dataset = extended_dataset();
  eval::EvalOptions options;
  options.path = eval::EvalPath::kBatch;
  options.batch_size = 0;  // one wave
  const auto suite = eval::evaluate_seghdc(dataset, dataset.size(),
                                           base_config(), options);
  ASSERT_EQ(suite.records.size(), dataset.size());
  EXPECT_GT(suite.wall_seconds, 0.0);
  EXPECT_EQ(suite.latency.count, dataset.size());
  for (const auto& record : suite.records) {
    EXPECT_GT(record.seconds, 0.0);
    EXPECT_GE(record.iou, 0.0);
    EXPECT_LE(record.iou, 1.0);
    EXPECT_EQ(record.instances, 1u);
  }
}

TEST(EvalPipeline, SinkSeesEverySampleInOrder) {
  const auto dataset = extended_dataset();
  std::vector<std::size_t> seen;
  eval::EvalOptions options;
  options.path = eval::EvalPath::kServer;
  options.batch_size = 2;
  options.server_options.queue_capacity = test_queue_capacity();
  options.sink = [&seen](std::size_t index, const data::Sample& sample,
                         const core::SegmentationResult& result) {
    EXPECT_EQ(sample.id, "card_" + std::to_string(index));
    EXPECT_EQ(result.labels.pixel_count(), sample.image.pixel_count());
    seen.push_back(index);
  };
  eval::evaluate_seghdc(dataset, dataset.size(), base_config(), options);
  ASSERT_EQ(seen.size(), dataset.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i);
  }
}

}  // namespace
