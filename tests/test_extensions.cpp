// Tests for the extension features layered over the paper's core:
// permutation binding, histogram equalization, the Otsu classical
// baseline, and the per-pixel confidence margins.
#include <gtest/gtest.h>

#include "src/baseline/otsu_segmenter.hpp"
#include "src/core/seghdc.hpp"
#include "src/hdc/distances.hpp"
#include "src/hdc/permutation.hpp"
#include "src/imaging/filters.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;

// --- Permutation (rho). ---

TEST(Permutation, RotateByZeroIsIdentity) {
  util::Rng rng(1);
  const auto hv = hdc::HyperVector::random(300, rng);
  EXPECT_EQ(hdc::rotate(hv, 0), hv);
  EXPECT_EQ(hdc::rotate(hv, 300), hv);  // full cycle
}

TEST(Permutation, RotatePreservesPopcount) {
  util::Rng rng(2);
  const auto hv = hdc::HyperVector::random(257, rng);
  for (const std::size_t shift : {1u, 7u, 64u, 130u, 256u}) {
    EXPECT_EQ(hdc::rotate(hv, shift).popcount(), hv.popcount());
  }
}

TEST(Permutation, RotateMovesBitsCorrectly) {
  hdc::HyperVector hv(8);
  hv.set(3, true);
  const auto rotated = hdc::rotate(hv, 2);  // bit i <- bit (i+2) mod 8
  EXPECT_TRUE(rotated.get(1));
  EXPECT_EQ(rotated.popcount(), 1u);
}

TEST(Permutation, RotationComposes) {
  util::Rng rng(3);
  const auto hv = hdc::HyperVector::random(100, rng);
  EXPECT_EQ(hdc::rotate(hdc::rotate(hv, 30), 50), hdc::rotate(hv, 80));
}

TEST(Permutation, RotatedVectorIsPseudoOrthogonal) {
  util::Rng rng(4);
  const auto hv = hdc::HyperVector::random(10000, rng);
  const auto rotated = hdc::rho(hv, 1);
  EXPECT_NEAR(hdc::normalized_hamming(hv, rotated), 0.5, 0.03);
}

TEST(Permutation, RhoDefaultsToSingleStep) {
  util::Rng rng(5);
  const auto hv = hdc::HyperVector::random(64, rng);
  EXPECT_EQ(hdc::rho(hv), hdc::rotate(hv, 1));
}

// --- Histogram equalization. ---

TEST(Equalize, SpreadsCompressedHistogram) {
  // Intensities squeezed into [100, 120] must expand toward [0, 255].
  img::ImageU8 image(64, 4, 1);
  for (std::size_t x = 0; x < 64; ++x) {
    for (std::size_t y = 0; y < 4; ++y) {
      image(x, y) = static_cast<std::uint8_t>(100 + (x * 20) / 63);
    }
  }
  const auto equalized = img::equalize_histogram(image);
  std::uint8_t lo = 255;
  std::uint8_t hi = 0;
  for (const auto v : equalized.pixels()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_GT(hi, 240);
}

TEST(Equalize, PreservesIntensityOrdering) {
  img::ImageU8 image(3, 1, 1);
  image(0, 0) = 10;
  image(1, 0) = 50;
  image(2, 0) = 200;
  const auto equalized = img::equalize_histogram(image);
  EXPECT_LT(equalized(0, 0), equalized(1, 0));
  EXPECT_LT(equalized(1, 0), equalized(2, 0));
}

TEST(Equalize, ConstantImageUnchanged) {
  const img::ImageU8 flat(8, 8, 1, 77);
  EXPECT_EQ(img::equalize_histogram(flat), flat);
}

TEST(Equalize, RejectsMultiChannel) {
  const img::ImageU8 rgb(4, 4, 3);
  EXPECT_THROW(img::equalize_histogram(rgb), std::invalid_argument);
}

// --- Otsu baseline. ---

TEST(OtsuBaseline, SeparatesCleanTwoTone) {
  img::ImageU8 image(32, 32, 1, 30);
  img::ImageU8 truth(32, 32, 1, 0);
  for (std::size_t y = 8; y < 24; ++y) {
    for (std::size_t x = 8; x < 24; ++x) {
      image(x, y) = 200;
      truth(x, y) = 255;
    }
  }
  const baseline::OtsuSegmenter otsu;
  const auto result = otsu.segment(image);
  EXPECT_GE(result.threshold, 30);
  EXPECT_LT(result.threshold, 200);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, truth);
  EXPECT_DOUBLE_EQ(matched.iou, 1.0);
}

TEST(OtsuBaseline, HandlesRgbViaLuma) {
  img::ImageU8 image(16, 16, 3, 20);
  for (std::size_t y = 4; y < 12; ++y) {
    for (std::size_t x = 4; x < 12; ++x) {
      image(x, y, 0) = 220;
      image(x, y, 1) = 210;
      image(x, y, 2) = 230;
    }
  }
  const baseline::OtsuSegmenter otsu;
  const auto result = otsu.segment(image);
  EXPECT_EQ(result.labels(8, 8), 1u);
  EXPECT_EQ(result.labels(0, 0), 0u);
}

TEST(OtsuBaseline, EqualizeFirstOption) {
  // Low-contrast image: both variants must still produce a 2-label map.
  img::ImageU8 image(16, 16, 1, 100);
  for (std::size_t y = 4; y < 12; ++y) {
    for (std::size_t x = 4; x < 12; ++x) {
      image(x, y) = 118;
    }
  }
  const auto plain = baseline::OtsuSegmenter(false).segment(image);
  const auto equalized = baseline::OtsuSegmenter(true).segment(image);
  EXPECT_EQ(plain.labels(8, 8), 1u);
  EXPECT_EQ(equalized.labels(8, 8), 1u);
}

TEST(OtsuBaseline, FailsWhereSegHdcSucceedsUnderIlluminationRamp) {
  // A strong illumination ramp defeats a single global threshold while
  // SegHDC's position-aware clustering copes — the motivating contrast
  // for learning-based segmentation in the paper's introduction.
  const std::size_t n = 64;
  img::ImageU8 image(n, n, 1, 0);
  img::ImageU8 truth(n, n, 1, 0);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      // Background ramps 10 -> 170 left to right; squares sit 70 above.
      const auto bg = static_cast<std::uint8_t>(10 + (x * 160) / (n - 1));
      image(x, y) = bg;
    }
  }
  for (const std::size_t cx : {12u, 52u}) {
    for (std::size_t y = 24; y < 40; ++y) {
      for (std::size_t x = cx - 6; x < cx + 6; ++x) {
        image(x, y) = static_cast<std::uint8_t>(
            std::min(255, image(x, y) + 70));
        truth(x, y) = 255;
      }
    }
  }
  const auto otsu = baseline::OtsuSegmenter().segment(image);
  const double otsu_iou =
      metrics::best_foreground_iou(otsu.labels, 2, truth).iou;
  EXPECT_LT(otsu_iou, 0.75);  // the global threshold cuts the ramp
}

// --- Confidence margins. ---

TEST(Margins, DisabledByDefault) {
  img::ImageU8 image(16, 16, 1, 10);
  image(8, 8) = 250;
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 3;
  const auto result = core::SegHdc(config).segment(image);
  EXPECT_TRUE(result.margins.empty());
}

TEST(Margins, ConfidentInteriorUncertainNowhere) {
  img::ImageU8 image(32, 32, 1, 20);
  for (std::size_t y = 8; y < 24; ++y) {
    for (std::size_t x = 8; x < 24; ++x) {
      image(x, y) = 220;
    }
  }
  core::SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.iterations = 5;
  config.compute_margins = true;
  const auto result = core::SegHdc(config).segment(image);
  ASSERT_FALSE(result.margins.empty());
  ASSERT_EQ(result.margins.width(), 32u);
  // All margins non-negative; strong two-tone separation means clearly
  // positive margins almost everywhere.
  float min_margin = 1e9F;
  double sum = 0.0;
  for (const auto m : result.margins.pixels()) {
    min_margin = std::min(min_margin, m);
    sum += m;
  }
  EXPECT_GE(min_margin, 0.0F);
  EXPECT_GT(sum / static_cast<double>(result.margins.pixel_count()),
            0.01);
}

TEST(Margins, AmbiguousPixelsScoreLowerThanClearOnes) {
  // Three vertical bands: dark | mid | bright, clustered with k=2 —
  // the mid band must carry smaller margins than the extremes.
  img::ImageU8 image(48, 16, 1, 0);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 48; ++x) {
      image(x, y) = x < 16 ? 10 : x < 32 ? 115 : 235;
    }
  }
  core::SegHdcConfig config;
  config.dim = 1024;
  config.beta = 4;
  config.iterations = 6;
  config.compute_margins = true;
  const auto result = core::SegHdc(config).segment(image);
  ASSERT_FALSE(result.margins.empty());
  const auto mean_margin = [&](std::size_t x0, std::size_t x1) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t y = 0; y < 16; ++y) {
      for (std::size_t x = x0; x < x1; ++x) {
        sum += result.margins(x, y);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double dark = mean_margin(0, 16);
  const double mid = mean_margin(16, 32);
  const double bright = mean_margin(32, 48);
  EXPECT_LT(mid, dark);
  EXPECT_LT(mid, bright);
}

}  // namespace
